//! Cross-crate stress: every reclamation scheme × every data structure,
//! multi-threaded, with per-key parity accounting.
//!
//! Each successful insert increments a per-key ledger, each successful
//! remove decrements it. Whatever the interleaving, a key's final ledger
//! value is 1 iff the key is present — a linearizability-derived invariant
//! that catches lost updates, double frees that corrupt structure, and
//! reclamation races that drop reachable nodes.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use pop::ds::ab_tree::AbTree;
use pop::ds::ext_bst::ExtBst;
use pop::ds::hash_map::HashMapHm;
use pop::ds::hml::HmList;
use pop::ds::lazy_list::LazyList;
use pop::ds::nm_tree::NmTree;
use pop::ds::skip_list::SkipList;
use pop::ds::ConcurrentMap;
use pop::smr::{
    Ebr, EpochPop, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym, HazardPtrPop, Hyaline, Ibr,
    NbrPlus, NoReclaim, Smr, SmrConfig, Vbr,
};

const THREADS: usize = 3;
const OPS_PER_THREAD: u64 = 20_000;
const KEY_RANGE: u64 = 128;

fn stress<S: Smr, M: ConcurrentMap<S>>() {
    let smr = S::new(SmrConfig::for_tests(THREADS + 1).with_reclaim_freq(128));
    let map = Arc::new(M::with_domain(Arc::clone(&smr)));
    let ledger: Arc<Vec<AtomicI64>> = Arc::new((0..KEY_RANGE).map(|_| AtomicI64::new(0)).collect());

    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let map = Arc::clone(&map);
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || {
                let _reg = map.smr().register(tid);
                let mut x = 0x243F6A8885A308D3u64 ^ (tid as u64) << 17;
                for _ in 0..OPS_PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    // Op selector from high bits: KEY_RANGE is a power of
                    // two, so `x % 4` would fix the key's residue per op
                    // class and removes would never hit inserted keys.
                    match (x >> 32) % 4 {
                        0 | 1 => {
                            if map.insert(tid, key, key + 1) {
                                ledger[key as usize].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        2 => {
                            if map.remove(tid, key) {
                                ledger[key as usize].fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            // Lookups must never observe poison or crash.
                            let _ = map.get(tid, key);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress worker panicked");
    }

    // Quiescent verification from a fresh registration.
    let reg = smr.register(THREADS);
    for key in 0..KEY_RANGE {
        let count = ledger[key as usize].load(Ordering::Relaxed);
        assert!(
            count == 0 || count == 1,
            "key {key}: ledger {count} is not a set cardinality"
        );
        assert_eq!(
            map.contains(THREADS, key),
            count == 1,
            "key {key}: presence disagrees with ledger ({count})"
        );
    }
    drop(reg);

    // Accounting sanity — and proof the reclamation path actually ran.
    let s = smr.stats().snapshot();
    assert!(s.freed_nodes <= s.retired_nodes + s.allocated_nodes);
    assert!(
        s.retired_nodes >= s.freed_nodes,
        "freed more than retired: {s:?}"
    );
    assert!(
        s.retired_nodes > 0,
        "stress must exercise retirement (op/key correlation bug?)"
    );
}

macro_rules! stress_tests {
    ($($name:ident : $scheme:ty),+ $(,)?) => {
        $(
            mod $name {
                use super::*;
                #[test]
                fn hml() {
                    stress::<$scheme, HmList<$scheme>>();
                }
                #[test]
                fn lazy_list() {
                    stress::<$scheme, LazyList<$scheme>>();
                }
                #[test]
                fn hash_map() {
                    stress::<$scheme, HashMapHm<$scheme>>();
                }
                #[test]
                fn ext_bst() {
                    stress::<$scheme, ExtBst<$scheme>>();
                }
                #[test]
                fn ab_tree() {
                    stress::<$scheme, AbTree<$scheme>>();
                }
                #[test]
                fn skip_list() {
                    stress::<$scheme, SkipList<$scheme>>();
                }
                #[test]
                fn nm_tree() {
                    stress::<$scheme, NmTree<$scheme>>();
                }
            }
        )+
    };
}

stress_tests! {
    nr: NoReclaim,
    ebr: Ebr,
    ibr: Ibr,
    hp: HazardPtr,
    hp_asym: HazardPtrAsym,
    he: HazardEra,
    nbr_plus: NbrPlus,
    hazard_ptr_pop: HazardPtrPop,
    hazard_era_pop: HazardEraPop,
    epoch_pop: EpochPop,
    hyaline: Hyaline,
    vbr: Vbr,
}
