//! Use-after-free oracle: the quarantine detector under concurrent churn.
//!
//! With `SmrConfig::with_quarantine()`, "freed" nodes are poisoned and kept
//! mapped; `protect` asserts the poison word after its validation read. If
//! any scheme ever frees a node a reader could still reach, these tests
//! panic deterministically instead of corrupting the heap.

use std::sync::Arc;

use pop::ds::ext_bst::ExtBst;
use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::smr::{
    EpochPop, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym, HazardPtrPop, NbrPlus, Smr,
    SmrConfig,
};

const THREADS: usize = 3;
const OPS: u64 = 15_000;
const KEYS: u64 = 64;

fn churn<S: Smr, M: ConcurrentMap<S>>() {
    // Tiny reclaim threshold: free as often as possible to maximize the
    // chance of racing a reader.
    let smr = S::new(
        SmrConfig::for_tests(THREADS)
            .with_reclaim_freq(32)
            .with_quarantine(),
    );
    let map = Arc::new(M::with_domain(Arc::clone(&smr)));
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let _reg = map.smr().register(tid);
                let mut x = 0xB7E151628AED2A6Bu64 ^ (tid as u64) << 21;
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEYS;
                    match x % 3 {
                        0 => {
                            map.insert(tid, key, key);
                        }
                        1 => {
                            map.remove(tid, key);
                        }
                        _ => {
                            map.contains(tid, key);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("UAF detected or worker panicked");
    }
    let s = smr.stats().snapshot();
    assert!(
        s.freed_nodes > 0,
        "quarantine churn must actually exercise freeing (freed = 0)"
    );
}

macro_rules! uaf_tests {
    ($($name:ident : $scheme:ty),+ $(,)?) => {
        $(
            mod $name {
                use super::*;
                #[test]
                fn hml_churn() {
                    churn::<$scheme, HmList<$scheme>>();
                }
                #[test]
                fn ext_bst_churn() {
                    churn::<$scheme, ExtBst<$scheme>>();
                }
            }
        )+
    };
}

// Every scheme whose protect() performs reservations or restart checks —
// the ones with UAF-relevant machinery under test. (NR leaks by design and
// EBR/IBR/Hyaline protect readers by op brackets; they are covered by the
// same oracle through `protect`'s poison check in HP-family schemes and by
// stress_matrix for the rest.)
uaf_tests! {
    hp: HazardPtr,
    hp_asym: HazardPtrAsym,
    he: HazardEra,
    hazard_ptr_pop: HazardPtrPop,
    hazard_era_pop: HazardEraPop,
    epoch_pop: EpochPop,
    nbr_plus: NbrPlus,
}
