//! Property-based sequential-semantics checks: every structure, driven by
//! a random operation sequence, must agree with `BTreeMap` exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use pop::ds::ab_tree::AbTree;
use pop::ds::ext_bst::ExtBst;
use pop::ds::hash_map::HashMapHm;
use pop::ds::hml::HmList;
use pop::ds::lazy_list::LazyList;
use pop::ds::ConcurrentMap;
use pop::smr::{HazardPtrPop, Smr, SmrConfig};

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_range, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_range).prop_map(Op::Remove),
        (0..key_range).prop_map(Op::Get),
    ]
}

fn check_against_model<M: ConcurrentMap<HazardPtrPop>>(ops: &[Op]) {
    let smr = HazardPtrPop::new(SmrConfig::for_tests(1).with_reclaim_freq(16));
    let map = M::with_domain(Arc::clone(&smr));
    let reg = smr.register(0);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expect = !model.contains_key(&k);
                if expect {
                    model.insert(k, v);
                }
                assert_eq!(map.insert(0, k, v), expect, "insert({k}) divergence");
            }
            Op::Remove(k) => {
                let expect = model.remove(&k).is_some();
                assert_eq!(map.remove(0, k), expect, "remove({k}) divergence");
            }
            Op::Get(k) => {
                assert_eq!(map.get(0, k), model.get(&k).copied(), "get({k}) divergence");
            }
        }
    }
    // Final sweep: every key agrees.
    for k in 0..64 {
        assert_eq!(map.contains(0, k), model.contains_key(&k));
    }
    drop(reg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hml_matches_btreemap(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        check_against_model::<HmList<HazardPtrPop>>(&ops);
    }

    #[test]
    fn lazy_list_matches_btreemap(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        check_against_model::<LazyList<HazardPtrPop>>(&ops);
    }

    #[test]
    fn hash_map_matches_btreemap(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        check_against_model::<HashMapHm<HazardPtrPop>>(&ops);
    }

    #[test]
    fn ext_bst_matches_btreemap(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        check_against_model::<ExtBst<HazardPtrPop>>(&ops);
    }

    #[test]
    fn ab_tree_matches_btreemap(ops in prop::collection::vec(op_strategy(256), 1..600)) {
        check_against_model::<AbTree<HazardPtrPop>>(&ops);
    }
}
