//! Multiple signal-based domains coexisting in one process.
//!
//! The process-global SIGUSR1 handler dispatches to *every* active
//! publisher; these tests pin down the invariants that make that safe:
//! one registry slot per OS thread (shared registration), correct
//! gtid→tid mapping per domain, and no cross-domain interference when two
//! domains ping concurrently.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::smr::{EpochPop, HazardEraPop, HazardPtrPop, Smr, SmrConfig};

#[test]
fn two_pop_domains_on_same_threads() {
    let a = HazardPtrPop::new(SmrConfig::for_tests(2).with_reclaim_freq(64));
    let b = HazardEraPop::new(SmrConfig::for_tests(2).with_reclaim_freq(64));
    let la = Arc::new(HmList::new(Arc::clone(&a)));
    let lb = Arc::new(HmList::new(Arc::clone(&b)));

    let handles: Vec<_> = (0..2)
        .map(|tid| {
            let la = Arc::clone(&la);
            let lb = Arc::clone(&lb);
            std::thread::spawn(move || {
                // One OS thread participates in both domains; the shared
                // registration must give it a single registry slot.
                let ra = la.smr().register(tid);
                let rb = lb.smr().register(tid);
                for i in 0..5_000u64 {
                    let k = i % 97;
                    la.insert(tid, k, i);
                    lb.insert(tid, k, i);
                    la.remove(tid, k);
                    lb.remove(tid, k);
                }
                drop(rb);
                drop(ra);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let sa = a.stats().snapshot();
    let sb = b.stats().snapshot();
    assert!(sa.retired_nodes > 0 && sb.retired_nodes > 0);
    assert!(
        sa.freed_nodes > 0 && sb.freed_nodes > 0,
        "both domains must reclaim: a={sa:?} b={sb:?}"
    );
}

#[test]
fn concurrent_reclaimers_in_different_domains() {
    // Thread 0 reclaims in domain A while thread 1 reclaims in domain B;
    // each pings the other — publishes must be attributed correctly.
    let a = HazardPtrPop::new(SmrConfig::for_tests(2).with_reclaim_freq(32));
    let b = EpochPop::new(SmrConfig::for_tests(2).with_reclaim_freq(32).with_pop_c(1));
    let la = Arc::new(HmList::new(Arc::clone(&a)));
    let lb = Arc::new(HmList::new(Arc::clone(&b)));
    let stop = Arc::new(AtomicBool::new(false));

    let t0 = {
        let la = Arc::clone(&la);
        let lb = Arc::clone(&lb);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let ra = la.smr().register(0);
            let rb = lb.smr().register(0);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                la.insert(0, i % 61, i);
                la.remove(0, i % 61);
                let _ = lb.contains(0, i % 61);
                i += 1;
            }
            drop(rb);
            drop(ra);
        })
    };
    let t1 = {
        let la = Arc::clone(&la);
        let lb = Arc::clone(&lb);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let ra = la.smr().register(1);
            let rb = lb.smr().register(1);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                lb.insert(1, i % 61, i);
                lb.remove(1, i % 61);
                let _ = la.contains(1, i % 61);
                i += 1;
            }
            drop(rb);
            drop(ra);
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Release);
    t0.join().unwrap();
    t1.join().unwrap();

    let sa = a.stats().snapshot();
    let sb = b.stats().snapshot();
    assert!(sa.freed_nodes > 0, "domain A reclaimed: {sa:?}");
    assert!(sb.freed_nodes > 0, "domain B reclaimed: {sb:?}");
}

#[test]
fn registration_guard_cleans_up_for_reuse() {
    let smr = HazardPtrPop::new(SmrConfig::for_tests(1).with_reclaim_freq(16));
    let list = HmList::new(Arc::clone(&smr));
    for round in 0..5 {
        // Same tid reused across spawned threads, serially.
        let h = std::thread::spawn({
            let smr = Arc::clone(&smr);
            move || {
                let reg = smr.register(0);
                drop(reg);
            }
        });
        h.join().unwrap();
        let reg = smr.register(0);
        list.insert(0, round, round);
        list.remove(0, round);
        drop(reg);
    }
    let reg = smr.register(0);
    smr.flush(0);
    drop(reg);
    assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
}
