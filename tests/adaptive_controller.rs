//! The adaptive domain controller, end to end (ISSUE 5):
//!
//! * **Bin auto-sizing** — a single-stream workload collapses its fill
//!   bins to 1 within a bounded number of seals; interleaved-arena churn
//!   grows them back toward the maximum.
//! * **Epoch-freq decay** — barren passes on a pinned domain deepen the
//!   decay (observable through `epoch_decay_steps`) and thin the
//!   triggered passes; the first freeable sweep drains *everything* and
//!   resets the cadence — no reclamation-latency cliff.
//! * **Era-monotone seals** — in-order retirement produces blocks whose
//!   birth eras are monotone, counted by `blocks_sealed_era_monotone`,
//!   which the era sweeps (HE family) merge-join on their first sweep.
//! * **Static pinning** — `with_adaptive(false)` (the `POP_ADAPTIVE=0`
//!   CI leg) never decays and never resizes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pop::smr::testing::SweepBench;
use pop::smr::{retire_node, Ebr, HasHeader, HazardEra, Header, Smr, SmrConfig};

#[repr(C)]
struct Node {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for Node {}

fn alloc<S: Smr>(smr: &S, tid: usize, v: u64) -> *mut Node {
    smr.note_alloc(tid, core::mem::size_of::<Node>());
    Box::into_raw(Box::new(Node {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<Node>()),
        v,
    }))
}

#[test]
fn single_stream_collapses_to_one_bin() {
    let mut bench = SweepBench::adaptive(4);
    assert_eq!(bench.bins(), 4);
    // Address-ordered fills, drained whole each round — the
    // single-address-stream regime. Each round seals ~32 blocks, one
    // adaptation window.
    for _ in 0..8 {
        bench.fill_sorted(1024);
        let freed = bench.sweep_merge_join(&[]);
        assert_eq!(freed, 1024);
    }
    assert_eq!(
        bench.bins(),
        1,
        "single stream must shed the multi-bin unsealed-node bound"
    );
    assert!(bench.bin_resizes() >= 2, "4 → 2 → 1 takes two resizes");
}

#[test]
fn interleaved_arena_churn_grows_bins_back() {
    let mut bench = SweepBench::adaptive(1);
    assert_eq!(bench.bins(), 1);
    // Four address-ascending bursts retired round-robin: unbinned fill
    // blocks zigzag between arenas, the monotone share collapses, and
    // the auto-sizer must grow until the streams separate again.
    for _ in 0..10 {
        let n = bench.fill_interleaved(8192, 4).len();
        let freed = bench.sweep_merge_join(&[]);
        assert_eq!(freed, n);
    }
    // The auto-sizer may legally be snapshotted mid-collapse-probe (a
    // well-separated 4-bin state probes 2 once per holdoff cycle), so
    // assert the growth itself — at least 1 → 2 → 4 worth of resizes and
    // more than one bin standing — not the exact converged count.
    assert!(
        bench.bins() >= 2,
        "interleaved churn must grow the bins (got {})",
        bench.bins()
    );
    assert!(
        bench.bin_resizes() >= 2,
        "growth 1 → 2 → 4 takes at least two resizes (saw {})",
        bench.bin_resizes()
    );
}

#[test]
fn decayed_domain_rebounds_without_a_latency_cliff() {
    let smr = Ebr::new(
        SmrConfig::for_tests(2)
            .with_reclaim_freq(32)
            .with_retire_bins(1) // deterministic seal/trigger points
            .with_adaptive(true), // pin against the POP_ADAPTIVE=0 CI leg
    );
    let reg0 = smr.register(0);
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let pinner = std::thread::spawn({
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        move || {
            let reg1 = smr.register(1);
            smr.begin_op(1); // parks in the current epoch
            tx.send(()).unwrap();
            while !stop.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            smr.end_op(1);
            drop(reg1);
        }
    });
    rx.recv().unwrap();
    // 64 triggers' worth of retires, all pinned: passes are barren.
    for i in 0..32 * 64 {
        smr.begin_op(0);
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
        smr.end_op(0);
    }
    let s = smr.stats().snapshot();
    assert_eq!(s.freed_nodes, 0, "reader pins everything");
    assert!(
        s.epoch_decay_steps >= 1,
        "barren passes must decay the cadence"
    );
    assert!(
        s.epoch_passes < 64,
        "decay must thin triggered passes ({} full passes)",
        s.epoch_passes
    );
    // The reader leaves; the very next flush frees the whole backlog in
    // one pass — the decay never delays a *possible* free, only skips
    // provably barren work.
    stop.store(true, Ordering::Release);
    pinner.join().unwrap();
    smr.flush(0);
    assert_eq!(
        smr.stats().snapshot().unreclaimed_nodes(),
        0,
        "first freeable sweep drains the entire backlog"
    );
    drop(reg0);
}

#[test]
fn in_order_retirement_seals_era_monotone_blocks() {
    let smr = HazardEra::new(
        SmrConfig::for_tests(1)
            .with_reclaim_freq(64)
            .with_retire_bins(1),
    );
    let reg = smr.register(0);
    for i in 0..256 {
        smr.begin_op(0);
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
        smr.end_op(0);
    }
    smr.flush(0);
    let s = smr.stats().snapshot();
    assert!(s.batches_sealed > 0);
    assert_eq!(
        s.blocks_sealed_era_monotone, s.batches_sealed,
        "in-order retirement: every sealed block is era-monotone"
    );
    assert_eq!(s.unreclaimed_nodes(), 0);
    drop(reg);
}

#[test]
fn adaptive_off_is_fully_static() {
    let smr = Ebr::new(
        SmrConfig::for_tests(2)
            .with_reclaim_freq(32)
            .with_retire_bins(1)
            .with_adaptive(false),
    );
    let reg0 = smr.register(0);
    let reg1 = smr.register(1);
    smr.begin_op(1); // stalled reader: every pass barren
    for i in 0..32 * 16 {
        smr.begin_op(0);
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
        smr.end_op(0);
    }
    let s = smr.stats().snapshot();
    assert_eq!(s.epoch_decay_steps, 0, "no decay when adaptive is off");
    assert_eq!(s.bin_resizes, 0, "no resizes when adaptive is off");
    assert_eq!(s.epoch_passes, 16, "every trigger runs a full pass");
    smr.end_op(1);
    smr.flush(0);
    assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
    drop(reg1);
    drop(reg0);
}
