//! Chaos harness: the cross-scheme lifecycle under seeded fault plans, plus
//! the panic-during-op matrix.
//!
//! Three failure families drive the resilience machinery end to end:
//!
//! * **lost/spurious futex wakes** — publish waiters must ride their
//!   timeout backstops and the pass watchdog, never wedge;
//! * **dropped/delayed pings** — a publish that never happens must expire
//!   the `publish_deadline` watchdog, mark the laggard suspect (its local
//!   reservations honored conservatively), and complete the pass;
//! * **a killed writer** — a thread that dies mid-operation without
//!   unregistering must be probed dead, reaped, and its retire blocks
//!   freed by the survivors.
//!
//! Every trial runs under a hard wall-clock deadline (a wedged
//! `ping_all_and_wait` fails the test instead of hanging CI), with the
//! quarantine use-after-free oracle armed — "conservative" must never
//! mean "freed something a reader could still reach".
//!
//! The fault-plan tests need `--features fault-injection`; the
//! panic-during-op matrix runs in every configuration (unwinding is not a
//! fault we inject, it is one Rust hands us for free).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::runtime::faults;
#[cfg(feature = "fault-injection")]
use pop::runtime::faults::{FaultPlan, FaultSite};
use pop::smr::{
    retire_node, Ebr, EpochPop, HasHeader, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym,
    HazardPtrPop, Header, Hyaline, Ibr, NbrPlus, NoReclaim, OpGuard, PressureRung, Smr, SmrConfig,
    Vbr,
};

const WORKERS: usize = 3;
const KEYS: u64 = 64;

/// Serializes tests in this binary around the process-global fault plan
/// (feature-on); a no-op guard otherwise.
fn plan_lock() -> Option<std::sync::MutexGuard<'static, ()>> {
    #[cfg(feature = "fault-injection")]
    return Some(faults::test_lock());
    #[cfg(not(feature = "fault-injection"))]
    None
}

/// Runs `f` on its own thread and panics if it exceeds `deadline` — the
/// harness-level "no deadlock" assertion for every chaos trial.
fn with_deadline<T: Send + 'static>(
    name: &'static str,
    deadline: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let h = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(deadline) {
        Ok(v) => {
            h.join().expect("trial thread panicked after reporting");
            v
        }
        Err(_) => panic!("{name}: trial exceeded {deadline:?} — a wait path is wedged"),
    }
}

/// Churn config shared by every trial: small thresholds so reclamation
/// passes are frequent, a short pass watchdog so injected stalls cost
/// milliseconds not seconds, and the quarantine oracle armed throughout.
fn chaos_cfg() -> SmrConfig {
    SmrConfig::for_tests(WORKERS + 1)
        .with_reclaim_freq(64)
        // Exhaust the publish spin budget almost immediately so waits
        // actually park — the futex fault sites are dead code otherwise.
        .with_publish_spin(2)
        .with_publish_deadline_ns(20_000_000)
        .with_quarantine()
}

/// The lifecycle body: `WORKERS` writers churn a Harris-Michael list (with
/// `die_mid_op`, each polls the cooperative thread-death trigger and on a
/// hit abandons its registration inside an operation), then the main
/// thread registers the spare tid and drains. Returns the domain so the
/// caller can assert on counters.
#[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
fn churn_lifecycle<S: Smr>(ops_per_worker: u64, die_mid_op: bool) -> Arc<S> {
    let smr = S::new(chaos_cfg());
    let map = Arc::new(HmList::with_domain(Arc::clone(&smr)));
    let handles: Vec<_> = (0..WORKERS)
        .map(|tid| {
            let map = Arc::clone(&map);
            let smr = Arc::clone(&smr);
            std::thread::spawn(move || {
                let reg = smr.register(tid);
                let mut k = tid as u64;
                for _ in 0..ops_per_worker {
                    if die_mid_op && faults::should_die() {
                        // Die the worst way possible: inside an operation,
                        // holding a (null) protection, without
                        // unregistering — the registry keeps a registered
                        // slot pointing at a kernel thread that is gone.
                        let dummy = AtomicPtr::new(core::ptr::null_mut::<u8>());
                        smr.begin_op(tid);
                        let _ = smr.protect(tid, 0, &dummy);
                        std::mem::forget(reg);
                        return;
                    }
                    map.insert(tid, k % KEYS, k);
                    map.remove(tid, k % KEYS);
                    k = k.wrapping_add(7);
                }
                drop(reg);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Survivor-side drain on the spare tid. With a killed writer, keep
    // flushing until the corpse is actually reaped, not just until the
    // accounted garbage hits zero — the dead slot's unsealed retires are
    // invisible to `unreclaimed_nodes` until a pass seals them, and under
    // load the whole churn can finish before a single watchdog expiry had
    // the chance to flag the death. The loop bound keeps a genuine leak
    // (or a never-engaging reaper) a clean failure.
    let reg = smr.register(WORKERS);
    for _ in 0..200 {
        smr.flush(WORKERS);
        let s = smr.stats().snapshot();
        if s.unreclaimed_nodes() == 0 && (!die_mid_op || s.participants_reaped >= 1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(reg);
    smr
}

/// Counter sanity shared by every trial: frees never exceed retires, and
/// retires never exceed allocations (conservation — a fault plan must not
/// make nodes double-free or materialize from nowhere).
fn assert_conservation<S: Smr>(smr: &S) {
    let s = smr.stats().snapshot();
    assert!(
        s.freed_nodes <= s.retired_nodes,
        "freed {} > retired {}",
        s.freed_nodes,
        s.retired_nodes
    );
    assert!(
        s.retired_nodes <= s.allocated_nodes,
        "retired {} > allocated {}",
        s.retired_nodes,
        s.allocated_nodes
    );
}

// ---------------------------------------------------------------------
// Seeded fault plans (feature-gated: the sites are no-ops otherwise).
// ---------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
fn run_plan_trial<S: Smr>(name: &'static str, plan: FaultPlan) {
    let _g = plan_lock();
    faults::install(plan);
    let smr = with_deadline(name, Duration::from_secs(60), || {
        // Every armed site is only reachable from a reclamation pass that
        // actually pings / waits, and a lucky run can sail through with
        // all peers quiescent at every pass. Rerun the lifecycle (fresh
        // domain, cumulative injection counters) until the plan has
        // provably bitten at least once.
        let mut smr = churn_lifecycle::<S>(2_000, false);
        for _ in 0..9 {
            if faults::injected_total() > 0 {
                break;
            }
            smr = churn_lifecycle::<S>(2_000, false);
        }
        smr
    });
    assert!(
        faults::injected_total() > 0,
        "{name}: the plan never fired — the trial tested nothing"
    );
    faults::clear();
    // With the plan disarmed the domain must drain completely: everything
    // a conservative pass kept was garbage deferred, not garbage lost.
    let reg = smr.register(0);
    smr.flush(0);
    drop(reg);
    assert_eq!(
        smr.stats().snapshot().unreclaimed_nodes(),
        0,
        "{name}: domain must drain once faults stop"
    );
    assert_conservation(&*smr);
}

#[cfg(feature = "fault-injection")]
fn lost_wake_plan() -> FaultPlan {
    // The futex sites are only checked when a publish wait actually parks;
    // a scheme whose publishes land within the spin budget would never
    // reach them. The delayed publish is the stall-maker: it outlasts the
    // spin budget, forcing waiters onto the futex where the lost/spurious
    // wakes bite.
    FaultPlan {
        seed: 11,
        ..Default::default()
    }
    .with_rate(FaultSite::PublishDelay, 3)
    .with_rate(FaultSite::FutexLostWake, 2)
    .with_rate(FaultSite::FutexSpuriousWake, 4)
}

#[cfg(feature = "fault-injection")]
fn dropped_ping_plan() -> FaultPlan {
    FaultPlan {
        seed: 23,
        ..Default::default()
    }
    .with_rate(FaultSite::SignalDrop, 4)
    .with_rate(FaultSite::SignalDelay, 8)
    .with_rate(FaultSite::PublishDelay, 8)
}

#[cfg(feature = "fault-injection")]
macro_rules! plan_trials {
    ($($scheme:ident),+ $(,)?) => {
        mod lost_wake {
            use super::*;
            $(
                #[test]
                #[allow(non_snake_case)]
                fn $scheme() {
                    run_plan_trial::<$scheme>(
                        concat!("lost_wake/", stringify!($scheme)),
                        lost_wake_plan(),
                    );
                }
            )+
        }
        mod dropped_ping {
            use super::*;
            $(
                #[test]
                #[allow(non_snake_case)]
                fn $scheme() {
                    run_plan_trial::<$scheme>(
                        concat!("dropped_ping/", stringify!($scheme)),
                        dropped_ping_plan(),
                    );
                }
            )+
        }
    };
}

#[cfg(feature = "fault-injection")]
plan_trials!(HazardPtrPop, HazardEraPop, EpochPop, NbrPlus);

#[cfg(feature = "fault-injection")]
fn run_killed_writer_trial<S: Smr>(name: &'static str) {
    let _g = plan_lock();
    // One worker dies on its 25th between-ops poll — early enough that
    // plenty of churn (and many reclamation passes) follow the death.
    faults::install(FaultPlan::default().with_one_shot(FaultSite::ThreadDeath, 25));
    let smr = with_deadline(name, Duration::from_secs(60), || {
        churn_lifecycle::<S>(4_000, true)
    });
    assert_eq!(
        faults::injected(FaultSite::ThreadDeath),
        1,
        "{name}: exactly one worker must have been killed"
    );
    faults::clear();
    let s = smr.stats().snapshot();
    assert!(
        s.participants_reaped >= 1,
        "{name}: the dead participant must be reaped: {s:?}"
    );
    // Under the membarrier publish mode there are no per-peer waits, so no
    // watchdog expiries: death detection rides the periodic registry probe
    // instead, and `participants_reaped` above is the whole contract.
    let membarrier =
        chaos_cfg().resolved_publish_mode() == pop::smr::config::PublishMode::Membarrier;
    if !membarrier {
        assert!(
            s.publish_wait_timeouts >= 1,
            "{name}: death detection rides the pass watchdog: {s:?}"
        );
    }
    assert_eq!(
        s.unreclaimed_nodes(),
        0,
        "{name}: survivors must free the reaped thread's retire blocks"
    );
    assert_conservation(&*smr);
}

#[cfg(feature = "fault-injection")]
mod killed_writer {
    use super::*;

    #[test]
    fn hazard_ptr_pop() {
        run_killed_writer_trial::<HazardPtrPop>("killed_writer/HazardPtrPop");
    }

    #[test]
    fn hazard_era_pop() {
        run_killed_writer_trial::<HazardEraPop>("killed_writer/HazardEraPop");
    }

    #[test]
    fn epoch_pop() {
        run_killed_writer_trial::<EpochPop>("killed_writer/EpochPop");
    }

    #[test]
    fn nbr_plus() {
        run_killed_writer_trial::<NbrPlus>("killed_writer/NbrPlus");
    }
}

// ---------------------------------------------------------------------
// Panic-during-op matrix (runs with or without fault injection).
// ---------------------------------------------------------------------

/// A writer panics while inside an [`OpGuard`] bracket; the unwind must run
/// the operation epilogue (guard drop) and the registration teardown, so
/// surviving threads' reclamation never waits on the abandoned operation
/// and the panicker's partial fill bins are orphaned, not leaked.
fn run_panic_mid_op_trial<S: Smr>(name: &'static str) {
    let _g = plan_lock();
    faults::install(Default::default()); // disarm any leftover plan
    let smr = S::new(chaos_cfg());
    let map = Arc::new(HmList::with_domain(Arc::clone(&smr)));

    // Phase 1: the writer panics mid-op with the registration still held —
    // both unwind through their Drop impls (guard first, registration
    // last, mirroring construction order).
    let panicker = std::thread::spawn({
        let map = Arc::clone(&map);
        let smr = Arc::clone(&smr);
        move || {
            let _reg = smr.register(1);
            let mut k = 1u64;
            for _ in 0..500 {
                map.insert(1, k % KEYS, k);
                map.remove(1, k % KEYS);
                k = k.wrapping_add(7);
            }
            let _op = OpGuard::enter(&*smr, 1);
            panic!("injected: writer dies mid-operation");
        }
    });
    assert!(
        panicker.join().is_err(),
        "{name}: the writer must have panicked"
    );

    // Phase 2: a survivor churns and drains under a deadline — if the
    // abandoned op had leaked its bracket, signal-based schemes would
    // wait on tid 1 forever.
    let trial = with_deadline(name, Duration::from_secs(30), move || {
        let reg = smr.register(0);
        let mut k = 0u64;
        for _ in 0..2_000 {
            map.insert(0, k % KEYS, k);
            map.remove(0, k % KEYS);
            k = k.wrapping_add(7);
        }
        smr.flush(0);
        drop(reg);
        smr
    });
    let s = trial.stats().snapshot();
    if S::NAME == NoReclaim::NAME {
        // NR's whole point is the leak: unwinding must not make it free.
        assert_eq!(s.freed_nodes, 0, "{name}: NR must never free");
    } else {
        assert_eq!(
            s.unreclaimed_nodes(),
            0,
            "{name}: panicker's retires must be reclaimed, not leaked"
        );
    }
    assert_conservation(&*trial);
}

/// Same shape, but the panic is caught in-thread (a worker that recovers):
/// after `catch_unwind` the thread must be able to keep using its
/// registration — the guard restored the scheme to a quiescent state.
fn run_panic_recover_trial<S: Smr>(name: &'static str) {
    let _g = plan_lock();
    faults::install(Default::default());
    let smr = S::new(chaos_cfg());
    let map = Arc::new(HmList::with_domain(Arc::clone(&smr)));
    let reg = smr.register(0);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let _op = OpGuard::enter(&*smr, 0);
        panic!("injected: recoverable mid-op panic");
    }));
    assert!(caught.is_err());
    // The same tid keeps working after recovery.
    let mut k = 0u64;
    for _ in 0..1_000 {
        map.insert(0, k % KEYS, k);
        map.remove(0, k % KEYS);
        k = k.wrapping_add(7);
    }
    smr.flush(0);
    drop(reg);
    let s = smr.stats().snapshot();
    if S::NAME == NoReclaim::NAME {
        assert_eq!(s.freed_nodes, 0, "{name}: NR must never free");
    } else {
        assert_eq!(
            s.unreclaimed_nodes(),
            0,
            "{name}: recovered thread must drain its own garbage"
        );
    }
    assert_conservation(&*smr);
}

macro_rules! panic_matrix {
    ($($scheme:ident),+ $(,)?) => {
        mod panic_mid_op {
            use super::*;
            $(
                #[test]
                #[allow(non_snake_case)]
                fn $scheme() {
                    run_panic_mid_op_trial::<$scheme>(
                        concat!("panic_mid_op/", stringify!($scheme)),
                    );
                }
            )+
        }
        mod panic_recover {
            use super::*;
            $(
                #[test]
                #[allow(non_snake_case)]
                fn $scheme() {
                    run_panic_recover_trial::<$scheme>(
                        concat!("panic_recover/", stringify!($scheme)),
                    );
                }
            )+
        }
    };
}

panic_matrix!(
    HazardPtrPop,
    HazardEraPop,
    EpochPop,
    HazardPtrAsym,
    NbrPlus,
    Ebr,
    HazardPtr,
    HazardEra,
    Ibr,
    Hyaline,
    NoReclaim,
    Vbr,
);

// ---------------------------------------------------------------------
// Stalled-reader pressure ladder (epoch/era schemes). Runs in every
// configuration: the stall is a real reader parked inside an operation,
// not an injected fault.
// ---------------------------------------------------------------------

/// Raw node for the direct-retire pressure trial — the map-based churn
/// cannot control birth eras precisely enough to build a backlog that is
/// *provably* pinned by one reader.
#[repr(C)]
struct PNode {
    hdr: Header,
    _v: u64,
}
unsafe impl HasHeader for PNode {}

fn alloc_node<S: Smr>(smr: &S, tid: usize, v: u64) -> *mut PNode {
    smr.note_alloc(tid, core::mem::size_of::<PNode>());
    Box::into_raw(Box::new(PNode {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<PNode>()),
        _v: v,
    }))
}

/// The bounded-garbage acceptance trial. One reader pins the current
/// epoch/era and stalls; the writer retires a backlog born before the pin
/// (so its lifespans intersect the pinned era no matter how far the clock
/// advances) and keeps churning. The gauge must climb the whole ladder
/// (soft → hard → emergency trips), the emergency rung must park the
/// pinned blocks in quarantine — keeping the *actionable* count below the
/// emergency watermark while the stall persists — and the entire backlog
/// must drain within one pass of the stall clearing.
fn run_stalled_reader_pressure_trial<S: Smr>(name: &'static str) {
    let _g = plan_lock();
    faults::install(Default::default());
    let (mid, mid_count, mid_quar, wm, fin, fin_count, fin_quar, fin_rung) =
        with_deadline(name, Duration::from_secs(60), move || {
            let smr = S::new(
                SmrConfig::for_tests(2)
                    .with_reclaim_freq(16)
                    .with_retire_bins(1)
                    .with_pressure_watermarks(64, 96, 128)
                    // Park EpochPOP's native pointer-mode escalation above
                    // the emergency watermark: this trial measures the
                    // ladder, and the quarantine keeps the list below the
                    // 16 × 16 POP threshold once it engages.
                    .with_pop_c(16)
                    .with_quarantine(),
            );
            let reg0 = smr.register(0);
            // Born before the reader pins: pinned for the whole stall.
            let victims: Vec<*mut PNode> = (0..600).map(|i| alloc_node(&*smr, 0, i)).collect();
            let hot = alloc_node(&*smr, 0, u64::MAX);
            let src = Arc::new(AtomicPtr::new(hot));
            let hold = Arc::new(AtomicBool::new(true));
            let (tx, rx) = mpsc::channel();
            let reader = std::thread::spawn({
                let smr = Arc::clone(&smr);
                let src = Arc::clone(&src);
                let hold = Arc::clone(&hold);
                move || {
                    let reg1 = smr.register(1);
                    smr.begin_op(1);
                    let _ = smr.protect(1, 0, &src);
                    tx.send(()).unwrap();
                    while hold.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    smr.end_op(1);
                    drop(reg1);
                }
            });
            rx.recv().unwrap();
            // Retire the pinned backlog, then churn fresh nodes so passes
            // keep coming and the stall tracker keeps observing.
            for p in victims {
                unsafe { retire_node(&*smr, 0, p) };
            }
            for i in 0..400u64 {
                let p = alloc_node(&*smr, 0, i);
                unsafe { retire_node(&*smr, 0, p) };
            }
            smr.flush(0);
            let g = smr.stats().pressure();
            let mid = smr.stats().snapshot();
            let (mid_count, mid_quar, wm) = (g.count(), g.quarantined(), g.emergency_watermark());
            // Clear the stall: the reader leaves its op and unregisters.
            hold.store(false, Ordering::Release);
            reader.join().unwrap();
            src.store(core::ptr::null_mut(), Ordering::SeqCst);
            unsafe { retire_node(&*smr, 0, hot) };
            // One pass: released quarantine blocks rejoin the caller's
            // list and the same sweep re-filters (now against no
            // reservations at all) and frees.
            smr.flush(0);
            let fin = smr.stats().snapshot();
            let (fin_count, fin_quar, fin_rung) = (g.count(), g.quarantined(), g.rung());
            drop(reg0);
            (
                mid, mid_count, mid_quar, wm, fin, fin_count, fin_quar, fin_rung,
            )
        });
    assert!(
        mid.pressure_soft_trips >= 1 && mid.pressure_hard_trips >= 1,
        "{name}: the backlog must climb through soft and hard: {mid:?}"
    );
    assert!(
        mid.pressure_emergency_trips >= 1,
        "{name}: the emergency watermark must trip: {mid:?}"
    );
    assert!(
        mid.blocks_quarantined >= 1 && mid_quar > 0,
        "{name}: the emergency rung must park pinned blocks: {mid:?}"
    );
    assert!(
        mid.unreclaimed_nodes() > 0,
        "{name}: the pinned backlog must be parked, never freed under a live stall"
    );
    assert!(
        mid_count < wm,
        "{name}: actionable garbage ({mid_count}) must stay below the emergency \
         watermark ({wm}) while quarantine absorbs the pinned backlog"
    );
    assert_eq!(
        fin.unreclaimed_nodes(),
        0,
        "{name}: everything drains within one pass of the stall clearing"
    );
    assert_eq!(
        fin.blocks_unquarantined, fin.blocks_quarantined,
        "{name}: every parked block must be released"
    );
    assert_eq!(
        (fin_count, fin_quar),
        (0, 0),
        "{name}: the gauge drains to zero"
    );
    assert_eq!(
        fin_rung,
        PressureRung::Normal,
        "{name}: the rung settles back to Normal"
    );
    assert!(
        fin.freed_nodes <= fin.retired_nodes && fin.retired_nodes <= fin.allocated_nodes,
        "{name}: conservation violated: {fin:?}"
    );
}

macro_rules! pressure_trials {
    ($($scheme:ident),+ $(,)?) => {
        mod stalled_reader_pressure {
            use super::*;
            $(
                #[test]
                #[allow(non_snake_case)]
                fn $scheme() {
                    run_stalled_reader_pressure_trial::<$scheme>(
                        concat!("stalled_reader_pressure/", stringify!($scheme)),
                    );
                }
            )+
        }
    };
}

pressure_trials!(Ebr, EpochPop, Ibr, HazardEra, HazardEraPop);

/// ISSUE 10 satellite: VBR's quarantine rung is a **documented no-op**.
/// The scheme's sweep plan has no `Quarantine` arm by construction — a
/// stalled reader's stale announcement pins garbage only until the
/// reader's next read (which version-aborts and re-announces) or its exit,
/// so there is no per-block blocker to park against. The pressure ladder
/// still climbs (soft → hard → emergency trips fire), but `blocks_quarantined`
/// must stay zero under a live stall, and the whole backlog must drain
/// within one pass of the stall clearing.
#[test]
fn vbr_quarantine_rung_is_a_no_op() {
    let _g = plan_lock();
    faults::install(Default::default());
    with_deadline("vbr_quarantine_no_op", Duration::from_secs(60), || {
        let smr = Vbr::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(16)
                .with_retire_bins(1)
                .with_pressure_watermarks(64, 96, 128)
                .with_quarantine(),
        );
        let reg0 = smr.register(0);
        let hot = alloc_node(&*smr, 0, u64::MAX);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                smr.begin_op(1);
                let _ = smr.protect(1, 0, &src);
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                smr.end_op(1);
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        // Churn a backlog the parked announcement pins: every retire era
        // is >= the version the reader announced, so no sweep may free it
        // while the reader sits in-op.
        for i in 0..2_000u64 {
            let p = alloc_node(&*smr, 0, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let mid = smr.stats().snapshot();
        assert!(
            mid.pressure_emergency_trips >= 1,
            "the ladder must reach the emergency rung: {mid:?}"
        );
        assert_eq!(
            mid.blocks_quarantined, 0,
            "VBR's quarantine rung is a no-op by construction: {mid:?}"
        );
        assert!(
            mid.unreclaimed_nodes() > 0,
            "the stalled announcement must pin the backlog: {mid:?}"
        );
        // Clear the stall: the reader's exit goes quiescent and unpins
        // everything — one forced pass drains the whole backlog.
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        smr.flush(0);
        let fin = smr.stats().snapshot();
        assert_eq!(
            fin.unreclaimed_nodes(),
            0,
            "everything drains within one pass of the stall clearing: {fin:?}"
        );
        assert_eq!(
            fin.blocks_quarantined, 0,
            "no block was ever parked: {fin:?}"
        );
        drop(reg0);
    });
}
