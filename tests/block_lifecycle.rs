//! The sealed-block lifecycle, end to end, for every reclamation scheme:
//! fill → seal → orphan (a thread dies with pinned garbage) → adopt /
//! steal (block-granular, sort caches intact) → sweep.
//!
//! Two invariant families are pinned down (ISSUE 4):
//!
//! * **Node conservation** — every allocated node is eventually freed,
//!   still live, or (for NR) deliberately leaked: nothing is lost across
//!   the orphan detour, and nothing is double-counted
//!   (`retired == allocated`, `orphans_adopted + orphans_stolen` never
//!   exceeds what was parked).
//! * **Whole-block accounting** — once the pin clears, the drain sweeps
//!   free the parked blocks *whole* (`blocks_freed_whole` advances): the
//!   blocks arrived with their summaries, so the range test decides them
//!   without touching a record — the property that makes block-granular
//!   orphan parking worth having.

use std::sync::atomic::AtomicPtr;
use std::sync::Arc;

use pop::smr::{
    alloc_node, as_header, protect_infallible, retire_node, Ebr, EpochPop, HasHeader, HazardEra,
    HazardEraPop, HazardPtr, HazardPtrAsym, HazardPtrPop, Header, Hyaline, Ibr, NbrPlus, NoReclaim,
    Smr, SmrConfig, Vbr,
};

#[repr(C)]
struct Node {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for Node {}

fn alloc<S: Smr>(smr: &S, tid: usize, v: u64) -> *mut Node {
    alloc_node(
        smr,
        tid,
        Node {
            hdr: Header::new(smr.current_era(), core::mem::size_of::<Node>()),
            v,
        },
    )
}

/// What the scheme is expected to do with garbage a dead thread left
/// behind.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Frees everything once the pin clears; the pinned remainder travels
    /// through the domain orphan list.
    ReclaimsViaOrphans,
    /// Frees everything, but settles through its own channel (Hyaline's
    /// refcounted global batches) — the orphan list stays empty.
    ReclaimsNoOrphans,
    /// Leaks by design (NR).
    Leaks,
}

const FILLER: u64 = 299; // + 1 pinned hot node = 300 retires

fn lifecycle<S: Smr>(expect: Expect) {
    let smr = S::new(SmrConfig::for_tests(3).with_reclaim_freq(1 << 16));

    // The thief: registered *before* any orphan exists, so nothing is
    // handed to it at registration — anything it later reclaims from the
    // orphan list was stolen by a sweep.
    let thief = smr.register(2);

    // The pinned node, shared with the pinner thread.
    let reg0 = smr.register(0);
    let hot = alloc(&*smr, 0, u64::MAX);
    let src = Arc::new(AtomicPtr::new(hot));

    // The pinner: holds `hot` across thread 0's death. `protect` pins it
    // for reservation-based schemes, the open op bracket pins for
    // epoch-based ones, and the `begin_write` reservation pins for NBR.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let pinner = std::thread::spawn({
        let smr = Arc::clone(&smr);
        let src = Arc::clone(&src);
        move || {
            let reg1 = smr.register(1);
            loop {
                smr.begin_op(1);
                let p = protect_infallible(&*smr, 1, 0, &src);
                if smr.begin_write(1, &[as_header(p)]).is_ok() {
                    break;
                }
                smr.end_op(1); // raced a neutralization: restart
            }
            ready_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            smr.end_write(1);
            smr.end_op(1);
            drop(reg1);
        }
    });
    ready_rx.recv().unwrap();

    // Fill: thread 0 retires the hot node plus filler, then dies. Its
    // unregister seals every partial fill bin (nothing may stay
    // unsealed), reclaims what it can, and parks the pinned remainder on
    // the orphan list as whole sealed blocks.
    smr.begin_op(0);
    smr.begin_write(0, &[])
        .expect("no restart: nothing pings tid 0");
    unsafe { retire_node(&*smr, 0, hot) };
    for i in 0..FILLER {
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
    }
    smr.end_write(0);
    smr.end_op(0);
    drop(reg0);

    let total = FILLER + 1;
    let s = smr.stats().snapshot();
    assert_eq!(s.allocated_nodes, total);
    assert_eq!(
        s.retired_nodes, total,
        "unregister must seal every partial bin — no node parked unsealed"
    );
    assert!(
        s.blocks_sealed_monotone <= s.batches_sealed,
        "monotone share is a subset of sealed blocks: {s:?}"
    );
    match expect {
        Expect::ReclaimsViaOrphans => assert!(
            s.unreclaimed_nodes() >= 1,
            "the pinned node must survive thread 0's death: {s:?}"
        ),
        Expect::ReclaimsNoOrphans => {}
        Expect::Leaks => {
            assert_eq!(s.freed_nodes, 0, "NR never frees");
        }
    }

    // Baseline before the pin clears: everything freed from here on —
    // the parked remainder — must go through the whole-block fast path.
    let freed_whole_before = s.blocks_freed_whole;

    // Release the pin; drain through adoption (a fresh registration) and
    // reclaimer-side stealing (sweeps — the pinner's own unregister flush
    // may already steal the chunk).
    release_tx.send(()).unwrap();
    pinner.join().unwrap();

    let adopter = smr.register(0);
    let mut passes = 0;
    while smr.stats().snapshot().unreclaimed_nodes() > 0 && passes < 32 {
        smr.flush(0);
        smr.flush(2);
        passes += 1;
    }
    drop(adopter);
    drop(thief);

    let s = smr.stats().snapshot();
    assert_eq!(s.retired_nodes, total, "nothing is ever re-counted");
    match expect {
        Expect::Leaks => {
            assert_eq!(s.freed_nodes, 0);
            assert_eq!(
                s.unreclaimed_nodes(),
                total,
                "conservation: allocated = leaked for NR"
            );
        }
        _ => {
            assert_eq!(
                s.freed_nodes, total,
                "conservation: allocated = freed once the pin cleared \
                 (drained in {passes} passes): {s:?}"
            );
            assert_eq!(s.unreclaimed_nodes(), 0);
        }
    }
    // Slab-granular conservation (PR 10): with the owned arenas on, every
    // node of this test fits a slab class, so the allocation side must be
    // fully slab-backed — and reclamation must hand the slots back (the
    // per-node frees above already balanced `allocated == freed`; the slab
    // bit guarantees they went to their slab, not the global allocator).
    if smr.config().slab_alloc {
        assert_eq!(
            s.slab_allocs, total,
            "owned arenas on: every allocation takes the slab path: {s:?}"
        );
    }
    match expect {
        Expect::ReclaimsViaOrphans => {
            assert!(
                s.orphans_adopted + s.orphans_stolen >= 1,
                "the pinned remainder must travel through the orphan list: {s:?}"
            );
            assert!(
                s.blocks_freed_whole > freed_whole_before,
                "parked blocks must be freed whole from their surviving \
                 summaries (range-test hit), not record by record: {s:?}"
            );
            // One thread's bump fills stay confined to single slabs, so
            // whole-block frees must settle against their slab in one
            // batched range test — the owned-arena fast path.
            if smr.config().slab_alloc {
                assert!(
                    s.slab_frees_whole >= 1,
                    "slab-backed blocks freed whole must settle against \
                     their slab: {s:?}"
                );
            }
        }
        Expect::ReclaimsNoOrphans => {
            assert_eq!(
                s.orphans_adopted + s.orphans_stolen,
                0,
                "Hyaline settles through refcounted batches, not orphans"
            );
        }
        Expect::Leaks => {
            assert_eq!(s.orphans_adopted + s.orphans_stolen, 0);
        }
    }
}

/// ISSUE 10 satellite: with the owned slab arenas on, **interleaved
/// multi-thread fills** still seal address-monotone blocks. Each thread
/// bump-allocates from its own active slab, so concurrent allocation never
/// perturbs per-thread address order — the monotone sealed-block share
/// must hold at ≥ 0.95 (the only legal breaks are slab-boundary
/// crossings, one block in ~30 at worst).
#[test]
fn slab_fills_seal_monotone_blocks_across_threads() {
    const THREADS: usize = 3;
    const PER_THREAD: u64 = 3_000;
    let smr = Ebr::new(SmrConfig::for_tests(THREADS + 1).with_reclaim_freq(1 << 20));
    if !smr.config().slab_alloc {
        return; // POP_SLAB=0 fallback leg: the floor is a slab property
    }
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let smr = Arc::clone(&smr);
            std::thread::spawn(move || {
                let reg = smr.register(tid);
                for i in 0..PER_THREAD {
                    let p = alloc(&*smr, tid, i);
                    unsafe { retire_node(&*smr, tid, p) };
                }
                drop(reg); // seals every partial fill bin
            })
        })
        .collect();
    for h in handles {
        h.join().expect("fill worker panicked");
    }
    let s = smr.stats().snapshot();
    assert!(s.batches_sealed > 0, "fills must seal blocks: {s:?}");
    let share = s.blocks_sealed_monotone as f64 / s.batches_sealed as f64;
    assert!(
        share >= 0.95,
        "monotone share {share:.3} below the owned-arena floor \
         ({}/{} blocks): {s:?}",
        s.blocks_sealed_monotone,
        s.batches_sealed
    );
    // Drain the orphaned lists so the test conserves every node.
    let reg = smr.register(THREADS);
    let mut passes = 0;
    while smr.stats().snapshot().unreclaimed_nodes() > 0 && passes < 64 {
        smr.flush(THREADS);
        passes += 1;
    }
    assert_eq!(
        smr.stats().snapshot().unreclaimed_nodes(),
        0,
        "drain within {passes} passes"
    );
    drop(reg);
}

macro_rules! lifecycle_tests {
    ($($name:ident : $scheme:ty => $expect:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                lifecycle::<$scheme>($expect);
            }
        )+
    };
}

lifecycle_tests! {
    nr: NoReclaim => Expect::Leaks,
    ebr: Ebr => Expect::ReclaimsViaOrphans,
    ibr: Ibr => Expect::ReclaimsViaOrphans,
    hp: HazardPtr => Expect::ReclaimsViaOrphans,
    hp_asym: HazardPtrAsym => Expect::ReclaimsViaOrphans,
    he: HazardEra => Expect::ReclaimsViaOrphans,
    nbr_plus: NbrPlus => Expect::ReclaimsViaOrphans,
    hazard_ptr_pop: HazardPtrPop => Expect::ReclaimsViaOrphans,
    hazard_era_pop: HazardEraPop => Expect::ReclaimsViaOrphans,
    epoch_pop: EpochPop => Expect::ReclaimsViaOrphans,
    hyaline: Hyaline => Expect::ReclaimsNoOrphans,
    vbr: Vbr => Expect::ReclaimsViaOrphans,
}
