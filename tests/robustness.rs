//! The paper's robustness properties, end to end through a data structure.
//!
//! Property 3 (HazardPtrPOP) / Property 5 (EpochPOP): with a stalled
//! reader, unreclaimed garbage stays below `threshold(+C) + N × H`.
//! EBR, by contrast, accumulates garbage proportional to the work done
//! while the reader is stalled (§2.2.2) — asserted here as the *absence*
//! of a bound, so the comparison is meaningful.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::smr::{Ebr, EpochPop, HazardEraPop, HazardPtrPop, Smr, SmrConfig};

const CHURN_OPS: u64 = 30_000;
const KEYS: u64 = 512;

/// Runs writers while one reader sits inside an operation holding a
/// protected pointer; returns final unreclaimed nodes and the config.
fn stalled_garbage<S: Smr>(reclaim_freq: usize) -> (u64, SmrConfig) {
    let cfg = SmrConfig::for_tests(3).with_reclaim_freq(reclaim_freq);
    let smr = S::new(cfg.clone());
    let set = Arc::new(HmList::new(Arc::clone(&smr)));
    let hold = Arc::new(AtomicBool::new(true));
    let (ready_tx, ready_rx) = mpsc::channel();

    // Seed a key so the reader has something to protect.
    {
        let reg = smr.register(2);
        set.insert(2, 0, 0);
        drop(reg);
    }

    let reader = {
        let set = Arc::clone(&set);
        let smr = Arc::clone(&smr);
        let hold = Arc::clone(&hold);
        std::thread::spawn(move || {
            let reg = smr.register(2);
            // Enter an operation and keep a live protection (mimics a
            // reader preempted mid-traversal).
            smr.begin_op(2);
            let _ = set.contains(2, 0);
            // contains() ended its op; re-enter and stall for real.
            smr.begin_op(2);
            ready_tx.send(()).unwrap();
            while hold.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            smr.end_op(2);
            drop(reg);
        })
    };
    ready_rx.recv().unwrap();

    let writers: Vec<_> = (0..2)
        .map(|tid| {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                let _reg = set.smr().register(tid);
                let mut k = 1 + tid as u64;
                for _ in 0..CHURN_OPS {
                    set.insert(tid, k % KEYS, k);
                    set.remove(tid, k % KEYS);
                    k = k.wrapping_add(7);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let garbage = smr.stats().snapshot().unreclaimed_nodes();
    hold.store(false, Ordering::Release);
    reader.join().unwrap();
    (garbage, cfg)
}

#[test]
fn ebr_garbage_grows_with_stalled_reader() {
    let (garbage, cfg) = stalled_garbage::<Ebr>(128);
    // The stalled reader pins the epoch: essentially everything retired
    // after the stall remains unreclaimed. A loose lower bound suffices.
    assert!(
        garbage as usize > 10 * cfg.reclaim_freq,
        "expected unbounded-ish EBR garbage, got {garbage}"
    );
}

#[test]
fn hazard_ptr_pop_bounded_despite_stall() {
    let (garbage, cfg) = stalled_garbage::<HazardPtrPop>(128);
    let bound = cfg.reclaim_freq + cfg.max_threads * cfg.slots;
    assert!(
        (garbage as usize) <= bound,
        "HazardPtrPOP garbage {garbage} exceeds Property 3 bound {bound}"
    );
}

#[test]
fn hazard_era_pop_bounded_despite_stall() {
    let (garbage, cfg) = stalled_garbage::<HazardEraPop>(128);
    // Era reservations can pin whole eras; the quiescent-but-stalled
    // reader holds no era here (it ended its traversal), so the list
    // bound applies with slack for era granularity.
    let bound = 2 * (cfg.reclaim_freq + cfg.max_threads * cfg.slots);
    assert!(
        (garbage as usize) <= bound,
        "HazardEraPOP garbage {garbage} exceeds bound {bound}"
    );
}

#[test]
fn epoch_pop_bounded_despite_stall() {
    let (garbage, cfg) = stalled_garbage::<EpochPop>(128);
    let bound = cfg.pop_c * cfg.reclaim_freq + cfg.max_threads * cfg.slots;
    assert!(
        (garbage as usize) <= bound,
        "EpochPOP garbage {garbage} exceeds Property 5 bound {bound}"
    );
}

#[test]
fn epoch_pop_drains_after_stall_clears() {
    let cfg = SmrConfig::for_tests(2).with_reclaim_freq(64);
    let smr = EpochPop::new(cfg);
    let set = HmList::new(Arc::clone(&smr));
    let reg = smr.register(0);
    for k in 0..500u64 {
        set.insert(0, k % KEYS, k);
        set.remove(0, k % KEYS);
    }
    smr.flush(0);
    assert_eq!(
        smr.stats().snapshot().unreclaimed_nodes(),
        0,
        "quiescent domain must drain completely"
    );
    drop(reg);
}
