//! Stack and queue under every reclamation scheme: value conservation
//! (nothing lost, nothing duplicated) across concurrent producers and
//! consumers — the classic ABA/use-after-free trap SMR must prevent.

use std::collections::HashSet;
use std::sync::Arc;

use pop::ds::ms_queue::MsQueue;
use pop::ds::treiber_stack::TreiberStack;
use pop::smr::{
    Ebr, EpochPop, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym, HazardPtrPop, Hyaline, Ibr,
    NbrPlus, Smr, SmrConfig, Vbr,
};

const PER_PRODUCER: u64 = 4_000;

fn stack_conservation<S: Smr>() {
    let smr = S::new(SmrConfig::for_tests(4).with_reclaim_freq(64));
    let s = Arc::new(TreiberStack::new(Arc::clone(&smr)));
    let mut handles = Vec::new();
    for tid in 0..2usize {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let _reg = s.smr().register(tid);
            for i in 0..PER_PRODUCER {
                s.push(tid, ((tid as u64) << 32) | i);
            }
            Vec::new()
        }));
    }
    for tid in 2..4usize {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let _reg = s.smr().register(tid);
            let mut got = Vec::new();
            let mut idle = 0u64;
            while got.len() < (PER_PRODUCER / 2) as usize && idle < 100_000_000 {
                match s.pop(tid) {
                    Some(v) => got.push(v),
                    None => idle += 1,
                }
            }
            got
        }));
    }
    let mut all: Vec<u64> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    {
        let _reg = smr.register(0);
        while let Some(v) = s.pop(0) {
            all.push(v);
        }
    }
    assert_eq!(all.len(), 2 * PER_PRODUCER as usize, "values conserved");
    let distinct: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        all.len(),
        "no duplicates (ABA would show here)"
    );
}

fn queue_conservation<S: Smr>() {
    let smr = S::new(SmrConfig::for_tests(4).with_reclaim_freq(64));
    let q = Arc::new(MsQueue::new(Arc::clone(&smr)));
    let mut handles = Vec::new();
    for tid in 0..2usize {
        let q = Arc::clone(&q);
        handles.push(std::thread::spawn(move || {
            let _reg = q.smr().register(tid);
            for i in 0..PER_PRODUCER {
                q.enqueue(tid, ((tid as u64) << 32) | i);
            }
            Vec::new()
        }));
    }
    for tid in 2..4usize {
        let q = Arc::clone(&q);
        handles.push(std::thread::spawn(move || {
            let _reg = q.smr().register(tid);
            let mut got = Vec::new();
            let mut idle = 0u64;
            while got.len() < (PER_PRODUCER / 2) as usize && idle < 100_000_000 {
                match q.dequeue(tid) {
                    Some(v) => got.push(v),
                    None => idle += 1,
                }
            }
            got
        }));
    }
    let mut all: Vec<u64> = Vec::new();
    let mut per_thread: Vec<Vec<u64>> = Vec::new();
    for h in handles {
        let v = h.join().unwrap();
        per_thread.push(v.clone());
        all.extend(v);
    }
    {
        let _reg = smr.register(0);
        while let Some(v) = q.dequeue(0) {
            all.push(v);
        }
    }
    assert_eq!(all.len(), 2 * PER_PRODUCER as usize, "values conserved");
    let distinct: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(distinct.len(), all.len(), "no duplicates");
    // Per-producer FIFO: each consumer's stream must be increasing within
    // a producer's tag.
    for stream in &per_thread {
        for producer in 0..2u64 {
            let seq: Vec<u64> = stream
                .iter()
                .filter(|&&v| v >> 32 == producer)
                .map(|&v| v & 0xFFFF_FFFF)
                .collect();
            assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "per-producer FIFO order violated"
            );
        }
    }
}

macro_rules! conservation_tests {
    ($($name:ident : $scheme:ty),+ $(,)?) => {
        $(
            mod $name {
                use super::*;
                #[test]
                fn stack() {
                    stack_conservation::<$scheme>();
                }
                #[test]
                fn queue() {
                    queue_conservation::<$scheme>();
                }
            }
        )+
    };
}

conservation_tests! {
    ebr: Ebr,
    ibr: Ibr,
    hp: HazardPtr,
    hp_asym: HazardPtrAsym,
    he: HazardEra,
    nbr_plus: NbrPlus,
    hazard_ptr_pop: HazardPtrPop,
    hazard_era_pop: HazardEraPop,
    epoch_pop: EpochPop,
    hyaline: Hyaline,
    vbr: Vbr,
}
