//! Publish-mode equivalence suite (PR 8).
//!
//! The signal fan-out and the membarrier publish path must be
//! observationally equivalent: the same churn workload completes, every
//! retired node is freed on drain, and conservation holds — only the
//! *mechanism* counters differ (pings vs membarrier passes). The
//! feature-gated fallback test forces `membarrier(2)` to report
//! unavailable and checks a membarrier-configured domain transparently
//! runs the signal path instead.

use std::sync::Arc;

use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::smr::config::PublishMode;
#[cfg(feature = "fault-injection")]
use pop::smr::HazardEraPop;
use pop::smr::{EpochPop, HazardPtrPop, Smr, SmrConfig, Vbr};

const WORKERS: usize = 3;
const KEYS: u64 = 64;
const OPS_PER_WORKER: u64 = 4_000;

/// Serializes fault-plan tests in this binary around the process-global
/// plan (feature-on); a no-op guard otherwise.
fn plan_lock() -> Option<std::sync::MutexGuard<'static, ()>> {
    #[cfg(feature = "fault-injection")]
    {
        Some(pop::runtime::faults::test_lock())
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        None
    }
}

fn cfg(mode: PublishMode) -> SmrConfig {
    // `for_tests` applies POP_* env overrides (the CI matrix legs);
    // pinning the mode afterwards keeps this suite's contract per-mode
    // regardless of the environment it runs under.
    SmrConfig::for_tests(WORKERS + 1)
        .with_reclaim_freq(64)
        .with_publish_spin(8)
        .with_publish_mode(mode)
}

/// Deterministic-per-thread churn: each worker inserts and removes its own
/// key stream, then the main thread drains on the spare tid. Returns the
/// domain for counter assertions.
fn churn<S: Smr>(config: SmrConfig) -> Arc<S> {
    let smr = S::new(config);
    let map = Arc::new(HmList::with_domain(Arc::clone(&smr)));
    let handles: Vec<_> = (0..WORKERS)
        .map(|tid| {
            let map = Arc::clone(&map);
            let smr = Arc::clone(&smr);
            std::thread::spawn(move || {
                let reg = smr.register(tid);
                let mut k = tid as u64;
                for _ in 0..OPS_PER_WORKER {
                    map.insert(tid, k % KEYS, k);
                    map.remove(tid, k % KEYS);
                    k = k.wrapping_add(7);
                }
                drop(reg);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let reg = smr.register(WORKERS);
    for _ in 0..200 {
        smr.flush(WORKERS);
        if smr.stats().snapshot().unreclaimed_nodes() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    // The workload is self-cancelling: every worker removes what it
    // inserted, so the drained list must be empty in every mode.
    for k in 0..KEYS {
        assert!(map.get(WORKERS, k).is_none(), "key {k} survived the churn");
    }
    drop(reg);
    smr
}

fn assert_drained_and_conserved<S: Smr>(smr: &S, name: &str) {
    let s = smr.stats().snapshot();
    assert_eq!(
        s.unreclaimed_nodes(),
        0,
        "{name}: drain must free everything"
    );
    assert!(
        s.freed_nodes <= s.retired_nodes && s.retired_nodes <= s.allocated_nodes,
        "{name}: conservation violated: {s:?}"
    );
}

/// Both fan-out flavors and the membarrier path run the identical workload
/// to the identical end state; only the mechanism counters differ.
///
/// `every_pass_publishes` is true for schemes whose every reclamation pass
/// runs the publish machinery (HazardPtrPOP); EpochPOP only publishes on
/// its stalled-epoch *escalation*, which benign churn may never trigger,
/// so its mechanism counters are load-dependent and not asserted.
fn equivalence_trial<S: Smr>(name: &str, every_pass_publishes: bool) {
    let _g = plan_lock();
    let signal = churn::<S>(cfg(PublishMode::Signal));
    assert_drained_and_conserved(&*signal, name);
    let sig_stats = signal.stats().snapshot();
    // The fan-out engine must have engaged; whether a given peer was
    // signalled or filtered (quiescent / adaptive streak) is timing.
    if every_pass_publishes {
        assert!(
            sig_stats.pings_sent + sig_stats.pings_skipped + sig_stats.pings_elided_adaptive > 0,
            "{name}: signal mode must run the fan-out: {sig_stats:?}"
        );
    }
    assert_eq!(
        sig_stats.membarrier_passes, 0,
        "{name}: signal mode must not issue membarriers"
    );

    if cfg(PublishMode::Membarrier).resolved_publish_mode() != PublishMode::Membarrier {
        eprintln!("{name}: membarrier unavailable on this host; fan-out side only");
        return;
    }
    let mb = churn::<S>(cfg(PublishMode::Membarrier));
    assert_drained_and_conserved(&*mb, name);
    let mb_stats = mb.stats().snapshot();
    // An env-armed fault plan (the CI fault matrix) can fail the heavy
    // barrier mid-run, stickily downgrading the domain to the fan-out —
    // then signals are expected. Absent that, the mechanism contract is
    // strict: no signals, only heavy barriers.
    #[cfg(feature = "fault-injection")]
    let heavy_faulted =
        pop::runtime::faults::injected(pop::runtime::faults::FaultSite::MembarrierFail) > 0;
    #[cfg(not(feature = "fault-injection"))]
    let heavy_faulted = false;
    if !heavy_faulted {
        assert_eq!(
            mb_stats.pings_sent, 0,
            "{name}: membarrier mode must not signal: {mb_stats:?}"
        );
        if every_pass_publishes {
            assert!(
                mb_stats.membarrier_passes > 0,
                "{name}: membarrier mode must issue heavy barriers: {mb_stats:?}"
            );
            // Drain-phase passes run with no registered peers
            // (signals_avoided stays flat there), but the churn phase has
            // three — the counter must show fan-outs were actually elided,
            // not merely never needed.
            assert!(
                mb_stats.signals_avoided > 0,
                "{name}: churn passes must elide real fan-outs: {mb_stats:?}"
            );
        }
    }
    // Same lifetime identity on both sides. (Absolute allocation counts
    // differ run to run — contended inserts allocate-and-retire on CAS
    // failure — so the identity, not the raw count, is the contract.)
    assert_eq!(
        mb_stats.freed_nodes, mb_stats.retired_nodes,
        "{name}: membarrier drain must free every retired node"
    );
    assert_eq!(
        sig_stats.freed_nodes, sig_stats.retired_nodes,
        "{name}: signal drain must free every retired node"
    );
}

#[test]
fn hazard_ptr_pop_modes_are_equivalent() {
    equivalence_trial::<HazardPtrPop>("HazardPtrPop", true);
}

#[test]
fn epoch_pop_modes_are_equivalent() {
    equivalence_trial::<EpochPop>("EpochPop", false);
}

/// Futex vs signal (yield-wait) fan-out flavors also agree — the PR 3
/// contract restated through the new mode enum.
#[test]
fn fan_out_flavors_agree() {
    let _g = plan_lock();
    let futex = churn::<HazardPtrPop>(cfg(PublishMode::Futex));
    assert_drained_and_conserved(&*futex, "futex");
    let s = futex.stats().snapshot();
    assert!(
        s.pings_sent + s.pings_skipped + s.pings_elided_adaptive > 0,
        "futex flavor must run the fan-out: {s:?}"
    );
    assert_eq!(s.membarrier_passes, 0, "fan-out flavor never membarriers");
}

/// VBR's version stamps replace the publish step entirely: whatever mode
/// the domain is configured with, the same churn drains with zero pings
/// and zero membarriers (ISSUE 10 — `NEEDS_SIGNALS` is false and no pass
/// ever touches the publish machinery).
#[test]
fn vbr_uses_neither_publish_mechanism() {
    let _g = plan_lock();
    for mode in [PublishMode::Signal, PublishMode::Membarrier] {
        let smr = churn::<Vbr>(cfg(mode));
        assert_drained_and_conserved(&*smr, "vbr");
        let s = smr.stats().snapshot();
        assert_eq!(
            s.pings_sent + s.pings_skipped + s.pings_elided_adaptive,
            0,
            "VBR must never run the signal fan-out ({mode:?}): {s:?}"
        );
        assert_eq!(
            s.membarrier_passes, 0,
            "VBR must never issue a heavy barrier ({mode:?}): {s:?}"
        );
    }
}

/// Forcing `membarrier(2)` to report unavailable downgrades a
/// membarrier-configured domain to the signal path before construction:
/// same workload, same drain, zero membarrier passes.
#[cfg(feature = "fault-injection")]
#[test]
fn unavailable_membarrier_falls_back_to_signals() {
    use pop::runtime::faults::{self, FaultPlan, FaultSite};
    let _g = plan_lock();
    faults::install(FaultPlan::default().with_rate(FaultSite::MembarrierUnavailable, 1));
    let config = cfg(PublishMode::Membarrier);
    assert_ne!(
        config.resolved_publish_mode(),
        PublishMode::Membarrier,
        "injected unavailability must resolve to a fan-out mode"
    );
    let smr = churn::<HazardEraPop>(config);
    faults::clear();
    assert_drained_and_conserved(&*smr, "forced-fallback");
    let s = smr.stats().snapshot();
    assert_eq!(
        s.membarrier_passes, 0,
        "fallback domain must never issue a heavy barrier: {s:?}"
    );
    assert!(
        s.pings_sent + s.pings_skipped + s.pings_elided_adaptive > 0,
        "fallback domain must run the signal fan-out: {s:?}"
    );
}
