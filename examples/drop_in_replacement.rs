//! Drop-in replacement: the same data-structure code runs under classic
//! hazard pointers, the Folly-style asymmetric variant, and all three
//! publish-on-ping schemes — the paper's backward-compatibility claim
//! (§4.2.4: "the interface of the POP algorithms is the same as that of
//! hazard pointers").
//!
//! ```sh
//! cargo run --release --example drop_in_replacement
//! ```
//!
//! Prints a small read-heavy throughput comparison; expect the POP schemes
//! and EBR to lead, classic HP to trail (per-read fences), with HPAsym and
//! HE in between.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pop::ds::ext_bst::ExtBst;
use pop::ds::ConcurrentMap;
use pop::smr::{Ebr, EpochPop, HazardEra, HazardPtr, HazardPtrAsym, HazardPtrPop, Smr, SmrConfig};

/// The *identical* benchmark body for every scheme: only the type differs.
fn bench<S: Smr>() -> (&'static str, f64) {
    const THREADS: usize = 4;
    const KEY_RANGE: u64 = 8_192;
    let smr = S::new(SmrConfig::for_threads(THREADS).with_reclaim_freq(4_096));
    let tree = Arc::new(ExtBst::new(Arc::clone(&smr)));
    let stop = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _reg = tree.smr().register(tid);
                // Prefill a slice of the key space.
                let chunk = KEY_RANGE / THREADS as u64;
                for k in (tid as u64 * chunk..(tid as u64 + 1) * chunk).step_by(2) {
                    tree.insert(tid, k, k);
                }
                let mut ops = 0u64;
                let mut x = 0xDEADBEEFu64 + tid as u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    match x % 100 {
                        0..=4 => {
                            tree.insert(tid, key, key);
                        }
                        5..=9 => {
                            tree.remove(tid, key);
                        }
                        _ => {
                            tree.contains(tid, key);
                        }
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();

    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Release);
    let ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let mops = ops as f64 / t0.elapsed().as_secs_f64() / 1e6;
    (S::NAME, mops)
}

fn main() {
    println!("read-heavy external BST, 4 threads, identical code per scheme\n");
    let results = [
        bench::<HazardPtr>(),
        bench::<HazardPtrAsym>(),
        bench::<HazardEra>(),
        bench::<Ebr>(),
        bench::<HazardPtrPop>(),
        bench::<EpochPop>(),
    ];
    let hp = results[0].1;
    println!("{:<14} {:>10} {:>12}", "scheme", "Mops/s", "vs HP");
    for (name, mops) in results {
        println!("{:<14} {:>10.3} {:>11.2}x", name, mops, mops / hp);
    }
    println!("\nThe paper reports HazardPtrPOP 1.2x–4x over HP on read paths.");
}
