//! Quickstart: a concurrent set protected by HazardPtrPOP.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Four threads hammer a Harris-Michael list with inserts, removes and
//! lookups while the publish-on-ping domain reclaims retired nodes behind
//! the scenes. At the end we print the domain's reclamation statistics —
//! note `pings_sent`/`publishes`: reservations were only ever published
//! when a reclaimer asked.

use std::sync::Arc;

use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::smr::{HazardPtrPop, Smr, SmrConfig};

fn main() {
    const THREADS: usize = 4;
    const OPS_PER_THREAD: u64 = 200_000;
    const KEY_RANGE: u64 = 1_024;

    // One reclamation domain per structure. `reclaim_freq` is the retire
    // list threshold that triggers a ping-and-scan pass.
    let smr = HazardPtrPop::new(SmrConfig::for_threads(THREADS).with_reclaim_freq(2_048));
    let set = Arc::new(HmList::new(Arc::clone(&smr)));

    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                // Register this OS thread under domain tid. The guard
                // flushes our retire list and deregisters on drop.
                let _reg = set.smr().register(tid);
                let mut hits = 0u64;
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(tid as u64 + 1);
                for _ in 0..OPS_PER_THREAD {
                    // xorshift for a cheap uniform stream
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    match x % 10 {
                        0..=3 => {
                            set.insert(tid, key, tid as u64);
                        }
                        4..=7 => {
                            set.remove(tid, key);
                        }
                        _ => {
                            if set.contains(tid, key) {
                                hits += 1;
                            }
                        }
                    }
                }
                hits
            })
        })
        .collect();

    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let s = smr.stats().snapshot();
    println!("quickstart: {} threads x {} ops", THREADS, OPS_PER_THREAD);
    println!("  lookup hits        : {hits}");
    println!("  nodes allocated    : {}", s.allocated_nodes);
    println!("  nodes retired      : {}", s.retired_nodes);
    println!("  nodes freed        : {}", s.freed_nodes);
    println!("  unreclaimed at end : {}", s.unreclaimed_nodes());
    println!("  pings sent         : {}", s.pings_sent);
    println!("  handler publishes  : {}", s.publishes);
    println!("  max retire list    : {}", s.max_retire_len);
    assert!(
        s.unreclaimed_nodes() <= (THREADS * smr.config().slots) as u64,
        "garbage must be bounded after all threads flushed"
    );
    println!("ok: bounded garbage, fence-free reads.");
}
