//! Long-running reads vs. neutralization (the paper's Figure 4 story).
//!
//! ```sh
//! cargo run --release --example long_running_scan
//! ```
//!
//! One thread repeatedly scans a large list end to end (think: an OLTP
//! range query) while a writer churns at the head with an aggressively
//! small retire threshold, so reclamation fires constantly. Under NBR+,
//! every reclamation neutralizes the scanner — it restarts from the head
//! and rarely finishes. HazardPtrPOP's scanner is merely pinged (its
//! handler publishes reservations) and keeps its place.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::smr::{HazardPtrPop, NbrPlus, Smr, SmrConfig};

fn scan_run<S: Smr>() -> (u64, u64, u64) {
    const LIST_KEYS: u64 = 4_096;
    let smr = S::new(SmrConfig::for_threads(2).with_reclaim_freq(256));
    let set = Arc::new(HmList::new(Arc::clone(&smr)));
    let stop = Arc::new(AtomicBool::new(false));
    let completed_scans = Arc::new(AtomicU64::new(0));

    // The scanner: full-range membership sweep = a long-running read op
    // for every probe deep in the list.
    let scanner = {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed_scans);
        std::thread::spawn(move || {
            let _reg = set.smr().register(0);
            // Prefill every other key so scans traverse a long chain.
            for k in (0..LIST_KEYS).step_by(2) {
                set.insert(0, k, k);
            }
            while !stop.load(Ordering::Relaxed) {
                // Probe the deep end of the list: each lookup traverses
                // most of the chain.
                for k in (LIST_KEYS - 64..LIST_KEYS).rev() {
                    set.contains(0, k);
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                completed.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // The churner: insert/delete near the head, forcing reclamation.
    let churner = {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _reg = set.smr().register(1);
            let mut k = 1u64;
            while !stop.load(Ordering::Relaxed) {
                set.insert(1, k % 64, k);
                set.remove(1, k % 64);
                k = k.wrapping_add(3);
            }
        })
    };

    std::thread::sleep(Duration::from_millis(800));
    stop.store(true, Ordering::Release);
    scanner.join().unwrap();
    churner.join().unwrap();
    let s = smr.stats().snapshot();
    (
        completed_scans.load(Ordering::Relaxed),
        s.restarts,
        s.pings_sent,
    )
}

fn main() {
    println!("deep-probe scanner vs head-churning writer (retire threshold 256)\n");
    let (nbr_scans, nbr_restarts, nbr_pings) = scan_run::<NbrPlus>();
    let (pop_scans, pop_restarts, pop_pings) = scan_run::<HazardPtrPop>();

    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "scheme", "sweeps", "restarts", "pings"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "NBR+", nbr_scans, nbr_restarts, nbr_pings
    );
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "HazardPtrPOP", pop_scans, pop_restarts, pop_pings
    );
    println!();
    println!("NBR+ restarts its reads whenever a reclaimer neutralizes;");
    println!("POP readers keep their place — the paper's Figure 4 effect.");
    assert_eq!(pop_restarts, 0, "POP must never restart a reader");
}
