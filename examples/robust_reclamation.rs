//! Robustness: what happens when a reader stalls mid-operation.
//!
//! ```sh
//! cargo run --release --example robust_reclamation
//! ```
//!
//! One thread enters a data-structure operation and goes to sleep —
//! paging, preemption, a debugger, whatever. Meanwhile two writers churn.
//! Under EBR the stalled reader pins the global epoch and garbage grows
//! with every update (the out-of-memory failure mode from paper §2.2.2).
//! EpochPOP runs the *same* epoch fast path, but when a reclaimer notices
//! its retire list isn't draining it pings all threads — including the
//! sleeping one, whose signal handler publishes its private reservations —
//! and frees everything except the bounded reserved set (paper §4.2).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pop::ds::hml::HmList;
use pop::ds::ConcurrentMap;
use pop::smr::{Ebr, EpochPop, Smr, SmrConfig};

fn stalled_run<S: Smr>() -> (u64, u64, u64) {
    const WRITERS: usize = 2;
    let smr = S::new(SmrConfig::for_threads(WRITERS + 1).with_reclaim_freq(512));
    let set = Arc::new(HmList::new(Arc::clone(&smr)));
    let stop = Arc::new(AtomicBool::new(false));

    // The stalled reader: begins an operation and sleeps.
    let sleeper = {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _reg = set.smr().register(WRITERS);
            set.smr().begin_op(WRITERS);
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(10));
            }
            set.smr().end_op(WRITERS);
        })
    };
    std::thread::sleep(Duration::from_millis(30));

    let writers: Vec<_> = (0..WRITERS)
        .map(|tid| {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _reg = set.smr().register(tid);
                let mut k = tid as u64;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    set.insert(tid, k % 2_048, k);
                    set.remove(tid, k % 2_048);
                    k = k.wrapping_add(13);
                    ops += 2;
                }
                ops
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(800));
    stop.store(true, Ordering::Release);
    let ops: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    sleeper.join().unwrap();

    let s = smr.stats().snapshot();
    (ops, s.unreclaimed_nodes(), s.pings_sent)
}

fn main() {
    println!("2 writers churn for 800ms while 1 reader sleeps inside an op\n");
    let (ebr_ops, ebr_garbage, _) = stalled_run::<Ebr>();
    let (pop_ops, pop_garbage, pop_pings) = stalled_run::<EpochPop>();

    println!(
        "{:<10} {:>12} {:>20} {:>8}",
        "scheme", "writer ops", "unreclaimed nodes", "pings"
    );
    println!("{:<10} {:>12} {:>20} {:>8}", "EBR", ebr_ops, ebr_garbage, 0);
    println!(
        "{:<10} {:>12} {:>20} {:>8}",
        "EpochPOP", pop_ops, pop_garbage, pop_pings
    );
    println!();
    println!(
        "EBR garbage scales with writer work ({}% of {} retired ops unreclaimed);",
        if ebr_ops > 0 {
            ebr_garbage * 100 / ebr_ops.max(1)
        } else {
            0
        },
        ebr_ops
    );
    println!("EpochPOP pinged the sleeper and stayed bounded.");
    assert!(
        pop_garbage < ebr_garbage / 2 || ebr_garbage < 1000,
        "EpochPOP should reclaim past the stalled reader"
    );
}
