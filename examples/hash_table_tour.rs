//! A guided tour of the full structure zoo under one reclamation domain
//! per structure: list, hash table, external BST, (a,b)-tree, stack and
//! queue, all running the same mixed workload under EpochPOP.
//!
//! ```sh
//! cargo run --release --example hash_table_tour
//! ```

use std::sync::Arc;
use std::time::Instant;

use pop::ds::ab_tree::AbTree;
use pop::ds::ext_bst::ExtBst;
use pop::ds::hash_map::HashMapHm;
use pop::ds::hml::HmList;
use pop::ds::lazy_list::LazyList;
use pop::ds::ms_queue::MsQueue;
use pop::ds::treiber_stack::TreiberStack;
use pop::ds::ConcurrentMap;
use pop::smr::{EpochPop, Smr, SmrConfig};

const THREADS: usize = 4;
const OPS: u64 = 50_000;
const KEYS: u64 = 4_096;

fn tour_map<M: ConcurrentMap<EpochPop>>(label: &str) {
    let smr = EpochPop::new(SmrConfig::for_threads(THREADS).with_reclaim_freq(2_048));
    let map = Arc::new(M::with_domain(Arc::clone(&smr)));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let _reg = map.smr().register(tid);
                let mut x = 0xA5A5_5A5A_u64 + tid as u64;
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % KEYS;
                    // Select the operation from high bits so it is not
                    // correlated with the key's residue.
                    match (x >> 32) % 4 {
                        0 => {
                            map.insert(tid, k, x);
                        }
                        1 => {
                            map.remove(tid, k);
                        }
                        _ => {
                            map.contains(tid, k);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let dt = t0.elapsed();
    let s = smr.stats().snapshot();
    println!(
        "{:<6} {:>8.2} Mops/s   retired {:>8}  freed {:>8}  leftover {:>6}",
        label,
        (THREADS as f64 * OPS as f64) / dt.as_secs_f64() / 1e6,
        s.retired_nodes,
        s.freed_nodes,
        s.unreclaimed_nodes(),
    );
}

fn tour_stack_queue() {
    let smr = EpochPop::new(SmrConfig::for_threads(THREADS).with_reclaim_freq(2_048));
    let stack = Arc::new(TreiberStack::new(Arc::clone(&smr)));
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || {
                let _reg = stack.smr().register(tid);
                for i in 0..OPS / 2 {
                    stack.push(tid, i);
                    stack.pop(tid);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = smr.stats().snapshot();
    println!(
        "{:<6} push/pop pairs done   retired {:>8}  leftover {:>6}",
        "Stack",
        s.retired_nodes,
        s.unreclaimed_nodes()
    );

    let smr = EpochPop::new(SmrConfig::for_threads(THREADS).with_reclaim_freq(2_048));
    let queue = Arc::new(MsQueue::new(Arc::clone(&smr)));
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let _reg = queue.smr().register(tid);
                for i in 0..OPS / 2 {
                    queue.enqueue(tid, i);
                    queue.dequeue(tid);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = smr.stats().snapshot();
    println!(
        "{:<6} enq/deq pairs done    retired {:>8}  leftover {:>6}",
        "Queue",
        s.retired_nodes,
        s.unreclaimed_nodes()
    );
}

fn main() {
    println!(
        "{} threads x {} mixed ops per structure under EpochPOP\n",
        THREADS, OPS
    );
    tour_map::<HmList<EpochPop>>("HML");
    tour_map::<LazyList<EpochPop>>("LL");
    tour_map::<HashMapHm<EpochPop>>("HMHT");
    tour_map::<ExtBst<EpochPop>>("DGT");
    tour_map::<AbTree<EpochPop>>("ABT");
    tour_stack_queue();
    println!("\nEvery structure shares the same Smr interface — the paper's");
    println!("drop-in compatibility claim, demonstrated across seven shapes.");
}
