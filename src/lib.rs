//! # `pop` — Publish-on-Ping safe memory reclamation
//!
//! This crate is the facade over a full reproduction of *"Publish on Ping: A
//! Better Way to Publish Reservations in Memory Reclamation for Concurrent
//! Data Structures"* (Singh & Brown, PPoPP 2025).
//!
//! The stack consists of:
//!
//! * [`runtime`] — process-global thread registry, POSIX-signal "ping"
//!   machinery, and the asymmetric process-wide memory barrier.
//! * [`smr`] — the [`smr::Smr`] trait and twelve reclamation schemes:
//!   the paper's **HazardPtrPOP**, **HazardEraPOP** and **EpochPOP**, plus
//!   the baselines HP, HPAsym, HE, EBR, IBR, NBR+, a Crystalline-family
//!   batch reference counter, leaky NR, and VBR (version-based
//!   reclamation over the owned slab arenas).
//! * [`ds`] — seven concurrent set/map data structures written once
//!   against the `Smr` trait: Harris-Michael list, lazy list, hash table,
//!   lock-based external BST, (a,b)-tree, lock-free skip list and the
//!   Natarajan-Mittal lock-free external BST.
//! * [`workload`] — the timed multithreaded benchmark engine used by the
//!   `pop-bench` figure harness.
//!
//! ## Quickstart
//!
//! ```
//! use pop::smr::{HazardPtrPop, Smr, SmrConfig};
//! use pop::ds::{hml::HmList, ConcurrentMap};
//! use std::sync::Arc;
//!
//! let smr = HazardPtrPop::new(SmrConfig::for_threads(2));
//! let list = Arc::new(HmList::new(Arc::clone(&smr)));
//! let handles: Vec<_> = (0..2)
//!     .map(|tid| {
//!         let list = Arc::clone(&list);
//!         std::thread::spawn(move || {
//!             let _reg = list.smr().register(tid);
//!             for k in 0..100u64 {
//!                 list.insert(tid, k * 2 + tid as u64, k);
//!             }
//!             (0..200u64).filter(|&k| list.contains(tid, k)).count()
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

pub use pop_core as smr;
pub use pop_ds as ds;
pub use pop_runtime as runtime;
pub use pop_workload as workload;
