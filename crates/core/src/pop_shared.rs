//! The publish-on-ping engine shared by HazardPtrPOP, HazardEraPOP and
//! EpochPOP.
//!
//! Implements the paper's Algorithms 1–2 machinery: per-thread
//! `localReservations` (written with relaxed stores on the read path — *no
//! fence*), `sharedReservations` (SWMR slots filled by the signal handler),
//! the per-thread `publishCounter`, and the reclaimer-side
//! `collectPublishedCounters` / `pingAllToPublish` / `waitForAllPublished`
//! sequence. Reservation words are opaque `u64`s: pointer bits for
//! HazardPtrPOP/EpochPOP, era numbers for HazardEraPOP.
//!
//! ## Quiescent-thread ping filtering
//!
//! Each thread maintains an *activity word* (odd = inside an operation),
//! bumped in `begin_op`/`end_op` alongside `clear_local`. A reclaimer
//! skips signalling a thread that is (a) quiescent (activity word even)
//! with (b) empty published *and* local reservations — mirroring NBR+'s
//! signal-elision optimization. Safety rests on the same reachability
//! argument as EBR quiescence and this module's existing deregistration
//! skip, made rigorous by two `SeqCst` fences: the `begin_op` bump is a
//! store followed by a `SeqCst` fence, and the reclaimer executes a
//! `SeqCst` fence after its unlinks, before reading the word. Either
//! (i) the reclaimer observes the thread active and pings it, or (ii) the
//! reclaimer's fence precedes the thread's in the fence total order — in
//! which case (two-SC-fence rule) every load of that operation observes
//! the unlinks, so no `protect` validation can return a pointer to this
//! pass's retirees (unlinked nodes are unreachable from structure roots,
//! and traversals refuse to cross marked links). The local-reservation
//! check is defense in depth for callers that protect outside an op
//! bracket after synchronizing through some other channel. Threads whose
//! *shared* slots hold stale non-zero words are always pinged: skipping
//! them would let the stale reservations pin garbage forever.
//!
//! ## Adaptive ping filtering
//!
//! The binary filter above still pays `1 + 2 × slots` loads per skipped
//! thread per pass. A per-thread *quiescent streak* counter takes the
//! paper's signal elision further: reclaimers increment a thread's streak
//! each pass that proves it quiescent, and the thread's own `begin_op`
//! zeroes it (a store on its own line, before the same `SeqCst` fence that
//! orders the activity bump). Once the streak reaches
//! [`ADAPTIVE_SKIP_AFTER`], reclaimers skip the slot scan entirely — one
//! streak load replaces the whole check — resampling with the full check
//! every [`ADAPTIVE_RESAMPLE_EVERY`] streak counts as defense in depth for
//! protocol-violating callers that reserve outside an op bracket.
//! Soundness is the same two-SC-fence argument: a reclaimer reading
//! `streak >= N` after its fence either fence-precedes the thread's
//! `begin_op` (whose reads then observe the unlinks) or would have read
//! the zeroed streak. Reclaimer increments use a compare-exchange against
//! the observed value so a racing owner reset is never overwritten.
//!
//! ## Publish-wait semantics (futex vs yield)
//!
//! `waitForAllPublished` spins for a configurable budget
//! ([`crate::config::SmrConfig::publish_spin`]), then **parks**: each
//! thread owns a 32-bit *publish word* (bumped by every
//! `publishReservations`, including the signal handler's), and the waiter
//! issues `futex(FUTEX_WAIT)` keyed on it. The handler `FUTEX_WAKE`s the
//! word only when a waiter has announced itself (a per-thread waiter
//! count, Dekker-ordered with `SeqCst` against the word bump: either the
//! waiter observes the new publish and never sleeps, or the publisher
//! observes the waiter and wakes it). Waits carry a timeout as the
//! liveness backstop — a peer can satisfy the wait *without* publishing
//! (deregistration observed via the `registered` flag, or a lost ping) —
//! and every wakeup re-checks the full exit condition. Off Linux, or with
//! [`crate::config::SmrConfig::futex_wait`] unset, the post-spin step
//! degrades to `yield_now` (the historical behavior): same correctness,
//! but each retry burns a scheduler quantum on oversubscribed hosts.
//!
//! ## Membarrier publish mode
//!
//! Under [`crate::config::PublishMode::Membarrier`] the signal fan-out
//! disappears entirely: readers write reservations **directly to their
//! shared slots** with plain relaxed stores (`set_local` routes there; the
//! private `local` array goes unused), `note_active` drops its `SeqCst`
//! fence, and `ping_all_and_wait` becomes one process-wide
//! `membarrier(2)` heavy barrier — after which every peer's prior stores
//! are visible and the existing `collect_reserved_into` scan reads them
//! with nothing to wait for. This is the Folly-style asymmetric fencing
//! the `HPAsym` baseline uses, grafted onto the POP slot machinery.
//!
//! Three consequences are load-bearing:
//!
//! * **Publish is degenerate.** The process-global signal handler still
//!   runs on these threads (another domain sharing the process may ping
//!   them, and the PR 7 hard rung re-pings suspects per-participant).
//!   [`PopShared::publish_tid`] therefore *skips the local→shared copy*
//!   on membarrier-configured domains — the copy would overwrite live
//!   shared reservations with the unused (all-zero) local words — while
//!   keeping its fence, suspect-clear, counter bump and futex wake, so
//!   the signal path's handshake semantics survive a downgrade.
//! * **Ping filtering is off.** The quiescent/adaptive elision rests on
//!   `note_active`'s fence pairing with the reclaimer's; with the fence
//!   gone the argument is void, so a membarrier-configured domain never
//!   elides a ping on its signal fallback path (it pings everyone). On
//!   the fast path there is nothing to elide — the whole fan-out is
//!   replaced, accounted as one `membarrier_passes` tick plus
//!   `signals_avoided += `(registered peers).
//! * **Death needs a probe.** The fast path has no waits, so the PR 6
//!   publish-wait watchdog never runs and a peer that died without
//!   deregistering would pin its stale shared words forever. Every
//!   [`MEMBARRIER_DEAD_PROBE_EVERY`] membarrier passes the reclaimer
//!   probes each registered peer's registry registration
//!   ([`PopShared::note_dead_if_confirmed`]) — the schemes' existing
//!   `reap_one_dead` then recovers confirmed corpses. Garbage a dead
//!   peer pins is thus bounded by the probe period, not unbounded.
//!
//! A heavy barrier that *fails mid-pass* (seccomp installed after init,
//! or an injected [`FaultSite::MembarrierFail`]) downgrades the domain
//! **stickily** to the signal fan-out: reservations keep living in the
//! shared slots (readers never change behavior), pings publish via the
//! degenerate handler, and the pass that observed the failure falls
//! through to the signal path it would otherwise have replaced.
//!
//! Instances are leaked (`&'static`) because the process-global signal
//! handler may dereference them at any time; see `pop-runtime` docs.

use core::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use pop_runtime::faults::{self, FaultSite};
use pop_runtime::signal::ping_gtid;
use pop_runtime::{futex, PingOutcome, Publisher, Registry};

use crate::base::{DomainBase, RetireList};
use crate::stats::DomainStats;

/// Timeout per parked publish wait (liveness backstop; see module docs).
const PUBLISH_WAIT_TIMEOUT_NS: u64 = 1_000_000;

/// Sentinel in a collected-counters buffer: do not wait for this thread.
const SKIP: u64 = u64::MAX;

/// Consecutive quiescent passes after which a reclaimer stops re-scanning
/// a thread's reservation slots (module docs, "Adaptive ping filtering").
const ADAPTIVE_SKIP_AFTER: u64 = 8;

/// While adaptively skipping, run the full quiescence check again every
/// this-many streak counts (liveness/defense for out-of-bracket callers).
const ADAPTIVE_RESAMPLE_EVERY: u64 = 64;

/// Membarrier-mode dead-peer probe period, in membarrier passes: the fast
/// path has no publish waits, so the watchdog never sees a dead peer —
/// instead every this-many passes (and on the very first) the reclaimer
/// probes each registered peer's registry registration. Bounds both the
/// garbage a corpse can pin (one probe period) and the probe syscalls
/// (`O(threads / period)` amortized per pass).
const MEMBARRIER_DEAD_PROBE_EVERY: u64 = 64;

/// Shared reservation state for one publish-on-ping domain.
pub(crate) struct PopShared {
    nthreads: usize,
    slots: usize,
    /// `localReservations[tid][slot]` — owner-written (relaxed), read by the
    /// owner's own signal handler and by diagnostic code.
    local: Box<[AtomicU64]>,
    /// `sharedReservations[tid][slot]` — filled on publish, scanned by
    /// reclaimers.
    shared: Box<[AtomicU64]>,
    /// `publishCounter[tid]`.
    counter: Box<[CachePadded<AtomicU64>]>,
    /// 32-bit futex key per thread, bumped alongside `counter` on every
    /// publish; waiters park on it (module docs, "Publish-wait semantics").
    publish_word: Box<[CachePadded<AtomicU32>]>,
    /// Waiters currently parked (or about to park) on `publish_word[t]`;
    /// publishers skip the wake syscall when zero.
    waiters: Box<[CachePadded<AtomicU32>]>,
    /// Per-thread operation activity word: odd while inside an operation.
    activity: Box<[CachePadded<AtomicU64>]>,
    /// Consecutive reclaimer passes that proved the thread quiescent;
    /// zeroed by the owner in `note_active`/`register`.
    quiescent_streak: Box<[CachePadded<AtomicU64>]>,
    /// Whether a domain tid currently participates.
    registered: Box<[AtomicBool]>,
    /// Domain tid → global thread id + 1 (0 = unbound).
    gtid_of: Box<[AtomicUsize]>,
    /// Registry claim generation captured at [`Self::register`]: together
    /// with the gtid it names that registration for liveness probes even
    /// after the registry slot is recycled.
    gtid_gen: Box<[AtomicU64]>,
    /// Whether the bound gtid was the calling thread's real registry slot
    /// at [`Self::register`] time ([`crate::base::registration_backed`]) —
    /// the license to read a later `Vacated` probe as death.
    gtid_backed: Box<[AtomicBool]>,
    /// Set by the watchdog (deadline expired) or a failed ping: the thread
    /// may hold reservations it never published, so reclaimers treat its
    /// *local* words as reserved too ([`Self::collect_reserved_into`] —
    /// correct-by-keep). Cleared by the thread's own next publish.
    suspect: Box<[AtomicBool]>,
    /// Set when a liveness probe confirms the registration's thread died
    /// without deregistering; consumed (CAS) by [`Self::take_dead`] on
    /// scheme reclaim paths, which feed the domain reaper.
    peer_dead: Box<[AtomicBool]>,
    stats: Arc<DomainStats>,
    /// Quiescent-thread ping elision. Off for users whose reservations live
    /// outside this struct (the HPAsym signal barrier), where every handler
    /// execution is load-bearing for memory ordering.
    filter_quiescent: bool,
    /// Spin budget before a publish wait parks or yields
    /// ([`crate::config::SmrConfig::publish_spin`]).
    publish_spin: u32,
    /// Park on a futex after the spin budget (vs `yield_now`).
    futex_wait: bool,
    /// Publish-wait watchdog: total wall-clock budget per
    /// `ping_all_and_wait` pass before unpublished peers are handled
    /// conservatively ([`crate::config::SmrConfig::publish_deadline_ns`];
    /// `0` = unbounded waits).
    publish_deadline_ns: u64,
    /// Membarrier publish mode (module docs): reservations live in the
    /// shared slots, `note_active` is fence-free, `publish_tid` skips the
    /// copy, and passes run one heavy barrier instead of the fan-out.
    /// Static for the domain's lifetime — the reader-side contract must
    /// not flap.
    membarrier: bool,
    /// Sticky mid-pass downgrade: a heavy barrier failed after init, so
    /// every subsequent pass runs the signal fan-out instead (readers are
    /// unaffected — see the module docs). Never set on non-membarrier
    /// domains.
    downgraded: AtomicBool,
    /// Membarrier passes completed, for pacing the dead-peer probe.
    mb_passes: CachePadded<AtomicU64>,
}

impl PopShared {
    /// Allocates and leaks the shared state (see module docs for why).
    ///
    /// The tail of the argument list mirrors the `SmrConfig` knobs it is
    /// always called with, in order — a tuning struct would just restate
    /// the config.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn leak(
        nthreads: usize,
        slots: usize,
        stats: Arc<DomainStats>,
        filter_quiescent: bool,
        publish_spin: u32,
        futex_wait: bool,
        publish_deadline_ns: u64,
        membarrier: bool,
    ) -> &'static Self {
        let cells = nthreads * slots;
        let mut local = Vec::with_capacity(cells);
        local.resize_with(cells, || AtomicU64::new(0));
        let mut shared = Vec::with_capacity(cells);
        shared.resize_with(cells, || AtomicU64::new(0));
        let mut counter = Vec::with_capacity(nthreads);
        counter.resize_with(nthreads, || CachePadded::new(AtomicU64::new(0)));
        let mut publish_word = Vec::with_capacity(nthreads);
        publish_word.resize_with(nthreads, || CachePadded::new(AtomicU32::new(0)));
        let mut waiters = Vec::with_capacity(nthreads);
        waiters.resize_with(nthreads, || CachePadded::new(AtomicU32::new(0)));
        let mut activity = Vec::with_capacity(nthreads);
        activity.resize_with(nthreads, || CachePadded::new(AtomicU64::new(0)));
        let mut quiescent_streak = Vec::with_capacity(nthreads);
        quiescent_streak.resize_with(nthreads, || CachePadded::new(AtomicU64::new(0)));
        let mut registered = Vec::with_capacity(nthreads);
        registered.resize_with(nthreads, || AtomicBool::new(false));
        let mut gtid_of = Vec::with_capacity(nthreads);
        gtid_of.resize_with(nthreads, || AtomicUsize::new(0));
        let mut gtid_gen = Vec::with_capacity(nthreads);
        gtid_gen.resize_with(nthreads, || AtomicU64::new(0));
        let mut gtid_backed = Vec::with_capacity(nthreads);
        gtid_backed.resize_with(nthreads, || AtomicBool::new(false));
        let mut suspect = Vec::with_capacity(nthreads);
        suspect.resize_with(nthreads, || AtomicBool::new(false));
        let mut peer_dead = Vec::with_capacity(nthreads);
        peer_dead.resize_with(nthreads, || AtomicBool::new(false));
        Box::leak(Box::new(PopShared {
            nthreads,
            slots,
            local: local.into_boxed_slice(),
            shared: shared.into_boxed_slice(),
            counter: counter.into_boxed_slice(),
            publish_word: publish_word.into_boxed_slice(),
            waiters: waiters.into_boxed_slice(),
            activity: activity.into_boxed_slice(),
            quiescent_streak: quiescent_streak.into_boxed_slice(),
            registered: registered.into_boxed_slice(),
            gtid_of: gtid_of.into_boxed_slice(),
            gtid_gen: gtid_gen.into_boxed_slice(),
            gtid_backed: gtid_backed.into_boxed_slice(),
            suspect: suspect.into_boxed_slice(),
            peer_dead: peer_dead.into_boxed_slice(),
            stats,
            filter_quiescent,
            publish_spin,
            futex_wait: futex_wait && futex::supported(),
            publish_deadline_ns,
            membarrier,
            downgraded: AtomicBool::new(false),
            mb_passes: CachePadded::new(AtomicU64::new(0)),
        }))
    }

    /// The slots the *owner* writes reservations to: the private `local`
    /// array under the signal modes (published by the handler's copy), the
    /// `shared` array directly under membarrier mode (made visible by the
    /// reclaimer's heavy barrier). One routing point for
    /// `set_local`/`local_at`/`clear_local`.
    #[inline(always)]
    fn owner_slots(&self) -> &[AtomicU64] {
        if self.membarrier {
            &self.shared
        } else {
            &self.local
        }
    }

    #[inline(always)]
    fn idx(&self, tid: usize, slot: usize) -> usize {
        debug_assert!(slot < self.slots);
        tid * self.slots + slot
    }

    /// Hot-path local reservation (paper Alg. 1 line 11): a relaxed store,
    /// **no fence** — this is the entire point of publish-on-ping. Under
    /// membarrier mode the store targets the shared slot directly (the
    /// reclaimer's heavy barrier publishes it; no handler copy needed).
    #[inline(always)]
    pub(crate) fn set_local(&self, tid: usize, slot: usize, word: u64) {
        self.owner_slots()[self.idx(tid, slot)].store(word, Ordering::Relaxed);
    }

    /// Owner-side read of a local reservation (HazardEraPOP caches the last
    /// reserved era this way).
    #[inline(always)]
    pub(crate) fn local_at(&self, tid: usize, slot: usize) -> u64 {
        self.owner_slots()[self.idx(tid, slot)].load(Ordering::Relaxed)
    }

    /// Marks `tid` as inside an operation (activity word → odd).
    ///
    /// The trailing `SeqCst` **fence** is what makes the reclaimer's signal
    /// elision sound under weak memory (two-SC-fence rule, C++
    /// [atomics.fences]): pairing with the reclaimer's fence before its
    /// activity read, either the reclaimer observes this store (and pings),
    /// or this fence follows the reclaimer's in the total order — in which
    /// case every load of this operation observes the reclaimer's unlinks
    /// and cannot validate a pointer to its retirees. A bare `SeqCst`
    /// store is *not* enough: it is not a StoreLoad barrier against the
    /// operation's subsequent plain loads on non-TSO targets.
    ///
    /// This is the one ordered instruction POP pays per *operation*; reads
    /// stay fence-free.
    #[inline]
    pub(crate) fn note_active(&self, tid: usize) {
        // Owner-side adaptive-filter reset, ordered by the same fence as
        // the activity bump (both are stores to owner-only lines).
        self.quiescent_streak[tid].store(0, Ordering::Relaxed);
        let a = self.activity[tid].load(Ordering::Relaxed);
        self.activity[tid].store((a & !1).wrapping_add(1), Ordering::Relaxed);
        // Membarrier mode skips the fence — that is its whole win — which
        // voids the elision argument; correspondingly, membarrier domains
        // never use the quiescent filter (module docs), not even on the
        // downgraded signal path.
        if !self.membarrier {
            fence(Ordering::SeqCst);
        }
    }

    /// Marks `tid` as quiescent (activity word → even). Missing visibility
    /// here is conservative (the thread just gets pinged), so Release
    /// suffices.
    #[inline]
    pub(crate) fn note_quiescent(&self, tid: usize) {
        let a = self.activity[tid].load(Ordering::Relaxed);
        self.activity[tid].store((a | 1).wrapping_add(1), Ordering::Release);
    }

    /// Paper's `clear()` (Alg. 1 line 23): reset local reservations when
    /// going quiescent. Shared slots intentionally keep their last published
    /// value — stale entries are conservative and refreshed at the next ping.
    pub(crate) fn clear_local(&self, tid: usize) {
        let slots = self.owner_slots();
        for s in 0..self.slots {
            slots[self.idx(tid, s)].store(0, Ordering::Relaxed);
        }
    }

    /// Joins the domain's ping set.
    pub(crate) fn register(&self, tid: usize, gtid: usize) {
        for s in 0..self.slots {
            self.local[self.idx(tid, s)].store(0, Ordering::Relaxed);
            self.shared[self.idx(tid, s)].store(0, Ordering::Relaxed);
        }
        // Fresh occupants start quiescent; any parity left by a previous
        // occupant is normalized, and its streak must not carry over.
        self.quiescent_streak[tid].store(0, Ordering::Relaxed);
        let a = self.activity[tid].load(Ordering::Relaxed);
        self.activity[tid].store((a | 1).wrapping_add(1), Ordering::Relaxed);
        self.suspect[tid].store(false, Ordering::Relaxed);
        self.peer_dead[tid].store(false, Ordering::Relaxed);
        self.gtid_of[tid].store(gtid + 1, Ordering::Relaxed);
        // Generation of the registry slot backing this gtid, plus whether
        // it really is the calling thread's slot. For gtids not backed by
        // the registry (unit-test fabrications) `backed` stays false and
        // probes never read as death, so the reaper never engages on them.
        let generation = if gtid < pop_runtime::MAX_THREADS {
            Registry::global().generation_of(gtid)
        } else {
            0
        };
        self.gtid_gen[tid].store(generation, Ordering::Relaxed);
        self.gtid_backed[tid].store(crate::base::registration_backed(gtid), Ordering::Relaxed);
        // Release publishes the cleared slots before the thread is pingable.
        self.registered[tid].store(true, Ordering::Release);
    }

    /// Leaves the ping set, flushing empty reservations so any reclaimer
    /// concurrently waiting on this thread observes either the counter
    /// increment or the deregistration.
    pub(crate) fn unregister(&self, tid: usize) {
        self.clear_local(tid);
        self.publish_tid(tid);
        self.note_quiescent(tid);
        self.registered[tid].store(false, Ordering::Release);
        self.gtid_of[tid].store(0, Ordering::Relaxed);
    }

    /// The paper's `publishReservations` (Alg. 2 line 40): copy local →
    /// shared, one fence, bump the publish counter, wake parked waiters.
    /// Async-signal-safe (atomics plus at most one `futex` syscall).
    pub(crate) fn publish_tid(&self, tid: usize) {
        // Fault site: a publish that straggles — the local→shared copy and
        // counter bump land late, stretching every waiting reclaimer.
        // `nanosleep` is async-signal-safe, so this is handler-legal.
        if faults::fire(FaultSite::PublishDelay) {
            self.stats
                .shard(tid)
                .faults_injected
                .fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(100));
        }
        // Membarrier mode: the owner already writes the shared slots, and
        // the unused local words are all zero — copying them over would
        // ERASE live reservations (the handler may fire on these threads
        // via another domain's ping or a hard-rung re-ping). The publish
        // degenerates to fence + suspect-clear + counter bump + wake, which
        // is exactly what the signal fallback path needs from it.
        if !self.membarrier {
            let base = tid * self.slots;
            for s in 0..self.slots {
                let w = self.local[base + s].load(Ordering::Relaxed);
                self.shared[base + s].store(w, Ordering::Relaxed);
            }
        }
        // The single fence that replaces one-fence-per-read of classic HP.
        fence(Ordering::SeqCst);
        // A completed publish is proof of life: the thread's shared words
        // are current again, so conservative suspect handling can end.
        self.suspect[tid].store(false, Ordering::Relaxed);
        self.counter[tid].fetch_add(1, Ordering::Release);
        if self.futex_wait {
            // Dekker pairing with the waiter (module docs): the SeqCst
            // word bump precedes the waiter-count load, so a waiter that
            // missed this publish is observed here and woken. In yield
            // mode no waiter ever parks, so the word is never touched.
            self.publish_word[tid].fetch_add(1, Ordering::SeqCst);
            if self.waiters[tid].load(Ordering::SeqCst) > 0 {
                futex::wake_all(&self.publish_word[tid]);
            }
        }
        self.stats
            .shard(tid)
            .publishes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one more quiescent pass for thread `t`. The CAS (against
    /// the value the reclaimer observed after its fence) guarantees a
    /// concurrent owner reset to 0 is never resurrected: once the owner
    /// stores 0, every in-flight increment's expected value mismatches.
    fn bump_streak(&self, t: usize, observed: u64) {
        let _ = self.quiescent_streak[t].compare_exchange(
            observed,
            observed.wrapping_add(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Whether thread `t` may be skipped by `pingAllToPublish`: quiescent
    /// (activity word even) with empty published and local reservations.
    /// Must run after the caller's `SeqCst` fence (see module docs).
    fn is_provably_quiescent(&self, t: usize) -> bool {
        if self.activity[t].load(Ordering::SeqCst) & 1 != 0 {
            return false;
        }
        let base = t * self.slots;
        for s in 0..self.slots {
            // Stale non-zero shared words would pin garbage forever without
            // a refreshing publish — always ping those threads. Non-zero
            // locals mean a protect outside an op bracket — ping, to stay
            // conservative for protocol-violating callers.
            if self.shared[base + s].load(Ordering::Acquire) != 0
                || self.local[base + s].load(Ordering::Acquire) != 0
            {
                return false;
            }
        }
        true
    }

    /// Executes one process-wide heavy barrier, accounting it on `me`'s
    /// shard — the **single** place `membarriers` is counted (the `HPAsym`
    /// baseline and the POP membarrier mode both come through here).
    /// Returns `false` when the barrier could not run (probe failed, call
    /// failed, or an injected fault); callers must then use the signal
    /// fan-out for this pass.
    pub(crate) fn heavy_membarrier(&self, me: usize) -> bool {
        if pop_runtime::membarrier::heavy() {
            self.stats
                .shard(me)
                .membarriers
                .fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The membarrier-mode replacement for the whole ping/wait sequence:
    /// one heavy barrier, no signals, no waits. Returns `false` on barrier
    /// failure **after stickily downgrading the domain** — the caller
    /// falls through to the signal fan-out.
    fn membarrier_pass(&self, me: usize) -> bool {
        // Order our own prior unlinks before the barrier (the barrier
        // syscall is itself a full barrier on this CPU, but the fence
        // keeps the argument local and costs nothing next to the IPI).
        fence(Ordering::SeqCst);
        if !self.heavy_membarrier(me) {
            // Mid-pass failure (seccomp landed after init, or an injected
            // MembarrierFail): never try again — a mode that flaps would
            // make every pass pay a failing syscall — and run this pass
            // through the fan-out below.
            self.downgraded.store(true, Ordering::Release);
            return false;
        }
        let peers = (0..self.nthreads)
            .filter(|&t| t != me && self.registered[t].load(Ordering::Acquire))
            .count() as u64;
        let shard = self.stats.shard(me);
        shard.membarrier_passes.fetch_add(1, Ordering::Relaxed);
        shard.signals_avoided.fetch_add(peers, Ordering::Relaxed);
        // Dead-peer probe (module docs): no waits ⇒ no watchdog ⇒ probe
        // registrations on a period instead. Runs on the first pass, then
        // every MEMBARRIER_DEAD_PROBE_EVERY-th.
        let n = self.mb_passes.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(MEMBARRIER_DEAD_PROBE_EVERY) {
            for t in 0..self.nthreads {
                if t != me && self.registered[t].load(Ordering::Acquire) {
                    self.note_dead_if_confirmed(t);
                }
            }
        }
        true
    }

    /// Reclaimer-side sequence: self-publish, `collectPublishedCounters`,
    /// `pingAllToPublish`, `waitForAllPublished` (Alg. 1 lines 19–21).
    ///
    /// `collected` is the caller's reusable scratch buffer; steady-state
    /// calls perform no heap allocation.
    ///
    /// Under membarrier mode the whole sequence collapses to one heavy
    /// barrier ([`Self::membarrier_pass`]); `collected` is left empty. A
    /// barrier failure downgrades stickily and falls through to the signal
    /// fan-out below, whose handshake works unchanged on a
    /// membarrier-configured domain (degenerate publishes — see
    /// [`Self::publish_tid`]).
    pub(crate) fn ping_all_and_wait(&self, me: usize, collected: &mut Vec<u64>) {
        if self.membarrier && !self.downgraded.load(Ordering::Acquire) {
            collected.clear();
            if self.membarrier_pass(me) {
                return;
            }
        }
        // The reclaimer publishes its own reservations directly — it may
        // itself hold protected pointers (e.g. a traversal retiring nodes
        // mid-walk) that the scan must honor.
        self.publish_tid(me);

        collected.clear();
        collected.resize(self.nthreads, SKIP);
        for (t, c) in collected.iter_mut().enumerate() {
            if t != me && self.registered[t].load(Ordering::Acquire) {
                *c = self.counter[t].load(Ordering::Acquire);
            }
        }
        fence(Ordering::SeqCst);
        // Membarrier-configured domains never elide pings: their
        // `note_active` is fence-free, which voids the two-SC-fence
        // elision proof, so the (downgrade-only) signal path here must
        // ping every registered peer.
        let filter = self.filter_quiescent && !self.membarrier;
        let mut pings = 0u64;
        let mut failed = 0u64;
        let mut skipped = 0u64;
        let mut adaptive = 0u64;
        for (t, c) in collected.iter_mut().enumerate() {
            if *c == SKIP {
                continue;
            }
            if filter {
                let streak = self.quiescent_streak[t].load(Ordering::SeqCst);
                if streak >= ADAPTIVE_SKIP_AFTER && !streak.is_multiple_of(ADAPTIVE_RESAMPLE_EVERY)
                {
                    // Adaptive fast path: the streak alone (read after our
                    // fence; zeroed by the owner before its `begin_op`
                    // fence) proves quiescence — skip even the slot scan.
                    self.bump_streak(t, streak);
                    *c = SKIP;
                    adaptive += 1;
                    continue;
                }
                if self.is_provably_quiescent(t) {
                    // No signal, no wait: the thread holds nothing and
                    // cannot reach this pass's retirees (module docs).
                    self.bump_streak(t, streak);
                    *c = SKIP;
                    skipped += 1;
                    continue;
                }
                // Active (or holding reservations): restart its streak.
                self.quiescent_streak[t].store(0, Ordering::Relaxed);
            }
            if let Some(gtid) = self.gtid(t) {
                match ping_gtid(gtid) {
                    PingOutcome::Sent => pings += 1,
                    // Deregistered between collection and the ping: the
                    // departing flush (or a proxy publish) satisfies the
                    // wait below, so keep waiting on the counter.
                    PingOutcome::Inactive => {}
                    PingOutcome::Dead => {
                        // The OS says the thread is gone: never wait for
                        // it. Its last words stay honored conservatively
                        // (suspect ⇒ local ∪ shared), and it is queued
                        // for the schemes' reaper.
                        failed += 1;
                        self.suspect[t].store(true, Ordering::Release);
                        self.note_dead_if_confirmed(t);
                        *c = SKIP;
                    }
                    PingOutcome::Failed(_) => {
                        // Send failed outright (never expected): skip the
                        // wait — the signal will not arrive — but keep
                        // the thread's reservations conservatively.
                        failed += 1;
                        self.suspect[t].store(true, Ordering::Release);
                        *c = SKIP;
                    }
                }
            }
        }
        let shard = self.stats.shard(me);
        shard.pings_sent.fetch_add(pings, Ordering::Relaxed);
        shard.pings_failed.fetch_add(failed, Ordering::Relaxed);
        shard.pings_skipped.fetch_add(skipped, Ordering::Relaxed);
        shard
            .pings_elided_adaptive
            .fetch_add(adaptive, Ordering::Relaxed);
        // Publish-wait watchdog: one wall-clock budget for the *whole
        // pass*, armed lazily the first time any wait outlives its spin
        // budget — the common pass never reads the clock.
        let mut pass_deadline: Option<Instant> = None;
        let mut timeouts = 0u64;
        for (t, &observed) in collected.iter().enumerate() {
            if observed == SKIP {
                continue;
            }
            let mut spins = 0u32;
            loop {
                // Acquire pairs with the handler's Release increment,
                // making the published reservations visible to the scan.
                if self.counter[t].load(Ordering::Acquire) > observed {
                    break;
                }
                // A thread that deregistered flushed empty reservations on
                // the way out; do not wait for it.
                if !self.registered[t].load(Ordering::Acquire) {
                    break;
                }
                // Bounded spin, then park (or yield): the pinged thread may
                // be descheduled on an oversubscribed host, and its handler
                // cannot run until it gets a CPU.
                spins = spins.saturating_add(1);
                if spins <= self.publish_spin {
                    core::hint::spin_loop();
                    continue;
                }
                if self.publish_deadline_ns > 0 {
                    let deadline = *pass_deadline.get_or_insert_with(|| {
                        Instant::now() + Duration::from_nanos(self.publish_deadline_ns)
                    });
                    if Instant::now() >= deadline {
                        // Deadline expired with this peer unpublished:
                        // abandon the wait. Correctness is preserved by
                        // keeping, not by waiting — the suspect flag makes
                        // the scan honor the peer's unpublished local
                        // words too — and a confirmed-dead peer is queued
                        // for reaping.
                        self.suspect[t].store(true, Ordering::Release);
                        timeouts += 1;
                        self.note_dead_if_confirmed(t);
                        break;
                    }
                }
                if self.futex_wait {
                    // Announce, re-check, park (module docs: the SeqCst
                    // announce/load pair with the publisher's bump/load, so
                    // a publish between our re-check and the FUTEX_WAIT
                    // either changes the word — EAGAIN — or wakes us).
                    self.waiters[t].fetch_add(1, Ordering::SeqCst);
                    let w = self.publish_word[t].load(Ordering::SeqCst);
                    if self.counter[t].load(Ordering::Acquire) <= observed
                        && self.registered[t].load(Ordering::Acquire)
                    {
                        // Watchdog expiry is decided by wall clock above,
                        // never by counting wait returns: a spurious wake
                        // (`Woken` without progress) re-checks and parks
                        // again without charging a timeout slice, and a
                        // lost wake costs at most one `TimedOut` interval
                        // before the predicate re-check.
                        let _ =
                            futex::wait_timeout(&self.publish_word[t], w, PUBLISH_WAIT_TIMEOUT_NS);
                    }
                    self.waiters[t].fetch_sub(1, Ordering::SeqCst);
                } else {
                    std::thread::yield_now();
                }
            }
        }
        if timeouts > 0 {
            shard
                .publish_wait_timeouts
                .fetch_add(timeouts, Ordering::Relaxed);
        }
    }

    /// Probes the registry registration behind domain tid `t`; a confirmed
    /// death flags the tid for [`Self::take_dead`] consumers. Ambiguity
    /// (alive, vacated, fabricated gtid) flags nothing — reaping is an
    /// optimization, keeping is the correctness story.
    fn note_dead_if_confirmed(&self, t: usize) {
        if let Some((gtid, generation)) = self.registration_of(t) {
            let backed = self.gtid_backed[t].load(Ordering::Relaxed);
            if crate::base::registration_confirmed_dead(gtid, generation, backed) {
                self.peer_dead[t].store(true, Ordering::Release);
            }
        }
    }

    /// Scans `sharedReservations` of every registered thread (Alg. 2 lines
    /// 28–31) into `out` as a sorted, deduplicated set of non-zero words.
    /// Allocation-free once `out` has grown to its working capacity.
    pub(crate) fn collect_reserved_into(&self, out: &mut Vec<u64>) {
        out.clear();
        for t in 0..self.nthreads {
            if !self.registered[t].load(Ordering::Acquire) {
                continue;
            }
            // A suspect thread (watchdog expiry / failed ping) may hold
            // reservations it never published: honor its *local* words too.
            // Correct-by-keep — the worst case is garbage surviving one
            // extra pass; racing torn reads are impossible (words are
            // single atomics) and stale reads only widen the keep set.
            let suspect = self.suspect[t].load(Ordering::Acquire);
            for s in 0..self.slots {
                let w = self.shared[t * self.slots + s].load(Ordering::Acquire);
                if w != 0 {
                    out.push(w);
                }
                if suspect {
                    let l = self.local[t * self.slots + s].load(Ordering::Acquire);
                    if l != 0 {
                        out.push(l);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Allocating convenience wrapper around [`Self::collect_reserved_into`]
    /// (tests and diagnostics only — reclamation passes use the scratch
    /// variant).
    pub(crate) fn collect_reserved(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.nthreads * self.slots);
        self.collect_reserved_into(&mut v);
        v
    }

    /// [`Self::collect_reserved_into`] restricted to threads `include`
    /// accepts — the emergency-rung "active set" scan that leaves a
    /// known-stalled blocker's reservations out. Excluded threads keep the
    /// same suspect-widening semantics when included elsewhere; callers
    /// must pair this with the full union scan for the actual free
    /// decision.
    pub(crate) fn collect_reserved_into_filtered(
        &self,
        out: &mut Vec<u64>,
        mut include: impl FnMut(usize) -> bool,
    ) {
        out.clear();
        for t in 0..self.nthreads {
            if !self.registered[t].load(Ordering::Acquire) || !include(t) {
                continue;
            }
            let suspect = self.suspect[t].load(Ordering::Acquire);
            for s in 0..self.slots {
                let w = self.shared[t * self.slots + s].load(Ordering::Acquire);
                if w != 0 {
                    out.push(w);
                }
                if suspect {
                    let l = self.local[t * self.slots + s].load(Ordering::Acquire);
                    if l != 0 {
                        out.push(l);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// One-word summary of thread `t`'s published reservations for the
    /// stall tracker: the minimum non-zero shared word (`0` if every slot
    /// is empty). A stalled reader re-publishing the *same* pinned era or
    /// pointer keeps the signature constant; any progress moves it.
    pub(crate) fn shared_word_signature(&self, t: usize) -> u64 {
        let mut sig = 0u64;
        for s in 0..self.slots {
            let w = self.shared[t * self.slots + s].load(Ordering::Acquire);
            if w != 0 && (sig == 0 || w < sig) {
                sig = w;
            }
        }
        sig
    }

    /// Whether thread `t` still publishes reservation word `w` in any
    /// shared slot — the quarantine release predicate for POP schemes (a
    /// parked block stays parked only while its blocker's pinning word is
    /// still visible).
    pub(crate) fn holds_shared_word(&self, t: usize, w: u64) -> bool {
        (0..self.slots).any(|s| self.shared[t * self.slots + s].load(Ordering::Acquire) == w)
    }

    /// Hard-rung targeted re-ping: signals every *suspect* registered peer
    /// (skipping `me`) once more, without waiting for publication. The
    /// suspects are exactly the threads whose reservations the scan is
    /// already honoring conservatively — a successful re-ping lets the
    /// next pass shrink that keep set. Returns the number of pings sent.
    pub(crate) fn reping_suspects(&self, me: usize) -> u64 {
        let mut pings = 0u64;
        let mut failed = 0u64;
        for t in 0..self.nthreads {
            if t == me
                || !self.registered[t].load(Ordering::Acquire)
                || !self.suspect[t].load(Ordering::Acquire)
            {
                continue;
            }
            if let Some(gtid) = self.gtid(t) {
                match ping_gtid(gtid) {
                    PingOutcome::Sent => pings += 1,
                    PingOutcome::Inactive => {}
                    PingOutcome::Dead => {
                        failed += 1;
                        self.note_dead_if_confirmed(t);
                    }
                    PingOutcome::Failed(_) => failed += 1,
                }
            }
        }
        if pings > 0 || failed > 0 {
            let shard = self.stats.shard(me);
            shard.pings_sent.fetch_add(pings, Ordering::Relaxed);
            shard.pings_failed.fetch_add(failed, Ordering::Relaxed);
        }
        pings
    }

    fn gtid(&self, tid: usize) -> Option<usize> {
        match self.gtid_of[tid].load(Ordering::Acquire) {
            0 => None,
            g => Some(g - 1),
        }
    }

    /// Takes one domain tid flagged as confirmed-dead (CAS-consumed, so
    /// each flag feeds exactly one reaper), or `None`.
    pub(crate) fn take_dead(&self) -> Option<usize> {
        (0..self.nthreads).find(|&t| {
            self.peer_dead[t].load(Ordering::Relaxed)
                && self.peer_dead[t]
                    .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
        })
    }

    /// The `(gtid, registry generation)` pair naming domain tid `t`'s
    /// registration, for registry confirmation before a reap.
    pub(crate) fn registration_of(&self, t: usize) -> Option<(usize, u64)> {
        self.gtid(t)
            .map(|g| (g, self.gtid_gen[t].load(Ordering::Relaxed)))
    }

    /// Removes a **confirmed-dead** participant from the ping set on its
    /// behalf: zeroes its reservations, bumps its publish counter, wakes
    /// any parked waiter, and unbinds it.
    ///
    /// Caller contract: the thread behind `tid` is dead (its registry
    /// registration was reaped), so nothing races the owner-side stores
    /// below; a dead thread's reservations protect nothing because it can
    /// no longer dereference.
    pub(crate) fn force_unregister(&self, tid: usize) {
        for s in 0..self.slots {
            self.local[self.idx(tid, s)].store(0, Ordering::Relaxed);
            self.shared[self.idx(tid, s)].store(0, Ordering::Relaxed);
        }
        fence(Ordering::SeqCst);
        self.suspect[tid].store(false, Ordering::Relaxed);
        self.counter[tid].fetch_add(1, Ordering::Release);
        if self.futex_wait {
            // Same Dekker pairing as `publish_tid`: waiters parked on the
            // dead thread's publish word must observe this and re-check.
            self.publish_word[tid].fetch_add(1, Ordering::SeqCst);
            if self.waiters[tid].load(Ordering::SeqCst) > 0 {
                futex::wake_all(&self.publish_word[tid]);
            }
        }
        self.registered[tid].store(false, Ordering::Release);
        self.gtid_of[tid].store(0, Ordering::Relaxed);
        self.gtid_backed[tid].store(false, Ordering::Relaxed);
    }

    /// Published counter value (test observability).
    #[cfg(test)]
    pub(crate) fn counter_of(&self, tid: usize) -> u64 {
        self.counter[tid].load(Ordering::Acquire)
    }

    /// Reaps at most one participant whose kernel thread was confirmed
    /// dead (flagged by [`Self::note_dead_if_confirmed`] from the watchdog
    /// or a failed ping): erases it from the ping set, parks its pending
    /// retires as orphans, and frees its domain tid — recovering the slot,
    /// the memory, and (for epoch-hybrid schemes) the epoch min-scan,
    /// which gates on `DomainBase::is_registered`.
    ///
    /// `retire_of` hands over the dead slot's retire list. The caller
    /// guarantees only that `reaper_tid` is its own registered tid;
    /// exclusivity over the *dead* slot's single-owner state comes from
    /// winning the per-slot reap CAS and re-confirming the death
    /// ([`crate::base::reap_registration`]) for that `(gtid, generation)`
    /// — a loser simply abandons (correct-by-keep). `force_unregister`
    /// runs *before* `reap_participant`: the latter ends by releasing the
    /// tid for reuse, and a new claimant's registration must not race our
    /// teardown.
    pub(crate) fn reap_one_dead<'a>(
        &self,
        base: &DomainBase,
        reaper_tid: usize,
        retire_of: impl FnOnce(usize) -> &'a mut RetireList,
    ) -> Option<usize> {
        let t = self.take_dead()?;
        if t == reaper_tid || !base.try_begin_reap(t) {
            return None;
        }
        let confirmed = match self.registration_of(t) {
            Some((gtid, generation)) => {
                let backed = self.gtid_backed[t].load(Ordering::Relaxed);
                crate::base::reap_registration(gtid, generation, backed)
            }
            None => false,
        };
        let reaped = if confirmed {
            self.force_unregister(t);
            base.reap_participant(reaper_tid, t, retire_of(t));
            Some(t)
        } else {
            None
        };
        base.end_reap(t);
        reaped
    }
}

impl Publisher for PopShared {
    /// Signal-handler entry: publish for whichever domain tid the pinged
    /// thread holds. Bounded loop over domain tids; atomics and one fence
    /// only — async-signal-safe (the registry is initialized long before
    /// any thread is pingable, so `Registry::global()` is a plain load).
    ///
    /// Registry slots recycle, so this handler — running on the slot's
    /// *current* owner — may find a dead thread's domain tid still bound
    /// to the same gtid. Publishing for the corpse would bump its counter:
    /// forged proof of life that satisfies every publish wait and keeps
    /// the watchdog (and thus the reaper) from ever engaging. The claim
    /// generation captured at bind time disambiguates — a registry-backed
    /// binding is published only for the current claim of its slot.
    /// (Unbacked bindings — unit-test fabrications — are exempt: their
    /// captured generation tracks an unrelated slot and may drift.)
    fn publish(&self, gtid: usize) {
        let current = Registry::global().generation_of(gtid);
        for t in 0..self.nthreads {
            if self.registered[t].load(Ordering::Acquire)
                && self.gtid_of[t].load(Ordering::Acquire) == gtid + 1
            {
                let stale = self.gtid_backed[t].load(Ordering::Relaxed)
                    && self.gtid_gen[t].load(Ordering::Relaxed) != current;
                if !stale {
                    self.publish_tid(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DEFAULT_PUBLISH_DEADLINE_NS, DEFAULT_PUBLISH_SPIN};

    fn mk(n: usize, slots: usize) -> &'static PopShared {
        PopShared::leak(
            n,
            slots,
            Arc::new(DomainStats::new(n)),
            true,
            DEFAULT_PUBLISH_SPIN,
            true,
            DEFAULT_PUBLISH_DEADLINE_NS,
            false,
        )
    }

    /// A membarrier-mode instance (reservations in shared slots, fan-out
    /// replaced by one heavy barrier).
    fn mk_mb(n: usize, slots: usize) -> &'static PopShared {
        PopShared::leak(
            n,
            slots,
            Arc::new(DomainStats::new(n)),
            true,
            DEFAULT_PUBLISH_SPIN,
            true,
            DEFAULT_PUBLISH_DEADLINE_NS,
            true,
        )
    }

    #[test]
    fn local_then_publish_reaches_shared() {
        let p = mk(2, 4);
        p.register(0, 100);
        p.set_local(0, 1, 0xABCD00);
        assert!(p.collect_reserved().is_empty(), "local is private pre-ping");
        p.publish_tid(0);
        assert_eq!(p.collect_reserved(), vec![0xABCD00]);
    }

    #[test]
    fn clear_local_then_publish_empties_shared() {
        let p = mk(1, 2);
        p.register(0, 0);
        p.set_local(0, 0, 42);
        p.publish_tid(0);
        assert_eq!(p.collect_reserved(), vec![42]);
        p.clear_local(0);
        assert_eq!(
            p.collect_reserved(),
            vec![42],
            "shared keeps stale value until next publish (conservative)"
        );
        p.publish_tid(0);
        assert!(p.collect_reserved().is_empty());
    }

    #[test]
    fn collect_sorts_and_dedups_across_threads() {
        let p = mk(3, 2);
        for t in 0..3 {
            p.register(t, t);
        }
        p.set_local(0, 0, 30);
        p.set_local(1, 0, 10);
        p.set_local(1, 1, 30);
        p.set_local(2, 1, 20);
        for t in 0..3 {
            p.publish_tid(t);
        }
        assert_eq!(p.collect_reserved(), vec![10, 20, 30]);
    }

    #[test]
    fn collect_into_reuses_buffer_without_realloc() {
        let p = mk(2, 2);
        p.register(0, 0);
        p.register(1, 1);
        let mut buf = Vec::with_capacity(4);
        let ptr_before = buf.as_ptr();
        p.set_local(0, 0, 9);
        p.set_local(1, 0, 3);
        p.publish_tid(0);
        p.publish_tid(1);
        p.collect_reserved_into(&mut buf);
        assert_eq!(buf, vec![3, 9]);
        assert_eq!(buf.as_ptr(), ptr_before, "warm buffer must not realloc");
    }

    #[test]
    fn unregister_flushes_and_removes() {
        let p = mk(2, 2);
        p.register(0, 0);
        p.register(1, 1);
        p.set_local(1, 0, 7);
        p.publish_tid(1);
        assert_eq!(p.collect_reserved(), vec![7]);
        let c = p.counter_of(1);
        p.unregister(1);
        assert!(p.counter_of(1) > c, "unregister must bump the counter");
        assert!(p.collect_reserved().is_empty());
    }

    #[test]
    fn publisher_dispatch_maps_gtid_to_tid() {
        let p = mk(2, 1);
        p.register(0, 55);
        p.register(1, 66);
        p.set_local(0, 0, 111);
        p.set_local(1, 0, 222);
        Publisher::publish(p, 66);
        assert_eq!(
            p.collect_reserved(),
            vec![222],
            "only the pinged gtid's tid publishes"
        );
    }

    #[test]
    fn ping_all_without_peers_returns_immediately() {
        let p = mk(4, 2);
        p.register(2, 9);
        p.set_local(2, 0, 5);
        let mut scratch = Vec::new();
        p.ping_all_and_wait(2, &mut scratch); // peers unregistered: must not block
        assert_eq!(p.collect_reserved(), vec![5], "self-publish happened");
    }

    #[test]
    fn activity_word_tracks_op_parity() {
        let p = mk(1, 1);
        p.register(0, 0);
        assert!(p.is_provably_quiescent(0), "fresh registrant is quiescent");
        p.note_active(0);
        assert!(!p.is_provably_quiescent(0));
        p.note_quiescent(0);
        assert!(p.is_provably_quiescent(0));
        // Unpaired end_op (tests do this) must keep the word even.
        p.note_quiescent(0);
        assert!(p.is_provably_quiescent(0));
    }

    #[test]
    fn adaptive_filter_kicks_in_after_streak_and_resets_on_activity() {
        let p = mk(2, 2);
        p.register(0, 100);
        p.register(1, 101);
        let mut scratch = Vec::new();
        // The first ADAPTIVE_SKIP_AFTER passes verify quiescence the slow
        // way (full slot scan), building the streak.
        for _ in 0..ADAPTIVE_SKIP_AFTER {
            p.ping_all_and_wait(0, &mut scratch);
        }
        let s = p.stats.snapshot();
        assert_eq!(s.pings_skipped, ADAPTIVE_SKIP_AFTER);
        assert_eq!(s.pings_elided_adaptive, 0, "threshold not yet reached");
        // Streak reached: subsequent passes take the adaptive fast path.
        for _ in 0..4 {
            p.ping_all_and_wait(0, &mut scratch);
        }
        let s = p.stats.snapshot();
        assert_eq!(s.pings_elided_adaptive, 4);
        assert_eq!(s.pings_skipped, ADAPTIVE_SKIP_AFTER, "slot scans elided");
        // The owner's begin_op resets the streak; after it goes quiescent
        // again the next pass must re-verify the slow way.
        p.note_active(1);
        p.note_quiescent(1);
        p.ping_all_and_wait(0, &mut scratch);
        let s = p.stats.snapshot();
        assert_eq!(
            s.pings_skipped,
            ADAPTIVE_SKIP_AFTER + 1,
            "owner activity forces a full re-check"
        );
        assert_eq!(s.pings_elided_adaptive, 4);
    }

    #[test]
    fn adaptive_filter_resamples_periodically() {
        let p = mk(2, 1);
        p.register(0, 100);
        p.register(1, 101);
        let mut scratch = Vec::new();
        // Build the streak past the threshold, then far enough that the
        // resample boundary (a multiple of ADAPTIVE_RESAMPLE_EVERY) is
        // crossed exactly once.
        let total = ADAPTIVE_RESAMPLE_EVERY + 1;
        for _ in 0..total {
            p.ping_all_and_wait(0, &mut scratch);
        }
        let s = p.stats.snapshot();
        // Full checks: the first ADAPTIVE_SKIP_AFTER passes, plus the one
        // resample at streak == ADAPTIVE_RESAMPLE_EVERY.
        assert_eq!(s.pings_skipped, ADAPTIVE_SKIP_AFTER + 1);
        assert_eq!(
            s.pings_elided_adaptive,
            total - ADAPTIVE_SKIP_AFTER - 1,
            "everything else takes the adaptive path"
        );
    }

    #[test]
    fn resample_catches_out_of_bracket_reservation_and_accounting_balances() {
        // The 64-count full re-check is the liveness defense for callers
        // that reserve OUTSIDE an op bracket: the adaptive fast path never
        // scans slots, so a stale local reservation goes unseen until the
        // streak hits a multiple of ADAPTIVE_RESAMPLE_EVERY, where the
        // full check must fail quiescence and reset the streak.
        let p = mk(2, 1);
        p.register(0, 100);
        p.register(1, 101);
        let mut scratch = Vec::new();
        // Phase A: build the streak the slow way (full slot scans).
        for _ in 0..ADAPTIVE_SKIP_AFTER {
            p.ping_all_and_wait(0, &mut scratch);
        }
        // Protocol violation: a local reservation with no begin_op — the
        // streak is NOT reset, so the adaptive path keeps skipping.
        p.set_local(1, 0, 0xBAD);
        // Phase B: every pass until the resample boundary takes the
        // adaptive path, blind to the new reservation.
        let blind = ADAPTIVE_RESAMPLE_EVERY - ADAPTIVE_SKIP_AFTER;
        for _ in 0..blind {
            p.ping_all_and_wait(0, &mut scratch);
        }
        let s = p.stats.snapshot();
        assert_eq!(s.pings_skipped, ADAPTIVE_SKIP_AFTER);
        assert_eq!(s.pings_elided_adaptive, blind);
        // Phase C: streak == ADAPTIVE_RESAMPLE_EVERY forces the full
        // check, which sees the non-zero local and pings + waits. The
        // fake gtid makes the ping fail, so a helper publishes for the
        // peer until the waiter (parked on the futex) is released.
        let stop = Arc::new(AtomicBool::new(false));
        let helper = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                while !stop.load(Ordering::Acquire) {
                    p.publish_tid(1);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        });
        p.ping_all_and_wait(0, &mut scratch);
        stop.store(true, Ordering::Release);
        helper.join().unwrap();
        let s = p.stats.snapshot();
        // The resample pass is accounted as NEITHER a skip NOR an adaptive
        // elision: every pass's peer decision lands in exactly one bucket.
        let passes = ADAPTIVE_SKIP_AFTER + blind + 1;
        assert_eq!(s.pings_skipped, ADAPTIVE_SKIP_AFTER, "no new skip");
        assert_eq!(s.pings_elided_adaptive, blind, "no new elision");
        assert_eq!(s.pings_sent, 0, "fake gtid: the ping attempt fails");
        assert_eq!(
            s.pings_sent + s.pings_skipped + s.pings_elided_adaptive,
            passes - 1,
            "one decision per pass; only the resample pass fell through"
        );
        // The failed full check reset the streak: the NEXT pass re-checks
        // the slow way again (stale shared word from the helper's publish
        // keeps it un-skippable) instead of resuming the adaptive path.
        let stop = Arc::new(AtomicBool::new(false));
        let helper = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                while !stop.load(Ordering::Acquire) {
                    p.publish_tid(1);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        });
        p.ping_all_and_wait(0, &mut scratch);
        stop.store(true, Ordering::Release);
        helper.join().unwrap();
        let s = p.stats.snapshot();
        assert_eq!(
            s.pings_elided_adaptive, blind,
            "streak reset: no adaptive skip right after the failed resample"
        );
    }

    #[test]
    fn parked_waiter_wakes_on_cross_thread_publish() {
        // Zero spin budget: the waiter parks on the futex immediately; a
        // publish from another thread must wake it well before the wait
        // timeout accumulates into seconds.
        let p = PopShared::leak(
            2,
            1,
            Arc::new(DomainStats::new(2)),
            true,
            0,
            true,
            DEFAULT_PUBLISH_DEADLINE_NS,
            false,
        );
        p.register(0, 100);
        p.register(1, 101);
        // Peer 1 looks active with a reservation: not skippable, and the
        // (failing, fake-gtid) ping leaves the waiter blocked on the
        // publish counter.
        p.note_active(1);
        p.set_local(1, 0, 0xFEED);
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                // First publish delayed past the (zero) spin budget so the
                // waiter parks; then keep publishing in case the first one
                // raced ahead of the waiter's counter collection.
                std::thread::sleep(std::time::Duration::from_millis(30));
                while !stop.load(Ordering::Acquire) {
                    p.publish_tid(1);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        });
        let mut scratch = Vec::new();
        let t0 = std::time::Instant::now();
        p.ping_all_and_wait(0, &mut scratch);
        stop.store(true, Ordering::Release);
        publisher.join().unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "parked waiter must be woken by the publish"
        );
        assert_eq!(p.collect_reserved(), vec![0xFEED]);
    }

    #[test]
    fn yield_fallback_wait_completes_without_futex() {
        let p = PopShared::leak(
            2,
            1,
            Arc::new(DomainStats::new(2)),
            true,
            4,
            false,
            DEFAULT_PUBLISH_DEADLINE_NS,
            false,
        );
        p.register(0, 100);
        p.register(1, 101);
        p.note_active(1);
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                while !stop.load(Ordering::Acquire) {
                    p.publish_tid(1);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        });
        let mut scratch = Vec::new();
        p.ping_all_and_wait(0, &mut scratch);
        stop.store(true, Ordering::Release);
        publisher.join().unwrap();
    }

    #[test]
    fn watchdog_unwedges_wait_on_never_publishing_peer() {
        // Peer 1 looks active with a reservation but will NEVER publish
        // (fake gtid: the ping goes nowhere, and no helper publishes for
        // it). Pre-watchdog this wait was unbounded; now the pass must
        // complete within the deadline, keep the peer's unpublished local
        // word conservatively, and count the timeout.
        let p = PopShared::leak(
            2,
            1,
            Arc::new(DomainStats::new(2)),
            true,
            4,
            true,
            50_000_000, // 50 ms
            false,
        );
        p.register(0, 100);
        p.register(1, 101);
        p.note_active(1);
        p.set_local(1, 0, 0xDEAD_BEEF);
        let mut scratch = Vec::new();
        let t0 = std::time::Instant::now();
        p.ping_all_and_wait(0, &mut scratch);
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "watchdog must bound the wait (took {elapsed:?})"
        );
        assert_eq!(
            p.stats.snapshot().publish_wait_timeouts,
            1,
            "the abandoned wait is counted"
        );
        assert_eq!(
            p.collect_reserved(),
            vec![0xDEAD_BEEF],
            "the laggard's unpublished local reservation is honored"
        );
        // The fabricated gtid must never be mistaken for a dead thread.
        assert_eq!(p.take_dead(), None);
        // Once the peer finally publishes, suspicion lifts and its local
        // words stop being unioned in.
        p.clear_local(1);
        p.publish_tid(1);
        assert!(p.collect_reserved().is_empty());
    }

    #[test]
    fn watchdog_disabled_by_zero_deadline_waits_for_publish() {
        // Deadline 0 restores unbounded waits: the pass returns only
        // because the helper publishes, and no timeout is counted.
        let p = PopShared::leak(2, 1, Arc::new(DomainStats::new(2)), true, 4, true, 0, false);
        p.register(0, 100);
        p.register(1, 101);
        p.note_active(1);
        p.set_local(1, 0, 0xF00D);
        let stop = Arc::new(AtomicBool::new(false));
        let helper = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                while !stop.load(Ordering::Acquire) {
                    p.publish_tid(1);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        });
        let mut scratch = Vec::new();
        p.ping_all_and_wait(0, &mut scratch);
        stop.store(true, Ordering::Release);
        helper.join().unwrap();
        assert_eq!(p.stats.snapshot().publish_wait_timeouts, 0);
    }

    #[test]
    fn dead_peer_is_flagged_reaped_and_forcibly_unregistered() {
        // A real registered thread dies without deregistering (forgotten
        // guard). The watchdog pass must abandon the wait, confirm death
        // through the registry, and take_dead must hand the tid to a
        // reaper exactly once; force_unregister then drops it from the
        // ping set and empties its reservations.
        let p = PopShared::leak(
            2,
            1,
            Arc::new(DomainStats::new(2)),
            true,
            4,
            true,
            50_000_000, // 50 ms
            false,
        );
        let (tx, rx) = std::sync::mpsc::channel();
        let victim = std::thread::spawn(move || {
            let reg = Registry::global().register_current();
            tx.send(reg.gtid()).unwrap();
            // Die without deregistering.
            std::mem::forget(reg);
        });
        let gtid = rx.recv().unwrap();
        // Capture the generation while provably claimed, then wait for the
        // OS to report the thread gone before the watchdog pass.
        let generation = Registry::global().generation_of(gtid);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while Registry::global().probe(gtid, generation) != pop_runtime::Liveness::Dead {
            assert!(std::time::Instant::now() < deadline, "victim never died");
            std::thread::yield_now();
        }
        p.register(0, 100);
        p.register(1, gtid);
        p.note_active(1);
        p.set_local(1, 0, 0xD1ED);
        let mut scratch = Vec::new();
        p.ping_all_and_wait(0, &mut scratch);
        let t = p.take_dead().expect("dead peer must be flagged");
        assert_eq!(t, 1);
        assert_eq!(p.take_dead(), None, "flag is consumed exactly once");
        let (g, gen2) = p.registration_of(1).unwrap();
        assert_eq!(g, gtid);
        assert_eq!(gen2, generation);
        assert!(Registry::global().reap(gtid, generation));
        p.force_unregister(1);
        assert!(p.collect_reserved().is_empty(), "dead words dropped");
        victim.join().unwrap();
    }

    #[test]
    fn nonempty_reservations_defeat_quiescence() {
        let p = mk(1, 2);
        p.register(0, 0);
        // Local reservation without an op bracket: not skippable.
        p.set_local(0, 1, 0xFEED);
        assert!(!p.is_provably_quiescent(0));
        // Published but cleared-local (stale shared): still not skippable.
        p.publish_tid(0);
        p.clear_local(0);
        assert!(!p.is_provably_quiescent(0));
        // Republished empty: skippable again.
        p.publish_tid(0);
        assert!(p.is_provably_quiescent(0));
    }

    // -----------------------------------------------------------------
    // Membarrier publish mode (module docs, "Membarrier publish mode").
    // -----------------------------------------------------------------

    #[test]
    fn membarrier_mode_owner_stores_land_in_shared_slots() {
        let p = mk_mb(1, 2);
        p.register(0, 0);
        p.set_local(0, 1, 0xAB);
        assert_eq!(
            p.collect_reserved(),
            vec![0xAB],
            "no publish needed — owner stores are already shared"
        );
        assert_eq!(
            p.local_at(0, 1),
            0xAB,
            "owner readback routes to the same slots"
        );
        p.clear_local(0);
        assert!(p.collect_reserved().is_empty());
    }

    #[test]
    fn membarrier_pass_elides_fan_out_and_accounts_whole_pass() {
        if !pop_runtime::membarrier::is_available() {
            return; // fallback path covered by the downgrade test below
        }
        let p = mk_mb(3, 1);
        for t in 0..3 {
            p.register(t, 100 + t);
        }
        p.set_local(1, 0, 0x111);
        p.set_local(2, 0, 0x222);
        let mut scratch = vec![1, 2, 3];
        p.ping_all_and_wait(0, &mut scratch);
        assert!(
            scratch.is_empty(),
            "no counters collected — nothing was waited on"
        );
        let s = p.stats.snapshot();
        assert_eq!(s.membarrier_passes, 1);
        assert_eq!(
            s.membarriers, 1,
            "one heavy barrier, counted at the single site"
        );
        assert_eq!(
            s.signals_avoided, 2,
            "one avoided signal per registered peer"
        );
        assert_eq!(s.pings_sent, 0);
        assert_eq!(
            (s.pings_skipped, s.pings_elided_adaptive),
            (0, 0),
            "whole-fan-out elision is not accounted as per-peer skips"
        );
        assert_eq!(
            p.collect_reserved(),
            vec![0x111, 0x222],
            "peer reservations visible with zero publishes"
        );
    }

    #[test]
    fn stray_handler_publish_does_not_clobber_membarrier_reservations() {
        let p = mk_mb(2, 1);
        p.register(0, 55);
        p.register(1, 66);
        p.set_local(1, 0, 0xBEEF); // lands directly in the shared slot
        assert_eq!(p.collect_reserved(), vec![0xBEEF]);
        // A stray ping (another domain's fan-out through the process-global
        // handler, or a hard-rung re-ping after a downgrade) runs this
        // domain's publish: the degenerate publish must NOT copy the
        // all-zero local words over the live shared reservation.
        Publisher::publish(p, 66);
        assert_eq!(
            p.collect_reserved(),
            vec![0xBEEF],
            "publish must not erase a live membarrier-mode reservation"
        );
        assert!(
            p.counter_of(1) >= 1,
            "the publish still bumps the counter (fallback handshake intact)"
        );
    }

    #[test]
    fn membarrier_mode_never_sets_suspects_so_reping_is_noop() {
        if !pop_runtime::membarrier::is_available() {
            return;
        }
        let p = mk_mb(2, 1);
        p.register(0, 100);
        p.register(1, 101);
        let mut scratch = Vec::new();
        p.ping_all_and_wait(0, &mut scratch);
        assert_eq!(
            p.reping_suspects(0),
            0,
            "pure membarrier mode never suspects anyone — the hard rung's re-ping is a no-op"
        );
    }

    #[test]
    fn membarrier_pass_probes_dead_peer_without_waits() {
        if !pop_runtime::membarrier::is_available() {
            return;
        }
        // Same corpse setup as the watchdog test above, but detection must
        // ride the periodic registry probe (first pass runs it): the fast
        // path never pings and never waits, so the watchdog cannot fire.
        let p = mk_mb(2, 1);
        let (tx, rx) = std::sync::mpsc::channel();
        let victim = std::thread::spawn(move || {
            let reg = Registry::global().register_current();
            tx.send(reg.gtid()).unwrap();
            std::mem::forget(reg);
        });
        let gtid = rx.recv().unwrap();
        let generation = Registry::global().generation_of(gtid);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while Registry::global().probe(gtid, generation) != pop_runtime::Liveness::Dead {
            assert!(std::time::Instant::now() < deadline, "victim never died");
            std::thread::yield_now();
        }
        p.register(0, 100);
        p.register(1, gtid);
        p.set_local(1, 0, 0xD1ED);
        let mut scratch = Vec::new();
        p.ping_all_and_wait(0, &mut scratch);
        let s = p.stats.snapshot();
        assert_eq!(
            s.membarrier_passes, 1,
            "the pass must have taken the fast path"
        );
        assert_eq!(
            s.publish_wait_timeouts, 0,
            "no waits, so no watchdog expiries"
        );
        let t = p
            .take_dead()
            .expect("the registry probe must flag the corpse");
        assert_eq!(t, 1);
        assert_eq!(
            p.collect_reserved(),
            vec![0xD1ED],
            "dead words stay honored until the reaper runs"
        );
        assert!(Registry::global().reap(gtid, generation));
        p.force_unregister(1);
        assert!(p.collect_reserved().is_empty());
        victim.join().unwrap();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn membarrier_failure_downgrades_stickily_to_fan_out() {
        let _g = faults::test_lock();
        faults::install(faults::FaultPlan::default().with_rate(FaultSite::MembarrierFail, 1));
        let p = mk_mb(1, 1);
        p.register(0, 7);
        p.set_local(0, 0, 0xF00D);
        let mut scratch = Vec::new();
        p.ping_all_and_wait(0, &mut scratch);
        assert!(
            p.downgraded.load(Ordering::Acquire),
            "a failed heavy barrier must downgrade the domain"
        );
        let s1 = p.stats.snapshot();
        assert_eq!(s1.membarrier_passes, 0);
        assert_eq!(s1.signals_avoided, 0);
        assert!(
            s1.publishes >= 1,
            "the failing pass must fall through to the fan-out (self-publish ran)"
        );
        assert_eq!(
            p.collect_reserved(),
            vec![0xF00D],
            "reservations survive the downgrade — readers never change behavior"
        );
        faults::clear();
        // The barrier works again, but the downgrade is sticky.
        p.ping_all_and_wait(0, &mut scratch);
        assert_eq!(
            p.stats.snapshot().membarrier_passes,
            0,
            "downgrade must be sticky — no flapping back to membarrier"
        );
    }
}
