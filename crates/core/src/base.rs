//! Domain plumbing shared by every scheme: thread-slot occupancy, retire
//! lists, the quarantine use-after-free detector, and orphan handling.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::SmrConfig;
use crate::header::Retired;
use crate::stats::DomainStats;

/// A per-thread retire list with single-owner interior mutability.
///
/// Soundness: only the thread that claimed the enclosing tid (enforced by
/// [`DomainBase::claim`]'s panic-on-double-claim) may call [`Self::get`].
pub(crate) struct RetireSlot(UnsafeCell<Vec<Retired>>);

// SAFETY: access is confined to the owning thread by the registration
// protocol; the cell itself is never aliased across threads.
unsafe impl Sync for RetireSlot {}
unsafe impl Send for RetireSlot {}

impl RetireSlot {
    pub(crate) fn new() -> Self {
        RetireSlot(UnsafeCell::new(Vec::new()))
    }

    /// # Safety
    ///
    /// Caller must be the registered owner of the enclosing tid.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut Vec<Retired> {
        // SAFETY: single-owner contract above.
        unsafe { &mut *self.0.get() }
    }
}

/// State common to all reclamation domains.
pub(crate) struct DomainBase {
    pub cfg: SmrConfig,
    pub stats: Arc<DomainStats>,
    occupied: Box<[AtomicBool]>,
    /// Domain tid → global thread id + 1 (0 = unbound). Used by
    /// signal-based schemes to ping participants.
    gtid_of: Box<[AtomicUsize]>,
    /// Quarantined (poisoned) nodes when `cfg.quarantine` is set.
    quarantine: Mutex<Vec<Retired>>,
    /// Retire-list leftovers from threads that unregistered while some of
    /// their garbage was still reserved by others. Freed on domain drop.
    orphans: Mutex<Vec<Retired>>,
}

impl DomainBase {
    pub(crate) fn new(cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        assert!(n >= 1, "domain needs at least one thread slot");
        let mut occupied = Vec::with_capacity(n);
        occupied.resize_with(n, || AtomicBool::new(false));
        let mut gtids = Vec::with_capacity(n);
        gtids.resize_with(n, || AtomicUsize::new(0));
        DomainBase {
            cfg,
            stats: Arc::new(DomainStats::default()),
            occupied: occupied.into_boxed_slice(),
            gtid_of: gtids.into_boxed_slice(),
            quarantine: Mutex::new(Vec::new()),
            orphans: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn claim(&self, tid: usize) {
        assert!(
            tid < self.cfg.max_threads,
            "tid {tid} out of range (max_threads = {})",
            self.cfg.max_threads
        );
        let was = self.occupied[tid].swap(true, Ordering::AcqRel);
        assert!(!was, "tid {tid} is already registered in this domain");
    }

    pub(crate) fn release(&self, tid: usize) {
        self.occupied[tid].store(false, Ordering::Release);
    }

    pub(crate) fn is_registered(&self, tid: usize) -> bool {
        self.occupied[tid].load(Ordering::Acquire)
    }

    pub(crate) fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.gtid_of[tid].store(gtid + 1, Ordering::Release);
    }

    pub(crate) fn clear_gtid(&self, tid: usize) {
        self.gtid_of[tid].store(0, Ordering::Release);
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn gtid(&self, tid: usize) -> Option<usize> {
        match self.gtid_of[tid].load(Ordering::Acquire) {
            0 => None,
            g => Some(g - 1),
        }
    }

    /// Frees (or quarantines) one retired object, updating accounting.
    ///
    /// # Safety
    ///
    /// The scheme must have proven no thread can access the object.
    pub(crate) unsafe fn free_now(&self, r: Retired) {
        let bytes = r.header().size() as u64;
        self.stats.freed_nodes.fetch_add(1, Ordering::Relaxed);
        self.stats.freed_bytes.fetch_add(bytes, Ordering::Relaxed);
        if self.cfg.quarantine {
            r.header().poison();
            self.quarantine.lock().push(r);
        } else {
            // SAFETY: forwarded contract.
            unsafe { r.free() };
        }
    }

    /// Parks leftovers from an unregistering thread; they are deallocated
    /// when the domain drops (at which point no readers remain).
    pub(crate) fn adopt_orphans(&self, leftovers: Vec<Retired>) {
        if !leftovers.is_empty() {
            self.orphans.lock().extend(leftovers);
        }
    }

    /// Number of quarantined nodes (test observability).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn quarantine_len(&self) -> usize {
        self.quarantine.lock().len()
    }
}

impl Drop for DomainBase {
    fn drop(&mut self) {
        // Skip the discipline check when unwinding from an unrelated panic
        // (a panicking destructor would abort the process).
        if !std::thread::panicking() {
            debug_assert!(
                self.occupied.iter().all(|o| !o.load(Ordering::Acquire)),
                "domain dropped while threads are still registered"
            );
        }
        // All participants are gone: quarantined and orphaned nodes can be
        // deallocated for real.
        for r in self.quarantine.get_mut().drain(..) {
            // SAFETY: no registered threads remain, so no reader exists.
            unsafe { r.free() };
        }
        for r in self.orphans.get_mut().drain(..) {
            self.stats.freed_nodes.fetch_add(1, Ordering::Relaxed);
            self.stats
                .freed_bytes
                .fetch_add(r.header().size() as u64, Ordering::Relaxed);
            // SAFETY: as above.
            unsafe { r.free() };
        }
    }
}

/// Frees every entry of `list` whose pointer is **not** in the sorted
/// `reserved` set; reserved entries are retained. Returns the number freed.
///
/// # Safety
///
/// `reserved` must contain every (unmarked) pointer any thread may still
/// access — the scheme's scan guarantees this.
pub(crate) unsafe fn free_unreserved(
    base: &DomainBase,
    list: &mut Vec<Retired>,
    reserved: &[u64],
) -> usize {
    debug_assert!(reserved.windows(2).all(|w| w[0] <= w[1]));
    let old = core::mem::take(list);
    let mut freed = 0;
    for r in old {
        if reserved.binary_search(&(r.ptr() as u64)).is_ok() {
            list.push(r);
        } else {
            // SAFETY: pointer absent from the complete reservation set.
            unsafe { base.free_now(r) };
            freed += 1;
        }
    }
    freed
}

/// Frees every entry whose `[birth_era, retire_era]` lifespan intersects no
/// reserved era in the sorted `reserved` slice (hazard-eras `canFree`,
/// paper Alg. 4/5). Returns the number freed.
///
/// # Safety
///
/// `reserved` must include every era any thread may have reserved.
pub(crate) unsafe fn free_era_unreserved(
    base: &DomainBase,
    list: &mut Vec<Retired>,
    reserved: &[u64],
) -> usize {
    debug_assert!(reserved.windows(2).all(|w| w[0] <= w[1]));
    let old = core::mem::take(list);
    let mut freed = 0;
    for r in old {
        let birth = r.header().birth_era;
        let retire = r.header().retire_era();
        if era_range_reserved(reserved, birth, retire) {
            list.push(r);
        } else {
            // SAFETY: no reserved era intersects the lifespan.
            unsafe { base.free_now(r) };
            freed += 1;
        }
    }
    freed
}

/// Whether any era in sorted `reserved` lies within `[birth, retire]`.
pub fn era_range_reserved(reserved: &[u64], birth: u64, retire: u64) -> bool {
    // First reserved era >= birth; blocked if it also <= retire.
    let idx = reserved.partition_point(|&e| e < birth);
    idx < reserved.len() && reserved[idx] <= retire
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{Header, Retired};

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl crate::header::HasHeader for N {}

    fn mk(base: &DomainBase, birth: u64, retire: u64) -> Retired {
        base.stats
            .allocated_nodes
            .fetch_add(1, Ordering::Relaxed);
        let p = Box::into_raw(Box::new(N {
            hdr: Header::new(birth, core::mem::size_of::<N>()),
            v: 0,
        }));
        let r = unsafe { Retired::new(p) };
        r.header().set_retire_era(retire);
        r
    }

    #[test]
    fn claim_release_cycle() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(0);
        assert!(b.is_registered(0));
        b.release(0);
        assert!(!b.is_registered(0));
        b.claim(0); // reclaimable after release
        b.release(0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_claim_panics() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(1);
        b.claim(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_claim_panics() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(2);
    }

    #[test]
    fn gtid_binding() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        assert_eq!(b.gtid(0), None);
        b.bind_gtid(0, 17);
        assert_eq!(b.gtid(0), Some(17));
        b.clear_gtid(0);
        assert_eq!(b.gtid(0), None);
    }

    #[test]
    fn free_unreserved_respects_reservations() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = vec![mk(&b, 0, 0), mk(&b, 0, 0), mk(&b, 0, 0)];
        let kept = list[1].ptr() as u64;
        let reserved = vec![kept];
        let freed = unsafe { free_unreserved(&b, &mut list, &reserved) };
        assert_eq!(freed, 2);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].ptr() as u64, kept);
        // Free the survivor so the allocation is not leaked in the test.
        let survivor = list.pop().unwrap();
        unsafe { b.free_now(survivor) };
    }

    #[test]
    fn quarantine_poisons_instead_of_freeing() {
        let b = DomainBase::new(SmrConfig::for_tests(1).with_quarantine());
        let r = mk(&b, 0, 0);
        let ptr = r.ptr();
        unsafe { b.free_now(r) };
        assert_eq!(b.quarantine_len(), 1);
        // The allocation is still mapped and poisoned.
        assert!(unsafe { &*ptr }.is_poisoned());
        assert_eq!(b.stats.freed_nodes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn era_reservation_blocking() {
        // reserved eras: 5, 10, 20
        let reserved = vec![5, 10, 20];
        assert!(era_range_reserved(&reserved, 4, 6)); // 5 inside
        assert!(era_range_reserved(&reserved, 10, 10)); // exact hit
        assert!(!era_range_reserved(&reserved, 6, 9)); // gap
        assert!(!era_range_reserved(&reserved, 21, 30)); // above all
        assert!(!era_range_reserved(&reserved, 0, 4)); // below all
        assert!(era_range_reserved(&reserved, 0, 100)); // spans all
        assert!(!era_range_reserved(&[], 0, u64::MAX)); // nothing reserved
    }

    #[test]
    fn era_free_pass() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        // lifespans: [1,2] freeable, [4,6] blocked by era 5, [7,9] freeable
        let mut list = vec![mk(&b, 1, 2), mk(&b, 4, 6), mk(&b, 7, 9)];
        let freed = unsafe { free_era_unreserved(&b, &mut list, &[3, 5, 10]) };
        assert_eq!(freed, 2);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].header().birth_era, 4);
        let survivor = list.pop().unwrap();
        unsafe { b.free_now(survivor) };
    }

    #[test]
    fn orphans_freed_on_drop() {
        let stats;
        {
            let b = DomainBase::new(SmrConfig::for_tests(1));
            stats = Arc::clone(&b.stats);
            let leftovers = vec![mk(&b, 0, 0), mk(&b, 0, 0)];
            b.adopt_orphans(leftovers);
            assert_eq!(stats.freed_nodes.load(Ordering::Relaxed), 0);
        }
        assert_eq!(stats.freed_nodes.load(Ordering::Relaxed), 2);
    }
}
