//! Domain plumbing shared by every scheme: thread-slot occupancy, retire
//! lists, reusable reclamation scratch, the quarantine use-after-free
//! detector, and orphan handling.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::SmrConfig;
use crate::header::Retired;
use crate::stats::DomainStats;

/// A per-thread retire list with single-owner interior mutability.
///
/// Soundness: only the thread that claimed the enclosing tid (enforced by
/// [`DomainBase::claim`]'s panic-on-double-claim) may call [`Self::get`].
pub(crate) struct RetireSlot(UnsafeCell<Vec<Retired>>);

// SAFETY: access is confined to the owning thread by the registration
// protocol; the cell itself is never aliased across threads.
unsafe impl Sync for RetireSlot {}
unsafe impl Send for RetireSlot {}

impl RetireSlot {
    pub(crate) fn new() -> Self {
        RetireSlot(UnsafeCell::new(Vec::new()))
    }

    /// # Safety
    ///
    /// Caller must be the registered owner of the enclosing tid.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut Vec<Retired> {
        // SAFETY: single-owner contract above.
        unsafe { &mut *self.0.get() }
    }
}

/// Reusable per-thread buffers for reclamation passes.
///
/// Every buffer a pass needs lives here and is only ever `clear()`ed, never
/// dropped, so a steady-state pass performs **zero heap allocations** once
/// each buffer has grown to its working size (typically after the first
/// pass). One instance per domain thread, owner-only access via
/// [`ScratchSlot`].
#[derive(Default)]
pub(crate) struct ReclaimScratch {
    /// Collected publish counters (`collectPublishedCounters`) or restart
    /// sequence numbers (NBR phase 1).
    pub counters: Vec<u64>,
    /// Second counter snapshot (NBR's operation sequence numbers).
    pub op_counters: Vec<u64>,
    /// Sorted, deduplicated reservation words (pointers or eras).
    pub reserved: Vec<u64>,
    /// Announced `[lower, upper]` epoch intervals (IBR).
    pub intervals: Vec<(u64, u64)>,
}

/// Single-owner cell holding a thread's [`ReclaimScratch`] (same ownership
/// discipline as [`RetireSlot`]).
pub(crate) struct ScratchSlot(UnsafeCell<ReclaimScratch>);

// SAFETY: access is confined to the owning thread by the registration
// protocol, exactly as for `RetireSlot`.
unsafe impl Sync for ScratchSlot {}
unsafe impl Send for ScratchSlot {}

impl ScratchSlot {
    pub(crate) fn new() -> Self {
        ScratchSlot(UnsafeCell::new(ReclaimScratch::default()))
    }

    /// # Safety
    ///
    /// Caller must be the registered owner of the enclosing tid.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut ReclaimScratch {
        // SAFETY: single-owner contract above.
        unsafe { &mut *self.0.get() }
    }
}

/// State common to all reclamation domains.
pub(crate) struct DomainBase {
    pub cfg: SmrConfig,
    pub stats: Arc<DomainStats>,
    occupied: Box<[AtomicBool]>,
    /// Domain tid → global thread id + 1 (0 = unbound). Used by
    /// signal-based schemes to ping participants.
    gtid_of: Box<[AtomicUsize]>,
    /// Quarantined (poisoned) nodes when `cfg.quarantine` is set.
    quarantine: Mutex<Vec<Retired>>,
    /// Retire-list leftovers from threads that unregistered while some of
    /// their garbage was still reserved by others. Freed on domain drop.
    orphans: Mutex<Vec<Retired>>,
}

impl DomainBase {
    pub(crate) fn new(cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        assert!(n >= 1, "domain needs at least one thread slot");
        let mut occupied = Vec::with_capacity(n);
        occupied.resize_with(n, || AtomicBool::new(false));
        let mut gtids = Vec::with_capacity(n);
        gtids.resize_with(n, || AtomicUsize::new(0));
        DomainBase {
            stats: Arc::new(DomainStats::new(n)),
            cfg,
            occupied: occupied.into_boxed_slice(),
            gtid_of: gtids.into_boxed_slice(),
            quarantine: Mutex::new(Vec::new()),
            orphans: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn claim(&self, tid: usize) {
        assert!(
            tid < self.cfg.max_threads,
            "tid {tid} out of range (max_threads = {})",
            self.cfg.max_threads
        );
        let was = self.occupied[tid].swap(true, Ordering::AcqRel);
        assert!(!was, "tid {tid} is already registered in this domain");
    }

    pub(crate) fn release(&self, tid: usize) {
        self.occupied[tid].store(false, Ordering::Release);
    }

    pub(crate) fn is_registered(&self, tid: usize) -> bool {
        self.occupied[tid].load(Ordering::Acquire)
    }

    pub(crate) fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.gtid_of[tid].store(gtid + 1, Ordering::Release);
    }

    pub(crate) fn clear_gtid(&self, tid: usize) {
        self.gtid_of[tid].store(0, Ordering::Release);
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn gtid(&self, tid: usize) -> Option<usize> {
        match self.gtid_of[tid].load(Ordering::Acquire) {
            0 => None,
            g => Some(g - 1),
        }
    }

    /// Frees (or quarantines) one retired object, accounting it on the
    /// calling reclaimer's stat shard.
    ///
    /// # Safety
    ///
    /// The scheme must have proven no thread can access the object, and
    /// `tid` must be the caller's registered domain thread id.
    pub(crate) unsafe fn free_now(&self, tid: usize, r: Retired) {
        let bytes = r.header().size() as u64;
        let shard = self.stats.shard(tid);
        shard.freed_nodes.fetch_add(1, Ordering::Relaxed);
        shard.freed_bytes.fetch_add(bytes, Ordering::Relaxed);
        if self.cfg.quarantine {
            r.header().poison();
            self.quarantine.lock().push(r);
        } else {
            // SAFETY: forwarded contract.
            unsafe { r.free() };
        }
    }

    /// Parks leftovers from an unregistering thread; they are deallocated
    /// when the domain drops (at which point no readers remain).
    pub(crate) fn adopt_orphans(&self, leftovers: Vec<Retired>) {
        if !leftovers.is_empty() {
            self.orphans.lock().extend(leftovers);
        }
    }

    /// Number of quarantined nodes (test observability).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn quarantine_len(&self) -> usize {
        self.quarantine.lock().len()
    }
}

impl Drop for DomainBase {
    fn drop(&mut self) {
        // Skip the discipline check when unwinding from an unrelated panic
        // (a panicking destructor would abort the process).
        if !std::thread::panicking() {
            debug_assert!(
                self.occupied.iter().all(|o| !o.load(Ordering::Acquire)),
                "domain dropped while threads are still registered"
            );
        }
        // All participants are gone: quarantined and orphaned nodes can be
        // deallocated for real. No tid exists here — count on the overflow
        // shard.
        for r in self.quarantine.get_mut().drain(..) {
            // SAFETY: no registered threads remain, so no reader exists.
            unsafe { r.free() };
        }
        let overflow = self.stats.overflow();
        for r in self.orphans.get_mut().drain(..) {
            overflow.freed_nodes.fetch_add(1, Ordering::Relaxed);
            overflow
                .freed_bytes
                .fetch_add(r.header().size() as u64, Ordering::Relaxed);
            // SAFETY: as above.
            unsafe { r.free() };
        }
    }
}

/// In-place survivor sweep over a retire list: every entry for which `keep`
/// returns `false` is freed via [`DomainBase::free_now`]; survivors stay in
/// the list **in their original order**. Returns the number freed.
///
/// The sweep is allocation-free: survivors are compacted toward the front
/// of the existing buffer instead of being re-pushed into a fresh vector.
///
/// # Safety
///
/// The caller's scheme must have proven that every entry `keep` rejects is
/// unreachable by all threads, and `tid` must be the caller's registered
/// domain thread id (it owns `list`).
pub(crate) unsafe fn sweep_retire_list(
    base: &DomainBase,
    tid: usize,
    list: &mut Vec<Retired>,
    mut keep: impl FnMut(&Retired) -> bool,
) -> usize {
    let len = list.len();
    let ptr = list.as_mut_ptr();
    // Defensive: if a free panics mid-sweep (quarantine assertion), the
    // list must not expose half-moved entries. `Retired` has no Drop impl,
    // so truncating first leaks survivors on unwind instead of
    // double-freeing them.
    // SAFETY: 0 <= len, elements stay initialized; we manage them manually.
    unsafe { list.set_len(0) };
    let mut write = 0usize;
    let mut freed = 0usize;
    for read in 0..len {
        // SAFETY: `read < len`, the original initialized length.
        let r = unsafe { core::ptr::read(ptr.add(read)) };
        if keep(&r) {
            // SAFETY: `write <= read < len`; slot was already moved out.
            unsafe { core::ptr::write(ptr.add(write), r) };
            write += 1;
        } else {
            // SAFETY: forwarded contract — entry proven unreachable.
            unsafe { base.free_now(tid, r) };
            freed += 1;
        }
    }
    // SAFETY: the first `write` slots hold initialized survivors.
    unsafe { list.set_len(write) };
    freed
}

/// Frees every entry of `list` whose pointer is **not** in the sorted
/// `reserved` set; reserved entries are retained in order. Returns the
/// number freed.
///
/// # Safety
///
/// `reserved` must contain every (unmarked) pointer any thread may still
/// access — the scheme's scan guarantees this. `tid` must be the caller's
/// registered domain thread id.
pub(crate) unsafe fn free_unreserved(
    base: &DomainBase,
    tid: usize,
    list: &mut Vec<Retired>,
    reserved: &[u64],
) -> usize {
    debug_assert!(reserved.windows(2).all(|w| w[0] <= w[1]));
    // SAFETY: forwarded contract.
    unsafe {
        sweep_retire_list(base, tid, list, |r| {
            reserved.binary_search(&(r.ptr() as u64)).is_ok()
        })
    }
}

/// Frees every entry whose `[birth_era, retire_era]` lifespan intersects no
/// reserved era in the sorted `reserved` slice (hazard-eras `canFree`,
/// paper Alg. 4/5). Returns the number freed.
///
/// # Safety
///
/// `reserved` must include every era any thread may have reserved. `tid`
/// must be the caller's registered domain thread id.
pub(crate) unsafe fn free_era_unreserved(
    base: &DomainBase,
    tid: usize,
    list: &mut Vec<Retired>,
    reserved: &[u64],
) -> usize {
    debug_assert!(reserved.windows(2).all(|w| w[0] <= w[1]));
    // SAFETY: forwarded contract.
    unsafe {
        sweep_retire_list(base, tid, list, |r| {
            era_range_reserved(reserved, r.header().birth_era, r.header().retire_era())
        })
    }
}

/// Frees every entry retired strictly before epoch `min` (EBR / EpochPOP
/// fast path). Returns the number freed.
///
/// # Safety
///
/// `min` must be a lower bound on every registered thread's announced
/// epoch — nodes retired before it are unreachable. `tid` must be the
/// caller's registered domain thread id.
pub(crate) unsafe fn free_before_epoch(
    base: &DomainBase,
    tid: usize,
    list: &mut Vec<Retired>,
    min: u64,
) -> usize {
    // SAFETY: forwarded contract.
    unsafe { sweep_retire_list(base, tid, list, |r| r.header().retire_era() >= min) }
}

/// Scans every registered thread's reservation slots (`cells` laid out as
/// `tid * slots_per_thread + slot`) into `out` as a sorted, deduplicated
/// set of non-zero words. Shared by the eager-publication schemes (HP,
/// HPAsym, HE); allocation-free once `out` has grown to working capacity.
pub(crate) fn collect_slot_words_into(
    base: &DomainBase,
    slots_per_thread: usize,
    cells: &[AtomicU64],
    out: &mut Vec<u64>,
) {
    out.clear();
    for t in 0..base.cfg.max_threads {
        if !base.is_registered(t) {
            continue;
        }
        for s in 0..slots_per_thread {
            let w = cells[t * slots_per_thread + s].load(Ordering::Acquire);
            if w != 0 {
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Whether any era in sorted `reserved` lies within `[birth, retire]`.
pub fn era_range_reserved(reserved: &[u64], birth: u64, retire: u64) -> bool {
    // First reserved era >= birth; blocked if it also <= retire.
    let idx = reserved.partition_point(|&e| e < birth);
    idx < reserved.len() && reserved[idx] <= retire
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{Header, Retired};

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl crate::header::HasHeader for N {}

    fn mk(base: &DomainBase, birth: u64, retire: u64) -> Retired {
        base.stats
            .shard(0)
            .allocated_nodes
            .fetch_add(1, Ordering::Relaxed);
        let p = Box::into_raw(Box::new(N {
            hdr: Header::new(birth, core::mem::size_of::<N>()),
            v: 0,
        }));
        let r = unsafe { Retired::new(p) };
        r.header().set_retire_era(retire);
        r
    }

    #[test]
    fn claim_release_cycle() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(0);
        assert!(b.is_registered(0));
        b.release(0);
        assert!(!b.is_registered(0));
        b.claim(0); // reclaimable after release
        b.release(0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_claim_panics() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(1);
        b.claim(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_claim_panics() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(2);
    }

    #[test]
    fn gtid_binding() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        assert_eq!(b.gtid(0), None);
        b.bind_gtid(0, 17);
        assert_eq!(b.gtid(0), Some(17));
        b.clear_gtid(0);
        assert_eq!(b.gtid(0), None);
    }

    #[test]
    fn free_unreserved_respects_reservations() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = vec![mk(&b, 0, 0), mk(&b, 0, 0), mk(&b, 0, 0)];
        let kept = list[1].ptr() as u64;
        let reserved = vec![kept];
        let freed = unsafe { free_unreserved(&b, 0, &mut list, &reserved) };
        assert_eq!(freed, 2);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].ptr() as u64, kept);
        // Free the survivor so the allocation is not leaked in the test.
        let survivor = list.pop().unwrap();
        unsafe { b.free_now(0, survivor) };
    }

    #[test]
    fn sweep_preserves_survivor_order_and_capacity() {
        // The in-place sweep must keep survivors in retire order (oldest
        // first — schemes rely on this for retire-era monotonicity) and
        // must not reallocate the backing buffer.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list: Vec<Retired> = (0..8).map(|i| mk(&b, i, i)).collect();
        let cap_before = list.capacity();
        let buf_before = list.as_ptr();
        // Keep eras 1, 4, 6 — a scattered survivor pattern.
        let keep: Vec<u64> = vec![1, 4, 6];
        let kept_ptrs: Vec<u64> = list
            .iter()
            .filter(|r| keep.contains(&r.header().birth_era))
            .map(|r| r.ptr() as u64)
            .collect();
        let freed = unsafe {
            sweep_retire_list(&b, 0, &mut list, |r| keep.contains(&r.header().birth_era))
        };
        assert_eq!(freed, 5);
        assert_eq!(list.len(), 3);
        assert_eq!(
            list.iter()
                .map(|r| r.header().birth_era)
                .collect::<Vec<_>>(),
            keep,
            "survivors must keep their original relative order"
        );
        assert_eq!(
            list.iter().map(|r| r.ptr() as u64).collect::<Vec<_>>(),
            kept_ptrs,
            "survivors must be the same objects, not copies"
        );
        assert_eq!(list.capacity(), cap_before, "sweep must not reallocate");
        assert_eq!(list.as_ptr(), buf_before, "sweep must reuse the buffer");
        // Accounting: freed counted on shard 0.
        assert_eq!(b.stats.snapshot().freed_nodes, 5);
        for r in list.drain(..) {
            unsafe { b.free_now(0, r) };
        }
    }

    #[test]
    fn free_before_epoch_sweeps_by_retire_era() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = vec![mk(&b, 0, 3), mk(&b, 0, 7), mk(&b, 0, 5)];
        let freed = unsafe { free_before_epoch(&b, 0, &mut list, 5) };
        assert_eq!(freed, 1, "only retire era 3 < 5 is freeable");
        assert_eq!(
            list.iter()
                .map(|r| r.header().retire_era())
                .collect::<Vec<_>>(),
            vec![7, 5]
        );
        for r in list.drain(..) {
            unsafe { b.free_now(0, r) };
        }
    }

    #[test]
    fn quarantine_poisons_instead_of_freeing() {
        let b = DomainBase::new(SmrConfig::for_tests(1).with_quarantine());
        let r = mk(&b, 0, 0);
        let ptr = r.ptr();
        unsafe { b.free_now(0, r) };
        assert_eq!(b.quarantine_len(), 1);
        // The allocation is still mapped and poisoned.
        assert!(unsafe { &*ptr }.is_poisoned());
        assert_eq!(b.stats.snapshot().freed_nodes, 1);
    }

    #[test]
    fn era_reservation_blocking() {
        // reserved eras: 5, 10, 20
        let reserved = vec![5, 10, 20];
        assert!(era_range_reserved(&reserved, 4, 6)); // 5 inside
        assert!(era_range_reserved(&reserved, 10, 10)); // exact hit
        assert!(!era_range_reserved(&reserved, 6, 9)); // gap
        assert!(!era_range_reserved(&reserved, 21, 30)); // above all
        assert!(!era_range_reserved(&reserved, 0, 4)); // below all
        assert!(era_range_reserved(&reserved, 0, 100)); // spans all
        assert!(!era_range_reserved(&[], 0, u64::MAX)); // nothing reserved
    }

    #[test]
    fn era_free_pass() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        // lifespans: [1,2] freeable, [4,6] blocked by era 5, [7,9] freeable
        let mut list = vec![mk(&b, 1, 2), mk(&b, 4, 6), mk(&b, 7, 9)];
        let freed = unsafe { free_era_unreserved(&b, 0, &mut list, &[3, 5, 10]) };
        assert_eq!(freed, 2);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].header().birth_era, 4);
        let survivor = list.pop().unwrap();
        unsafe { b.free_now(0, survivor) };
    }

    #[test]
    fn orphans_freed_on_drop() {
        let stats;
        {
            let b = DomainBase::new(SmrConfig::for_tests(1));
            stats = Arc::clone(&b.stats);
            let leftovers = vec![mk(&b, 0, 0), mk(&b, 0, 0)];
            b.adopt_orphans(leftovers);
            assert_eq!(stats.snapshot().freed_nodes, 0);
        }
        assert_eq!(stats.snapshot().freed_nodes, 2);
    }
}
