//! Domain plumbing shared by every scheme: thread-slot occupancy, batched
//! retire lists, per-thread epoch clocks, reusable reclamation scratch, the
//! quarantine use-after-free detector, and orphan handling.
//!
//! ## Batch lifecycle (fill → seal/sort → range-test → merge-join → recycle)
//!
//! Retirement is batched through [`RetireList`]. A node's whole life in
//! the pipeline, including the orphan detour a thread's death takes:
//!
//! ```text
//!            retire(ptr)
//!                │  bin = (ptr >> ARENA_SHIFT) & (bins-1)
//!                ▼
//!   ┌─ fill bins (thread-private) ─┐        per-block sort cache
//!   │ [bin 0][bin 1][bin 2][bin 3] │     (extrema + permutation)
//!   └──────────────┬───────────────┘               │
//!                  │ bin reaches retire_batch      │ born monotone:
//!                  ▼                               │ sort costs nothing
//!        sealed blocks (Vec<Box<RetireBatch>>) ◄───┘
//!           │              ▲      ▲
//!           │ unregister   │      │ adopt/steal ≤ 8 blocks, caches
//!           ▼              │      │ and extrema intact (O(1)/block)
//!        domain orphan list ──────┘
//!           │
//!           ▼ sweep: range-test ▸ merge-join ▸ compact
//!        freed │ kept (block untouched, cache reused) │ box → free pool
//! ```
//!
//! 1. **Fill** — `retire` appends to one of a small array of
//!    thread-private [`RetireBatch`](crate::header::RetireBatch) *fill
//!    bins*, routed by the node pointer's high bits
//!    (`ptr >> ARENA_SHIFT`, [`crate::config::SmrConfig::retire_bins`]
//!    bins; 1 = the historical single fill block): one slot write and a
//!    length bump, no stats RMW, no threshold test. Binning means nodes
//!    from different allocator arenas — a fresh bump region interleaved
//!    with LIFO free-list refills — fill *different* blocks, so most
//!    blocks are born address-monotone and the merge-join sweep's sort
//!    detection gets them for free (`blocks_sealed_monotone` counts the
//!    share).
//! 2. **Seal / sort** — when a bin reaches the configured threshold
//!    ([`crate::config::SmrConfig::retire_batch`], never above
//!    `reclaim_freq`), it moves into the list's sealed-block vector as one
//!    pointer. Only here do the amortized costs run: one `retired_nodes`
//!    bump for the whole block and one reclaim-threshold comparison
//!    ([`push_retired`]). A sealed block also lazily builds its *sort
//!    cache* — key extrema plus a slot permutation ordered by pointer or
//!    birth era — on the first sweep that needs it (in place, no
//!    allocation), and keeps it for as long as the block is untouched.
//! 3. **Range-test** — reservation-filter sweeps ([`free_unreserved`],
//!    [`free_era_unreserved`], [`free_before_epoch`]) first test each
//!    block's cached key extrema against the sorted reserved set: a block
//!    whose span contains no reserved word is freed whole, and a block
//!    whose every member is provably pinned is kept whole, *without
//!    touching a single record* (Hyaline/Crystalline-style batch-granular
//!    filtering).
//! 4. **Merge-join** — only blocks the range test cannot decide walk their
//!    sorted slot permutation against the sorted reserved set with one
//!    forward cursor (O(block + span) instead of a per-node binary
//!    search), producing a keep mask; survivors compact in place and stay
//!    **in their original retire order** within and across blocks.
//!    Generic-predicate sweeps ([`sweep_retire_list`], used by IBR's
//!    interval test) ride the same block driver with a per-node mask.
//! 5. **Free/recycle** — emptied block boxes return to the list's free
//!    pool, so steady-state retire + reclaim performs **zero heap
//!    allocations** once the pools reach working size. Flush paths seal
//!    partial bins first (inside the sweep), and `unregister` seals every
//!    non-empty bin and parks the **sealed blocks themselves** on the
//!    domain orphan list ([`DomainBase::orphan_remaining`]) — no node is
//!    ever parked unsealed (partial batches are never leaked), no record
//!    is copied, and each block keeps its sort cache and extrema through
//!    the park. Joining threads adopt a bounded block chunk back
//!    ([`DomainBase::adopt_orphan_chunk`]), and every sweep steals up to
//!    one more chunk ([`DomainBase::steal_orphan_chunk`]) — O(1) per
//!    block — so orphans drain even when no thread ever joins again, and
//!    a stolen block range-tests from its surviving summary without
//!    re-sorting.
//!
//! ## Epoch max-aggregation invariant
//!
//! Epoch-based schemes (EBR, EpochPOP, IBR) used to `fetch_add` one shared
//! global-epoch word every `epoch_freq` operations per thread — the last
//! cross-thread RMW on the operation path. [`EpochClocks`] replaces it:
//! each thread *ticks a private, cache-padded clock* (a relaxed store to
//! its own line), and **the shared word is written only by reclaimer
//! passes**, which aggregate the clocks *striped*: stripes of
//! [`EPOCH_STRIPE`] clocks fold into per-stripe summary words, a pass
//! refreshes only its own stripe plus one rotating stripe, and the global
//! is `fetch_max`ed from the summaries
//! ([`EpochClocks::advance_max_scan`]) — O(threads / 8) per pass instead
//! of O(threads). A reclaimer first jumps its
//! own clock past the current global, so **every pass advances the
//! epoch** even when its private clock lagged a formerly-hot, now-idle
//! peer's. Safety is unaffected: readers
//! announce, and retirers tag, values of the same monotone global word, so
//! *when* it advances only affects reclamation latency, never which frees
//! are legal.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::config::SmrConfig;
use crate::header::{RetireBatch, Retired, SortKey, RETIRE_BATCH_CAP};
use crate::pressure::{Escalation, PressureRung, StallTracker};
use crate::stats::DomainStats;

// Keep masks pack one bit per block slot into a u32.
const _: () = assert!(RETIRE_BATCH_CAP <= 32, "BlockPlan::Mask is a u32");

/// Blocks a joining thread adopts from the domain orphan list at
/// registration — and a sweep steals per pass. Bounded so registration
/// stays cheap and a pass is not dominated by foreign garbage; at most
/// `8 × RETIRE_BATCH_CAP` nodes per chunk.
const ORPHAN_CHUNK_BLOCKS: usize = 8;

/// Node-count bound of one orphan chunk (tests and docs).
#[cfg(test)]
const ORPHAN_ADOPT_MAX: usize = ORPHAN_CHUNK_BLOCKS * RETIRE_BATCH_CAP;

/// Orphan-list stripes for a domain of `n` thread slots: a small power of
/// two so park/adopt/steal from different tids take different mutexes
/// during reap storms and quarantine drains, without a per-tid mutex
/// forest on wide domains.
fn orphan_stripes(n: usize) -> usize {
    n.min(8).next_power_of_two()
}

/// Arena granularity of the fill-bin routing: pointers sharing their
/// `ptr >> ARENA_SHIFT` prefix — a 64 KiB region, the unit size class
/// runs of real allocators hand out contiguously — land in the same fill
/// bin, so one bin sees one arena's (mostly monotone) address stream.
pub(crate) const ARENA_SHIFT: u32 = 16;

/// What one seal event produced — the input to the amortized accounting
/// ([`account_seal`]): block and node counts plus how many of the sealed
/// blocks were address-monotone at seal time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SealOutcome {
    /// Nodes sealed.
    pub nodes: usize,
    /// Blocks sealed (a flush seals up to one per fill bin).
    pub blocks: u64,
    /// Of those, blocks whose slots were address-monotone.
    pub monotone: u64,
    /// Of those, blocks whose slots were birth-era-monotone (the
    /// era-sweep merge-join fast path's figure of merit).
    pub era_monotone: u64,
}

/// A per-thread batched retire list (see the module-level lifecycle).
///
/// Not a public type: schemes own one per thread behind a [`RetireSlot`].
pub(crate) struct RetireList {
    /// Seal threshold (`1..=RETIRE_BATCH_CAP`).
    seal: usize,
    /// Bin-routing mask (`bins − 1`; bins is a power of two).
    bin_mask: u64,
    /// Nodes held in sealed blocks (excludes the fill bins).
    sealed_nodes: usize,
    /// Nodes held across the fill bins (kept so [`Self::len`] is O(1)).
    fill_nodes: usize,
    /// Nodes sealed since the last reclaim trigger (or pass). Paces
    /// [`push_retired`]'s trigger to one pass per `reclaim_freq` *new*
    /// retires: survivors pinning `len` above the threshold (a stalled
    /// reader) must not turn every subsequent seal into a full-list
    /// sweep.
    sealed_since_trigger: usize,
    /// Sealed blocks, oldest first. Deliberately boxed (not `vec_box`
    /// noise): a sealed block is handed around *as one pointer* — between
    /// the fill bins, this vector, the free pool, the domain orphan list
    /// and Hyaline's global batches — so moves are 8 bytes, not 500+.
    #[allow(clippy::vec_box)]
    blocks: Vec<Box<RetireBatch>>,
    /// The fill bins, indexed by `(ptr >> ARENA_SHIFT) & bin_mask`. One
    /// entry when binning is off ([`crate::config::SmrConfig::retire_bins`]
    /// = 1) — byte-identical routing to the historical single fill block.
    #[allow(clippy::vec_box)]
    fills: Vec<Box<RetireBatch>>,
    /// Recycled empty blocks (the allocation-free steady state).
    #[allow(clippy::vec_box)]
    free: Vec<Box<RetireBatch>>,
    /// Fill-bin auto-sizer (`None` = static bins, the legacy behavior).
    adapt: Option<crate::controller::BinAdapt>,
    /// Set by `seal_bin` when the auto-sizer's window completed; consumed
    /// (and possibly acted on) by [`Self::maybe_adapt_bins`].
    adapt_window_due: bool,
}

impl RetireList {
    pub(crate) fn new(seal: usize, bins: usize) -> Self {
        Self::with_adaptive(seal, bins, false)
    }

    /// Like [`Self::new`], with per-thread bin auto-sizing: `bins` is the
    /// initial count and the auto-sizer roams
    /// `1..=`[`crate::config::MAX_RETIRE_BINS`].
    pub(crate) fn with_adaptive(seal: usize, bins: usize, adaptive: bool) -> Self {
        let bins = crate::config::normalize_bins(bins);
        let mut fills = Vec::with_capacity(bins);
        fills.resize_with(bins, RetireBatch::boxed);
        RetireList {
            seal: seal.clamp(1, RETIRE_BATCH_CAP),
            bin_mask: bins as u64 - 1,
            sealed_nodes: 0,
            fill_nodes: 0,
            sealed_since_trigger: 0,
            blocks: Vec::new(),
            fills,
            free: Vec::new(),
            adapt: adaptive
                .then(|| crate::controller::BinAdapt::new(crate::config::MAX_RETIRE_BINS)),
            adapt_window_due: false,
        }
    }

    /// Current fill-bin count (auto-sizing observability).
    #[inline]
    pub(crate) fn bins(&self) -> usize {
        self.fills.len()
    }

    /// Resizes the fill bins to `bins` (a power of two). The caller must
    /// have sealed every fill bin first; shed bin boxes go to the free
    /// pool and grown bins draw from it, so resizing allocates nothing in
    /// the steady state.
    fn set_bins(&mut self, bins: usize) {
        debug_assert!(self.fill_nodes == 0, "seal before resizing bins");
        let bins = crate::config::normalize_bins(bins);
        while self.fills.len() > bins {
            let b = self.fills.pop().expect("len checked");
            debug_assert!(b.is_empty());
            self.free.push(b);
        }
        while self.fills.len() < bins {
            let b = self.free.pop().unwrap_or_else(RetireBatch::boxed);
            debug_assert!(b.is_empty());
            self.fills.push(b);
        }
        self.bin_mask = bins as u64 - 1;
    }

    /// Registration-time seeding from the domain's converged bin count
    /// ([`DomainBase::adopt_orphan_chunk`]): adopt `bins` as this list's
    /// starting point, leaving the auto-sizer's window state untouched —
    /// it keeps adapting from there. No-ops when there is nothing to seed
    /// (`bins == 0`), on static lists (adaptive off keeps the configured
    /// count), and on lists already holding fill nodes (a re-registering
    /// thread with leftovers — resizing requires sealed fills).
    pub(crate) fn seed_bins(&mut self, bins: usize) {
        if bins == 0 || self.adapt.is_none() || self.fill_nodes != 0 {
            return;
        }
        self.set_bins(bins);
    }

    /// Hot-path adaptation step, called once per sealed block from
    /// [`push_retired`]: when the auto-sizer's window just completed and
    /// it decided to resize, seals the partial bins (returning their
    /// outcome — the caller owes `account_seal` plus one `bin_resizes`
    /// bump) and applies the new bin count.
    pub(crate) fn maybe_adapt_bins(&mut self) -> Option<SealOutcome> {
        if !self.adapt_window_due {
            return None;
        }
        self.adapt_window_due = false;
        let bins = self.fills.len();
        match self.adapt.as_mut()?.evaluate(bins) {
            crate::controller::BinDecision::Hold => None,
            crate::controller::BinDecision::Resize(nb) => {
                let outcome = self.seal_partial();
                self.set_bins(nb);
                Some(outcome)
            }
        }
    }

    /// Total nodes held (sealed blocks + fill bins).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.sealed_nodes + self.fill_nodes
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which fill bin `ptr` routes to.
    #[inline(always)]
    fn bin_of(&self, ptr: u64) -> usize {
        ((ptr >> ARENA_SHIFT) & self.bin_mask) as usize
    }

    /// Hot-path append: routes to the pointer's arena bin. Returns the
    /// [`SealOutcome`] when this push sealed the bin — the caller owes the
    /// amortized accounting ([`push_retired`]).
    #[inline]
    pub(crate) fn push(&mut self, r: Retired) -> Option<SealOutcome> {
        let bin = self.bin_of(r.ptr() as u64);
        self.fills[bin].push(r);
        self.fill_nodes += 1;
        if self.fills[bin].len() >= self.seal {
            Some(self.seal_bin(bin))
        } else {
            None
        }
    }

    fn seal_bin(&mut self, bin: usize) -> SealOutcome {
        let n = self.fills[bin].len();
        let fresh = self.free.pop().unwrap_or_else(RetireBatch::boxed);
        let full = core::mem::replace(&mut self.fills[bin], fresh);
        let monotone = full.is_ptr_monotone();
        let era_monotone = full.is_era_monotone();
        self.blocks.push(full);
        self.sealed_nodes += n;
        self.fill_nodes -= n;
        self.sealed_since_trigger += n;
        // Feed the bin auto-sizer — full-threshold (hot-path) seals only.
        // Flush/resize-time partials are short runs that read as
        // trivially monotone and would bias the share upward, probing
        // collapses the full-block regime would reject. The
        // completed-window flag is consumed by `push_retired`'s
        // `maybe_adapt_bins` call, in the same call as the seal that
        // completed the window.
        if n >= self.seal {
            if let Some(a) = self.adapt.as_mut() {
                self.adapt_window_due |= a.note_seal(1, monotone as u64);
            }
        }
        SealOutcome {
            nodes: n,
            blocks: 1,
            monotone: monotone as u64,
            era_monotone: era_monotone as u64,
        }
    }

    /// Resets the trigger pacing — a pass just ran (or is about to), so
    /// the next one waits for a fresh `reclaim_freq` worth of retires.
    pub(crate) fn note_pass(&mut self) {
        self.sealed_since_trigger = 0;
    }

    /// Seals every non-empty fill bin (flush/unregister paths): after
    /// this, every held node sits in a sealed, summarized block — nothing
    /// is ever handed onward unsealed. Returns the merged outcome
    /// (`nodes == 0` if all bins were empty).
    pub(crate) fn seal_partial(&mut self) -> SealOutcome {
        let mut out = SealOutcome::default();
        for bin in 0..self.fills.len() {
            if !self.fills[bin].is_empty() {
                let s = self.seal_bin(bin);
                out.nodes += s.nodes;
                out.blocks += s.blocks;
                out.monotone += s.monotone;
                out.era_monotone += s.era_monotone;
            }
        }
        out
    }

    /// Moves every sealed block out (Hyaline hands them to its global
    /// batch list; `unregister` parks them on the domain orphan list).
    /// The caller must have sealed the fill bins first.
    #[allow(clippy::vec_box)]
    pub(crate) fn take_blocks(&mut self) -> Vec<Box<RetireBatch>> {
        debug_assert!(self.fill_nodes == 0, "seal before taking blocks");
        self.sealed_nodes = 0;
        core::mem::take(&mut self.blocks)
    }

    /// Abandons every sealed node (NR's deliberate leak) while recycling
    /// the block boxes. `Retired` has no `Drop`, so clearing the lengths
    /// leaks exactly the recorded allocations.
    pub(crate) fn leak_sealed_blocks(&mut self) {
        while let Some(mut b) = self.blocks.pop() {
            // SAFETY: truncation abandons (leaks) the records, which is
            // this method's contract; nothing is double-read.
            unsafe { b.set_len(0) };
            self.free.push(b);
        }
        self.sealed_nodes = 0;
    }

    /// Appends already-accounted *sealed blocks* (orphan adoption and
    /// stealing) — each block is one pointer move; sort caches, extrema
    /// and retire order inside every block survive intact, and a later
    /// `seal_partial` cannot recount the members.
    pub(crate) fn absorb_blocks(&mut self, blocks: impl IntoIterator<Item = Box<RetireBatch>>) {
        for b in blocks {
            debug_assert!(!b.is_empty(), "orphan blocks are never empty");
            self.sealed_nodes += b.len();
            self.blocks.push(b);
        }
    }

    /// Moves every node (sealed and fill) out through `f`, recycling the
    /// emptied blocks. Drain order is unspecified.
    pub(crate) fn drain_all(&mut self, mut f: impl FnMut(Retired)) {
        while let Some(mut b) = self.blocks.pop() {
            while let Some(r) = b.pop() {
                f(r);
            }
            self.free.push(b);
        }
        self.sealed_nodes = 0;
        for fill in &mut self.fills {
            while let Some(r) = fill.pop() {
                self.fill_nodes -= 1;
                f(r);
            }
        }
    }
}

/// Single-owner cell holding a thread's [`RetireList`].
///
/// Soundness: only the thread that claimed the enclosing tid (enforced by
/// [`DomainBase::claim`]'s panic-on-double-claim) may call [`Self::get`].
pub(crate) struct RetireSlot(UnsafeCell<RetireList>);

// SAFETY: access is confined to the owning thread by the registration
// protocol; the cell itself is never aliased across threads.
unsafe impl Sync for RetireSlot {}
unsafe impl Send for RetireSlot {}

impl RetireSlot {
    /// The constructor every scheme uses: seal threshold, initial bin
    /// count and bin auto-sizing all derived from one config.
    pub(crate) fn for_cfg(cfg: &SmrConfig) -> Self {
        RetireSlot(UnsafeCell::new(RetireList::with_adaptive(
            cfg.effective_batch(),
            cfg.effective_bins(),
            cfg.adaptive_bins(),
        )))
    }

    /// # Safety
    ///
    /// Caller must be the registered owner of the enclosing tid.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut RetireList {
        // SAFETY: single-owner contract above.
        unsafe { &mut *self.0.get() }
    }
}

/// Reusable per-thread buffers for reclamation passes.
///
/// Every buffer a pass needs lives here and is only ever `clear()`ed, never
/// dropped, so a steady-state pass performs **zero heap allocations** once
/// each buffer has grown to its working size (typically after the first
/// pass). One instance per domain thread, owner-only access via
/// [`ScratchSlot`].
#[derive(Default)]
pub(crate) struct ReclaimScratch {
    /// Collected publish counters (`collectPublishedCounters`) or restart
    /// sequence numbers (NBR phase 1).
    pub counters: Vec<u64>,
    /// Second counter snapshot (NBR's operation sequence numbers).
    pub op_counters: Vec<u64>,
    /// Sorted, deduplicated reservation words (pointers or eras).
    pub reserved: Vec<u64>,
    /// Announced `[lower, upper]` epoch intervals (IBR).
    pub intervals: Vec<(u64, u64)>,
    /// Non-stalled subset of `reserved` (emergency-rung era sweeps).
    pub active: Vec<u64>,
    /// Non-stalled subset of `intervals` (emergency-rung IBR sweeps).
    pub active_intervals: Vec<(u64, u64)>,
}

/// Single-owner cell holding a thread's [`ReclaimScratch`] (same ownership
/// discipline as [`RetireSlot`]).
pub(crate) struct ScratchSlot(UnsafeCell<ReclaimScratch>);

// SAFETY: access is confined to the owning thread by the registration
// protocol, exactly as for `RetireSlot`.
unsafe impl Sync for ScratchSlot {}
unsafe impl Send for ScratchSlot {}

impl ScratchSlot {
    pub(crate) fn new() -> Self {
        ScratchSlot(UnsafeCell::new(ReclaimScratch::default()))
    }

    /// # Safety
    ///
    /// Caller must be the registered owner of the enclosing tid.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut ReclaimScratch {
        // SAFETY: single-owner contract above.
        unsafe { &mut *self.0.get() }
    }
}

/// Clocks per [`EpochClocks`] stripe. A reclaimer pass fully scans only
/// its own stripe plus one rotating stripe, then takes the max over the
/// per-stripe summary words — O(threads / 8 + 16) per pass instead of
/// O(threads).
pub(crate) const EPOCH_STRIPE: usize = 8;

/// Per-thread epoch clocks with a reclaimer-aggregated global (see the
/// module-level invariant).
///
/// ## Striped aggregation
///
/// Clocks are grouped into stripes of [`EPOCH_STRIPE`]; each stripe has a
/// monotone summary word holding the largest clock a reclaimer has
/// observed in it. A pass refreshes (a) the caller's own stripe — the
/// progress guarantee: the caller's just-jumped clock always reaches the
/// aggregate — and (b) one stripe chosen by a rotating cursor, the
/// *sampling* that bounds how stale an idle peer's ticks can stay: any
/// clock value is folded into the global within `nstripes` passes. Wide
/// domains therefore pay `2 × EPOCH_STRIPE + threads / EPOCH_STRIPE` loads
/// per pass rather than `threads`. Staleness is safe for the same reason
/// the whole design is: readers announce, and retirers tag, the same
/// monotone global word, so a lagging aggregate only delays frees.
pub(crate) struct EpochClocks {
    /// The globally visible epoch. Written **only** by
    /// [`Self::advance_max_scan`] (reclaimer passes).
    global: CachePadded<AtomicU64>,
    /// One private clock per domain tid, each on its own line; bumped by
    /// its owner with a relaxed store, read by reclaimers during stripe
    /// refreshes.
    local: Box<[CachePadded<AtomicU64>]>,
    /// Per-stripe maxima, `fetch_max`-maintained by reclaimer passes
    /// (monotone, like the clocks themselves).
    stripe_max: Box<[CachePadded<AtomicU64>]>,
    /// Rotating refresh cursor (reclaimer-side only).
    rotor: CachePadded<AtomicU64>,
}

impl EpochClocks {
    pub(crate) fn new(nthreads: usize) -> Self {
        let mut local = Vec::with_capacity(nthreads);
        local.resize_with(nthreads, || CachePadded::new(AtomicU64::new(1)));
        let nstripes = nthreads.div_ceil(EPOCH_STRIPE).max(1);
        let mut stripe_max = Vec::with_capacity(nstripes);
        stripe_max.resize_with(nstripes, || CachePadded::new(AtomicU64::new(1)));
        EpochClocks {
            global: CachePadded::new(AtomicU64::new(1)),
            local: local.into_boxed_slice(),
            stripe_max: stripe_max.into_boxed_slice(),
            rotor: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The current global epoch (readers announce this; retirers tag it).
    #[inline(always)]
    pub(crate) fn current(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// Owner-only clock bump: a relaxed store to the owner's own cache
    /// line — the op path's replacement for the shared `fetch_add`.
    #[inline]
    pub(crate) fn tick(&self, tid: usize) {
        let c = self.local[tid].load(Ordering::Relaxed);
        self.local[tid].store(c + 1, Ordering::Relaxed);
    }

    /// Folds stripe `s`'s clocks into its summary word.
    fn refresh_stripe(&self, s: usize) {
        let start = s * EPOCH_STRIPE;
        let end = (start + EPOCH_STRIPE).min(self.local.len());
        let mut m = 0u64;
        for c in &self.local[start..end] {
            m = m.max(c.load(Ordering::Relaxed));
        }
        self.stripe_max[s].fetch_max(m, Ordering::Relaxed);
    }

    /// Reclaimer-pass aggregation: jump the caller's clock past the
    /// current global (so the aggregated max strictly exceeds it — every
    /// pass advances the epoch, the progress guarantee the old shared
    /// `fetch_add` gave), refresh the caller's stripe and one rotating
    /// stripe, max the stripe summaries, and `fetch_max` the result into
    /// the global word — the only place the global is ever written.
    /// Returns the post-aggregation epoch.
    ///
    /// Without the jump, a reclaimer whose private clock lags the maximum
    /// (a formerly-hot peer ticked far ahead, then went idle) would leave
    /// `fetch_max` a no-op for `max - own` consecutive passes, pinning
    /// every epoch-based free at the stale maximum.
    /// Epoch-cadence decay note: this runs only from *full* passes, so on
    /// a decayed domain (where only 1 in `2^decay` triggered passes is
    /// full) the whole aggregation — own stripe, rotating stripe, global
    /// `fetch_max` — already runs at the decayed rate. A lagging peer's
    /// clock is folded in within `2^decay × nstripes` full-pass
    /// opportunities, and every *executed* pass still strictly advances.
    pub(crate) fn advance_max_scan(&self, tid: usize) -> u64 {
        let cur = self.global.load(Ordering::Acquire);
        let mine = self.local[tid].load(Ordering::Relaxed);
        self.local[tid].store(mine.max(cur) + 1, Ordering::Relaxed);
        let nstripes = self.stripe_max.len();
        self.refresh_stripe(tid / EPOCH_STRIPE);
        if nstripes > 1 {
            let r = self.rotor.fetch_add(1, Ordering::Relaxed) as usize % nstripes;
            self.refresh_stripe(r);
        }
        let mut m = 0u64;
        for s in self.stripe_max.iter() {
            m = m.max(s.load(Ordering::Relaxed));
        }
        let prev = self.global.fetch_max(m, Ordering::AcqRel);
        prev.max(m)
    }

    /// Test observability: a thread's private clock value.
    #[cfg(test)]
    pub(crate) fn local_of(&self, tid: usize) -> u64 {
        self.local[tid].load(Ordering::Relaxed)
    }
}

/// A sealed block parked in the stalled-reader quarantine: every member
/// is provably pinned **only** by `blocker_tid`'s reservation word, so
/// sweeps stop re-scanning it until the blocker moves or dies.
pub(crate) struct QuarantinedBlock {
    /// The stalled participant whose reservation pins the whole block.
    pub blocker_tid: usize,
    /// The reservation word (epoch / era / interval lower bound) observed
    /// stalled; the block is released the moment the blocker's word
    /// changes, clears, or the blocker deregisters/is reaped.
    pub pinned_word: u64,
    /// The parked block, sort caches and extrema intact.
    pub block: Box<RetireBatch>,
}

/// One orphan-list stripe: parked sealed blocks from threads whose tid
/// hashes here, padded so neighboring stripes never false-share.
#[allow(clippy::vec_box)]
type OrphanStripe = CachePadded<Mutex<Vec<Box<RetireBatch>>>>;

/// State common to all reclamation domains.
pub(crate) struct DomainBase {
    pub cfg: SmrConfig,
    pub stats: Arc<DomainStats>,
    /// Per-participant pinned-reservation age, fed by scheme min-scans;
    /// drives the emergency-rung stalled-reader detection.
    pub stall: StallTracker,
    occupied: Box<[AtomicBool]>,
    /// Domain tid → global thread id + 1 (0 = unbound). Used by
    /// signal-based schemes to ping participants.
    gtid_of: Box<[AtomicUsize]>,
    /// Quarantined (poisoned) nodes when `cfg.quarantine` is set — the
    /// use-after-free detector, unrelated to the pressure quarantine.
    quarantine: Mutex<Vec<Retired>>,
    /// Stalled-reader quarantine (pressure emergency rung): whole sealed
    /// blocks keyed by the blocking reservation, re-absorbed into a
    /// reclaimer's list by [`Self::reclaim_released_quarantine`] the
    /// moment the blocker advances or is reaped. Quarantined nodes leave
    /// the gauge's actionable count but are still owed to the allocator
    /// (freed on release-and-sweep, or at domain drop).
    pressure_quarantine: Mutex<Vec<QuarantinedBlock>>,
    /// Lock-free node-count hint for `pressure_quarantine` (skip the
    /// mutex while nothing is parked — the permanent common case).
    pq_hint: AtomicUsize,
    /// Retire-list leftovers from threads that unregistered while some of
    /// their garbage was still reserved by others, parked as the **sealed
    /// blocks themselves** — sort caches and extrema intact, no record
    /// copied. Striped by parking tid so park/adopt/steal from different
    /// threads never contend on one mutex during reap storms or
    /// quarantine drains. Drained (bounded, block-at-a-time) by joining
    /// threads via [`Self::adopt_orphan_chunk`] and by reclaimer passes
    /// via [`Self::steal_orphan_chunk`]; any remainder is freed on domain
    /// drop.
    orphans: Box<[OrphanStripe]>,
    /// `orphans.len() - 1` (stripe count is a power of two).
    orphan_mask: usize,
    /// Lock-free *node*-count hint summed over every orphan stripe, so
    /// every sweep can skip the mutexes when no orphans exist (the
    /// common case on stable memberships).
    orphan_hint: AtomicUsize,
    /// Per-tid reap-in-progress flags: the CAS in [`Self::try_begin_reap`]
    /// elects a single reaper for a dead participant's single-owner state
    /// ([`RetireSlot`]), so concurrent reclaimers never alias it.
    reaping: Box<[AtomicBool]>,
    /// Controller-v2 membership seeding: the bin count the most recent
    /// auto-sizer resize converged to, domain-wide (0 = no resize yet).
    /// Newly registering threads inherit it via
    /// [`Self::adopt_orphan_chunk`] → [`RetireList::seed_bins`] instead of
    /// re-walking the whole probe ladder from the configured default.
    bin_hint: AtomicUsize,
}

impl DomainBase {
    pub(crate) fn new(cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        assert!(n >= 1, "domain needs at least one thread slot");
        let mut occupied = Vec::with_capacity(n);
        occupied.resize_with(n, || AtomicBool::new(false));
        let mut gtids = Vec::with_capacity(n);
        gtids.resize_with(n, || AtomicUsize::new(0));
        let mut reaping = Vec::with_capacity(n);
        reaping.resize_with(n, || AtomicBool::new(false));
        let stripes = orphan_stripes(n);
        let mut orphans = Vec::with_capacity(stripes);
        orphans.resize_with(stripes, || CachePadded::new(Mutex::new(Vec::new())));
        DomainBase {
            stats: Arc::new(DomainStats::with_pressure(n, cfg.pressure_gauge())),
            stall: StallTracker::new(n),
            cfg,
            occupied: occupied.into_boxed_slice(),
            gtid_of: gtids.into_boxed_slice(),
            quarantine: Mutex::new(Vec::new()),
            pressure_quarantine: Mutex::new(Vec::new()),
            pq_hint: AtomicUsize::new(0),
            orphans: orphans.into_boxed_slice(),
            orphan_mask: stripes - 1,
            orphan_hint: AtomicUsize::new(0),
            reaping: reaping.into_boxed_slice(),
            bin_hint: AtomicUsize::new(0),
        }
    }

    pub(crate) fn claim(&self, tid: usize) {
        assert!(
            tid < self.cfg.max_threads,
            "tid {tid} out of range (max_threads = {})",
            self.cfg.max_threads
        );
        let was = self.occupied[tid].swap(true, Ordering::AcqRel);
        assert!(!was, "tid {tid} is already registered in this domain");
    }

    pub(crate) fn release(&self, tid: usize) {
        // A departing participant can no longer stall anyone; its slot's
        // pinned-age history must not taint the next claimant.
        self.stall.clear(tid);
        self.occupied[tid].store(false, Ordering::Release);
    }

    pub(crate) fn is_registered(&self, tid: usize) -> bool {
        self.occupied[tid].load(Ordering::Acquire)
    }

    pub(crate) fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.gtid_of[tid].store(gtid + 1, Ordering::Release);
    }

    pub(crate) fn clear_gtid(&self, tid: usize) {
        self.gtid_of[tid].store(0, Ordering::Release);
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn gtid(&self, tid: usize) -> Option<usize> {
        match self.gtid_of[tid].load(Ordering::Acquire) {
            0 => None,
            g => Some(g - 1),
        }
    }

    /// Elects the caller as the unique reaper of `tid`'s state. Must be
    /// balanced by [`Self::end_reap`]; a `false` return means another
    /// reclaimer holds (or already completed) the reap.
    pub(crate) fn try_begin_reap(&self, tid: usize) -> bool {
        self.reaping[tid]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases the reap election taken by [`Self::try_begin_reap`].
    pub(crate) fn end_reap(&self, tid: usize) {
        self.reaping[tid].store(false, Ordering::Release);
    }

    /// Recovers the domain-side state of a participant that died without
    /// deregistering: seals and parks its pending retirements as orphans
    /// (nothing is leaked — adopters filter them against reservations like
    /// any other garbage), unbinds its gtid, and frees the domain tid for
    /// reuse. The slot release is last: the tid must not be reclaimable
    /// while its retire list is still being moved.
    ///
    /// Caller contract: the caller won [`Self::try_begin_reap`] for
    /// `dead_tid` *and* the process-global registry confirmed the thread
    /// dead (one-shot `Registry::reap`), making the caller the unique
    /// accessor of the dead thread's single-owner state; `list` is that
    /// thread's retire list.
    pub(crate) fn reap_participant(
        &self,
        reaper_tid: usize,
        dead_tid: usize,
        list: &mut RetireList,
    ) {
        self.orphan_remaining(dead_tid, list);
        self.clear_gtid(dead_tid);
        self.release(dead_tid);
        self.stats
            .shard(reaper_tid)
            .participants_reaped
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Frees (or quarantines) one retired object **without** stats — the
    /// building block under [`Self::free_now`] and the batched sweep.
    ///
    /// # Safety
    ///
    /// The scheme must have proven no thread can access the object.
    pub(crate) unsafe fn free_raw(&self, r: Retired) {
        if self.cfg.quarantine {
            r.header().poison();
            self.quarantine.lock().push(r);
        } else {
            // SAFETY: forwarded contract.
            unsafe { r.free() };
        }
    }

    /// Frees (or quarantines) one retired object, accounting it on the
    /// calling reclaimer's stat shard.
    ///
    /// # Safety
    ///
    /// The scheme must have proven no thread can access the object, and
    /// `tid` must be the caller's registered domain thread id.
    pub(crate) unsafe fn free_now(&self, tid: usize, r: Retired) {
        let bytes = r.size() as u64;
        let shard = self.stats.shard(tid);
        shard.freed_nodes.fetch_add(1, Ordering::Relaxed);
        shard.freed_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.pressure().on_freed(1);
        // SAFETY: forwarded contract.
        unsafe { self.free_raw(r) };
    }

    /// Frees every node of one sealed block with a single stats update
    /// (Hyaline's batch settlement).
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::free_now`] for every member.
    pub(crate) unsafe fn free_block(&self, tid: usize, block: &mut RetireBatch) {
        let mut nodes = 0u64;
        let mut bytes = 0u64;
        while let Some(r) = block.pop() {
            nodes += 1;
            bytes += r.size() as u64;
            // SAFETY: forwarded contract.
            unsafe { self.free_raw(r) };
        }
        if nodes > 0 {
            let shard = self.stats.shard(tid);
            shard.freed_nodes.fetch_add(nodes, Ordering::Relaxed);
            shard.freed_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.stats.pressure().on_freed(nodes as usize);
        }
    }

    /// Unregistration hand-off: seals every non-empty fill bin (with its
    /// amortized accounting — no node is parked unsealed, partial batches
    /// are never leaked) and parks the sealed blocks **whole** on the
    /// domain orphan list: one pointer move per block, sort caches and
    /// extrema intact, no per-node copying.
    pub(crate) fn orphan_remaining(&self, tid: usize, list: &mut RetireList) {
        seal_and_account(self, tid, list);
        if list.is_empty() {
            return;
        }
        let nodes = list.len();
        let blocks = list.take_blocks();
        let mut orphans = self.orphans[tid & self.orphan_mask].lock();
        // Parked newest-first so chunk steals drain oldest-first from the
        // Vec TAIL — O(chunk) per steal, no front-shift of the remainder.
        orphans.extend(blocks.into_iter().rev());
        drop(orphans);
        self.orphan_hint.fetch_add(nodes, Ordering::Relaxed);
    }

    /// Moves up to [`ORPHAN_CHUNK_BLOCKS`] orphaned blocks into `list`
    /// (already accounted; oldest-first within a parked batch) and
    /// returns the node count. Each
    /// block is absorbed as one pointer — O(1) per block, its sort cache
    /// untouched — so the adopter's next sweep range-tests stolen blocks
    /// from their surviving summaries without re-sorting.
    fn drain_orphan_chunk(&self, tid: usize, list: &mut RetireList) -> usize {
        if self.orphan_hint.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        // Start at the caller's own stripe (lowest contention — its own
        // parks land there) and scan the rest until the chunk is full, so
        // a single drainer still empties every stripe eventually.
        let mut taken = 0usize;
        let mut nodes = 0usize;
        for i in 0..=self.orphan_mask {
            if taken >= ORPHAN_CHUNK_BLOCKS {
                break;
            }
            let mut orphans = self.orphans[(tid + i) & self.orphan_mask].lock();
            let take = orphans.len().min(ORPHAN_CHUNK_BLOCKS - taken);
            if take == 0 {
                continue;
            }
            let at = orphans.len() - take;
            for b in &orphans[at..] {
                nodes += b.len();
            }
            list.absorb_blocks(orphans.drain(at..));
            taken += take;
        }
        if nodes > 0 {
            self.orphan_hint.fetch_sub(nodes, Ordering::Relaxed);
        }
        nodes
    }

    /// Registration-side orphan adoption: moves up to
    /// [`ORPHAN_CHUNK_BLOCKS`] orphaned blocks into the joining thread's
    /// retire list, bounding orphan memory on long-lived domains with
    /// thread churn.
    pub(crate) fn adopt_orphan_chunk(&self, tid: usize, list: &mut RetireList) {
        // Controller v2: a joiner starts from the domain's converged bin
        // count instead of re-running the probe ladder from the default
        // (a no-op until some participant's auto-sizer has resized).
        list.seed_bins(self.bin_hint.load(Ordering::Relaxed));
        let n = self.drain_orphan_chunk(tid, list);
        if n > 0 {
            self.stats
                .shard(tid)
                .orphans_adopted
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Reclaimer-side orphan stealing: every sweep adopts up to one
    /// [`ORPHAN_CHUNK_BLOCKS`]-block chunk, so orphans drain even when the thread
    /// membership is static (registration-time adoption alone only helps
    /// under churn). The pass that steals filters the stolen nodes with
    /// its own keep predicate — exactly as safe as for its own garbage,
    /// since every predicate covers all threads' reservations.
    pub(crate) fn steal_orphan_chunk(&self, tid: usize, list: &mut RetireList) {
        let n = self.drain_orphan_chunk(tid, list);
        if n > 0 {
            self.stats
                .shard(tid)
                .orphans_stolen
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Releases every pressure-quarantined block whose blocker has moved
    /// on — deregistered, reaped, or no longer holding its pinned
    /// reservation word (`blocked(tid, word)` is the scheme's "still
    /// pinned by exactly this reservation" test). Released blocks are
    /// absorbed **directly into the calling reclaimer's list**, so the
    /// very pass that observes the release also filters and frees them:
    /// a cleared stall drains within one pass. Runs at the start of every
    /// full pass; the lock-free hint makes it a no-op while nothing is
    /// parked.
    pub(crate) fn reclaim_released_quarantine(
        &self,
        tid: usize,
        list: &mut RetireList,
        mut blocked: impl FnMut(usize, u64) -> bool,
    ) {
        if self.pq_hint.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut q = self.pressure_quarantine.lock();
        let mut nodes = 0usize;
        let mut blocks = 0u64;
        let mut i = 0usize;
        while i < q.len() {
            let qb = &q[i];
            if self.is_registered(qb.blocker_tid) && blocked(qb.blocker_tid, qb.pinned_word) {
                i += 1;
                continue;
            }
            let qb = q.swap_remove(i);
            nodes += qb.block.len();
            blocks += 1;
            list.absorb_blocks([qb.block]);
        }
        drop(q);
        if nodes > 0 {
            self.pq_hint.fetch_sub(blocks as usize, Ordering::Relaxed);
            self.stats
                .shard(tid)
                .blocks_unquarantined
                .fetch_add(blocks, Ordering::Relaxed);
            note_escalation(self, tid, self.stats.pressure().on_unquarantined(nodes));
        }
    }

    /// Number of quarantined nodes (test observability).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn quarantine_len(&self) -> usize {
        self.quarantine.lock().len()
    }

    /// Blocks currently parked in the stalled-reader quarantine.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pressure_quarantine_len(&self) -> usize {
        self.pq_hint.load(Ordering::Relaxed)
    }

    /// Number of parked orphan nodes (test observability).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn orphan_len(&self) -> usize {
        self.orphans
            .iter()
            .map(|s| s.lock().iter().map(|b| b.len()).sum::<usize>())
            .sum()
    }
}

impl Drop for DomainBase {
    fn drop(&mut self) {
        // Skip the discipline check when unwinding from an unrelated panic
        // (a panicking destructor would abort the process).
        if !std::thread::panicking() {
            debug_assert!(
                self.occupied.iter().all(|o| !o.load(Ordering::Acquire)),
                "domain dropped while threads are still registered"
            );
        }
        // All participants are gone: quarantined and orphaned nodes can be
        // deallocated for real. No tid exists here — count on the overflow
        // shard.
        for r in self.quarantine.get_mut().drain(..) {
            // SAFETY: no registered threads remain, so no reader exists.
            unsafe { r.free() };
        }
        let overflow = self.stats.overflow();
        for stripe in self.orphans.iter_mut() {
            for mut b in stripe.get_mut().drain(..) {
                while let Some(r) = b.pop() {
                    overflow.freed_nodes.fetch_add(1, Ordering::Relaxed);
                    overflow
                        .freed_bytes
                        .fetch_add(r.size() as u64, Ordering::Relaxed);
                    // SAFETY: as above.
                    unsafe { r.free() };
                }
            }
        }
        // Stalled-reader quarantine: the blockers are gone with everyone
        // else, so the parked blocks are freeable — conservation holds
        // (allocated == freed) across a drop with a live quarantine.
        for qb in self.pressure_quarantine.get_mut().drain(..) {
            let mut b = qb.block;
            while let Some(r) = b.pop() {
                overflow.freed_nodes.fetch_add(1, Ordering::Relaxed);
                overflow
                    .freed_bytes
                    .fetch_add(r.size() as u64, Ordering::Relaxed);
                // SAFETY: as above.
                unsafe { r.free() };
            }
        }
    }
}

/// Books an upward pressure transition on the acting thread's stat shard:
/// one trip counter per rung crossed. The gauge reports each transition to
/// exactly one caller ([`crate::pressure::PressureGauge`]'s CAS settle),
/// so the trip counters count state-machine transitions, not update calls.
pub(crate) fn note_escalation(base: &DomainBase, tid: usize, esc: Option<Escalation>) {
    let Some(esc) = esc else { return };
    let shard = base.stats.shard(tid);
    if esc.crossed(PressureRung::Soft) {
        shard.pressure_soft_trips.fetch_add(1, Ordering::Relaxed);
    }
    if esc.crossed(PressureRung::Hard) {
        shard.pressure_hard_trips.fetch_add(1, Ordering::Relaxed);
    }
    if esc.crossed(PressureRung::Emergency) {
        shard
            .pressure_emergency_trips
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// The amortized accounting every seal event owes: one `retired_nodes`
/// bump for the sealed members, one `batches_sealed` event per block, and
/// the monotone-block tally — plus the pressure gauge's retire-side feed
/// (sealed nodes are exactly the gauge's unit of actionable backlog).
/// Shared by [`push_retired`], [`seal_and_account`] and NR's leak path.
pub(crate) fn account_seal(base: &DomainBase, tid: usize, outcome: SealOutcome) {
    let shard = base.stats.shard(tid);
    shard
        .retired_nodes
        .fetch_add(outcome.nodes as u64, Ordering::Relaxed);
    note_escalation(base, tid, base.stats.pressure().on_retired(outcome.nodes));
    shard
        .batches_sealed
        .fetch_add(outcome.blocks, Ordering::Relaxed);
    if outcome.monotone > 0 {
        shard
            .blocks_sealed_monotone
            .fetch_add(outcome.monotone, Ordering::Relaxed);
    }
    if outcome.era_monotone > 0 {
        shard
            .blocks_sealed_era_monotone
            .fetch_add(outcome.era_monotone, Ordering::Relaxed);
    }
}

/// Seals every non-empty fill bin and performs the amortized accounting
/// (the same bumps a hot-path seal gets in [`push_retired`], once per
/// sealed block).
pub(crate) fn seal_and_account(base: &DomainBase, tid: usize, list: &mut RetireList) {
    let outcome = list.seal_partial();
    if outcome.nodes > 0 {
        account_seal(base, tid, outcome);
    }
}

/// The shared retire fast path: push into the pointer's arena fill bin;
/// on a seal, run the amortized accounting (plus the bin auto-sizer's
/// window step) and report whether a reclamation pass is due (the caller
/// then runs its scheme's pass).
///
/// A pass is due when the list is over `reclaim_freq` **and** a full
/// `reclaim_freq` of new retires arrived since the last trigger — so a
/// pinned list (stalled reader) costs one full-list sweep per
/// `reclaim_freq` retires, not one per seal.
#[inline]
pub(crate) fn push_retired(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    r: Retired,
) -> bool {
    match list.push(r) {
        None => false,
        Some(outcome) => {
            account_seal(base, tid, outcome);
            // Bin auto-sizing rides the seal (already off the per-retire
            // path): at most once per adaptation window this seals the
            // partial bins and applies a new bin count.
            if let Some(extra) = list.maybe_adapt_bins() {
                if extra.nodes > 0 {
                    account_seal(base, tid, extra);
                }
                base.stats
                    .shard(tid)
                    .bin_resizes
                    .fetch_add(1, Ordering::Relaxed);
                // Publish the new count so joiners inherit it
                // (controller v2 — see DomainBase::bin_hint).
                base.bin_hint.store(list.bins(), Ordering::Relaxed);
            }
            let freq = base.cfg.reclaim_freq;
            if list.len() >= freq && list.sealed_since_trigger >= freq {
                list.note_pass();
                true
            } else {
                false
            }
        }
    }
}

/// A sweep's verdict for one sealed block, decided **before** any record
/// is touched (see the module-level lifecycle).
pub(crate) enum BlockPlan {
    /// Every member survives: keep the block without moving a record.
    KeepAll,
    /// Every member is freeable: free the block whole (one stats update).
    FreeAll,
    /// Mixed: bit `i` set means slot `i` survives; compact in place.
    Mask(u32),
    /// Every member is pinned **only** by `blocker_tid`'s stalled
    /// reservation `word` (emergency rung): park the block whole in the
    /// domain's stalled-reader quarantine so later sweeps stop re-scanning
    /// it, until [`DomainBase::reclaim_released_quarantine`] hands it
    /// back. Not counted freed; leaves the gauge's actionable count.
    Quarantine {
        /// The stalled participant pinning the block.
        blocker_tid: usize,
        /// Its observed reservation word (release key).
        word: u64,
    },
}

/// All-ones keep mask for a block of `n` records.
#[inline]
pub(crate) fn full_mask(n: usize) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Block-granular sweep driver under every reclamation pass: seals every
/// non-empty fill bin, steals one orphan chunk, then walks sealed blocks in retire
/// order, executing the [`BlockPlan`] `plan` returns for each. Survivors
/// stay **in their original retire order** within and across blocks, and
/// per-node masks that turn out to cover (or clear) a whole block are
/// normalized onto the no-touch whole-block paths. Allocation-free:
/// emptied blocks recycle into the list's free pool. Returns the number
/// freed.
///
/// # Safety
///
/// The caller's scheme must have proven that every entry the plan rejects
/// is unreachable by all threads, and `tid` must be the caller's
/// registered domain thread id (it owns `list`).
pub(crate) unsafe fn sweep_blocks(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    mut plan: impl FnMut(&mut RetireBatch) -> BlockPlan,
) -> usize {
    seal_and_account(base, tid, list);
    // This sweep counts as the pass the trigger pacing was waiting for
    // (flush-driven sweeps reset the budget too).
    list.note_pass();
    // Reclaimer-side orphan adoption: stolen nodes join the sealed blocks
    // and are filtered by this very pass.
    base.steal_orphan_chunk(tid, list);
    let shard = base.stats.shard(tid);
    let nblocks = list.blocks.len();
    let blocks_ptr = list.blocks.as_mut_ptr();
    // Defensive: if a free panics mid-sweep, neither vector may expose
    // half-moved entries. Truncating first leaks not-yet-rewritten blocks
    // on unwind instead of double-freeing them (`Retired` and
    // `RetireBatch` have no Drop impls).
    // SAFETY: elements stay initialized; we manage them manually below.
    unsafe { list.blocks.set_len(0) };
    let mut write_block = 0usize;
    let mut total_freed = 0usize;
    let mut kept_whole = 0u64;
    let mut freed_whole = 0u64;
    // Emergency-rung parking collects locally and publishes once after the
    // loop: one quarantine lock per sweep, none at all on the common path.
    let mut quarantined: Vec<QuarantinedBlock> = Vec::new();
    let mut quarantined_nodes = 0usize;
    for read_block in 0..nblocks {
        // SAFETY: `read_block < nblocks`, the original initialized length.
        let mut b = unsafe { core::ptr::read(blocks_ptr.add(read_block)) };
        let n = b.len();
        let full = full_mask(n);
        let decision = match plan(&mut b) {
            BlockPlan::Mask(m) if m & full == full => BlockPlan::KeepAll,
            BlockPlan::Mask(m) if m & full == 0 => BlockPlan::FreeAll,
            d => d,
        };
        match decision {
            BlockPlan::KeepAll => {
                // Untouched: the block keeps its sort cache for the next
                // pass — repeatedly pinned blocks are re-range-tested from
                // the cached summary alone.
                kept_whole += 1;
                // SAFETY: `write_block <= read_block < nblocks`; slot was
                // already moved out.
                unsafe { core::ptr::write(blocks_ptr.add(write_block), b) };
                write_block += 1;
            }
            BlockPlan::FreeAll => {
                // Whole-slab settlement: a wholly-freed block whose pointer
                // extrema share one slab-aligned base (which, since slot
                // spans never straddle slabs, proves every member is a slot
                // of that slab) settles against its slab in one step — the
                // payloads drop in place, then a single batched `freed`
                // update replaces the per-slot RMW + settle-probe chain.
                // The quarantine config parks nodes instead of freeing, so
                // it keeps the general per-record path.
                let slab_base = if n > 0 && !base.cfg.quarantine {
                    let (lo, hi) = b.ptr_range();
                    let slab_mask = !(crate::slab::SLAB_BYTES as u64 - 1);
                    (lo & slab_mask == hi & slab_mask && b.nodes()[0].header().is_slab_backed())
                        .then_some((lo & slab_mask) as usize)
                } else {
                    None
                };
                let ptr = b.as_mut_ptr();
                // SAFETY: defensive truncation; records read out below.
                unsafe { b.set_len(0) };
                let mut freed_bytes = 0u64;
                if let Some(slab) = slab_base {
                    for read in 0..n {
                        // SAFETY: `read < n`, the original initialized
                        // length.
                        let r = unsafe { core::ptr::read(ptr.add(read)) };
                        freed_bytes += r.size() as u64;
                        // SAFETY: proven unreachable; slab-backed per the
                        // confinement test — slot returned in the batch
                        // settle below.
                        unsafe { r.drop_payload_for_batch() };
                    }
                    // SAFETY: all `n` slots belong to `slab`, payloads
                    // dropped above, each counted exactly once.
                    unsafe { crate::slab::free_slots_batch(slab, n as u32) };
                    shard.slab_frees_whole.fetch_add(1, Ordering::Relaxed);
                } else {
                    for read in 0..n {
                        // SAFETY: `read < n`, the original initialized
                        // length.
                        let r = unsafe { core::ptr::read(ptr.add(read)) };
                        freed_bytes += r.size() as u64;
                        // SAFETY: forwarded contract — proven unreachable.
                        unsafe { base.free_raw(r) };
                    }
                }
                shard.freed_nodes.fetch_add(n as u64, Ordering::Relaxed);
                shard.freed_bytes.fetch_add(freed_bytes, Ordering::Relaxed);
                total_freed += n;
                freed_whole += 1;
                list.free.push(b);
            }
            BlockPlan::Mask(m) => {
                let ptr = b.as_mut_ptr();
                // SAFETY: same defensive truncation at block granularity.
                unsafe { b.set_len(0) };
                let mut write = 0usize;
                let mut freed_nodes = 0u64;
                let mut freed_bytes = 0u64;
                for read in 0..n {
                    // SAFETY: `read < n`, the original initialized length.
                    let r = unsafe { core::ptr::read(ptr.add(read)) };
                    if m & (1u32 << read) != 0 {
                        if write != read {
                            // SAFETY: `write <= read < n`; slot moved out.
                            unsafe { core::ptr::write(ptr.add(write), r) };
                        }
                        // else: the slot already holds exactly these bits,
                        // and `Retired` has no Drop, so letting the copy
                        // go is free.
                        write += 1;
                    } else {
                        freed_bytes += r.size() as u64;
                        freed_nodes += 1;
                        // SAFETY: forwarded contract — proven unreachable.
                        unsafe { base.free_raw(r) };
                    }
                }
                // SAFETY: the first `write` slots hold initialized
                // survivors (`set_len` also drops the stale sort cache).
                unsafe { b.set_len(write) };
                shard.freed_nodes.fetch_add(freed_nodes, Ordering::Relaxed);
                shard.freed_bytes.fetch_add(freed_bytes, Ordering::Relaxed);
                total_freed += freed_nodes as usize;
                // Mixed by normalization: at least one survivor remains.
                debug_assert!(write > 0);
                // SAFETY: as in the KeepAll arm.
                unsafe { core::ptr::write(blocks_ptr.add(write_block), b) };
                write_block += 1;
            }
            BlockPlan::Quarantine { blocker_tid, word } => {
                // Parked whole: no record is touched, the block leaves the
                // caller's list (and its re-scan loop) until the blocker's
                // reservation moves.
                quarantined_nodes += n;
                quarantined.push(QuarantinedBlock {
                    blocker_tid,
                    pinned_word: word,
                    block: b,
                });
            }
        }
    }
    // SAFETY: the first `write_block` slots hold initialized blocks.
    unsafe { list.blocks.set_len(write_block) };
    list.sealed_nodes -= total_freed + quarantined_nodes;
    if freed_whole > 0 {
        shard
            .blocks_freed_whole
            .fetch_add(freed_whole, Ordering::Relaxed);
    }
    if kept_whole > 0 {
        shard
            .blocks_kept_whole
            .fetch_add(kept_whole, Ordering::Relaxed);
    }
    if !quarantined.is_empty() {
        let qblocks = quarantined.len();
        shard
            .blocks_quarantined
            .fetch_add(qblocks as u64, Ordering::Relaxed);
        base.pressure_quarantine.lock().extend(quarantined);
        base.pq_hint.fetch_add(qblocks, Ordering::Relaxed);
        base.stats.pressure().on_quarantined(quarantined_nodes);
    }
    if total_freed > 0 {
        base.stats.pressure().on_freed(total_freed);
    }
    // Degradation rung 4: under hard pressure the recycled-block pool is
    // ballast — drop it entirely; otherwise honor the configured cap
    // (`0` = unbounded).
    let cap = if base.stats.pressure().rung() >= PressureRung::Hard {
        0
    } else if base.cfg.free_pool_cap == 0 {
        usize::MAX
    } else {
        base.cfg.free_pool_cap
    };
    if list.free.len() > cap {
        let trimmed = (list.free.len() - cap) as u64;
        list.free.truncate(cap);
        shard
            .pool_blocks_trimmed
            .fetch_add(trimmed, Ordering::Relaxed);
    }
    total_freed
}

/// Generic-predicate sweep: every entry for which `keep` returns `false`
/// is freed; survivors stay in their original retire order. Returns the
/// number freed. Rides [`sweep_blocks`] with a per-node keep mask — the
/// path for predicates with no sorted-set structure (IBR's interval
/// intersection, tests).
///
/// # Safety
///
/// As for [`sweep_blocks`], with `keep` as the plan.
pub(crate) unsafe fn sweep_retire_list(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    mut keep: impl FnMut(&Retired) -> bool,
) -> usize {
    // SAFETY: forwarded contract.
    unsafe {
        sweep_blocks(base, tid, list, |b| {
            let mut mask = 0u32;
            for (i, r) in b.nodes().iter().enumerate() {
                if keep(r) {
                    mask |= 1u32 << i;
                }
            }
            BlockPlan::Mask(mask)
        })
    }
}

/// Copies a block's lazily sorted slot permutation into a stack array so
/// the borrow on the block clears before its nodes are re-read.
#[inline]
fn copy_sorted_order(b: &mut RetireBatch, key: SortKey) -> ([u8; RETIRE_BATCH_CAP], usize) {
    let mut ord = [0u8; RETIRE_BATCH_CAP];
    let src = b.sorted_order(key);
    let n = src.len();
    ord[..n].copy_from_slice(src);
    (ord, n)
}

/// Frees every entry of `list` whose pointer is **not** in the sorted
/// `reserved` set; reserved entries are retained in order. Returns the
/// number freed.
///
/// Per block: a range test of the cached pointer extrema against
/// `reserved` frees untouched blocks whole; undecided blocks merge-join
/// their pointer-sorted slots against `reserved` with one forward cursor
/// (no per-node binary search).
///
/// # Safety
///
/// `reserved` must contain every (unmarked) pointer any thread may still
/// access — the scheme's scan guarantees this. `tid` must be the caller's
/// registered domain thread id.
pub(crate) unsafe fn free_unreserved(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    reserved: &[u64],
) -> usize {
    debug_assert!(reserved.windows(2).all(|w| w[0] <= w[1]));
    // SAFETY: forwarded contract.
    unsafe {
        sweep_blocks(base, tid, list, |b| {
            let (min_ptr, max_ptr) = b.ptr_range();
            // Whole-block range test: the reserved *window* overlapping
            // the block's pointer span. Empty ⇒ no member can be reserved.
            let lo = reserved.partition_point(|&w| w < min_ptr);
            let hi = lo + reserved[lo..].partition_point(|&w| w <= max_ptr);
            let window = &reserved[lo..hi];
            if window.is_empty() {
                return BlockPlan::FreeAll;
            }
            let mut mask = 0u32;
            if b.has_sorted(SortKey::Ptr) || b.ptr_monotone_hint() || b.note_sweep() >= 1 {
                // Sorted, born monotone (the binned-fill common case:
                // `sorted_order` detects the run in one pass, no sort —
                // churn blocks inherit the merge-join fast path on their
                // FIRST sweep), or long-lived enough to sort now:
                // merge-join the pointer-sorted slots against the window
                // with one forward cursor — O(block + window) sequential
                // compares, any real sort amortized across this block's
                // remaining sweeps.
                let (ord, n) = copy_sorted_order(b, SortKey::Ptr);
                let nodes = b.nodes();
                let mut cur = 0usize;
                for &i in &ord[..n] {
                    let key = nodes[i as usize].ptr() as u64;
                    while cur < window.len() && window[cur] < key {
                        cur += 1;
                    }
                    if cur < window.len() && window[cur] == key {
                        mask |= 1u32 << i;
                    }
                }
            } else {
                // First sweep of this block: search the narrowed window
                // per node instead of paying a sort the block may never
                // amortize (most blocks die on their first sweep).
                for (i, r) in b.nodes().iter().enumerate() {
                    if window.binary_search(&(r.ptr() as u64)).is_ok() {
                        mask |= 1u32 << i;
                    }
                }
            }
            BlockPlan::Mask(mask)
        })
    }
}

/// Frees every entry whose `[birth_era, retire_era]` lifespan intersects no
/// reserved era in the sorted `reserved` slice (hazard-eras `canFree`,
/// paper Alg. 4/5). Returns the number freed.
///
/// Per block: the cached `[min_birth, max_retire]` envelope contains every
/// member's lifespan, so an envelope free of reserved eras frees the block
/// whole; undecided blocks merge-join their birth-sorted slots against
/// `reserved` — the first-reserved-era-≥-birth cursor is monotone in birth
/// order, replacing the per-node `partition_point`.
///
/// # Safety
///
/// `reserved` must include every era any thread may have reserved. `tid`
/// must be the caller's registered domain thread id.
pub(crate) unsafe fn free_era_unreserved(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    reserved: &[u64],
) -> usize {
    // SAFETY: forwarded contract.
    unsafe { free_era_unreserved_with_stalled(base, tid, list, reserved, None) }
}

/// [`free_era_unreserved`] with a stalled-reader escape hatch. `reserved`
/// is the union of **all** reserved eras (the safety set); `active`
/// optionally carries the reserved eras of **non-stalled** threads only,
/// plus the known-stalled blocker's identity. A block whose lifespan
/// envelope misses every union era frees whole as before; one that misses
/// every *active* era — pinned only by the stalled blocker's slots — is
/// parked in the domain quarantine under the blocker's key instead of
/// being re-scanned each pass. Per-node masking always tests the full
/// union, so nothing a live thread may hold is ever freed or parked
/// node-wise.
///
/// # Safety
///
/// As for [`free_era_unreserved`]; additionally `active` (when given)
/// must include every era any **non-stalled** registered thread may have
/// reserved.
pub(crate) unsafe fn free_era_unreserved_with_stalled(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    reserved: &[u64],
    active: Option<(&[u64], usize, u64)>,
) -> usize {
    debug_assert!(reserved.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(active.is_none_or(|(a, _, _)| a.windows(2).all(|w| w[0] <= w[1])));
    // SAFETY: forwarded contract.
    unsafe {
        sweep_blocks(base, tid, list, |b| {
            let (min_birth, _, max_retire) = b.era_ranges();
            // Reserved eras overlapping the block's lifespan envelope;
            // every member's `[birth, retire]` lies inside the envelope,
            // so eras outside the window can hit no member.
            let lo = reserved.partition_point(|&e| e < min_birth);
            let hi = lo + reserved[lo..].partition_point(|&e| e <= max_retire);
            let window = &reserved[lo..hi];
            if window.is_empty() {
                return BlockPlan::FreeAll;
            }
            if let Some((act, blocker_tid, blocker_word)) = active {
                // Some union era pins the block, but if no *active* era
                // does, every pinning era belongs to the stalled blocker:
                // park the block whole under its release key.
                let alo = act.partition_point(|&e| e < min_birth);
                let ahi = alo + act[alo..].partition_point(|&e| e <= max_retire);
                if alo == ahi {
                    return BlockPlan::Quarantine {
                        blocker_tid,
                        word: blocker_word,
                    };
                }
            }
            let mut mask = 0u32;
            if b.has_sorted(SortKey::Birth) || b.era_monotone_hint() || b.note_sweep() >= 1 {
                // Merge-join: the first-reserved-era-≥-birth cursor is
                // monotone in birth order, so one forward walk over the
                // birth-sorted slots replaces the per-node search. Blocks
                // born era-monotone (retire order tracks birth order in
                // most workloads — the push-time direction bits prove it)
                // take this path on their FIRST sweep: their birth-sorted
                // permutation costs one detection pass, no sort.
                let (ord, n) = copy_sorted_order(b, SortKey::Birth);
                let nodes = b.nodes();
                let mut cur = 0usize;
                for &i in &ord[..n] {
                    let h = nodes[i as usize].header();
                    while cur < window.len() && window[cur] < h.birth_era {
                        cur += 1;
                    }
                    if cur < window.len() && window[cur] <= h.retire_era() {
                        mask |= 1u32 << i;
                    }
                }
            } else {
                // First sweep: per-node test against the narrowed window
                // (sort deferred until the block proves long-lived).
                for (i, r) in b.nodes().iter().enumerate() {
                    let h = r.header();
                    if era_range_reserved(window, h.birth_era, h.retire_era()) {
                        mask |= 1u32 << i;
                    }
                }
            }
            BlockPlan::Mask(mask)
        })
    }
}

/// The epoch floor a stalled-reader emergency sweep would reach if the one
/// known-stalled blocker were ignored: `min` over every **non-stalled**
/// registered reservation, plus the identity of the blocker whose pinned
/// word holds the real floor down. Built by the epoch schemes' min-scan
/// when the emergency rung is active.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RelaxedMin {
    /// Minimum announced epoch over non-stalled registered threads.
    pub min: u64,
    /// The stalled participant pinning the floor below `min`.
    pub blocker_tid: usize,
    /// The blocker's observed reservation word (quarantine release key).
    pub blocker_word: u64,
}

/// Stall-aware epoch min-scan shared by the epoch schemes: feeds every
/// registered announcement into the domain stall tracker (ages must accrue
/// *before* the emergency rung engages), returning the true floor plus —
/// on the emergency rung only — the relaxed floor over non-stalled readers
/// and the single worst stalled blocker holding the true floor down.
/// `quiescent` is the scheme's parked announcement value; `word_of(t)`
/// must perform the scheme's ordered reservation load.
pub(crate) fn scan_epoch_reservations(
    base: &DomainBase,
    quiescent: u64,
    word_of: impl Fn(usize) -> u64,
) -> (u64, Option<RelaxedMin>) {
    let emergency = base.stats.pressure().rung() >= PressureRung::Emergency;
    let mut min = u64::MAX;
    let mut relaxed = u64::MAX;
    let mut blocker: Option<(usize, u64)> = None;
    for t in 0..base.cfg.max_threads {
        if !base.is_registered(t) {
            continue;
        }
        let w = word_of(t);
        min = min.min(w);
        // Quiescent readers park outside every epoch: idle, never stalled.
        // Live words shift by one so a reader pinned at epoch 0 stays
        // distinguishable from idle in the tracker.
        let sig = if w == quiescent { 0 } else { w.wrapping_add(1) };
        let stalled =
            base.stall.observe(t, sig) >= crate::pressure::STALLED_AFTER_PASSES && w != quiescent;
        if !emergency {
            continue;
        }
        if stalled {
            if blocker.is_none_or(|(_, bw)| w < bw) {
                blocker = Some((t, w));
            }
        } else {
            relaxed = relaxed.min(w);
        }
    }
    // Only a blocker strictly below the relaxed floor buys anything: the
    // quarantine window `[max_retire < relaxed.min]` would be empty
    // otherwise.
    let relaxed_min = blocker.and_then(|(t, w)| {
        (w < relaxed).then_some(RelaxedMin {
            min: relaxed,
            blocker_tid: t,
            blocker_word: w,
        })
    });
    (min, relaxed_min)
}

/// Frees every entry retired strictly before epoch `min` (EBR / EpochPOP
/// fast path). Returns the number freed.
///
/// Per block: the cached retire-era extrema decide most blocks whole
/// (`min_retire >= min` keeps, `max_retire < min` frees) without touching
/// a record; only straddling blocks pay the per-node comparison.
///
/// # Safety
///
/// `min` must be a lower bound on every registered thread's announced
/// epoch — nodes retired before it are unreachable. `tid` must be the
/// caller's registered domain thread id.
#[cfg_attr(not(test), allow(dead_code))] // stall-free entry point, exercised by the unit suite
pub(crate) unsafe fn free_before_epoch(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    min: u64,
) -> usize {
    // SAFETY: forwarded contract.
    unsafe { free_before_epoch_with_stalled(base, tid, list, min, None) }
}

/// [`free_before_epoch`] with a stalled-reader escape hatch: blocks whose
/// entire retire range lies below `relaxed.min` — provably pinned **only**
/// by the known-stalled blocker — are parked in the domain quarantine
/// instead of being re-scanned every pass. Parking is conservative: the
/// blocks are not freed, and [`DomainBase::reclaim_released_quarantine`]
/// re-filters them against *all* live reservations once the blocker's
/// epoch moves, so a mis-ranked blocker costs a deferred sweep, never a
/// premature free.
///
/// # Safety
///
/// As for [`free_before_epoch`]; additionally `relaxed.min` must be a
/// lower bound on every registered **non-stalled** thread's announced
/// epoch.
pub(crate) unsafe fn free_before_epoch_with_stalled(
    base: &DomainBase,
    tid: usize,
    list: &mut RetireList,
    min: u64,
    relaxed: Option<&RelaxedMin>,
) -> usize {
    // SAFETY: forwarded contract.
    unsafe {
        sweep_blocks(base, tid, list, |b| {
            let (_, min_retire, max_retire) = b.era_ranges();
            if max_retire < min {
                return BlockPlan::FreeAll;
            }
            if let Some(rm) = relaxed {
                // Below the non-stalled floor but not the true floor:
                // every member is pinned solely by the blocker.
                if max_retire < rm.min {
                    return BlockPlan::Quarantine {
                        blocker_tid: rm.blocker_tid,
                        word: rm.blocker_word,
                    };
                }
            }
            if min_retire >= min {
                return BlockPlan::KeepAll;
            }
            let mut mask = 0u32;
            for (i, r) in b.nodes().iter().enumerate() {
                if r.header().retire_era() >= min {
                    mask |= 1u32 << i;
                }
            }
            BlockPlan::Mask(mask)
        })
    }
}

/// Scans every registered thread's reservation slots (`cells` laid out as
/// `tid * slots_per_thread + slot`) into `out` as a sorted, deduplicated
/// set of non-zero words. Shared by the eager-publication schemes (HP,
/// HPAsym, HE); allocation-free once `out` has grown to working capacity.
pub(crate) fn collect_slot_words_into(
    base: &DomainBase,
    slots_per_thread: usize,
    cells: &[AtomicU64],
    out: &mut Vec<u64>,
) {
    out.clear();
    for t in 0..base.cfg.max_threads {
        if !base.is_registered(t) {
            continue;
        }
        for s in 0..slots_per_thread {
            let w = cells[t * slots_per_thread + s].load(Ordering::Acquire);
            if w != 0 {
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Whether `gtid` is the process registry's slot for the **calling**
/// thread — i.e. a registration obtained through
/// [`crate::smr::Smr::register`], not a gtid fabricated by a unit test.
///
/// Captured once at bind time. A backed registration can only disappear
/// through the thread's own teardown (`Registration` drops the domain
/// binding *before* the registry handle, and the thread-exit TLS
/// destructor is the only other releaser), so a later `Vacated` probe of a
/// still-bound domain tid is proof the thread is gone. An unbacked gtid
/// proves nothing — its probes may be watching an unrelated thread's slot.
pub(crate) fn registration_backed(gtid: usize) -> bool {
    gtid < pop_runtime::MAX_THREADS && pop_runtime::Registry::global().find_current() == Some(gtid)
}

/// Whether the registration `(gtid, generation)` is confirmed dead: the
/// kernel-tid probe reports the thread gone, or the registration vanished
/// from the registry while its domain binding survived (`backed` — the
/// thread exited and TLS teardown released the slot for it). `Alive` and
/// every ambiguous outcome read as "not dead": reaping is an optimization,
/// keeping is the correctness story.
pub(crate) fn registration_confirmed_dead(gtid: usize, generation: u64, backed: bool) -> bool {
    use pop_runtime::{Liveness, Registry};
    if gtid >= pop_runtime::MAX_THREADS {
        return false;
    }
    match Registry::global().probe(gtid, generation) {
        Liveness::Dead => true,
        Liveness::Vacated => backed,
        Liveness::Alive => false,
    }
}

/// Re-confirms death immediately before a reap and releases the registry
/// slot if it is still held. Returns whether the reaper may proceed.
///
/// Two confirmable shapes: the slot is still active with a dead kernel tid
/// ([`pop_runtime::Registry::reap`] releases it here), or a `backed`
/// registration already vacated by the dead thread's TLS teardown (nothing
/// left to release). A live or recycled-by-another-claim registration
/// refuses the reap.
pub(crate) fn reap_registration(gtid: usize, generation: u64, backed: bool) -> bool {
    use pop_runtime::{Liveness, Registry};
    if gtid >= pop_runtime::MAX_THREADS {
        return false;
    }
    Registry::global().reap(gtid, generation)
        || (backed && Registry::global().probe(gtid, generation) == Liveness::Vacated)
}

/// Whether any era in sorted `reserved` lies within `[birth, retire]`.
pub fn era_range_reserved(reserved: &[u64], birth: u64, retire: u64) -> bool {
    // First reserved era >= birth; blocked if it also <= retire.
    let idx = reserved.partition_point(|&e| e < birth);
    idx < reserved.len() && reserved[idx] <= retire
}

/// Bench/diagnostic harness comparing the merge-join reservation filter
/// against the historical per-node binary-search sweep over a synthetic
/// retire list. **Not a stable API** (re-exported through
/// `pop_core::testing`).
#[doc(hidden)]
pub struct SweepBench {
    base: DomainBase,
    list: RetireList,
}

#[repr(C)]
struct SweepBenchNode {
    hdr: crate::header::Header,
    _payload: [u64; 2],
}
// SAFETY: repr(C) with the header first.
unsafe impl crate::header::HasHeader for SweepBenchNode {}

impl Default for SweepBench {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepBench {
    /// A single-thread domain whose reclaim threshold never triggers on
    /// its own — sweeps run only when the harness asks. Single fill block
    /// (no arena binning), the pre-PR-4 baseline.
    pub fn new() -> Self {
        Self::with_bins(1)
    }

    /// Like [`Self::new`] with `bins` arena fill bins, for measuring the
    /// binned-fill monotonicity delta.
    pub fn with_bins(bins: usize) -> Self {
        SweepBench {
            base: DomainBase::new(SmrConfig::for_tests(1).with_reclaim_freq(1 << 30)),
            list: RetireList::new(RETIRE_BATCH_CAP, bins),
        }
    }

    /// Like [`Self::with_bins`] with the per-thread bin auto-sizer live
    /// (`bins` is the initial count), for measuring adaptive convergence
    /// against the static settings.
    pub fn adaptive(bins: usize) -> Self {
        SweepBench {
            base: DomainBase::new(SmrConfig::for_tests(1).with_reclaim_freq(1 << 30)),
            list: RetireList::with_adaptive(RETIRE_BATCH_CAP, bins, true),
        }
    }

    /// Current fill-bin count (auto-sizing observability).
    pub fn bins(&self) -> usize {
        self.list.bins()
    }

    /// Bin resize events performed by the auto-sizer so far.
    pub fn bin_resizes(&self) -> u64 {
        self.base.stats.snapshot().bin_resizes
    }

    /// `(era_monotone, sealed)` block counts so callers can report the
    /// era-monotone sealed-block share.
    pub fn era_monotone_share(&self) -> (u64, u64) {
        let s = self.base.stats.snapshot();
        (s.blocks_sealed_era_monotone, s.batches_sealed)
    }

    /// Sweeps with the era filter (`free_era_unreserved`) against a
    /// sorted, deduplicated reserved-era set. Returns the number freed.
    pub fn sweep_era(&mut self, reserved: &[u64]) -> usize {
        // SAFETY: harness nodes are never shared; any entry is freeable.
        unsafe { free_era_unreserved(&self.base, 0, &mut self.list, reserved) }
    }

    /// Allocates and retires `n` nodes, returning their pointer words in
    /// retire order (callers draw reservation sets from these). Retire
    /// order is whatever the allocator hands out — address-random after
    /// the first drain/refill cycle, the filterers' worst case.
    pub fn fill(&mut self, n: usize) -> Vec<u64> {
        let mut ptrs = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let p = Box::into_raw(Box::new(SweepBenchNode {
                hdr: crate::header::Header::new(i, core::mem::size_of::<SweepBenchNode>()),
                _payload: [0; 2],
            }));
            self.base
                .stats
                .shard(0)
                .allocated_nodes
                .fetch_add(1, Ordering::Relaxed);
            // SAFETY: freshly boxed, never shared, retired exactly once.
            let r = unsafe { Retired::new(p) };
            r.header().set_retire_era(i);
            ptrs.push(r.ptr() as u64);
            push_retired(&self.base, 0, &mut self.list, r);
        }
        ptrs
    }

    /// Allocates and retires `n` nodes from the owned slab arenas (PR 10):
    /// bump fills are address-monotone by construction and retire blocks
    /// stay confined to single slabs, so sweeps settle most blocks whole
    /// with one range test. Returns the pointer words in retire order.
    pub fn fill_slab(&mut self, n: usize) -> Vec<u64> {
        let mut ptrs = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let p = crate::slab::alloc_value(
                SweepBenchNode {
                    hdr: crate::header::Header::new(i, core::mem::size_of::<SweepBenchNode>()),
                    _payload: [0; 2],
                },
                true,
            );
            self.base
                .stats
                .shard(0)
                .allocated_nodes
                .fetch_add(1, Ordering::Relaxed);
            // SAFETY: freshly allocated, never shared, retired exactly once.
            let r = unsafe { Retired::new(p) };
            r.header().set_retire_era(i);
            ptrs.push(r.ptr() as u64);
            push_retired(&self.base, 0, &mut self.list, r);
        }
        ptrs
    }

    /// Retire blocks that settled wholly against a single slab with one
    /// range test (`slab_frees_whole`).
    pub fn slab_frees_whole(&self) -> u64 {
        self.base.stats.snapshot().slab_frees_whole
    }

    /// Allocates and retires `n` nodes in **address order** — the ideal
    /// single-address-stream workload (a bump allocator, or a structure
    /// retiring a contiguous region in traversal order), independent of
    /// what order the process allocator hands addresses out. Every block
    /// seals monotone at any bin count. Returns the pointer words in
    /// retire order.
    pub fn fill_sorted(&mut self, n: usize) -> Vec<u64> {
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let p = Box::into_raw(Box::new(SweepBenchNode {
                hdr: crate::header::Header::new(i, core::mem::size_of::<SweepBenchNode>()),
                _payload: [0; 2],
            }));
            self.base
                .stats
                .shard(0)
                .allocated_nodes
                .fetch_add(1, Ordering::Relaxed);
            // SAFETY: freshly boxed, never shared, retired exactly once.
            nodes.push(unsafe { Retired::new(p) });
        }
        nodes.sort_by_key(|r| r.ptr() as u64);
        let mut ptrs = Vec::with_capacity(n);
        for (era, r) in nodes.into_iter().enumerate() {
            r.header().set_retire_era(era as u64);
            ptrs.push(r.ptr() as u64);
            push_retired(&self.base, 0, &mut self.list, r);
        }
        ptrs
    }

    /// Allocates `streams` bursts of `n / streams` nodes each (every
    /// burst contiguous, hence address-ascending and usually confined to
    /// one allocator arena) and retires them **round-robin across the
    /// bursts** — the churn-regime worst case for block monotonicity: an
    /// unbinned fill block sees `streams` interleaved address sequences,
    /// while arena-binned fills separate them back into monotone blocks.
    /// Returns the pointer words in retire order.
    pub fn fill_interleaved(&mut self, n: usize, streams: usize) -> Vec<u64> {
        let streams = streams.max(1);
        let per = n / streams;
        let mut bursts: Vec<Vec<Retired>> = Vec::with_capacity(streams);
        for s in 0..streams {
            let mut burst = Vec::with_capacity(per);
            for i in 0..per as u64 {
                // Burst-disjoint birth eras: round-robin retirement then
                // interleaves distinct era runs (the era analogue of the
                // interleaved address streams), so an unbinned fill block
                // is era-zigzag while an arena-binned one stays monotone.
                let birth = s as u64 * per as u64 + i;
                let p = Box::into_raw(Box::new(SweepBenchNode {
                    hdr: crate::header::Header::new(birth, core::mem::size_of::<SweepBenchNode>()),
                    _payload: [s as u64; 2],
                }));
                self.base
                    .stats
                    .shard(0)
                    .allocated_nodes
                    .fetch_add(1, Ordering::Relaxed);
                // SAFETY: freshly boxed, never shared, retired exactly once.
                burst.push(unsafe { Retired::new(p) });
            }
            bursts.push(burst);
        }
        // Round-robin retire across the bursts, allocation order within
        // each (reverse + pop keeps the moves cheap).
        for burst in &mut bursts {
            burst.reverse();
        }
        let mut ptrs = Vec::with_capacity(per * streams);
        let mut era = 0u64;
        loop {
            let mut any = false;
            for burst in &mut bursts {
                if let Some(r) = burst.pop() {
                    any = true;
                    r.header().set_retire_era(era);
                    era += 1;
                    ptrs.push(r.ptr() as u64);
                    push_retired(&self.base, 0, &mut self.list, r);
                }
            }
            if !any {
                break;
            }
        }
        ptrs
    }

    /// `(monotone, sealed)` block counts so callers can report the
    /// monotone sealed-block share.
    pub fn monotone_share(&self) -> (u64, u64) {
        let s = self.base.stats.snapshot();
        (s.blocks_sealed_monotone, s.batches_sealed)
    }

    /// Nodes currently held in the list.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Sweeps with the range-test + merge-join path. `reserved` must be
    /// sorted and deduplicated. Returns the number freed.
    pub fn sweep_merge_join(&mut self, reserved: &[u64]) -> usize {
        // SAFETY: harness nodes are never shared; any entry is freeable.
        unsafe { free_unreserved(&self.base, 0, &mut self.list, reserved) }
    }

    /// Sweeps with the pre-merge-join baseline: one binary search into
    /// `reserved` per node. Returns the number freed.
    pub fn sweep_binary_search(&mut self, reserved: &[u64]) -> usize {
        // SAFETY: as above.
        unsafe {
            sweep_retire_list(&self.base, 0, &mut self.list, |r| {
                reserved.binary_search(&(r.ptr() as u64)).is_ok()
            })
        }
    }

    /// Frees every node still held (survivors between iterations).
    pub fn drain(&mut self) {
        let mut nodes = Vec::new();
        self.list.drain_all(|r| nodes.push(r));
        for r in nodes {
            // SAFETY: harness nodes are never shared.
            unsafe { self.base.free_now(0, r) };
        }
    }

    /// Whole-block sweep counters `(kept_whole, freed_whole)` so callers
    /// can verify which path a sweep took.
    pub fn whole_block_counts(&self) -> (u64, u64) {
        let s = self.base.stats.snapshot();
        (s.blocks_kept_whole, s.blocks_freed_whole)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{Header, Retired};

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl crate::header::HasHeader for N {}

    fn mk(base: &DomainBase, birth: u64, retire: u64) -> Retired {
        base.stats
            .shard(0)
            .allocated_nodes
            .fetch_add(1, Ordering::Relaxed);
        let p = Box::into_raw(Box::new(N {
            hdr: Header::new(birth, core::mem::size_of::<N>()),
            v: 0,
        }));
        let r = unsafe { Retired::new(p) };
        r.header().set_retire_era(retire);
        r
    }

    /// A retire list pre-filled with `eras` as both birth and retire eras,
    /// everything sealed (seal threshold 1 unless given).
    fn filled(base: &DomainBase, seal: usize, eras: &[u64]) -> RetireList {
        let mut list = RetireList::new(seal, 1);
        for &e in eras {
            push_retired(base, 0, &mut list, mk(base, e, e));
        }
        seal_and_account(base, 0, &mut list);
        list
    }

    fn eras_of(list: &RetireList) -> Vec<u64> {
        let mut out = Vec::new();
        for b in &list.blocks {
            out.extend(b.nodes().iter().map(|r| r.header().birth_era));
        }
        for fill in &list.fills {
            out.extend(fill.nodes().iter().map(|r| r.header().birth_era));
        }
        out
    }

    fn drain_free(base: &DomainBase, list: &mut RetireList) {
        let mut nodes = Vec::new();
        list.drain_all(|r| nodes.push(r));
        for r in nodes {
            unsafe { base.free_now(0, r) };
        }
    }

    #[test]
    fn claim_release_cycle() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(0);
        assert!(b.is_registered(0));
        b.release(0);
        assert!(!b.is_registered(0));
        b.claim(0); // reclaimable after release
        b.release(0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_claim_panics() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(1);
        b.claim(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_claim_panics() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        b.claim(2);
    }

    #[test]
    fn gtid_binding() {
        let b = DomainBase::new(SmrConfig::for_tests(2));
        assert_eq!(b.gtid(0), None);
        b.bind_gtid(0, 17);
        assert_eq!(b.gtid(0), Some(17));
        b.clear_gtid(0);
        assert_eq!(b.gtid(0), None);
    }

    #[test]
    fn push_seals_at_threshold_and_accounts_lazily() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(4, 1);
        for i in 0..3 {
            assert!(!push_retired(&b, 0, &mut list, mk(&b, i, i)));
        }
        assert_eq!(
            b.stats.snapshot().retired_nodes,
            0,
            "no stats RMW before the seal"
        );
        assert_eq!(list.len(), 3);
        push_retired(&b, 0, &mut list, mk(&b, 3, 3));
        let s = b.stats.snapshot();
        assert_eq!(s.retired_nodes, 4, "seal accounts the whole block");
        assert_eq!(s.batches_sealed, 1);
        drain_free(&b, &mut list);
    }

    #[test]
    fn push_retired_paces_triggers_by_new_retires() {
        let b = DomainBase::new(SmrConfig::for_tests(1).with_reclaim_freq(8));
        let mut list = RetireList::new(4, 1);
        let mut crossings = 0;
        for i in 0..16 {
            if push_retired(&b, 0, &mut list, mk(&b, i, i)) {
                crossings += 1;
            }
        }
        // Seals land at len 4, 8, 12, 16. Triggers need BOTH len >= 8 and
        // 8 new retires since the last trigger: fire at 8 and 16, not 12.
        assert_eq!(crossings, 2, "one trigger per reclaim_freq new retires");
        drain_free(&b, &mut list);
    }

    #[test]
    fn pinned_list_does_not_trigger_every_seal() {
        // Survivors keep len above the threshold (the stalled-reader
        // regime); a full-list pass must still only be requested once per
        // reclaim_freq new retires, not once per sealed block.
        let b = DomainBase::new(SmrConfig::for_tests(1).with_reclaim_freq(8));
        let mut list = RetireList::new(4, 1);
        for i in 0..8 {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        // Simulate a pass that freed nothing (all pinned).
        let freed = unsafe { sweep_retire_list(&b, 0, &mut list, |_| true) };
        assert_eq!(freed, 0);
        assert_eq!(list.len(), 8, "everything pinned");
        let mut crossings = 0;
        for i in 0..8 {
            if push_retired(&b, 0, &mut list, mk(&b, 100 + i, 0)) {
                crossings += 1;
            }
        }
        // len stays >= 8 throughout, but only the seal completing 8 new
        // retires (len 16) may trigger.
        assert_eq!(
            crossings, 1,
            "pinned survivors must not cause O(n^2) passes"
        );
        drain_free(&b, &mut list);
    }

    #[test]
    fn free_unreserved_respects_reservations() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = filled(&b, 1, &[0, 0, 0]);
        let kept = list.blocks[1].nodes()[0].ptr() as u64;
        let reserved = vec![kept];
        let freed = unsafe { free_unreserved(&b, 0, &mut list, &reserved) };
        assert_eq!(freed, 2);
        assert_eq!(list.len(), 1);
        assert_eq!(list.blocks[0].nodes()[0].ptr() as u64, kept);
        drain_free(&b, &mut list);
    }

    #[test]
    fn sweep_preserves_survivor_order_without_reallocating() {
        // The block sweep must keep survivors in retire order (oldest
        // first — schemes rely on this for retire-era monotonicity) and
        // must not allocate: emptied blocks recycle into the free pool.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        // Seal threshold 3: eras spread over three blocks of three.
        let mut list = filled(&b, 3, &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(list.blocks.len(), 3);
        let keep: Vec<u64> = vec![1, 4, 6];
        let kept_ptrs: Vec<u64> = list
            .blocks
            .iter()
            .flat_map(|blk| blk.nodes())
            .filter(|r| keep.contains(&r.header().birth_era))
            .map(|r| r.ptr() as u64)
            .collect();
        let freed = unsafe {
            sweep_retire_list(&b, 0, &mut list, |r| keep.contains(&r.header().birth_era))
        };
        assert_eq!(freed, 6);
        assert_eq!(list.len(), 3);
        assert_eq!(
            eras_of(&list),
            keep,
            "survivors must keep their original relative order"
        );
        let survivor_ptrs: Vec<u64> = list
            .blocks
            .iter()
            .flat_map(|blk| blk.nodes())
            .map(|r| r.ptr() as u64)
            .collect();
        assert_eq!(
            survivor_ptrs, kept_ptrs,
            "survivors must be the same objects, not copies"
        );
        // Accounting: freed counted on shard 0.
        assert_eq!(b.stats.snapshot().freed_nodes, 6);
        drain_free(&b, &mut list);
    }

    #[test]
    fn sweep_block_fast_paths_count_whole_blocks() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        // Three full blocks of 2: eras (0,0), (5,5), (0,5).
        let mut list = filled(&b, 2, &[0, 0, 5, 5, 0, 5]);
        // Keep era 5: block 0 freed whole, block 1 kept whole, block 2
        // compacts.
        let freed = unsafe { sweep_retire_list(&b, 0, &mut list, |r| r.header().birth_era == 5) };
        assert_eq!(freed, 3);
        let s = b.stats.snapshot();
        assert_eq!(s.blocks_freed_whole, 1, "all-freeable block fast path");
        assert_eq!(s.blocks_kept_whole, 1, "all-survivor block fast path");
        assert_eq!(eras_of(&list), vec![5, 5, 5]);
        // Recycled block feeds the next fill: no allocation.
        assert_eq!(list.free.len(), 1);
        drain_free(&b, &mut list);
    }

    #[test]
    fn sweep_seals_and_accounts_the_partial_fill() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(8, 1);
        for i in 0..5 {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        assert_eq!(b.stats.snapshot().retired_nodes, 0, "sub-batch: unsealed");
        let freed = unsafe { sweep_retire_list(&b, 0, &mut list, |_| false) };
        assert_eq!(freed, 5);
        let s = b.stats.snapshot();
        assert_eq!(s.retired_nodes, 5, "flush-style sweep seals the fill");
        assert_eq!(s.freed_nodes, 5);
        assert!(list.is_empty());
    }

    #[test]
    fn free_before_epoch_sweeps_by_retire_era() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(RETIRE_BATCH_CAP, 1);
        for (birth, retire) in [(0, 3), (0, 7), (0, 5)] {
            push_retired(&b, 0, &mut list, mk(&b, birth, retire));
        }
        let freed = unsafe { free_before_epoch(&b, 0, &mut list, 5) };
        assert_eq!(freed, 1, "only retire era 3 < 5 is freeable");
        let survivors: Vec<u64> = list
            .blocks
            .iter()
            .flat_map(|blk| blk.nodes())
            .map(|r| r.header().retire_era())
            .collect();
        assert_eq!(survivors, vec![7, 5]);
        drain_free(&b, &mut list);
    }

    #[test]
    fn quarantine_poisons_instead_of_freeing() {
        let b = DomainBase::new(SmrConfig::for_tests(1).with_quarantine());
        let r = mk(&b, 0, 0);
        let ptr = r.ptr();
        unsafe { b.free_now(0, r) };
        assert_eq!(b.quarantine_len(), 1);
        // The allocation is still mapped and poisoned.
        assert!(unsafe { &*ptr }.is_poisoned());
        assert_eq!(b.stats.snapshot().freed_nodes, 1);
    }

    #[test]
    fn era_reservation_blocking() {
        // reserved eras: 5, 10, 20
        let reserved = vec![5, 10, 20];
        assert!(era_range_reserved(&reserved, 4, 6)); // 5 inside
        assert!(era_range_reserved(&reserved, 10, 10)); // exact hit
        assert!(!era_range_reserved(&reserved, 6, 9)); // gap
        assert!(!era_range_reserved(&reserved, 21, 30)); // above all
        assert!(!era_range_reserved(&reserved, 0, 4)); // below all
        assert!(era_range_reserved(&reserved, 0, 100)); // spans all
        assert!(!era_range_reserved(&[], 0, u64::MAX)); // nothing reserved
    }

    #[test]
    fn era_free_pass() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(RETIRE_BATCH_CAP, 1);
        // lifespans: [1,2] freeable, [4,6] blocked by era 5, [7,9] freeable
        for (birth, retire) in [(1, 2), (4, 6), (7, 9)] {
            push_retired(&b, 0, &mut list, mk(&b, birth, retire));
        }
        let freed = unsafe { free_era_unreserved(&b, 0, &mut list, &[3, 5, 10]) };
        assert_eq!(freed, 2);
        assert_eq!(list.len(), 1);
        assert_eq!(eras_of(&list), vec![4]);
        drain_free(&b, &mut list);
    }

    #[test]
    fn orphan_remaining_seals_partial_batches() {
        let stats;
        {
            let b = DomainBase::new(SmrConfig::for_tests(1));
            stats = Arc::clone(&b.stats);
            let mut list = RetireList::new(RETIRE_BATCH_CAP, 1);
            // Two sub-batch nodes: not yet accounted.
            push_retired(&b, 0, &mut list, mk(&b, 0, 0));
            push_retired(&b, 0, &mut list, mk(&b, 0, 0));
            assert_eq!(stats.snapshot().retired_nodes, 0);
            b.orphan_remaining(0, &mut list);
            assert!(list.is_empty(), "everything handed to the domain");
            let s = stats.snapshot();
            assert_eq!(s.retired_nodes, 2, "partial batch sealed, not leaked");
            assert_eq!(s.freed_nodes, 0);
            assert_eq!(b.orphan_len(), 2);
        }
        assert_eq!(stats.snapshot().freed_nodes, 2, "orphans freed on drop");
    }

    #[test]
    fn orphan_adoption_is_bounded_and_preserves_accounting() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut donor = RetireList::new(RETIRE_BATCH_CAP, 1);
        let total = ORPHAN_ADOPT_MAX + 10;
        for i in 0..total as u64 {
            push_retired(&b, 0, &mut donor, mk(&b, i, i));
        }
        b.orphan_remaining(0, &mut donor);
        assert_eq!(b.orphan_len(), total);
        let retired_before = b.stats.snapshot().retired_nodes;

        let mut joiner = RetireList::new(RETIRE_BATCH_CAP, 1);
        b.adopt_orphan_chunk(0, &mut joiner);
        assert_eq!(joiner.len(), ORPHAN_ADOPT_MAX, "chunk is bounded");
        assert_eq!(b.orphan_len(), 10, "remainder stays parked");
        assert_eq!(
            b.stats.snapshot().retired_nodes,
            retired_before,
            "adopted nodes are not re-counted"
        );
        assert_eq!(b.stats.snapshot().orphans_adopted, ORPHAN_ADOPT_MAX as u64);
        // A sweep reclaims the adopted nodes through the normal path, and
        // additionally STEALS the parked remainder (reclaimer-side orphan
        // adoption) so static memberships drain orphans too.
        let freed = unsafe { sweep_retire_list(&b, 0, &mut joiner, |_| false) };
        assert_eq!(freed, ORPHAN_ADOPT_MAX + 10, "sweep steals the remainder");
        assert_eq!(b.orphan_len(), 0, "orphans fully drained by the pass");
        assert_eq!(b.stats.snapshot().orphans_stolen, 10);
        assert_eq!(
            b.stats.snapshot().retired_nodes,
            retired_before,
            "neither adoption nor stealing recounts retires"
        );
    }

    #[test]
    fn sweep_steals_bounded_orphan_chunks_until_drained() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut donor = RetireList::new(RETIRE_BATCH_CAP, 1);
        let total = 2 * ORPHAN_ADOPT_MAX + 5;
        for i in 0..total as u64 {
            push_retired(&b, 0, &mut donor, mk(&b, i, i));
        }
        b.orphan_remaining(0, &mut donor);
        assert_eq!(b.orphan_len(), total);

        let mut reclaimer = RetireList::new(RETIRE_BATCH_CAP, 1);
        // Each pass adopts at most one chunk.
        let freed = unsafe { sweep_retire_list(&b, 0, &mut reclaimer, |_| false) };
        assert_eq!(freed, ORPHAN_ADOPT_MAX, "one chunk per pass");
        assert_eq!(b.orphan_len(), total - ORPHAN_ADOPT_MAX);
        let freed = unsafe { sweep_retire_list(&b, 0, &mut reclaimer, |_| false) };
        assert_eq!(freed, ORPHAN_ADOPT_MAX);
        let freed = unsafe { sweep_retire_list(&b, 0, &mut reclaimer, |_| false) };
        assert_eq!(freed, 5, "third pass drains the tail");
        assert_eq!(b.orphan_len(), 0);
        let s = b.stats.snapshot();
        assert_eq!(s.orphans_stolen, total as u64);
        assert_eq!(s.freed_nodes, total as u64, "conservation through stealing");
        // Empty orphan list: further sweeps steal nothing.
        let freed = unsafe { sweep_retire_list(&b, 0, &mut reclaimer, |_| false) };
        assert_eq!(freed, 0);
        assert_eq!(b.stats.snapshot().orphans_stolen, total as u64);
    }

    #[test]
    fn leak_sealed_blocks_recycles_boxes() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = filled(&b, 2, &[0, 1, 2, 3]);
        assert_eq!(list.blocks.len(), 2);
        list.leak_sealed_blocks();
        assert!(list.is_empty());
        assert_eq!(list.free.len(), 2, "block boxes return to the pool");
        // Intentional leak of 4 N allocations (NR semantics).
    }

    #[test]
    fn epoch_clocks_advance_only_by_max_scan() {
        let c = EpochClocks::new(3);
        assert_eq!(c.current(), 1);
        for _ in 0..10 {
            c.tick(1);
        }
        assert_eq!(c.current(), 1, "op-path ticks never write the global");
        assert_eq!(c.local_of(1), 11);
        let e = c.advance_max_scan(0);
        assert_eq!(e, 11, "aggregation takes the max clock");
        assert_eq!(c.current(), 11);
        // The liveness guarantee: a reclaimer whose private clock lags a
        // formerly-hot, now-idle peer's must still advance the epoch on
        // EVERY pass (its clock jumps past the global first), not after
        // `max - own` no-op passes.
        let e2 = c.advance_max_scan(2);
        assert!(e2 > e, "a lagging reclaimer's pass still advances: {e2}");
        let mut last = e2;
        for _ in 0..20 {
            let next = c.advance_max_scan(0);
            assert!(next > last, "every pass must advance the epoch");
            last = next;
        }
        assert_eq!(c.current(), last);
    }

    #[test]
    fn striped_max_scan_covers_wide_domains_via_rotation() {
        // 26 threads → 4 stripes. A hot clock in the LAST stripe must be
        // folded into the global within nstripes passes by a reclaimer
        // whose own stripe is the first — the rotating-subset sampling.
        let c = EpochClocks::new(26);
        for _ in 0..40 {
            c.tick(25);
        }
        assert_eq!(c.local_of(25), 41);
        let mut last = c.current();
        for _ in 0..4 {
            let next = c.advance_max_scan(0);
            assert!(next > last, "every striped pass still advances");
            last = next;
        }
        assert!(
            c.current() >= 41,
            "rotation must fold the idle stripe's clock in within \
             nstripes passes (global = {})",
            c.current()
        );
    }

    #[test]
    fn free_unreserved_range_test_frees_disjoint_blocks_whole() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        // Two full blocks of 2; reservations exist but none falls inside
        // any block's pointer span.
        let mut list = filled(&b, 2, &[0, 0, 0, 0]);
        let max_ptr = list
            .blocks
            .iter()
            .flat_map(|blk| blk.nodes())
            .map(|r| r.ptr() as u64)
            .max()
            .unwrap();
        // Non-empty reserved set strictly above every block pointer.
        let reserved = vec![max_ptr + 64, max_ptr + 128];
        let freed = unsafe { free_unreserved(&b, 0, &mut list, &reserved) };
        assert_eq!(freed, 4);
        assert!(list.is_empty());
        let s = b.stats.snapshot();
        assert_eq!(
            s.blocks_freed_whole, 2,
            "range test must free disjoint blocks without touching records"
        );
    }

    #[test]
    fn free_unreserved_merge_join_matches_binary_search_baseline() {
        // Equivalence of the two strategies over the same workload: the
        // same survivors, in the same order.
        let mut mj = SweepBench::new();
        let mut bs = SweepBench::new();
        for (bench, merge_join) in [(&mut mj, true), (&mut bs, false)] {
            let ptrs = bench.fill(257); // non-multiple of the block cap
            let reserved: Vec<u64> = {
                let mut r: Vec<u64> = ptrs.iter().copied().step_by(5).collect();
                r.sort_unstable();
                r
            };
            let freed = if merge_join {
                bench.sweep_merge_join(&reserved)
            } else {
                bench.sweep_binary_search(&reserved)
            };
            assert_eq!(freed, 257 - reserved.len());
            assert_eq!(bench.len(), reserved.len());
            bench.drain();
        }
    }

    #[test]
    fn free_era_unreserved_envelope_frees_whole_blocks() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        // Block 0: lifespans within [0, 5]; block 1: within [20, 25].
        let mut list = filled(&b, 3, &[0, 3, 5, 20, 22, 25]);
        // Reserved era 10 sits between the two envelopes: both blocks are
        // freed whole by the range test.
        let freed = unsafe { free_era_unreserved(&b, 0, &mut list, &[10]) };
        assert_eq!(freed, 6);
        assert_eq!(b.stats.snapshot().blocks_freed_whole, 2);
        // Mixed case: era 3 pins only part of block 0's twin.
        let mut list = filled(&b, 3, &[0, 3, 5, 20, 22, 25]);
        let freed = unsafe { free_era_unreserved(&b, 0, &mut list, &[3, 10]) };
        assert_eq!(freed, 5, "only the [3,3] lifespan survives");
        assert_eq!(eras_of(&list), vec![3]);
        drain_free(&b, &mut list);
    }

    #[test]
    fn free_before_epoch_summary_decides_whole_blocks() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(2, 1);
        // Blocks of 2 with retire eras (1,2) freeable, (8,9) kept, (4,6)
        // straddling min = 5.
        for (birth, retire) in [(0, 1), (0, 2), (0, 8), (0, 9), (0, 4), (0, 6)] {
            push_retired(&b, 0, &mut list, mk(&b, birth, retire));
        }
        let freed = unsafe { free_before_epoch(&b, 0, &mut list, 5) };
        assert_eq!(freed, 3, "retire eras 1, 2 and 4 are below the bound");
        let s = b.stats.snapshot();
        assert_eq!(s.blocks_freed_whole, 1, "the (1,2) block freed whole");
        assert_eq!(s.blocks_kept_whole, 1, "the (8,9) block kept untouched");
        drain_free(&b, &mut list);
    }

    #[test]
    fn bins_one_matches_legacy_block_formation() {
        // retire_bins = 1 must reproduce the historical single-fill-block
        // pipeline exactly: blocks sealed in retire order, one per `seal`
        // nodes, survivors in retire order after a sweep.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(4, 1);
        for i in 0..10 {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        let s = b.stats.snapshot();
        assert_eq!(s.batches_sealed, 2, "seals at 4 and 8 exactly");
        assert_eq!(s.retired_nodes, 8, "fill holds 2 unsealed nodes");
        assert_eq!(eras_of(&list), (0..10).collect::<Vec<u64>>());
        seal_and_account(&b, 0, &mut list);
        let s = b.stats.snapshot();
        assert_eq!(s.batches_sealed, 3, "one partial block from one bin");
        assert_eq!(s.retired_nodes, 10);
        drain_free(&b, &mut list);
    }

    #[test]
    fn binned_blocks_never_mix_arenas() {
        // The routing invariant behind born-monotone blocks: every sealed
        // block's members share one `(ptr >> ARENA_SHIFT) & mask` bin.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(8, 4);
        for i in 0..256 {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        seal_and_account(&b, 0, &mut list);
        assert_eq!(list.len(), 256, "conservation through binned seals");
        for blk in &list.blocks {
            let bins: Vec<usize> = blk
                .nodes()
                .iter()
                .map(|r| ((r.ptr() as u64 >> ARENA_SHIFT) & 3) as usize)
                .collect();
            assert!(
                bins.windows(2).all(|w| w[0] == w[1]),
                "a sealed block must hold a single arena bin, got {bins:?}"
            );
        }
        drain_free(&b, &mut list);
    }

    #[test]
    fn monotone_seal_counter_tracks_push_order() {
        // Deterministic regardless of allocator layout: the PUSH ORDER is
        // chosen from the allocated addresses, so monotone and zigzag
        // blocks are constructed exactly.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(RETIRE_BATCH_CAP, 1);
        let mut nodes: Vec<Retired> = (0..RETIRE_BATCH_CAP as u64).map(|i| mk(&b, i, i)).collect();
        nodes.sort_by_key(|r| r.ptr() as u64);
        // Zigzag: alternate low/high ends — provably non-monotone.
        let mut deque: std::collections::VecDeque<Retired> = nodes.into();
        let mut front = true;
        while let Some(r) = if front {
            deque.pop_front()
        } else {
            deque.pop_back()
        } {
            front = !front;
            push_retired(&b, 0, &mut list, r);
        }
        let s = b.stats.snapshot();
        assert_eq!(s.batches_sealed, 1);
        assert_eq!(s.blocks_sealed_monotone, 0, "zigzag block is not monotone");
        // Ascending push order: the next sealed block must count.
        let mut asc: Vec<Retired> = (0..RETIRE_BATCH_CAP as u64).map(|i| mk(&b, i, i)).collect();
        asc.sort_by_key(|r| r.ptr() as u64);
        for r in asc {
            push_retired(&b, 0, &mut list, r);
        }
        let s = b.stats.snapshot();
        assert_eq!(s.batches_sealed, 2);
        assert_eq!(s.blocks_sealed_monotone, 1, "ascending block counts");
        drain_free(&b, &mut list);
    }

    #[test]
    fn partial_bins_seal_at_unregister_and_conserve() {
        // The ISSUE's unregister gotcha: with many bins, several partial
        // fill blocks are open at unregister; every one must be sealed
        // (accounted once per block) and parked — no node unsealed, no
        // node leaked.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(RETIRE_BATCH_CAP, 8);
        let n = 21u64;
        for i in 0..n {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        assert_eq!(b.stats.snapshot().retired_nodes, 0, "all still filling");
        let open_bins = list.fills.iter().filter(|f| !f.is_empty()).count() as u64;
        assert!(open_bins >= 1);
        b.orphan_remaining(0, &mut list);
        assert!(list.is_empty(), "everything handed to the domain");
        let s = b.stats.snapshot();
        assert_eq!(s.retired_nodes, n, "partial bins sealed, not leaked");
        assert_eq!(s.batches_sealed, open_bins, "one seal event per bin");
        assert_eq!(b.orphan_len(), n as usize);
        // A sweep steals the parked blocks and frees them: conservation.
        let mut reclaimer = RetireList::new(RETIRE_BATCH_CAP, 8);
        let freed = unsafe { sweep_retire_list(&b, 0, &mut reclaimer, |_| false) };
        assert_eq!(freed as u64, n);
        assert_eq!(b.orphan_len(), 0);
        assert_eq!(b.stats.snapshot().freed_nodes, n, "allocated == freed");
    }

    #[test]
    fn stolen_blocks_keep_their_sort_caches() {
        // Park blocks whose sort caches are built, steal them, and verify
        // the next sweep decides them from the cache (whole-block paths)
        // without touching records.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut donor = RetireList::new(4, 1);
        for i in 0..8 {
            push_retired(&b, 0, &mut donor, mk(&b, i, i));
        }
        // Build the pointer sort caches: a no-free sweep with everything
        // reserved (sorted set of every member pointer).
        let reserved: Vec<u64> = {
            let mut r: Vec<u64> = donor
                .blocks
                .iter()
                .flat_map(|blk| blk.nodes())
                .map(|r| r.ptr() as u64)
                .collect();
            r.sort_unstable();
            r
        };
        // Two passes: the sort-deferral heuristic skips the sort on a
        // block's first sweep and builds it on the second.
        for _ in 0..2 {
            let freed = unsafe { free_unreserved(&b, 0, &mut donor, &reserved) };
            assert_eq!(freed, 0);
        }
        for blk in &donor.blocks {
            assert!(blk.has_sorted(SortKey::Ptr), "cache built before parking");
        }
        b.orphan_remaining(0, &mut donor);
        // Steal into a fresh list: blocks must arrive with caches intact.
        let mut thief = RetireList::new(4, 1);
        b.steal_orphan_chunk(0, &mut thief);
        assert_eq!(thief.len(), 8, "both blocks stolen");
        for blk in &thief.blocks {
            assert!(
                blk.has_sorted(SortKey::Ptr),
                "block-granular parking must not drop the sort cache"
            );
        }
        // And the stolen blocks are decided whole from their summaries.
        let kept_before = b.stats.snapshot().blocks_kept_whole;
        let freed = unsafe { free_unreserved(&b, 0, &mut thief, &reserved) };
        assert_eq!(freed, 0);
        assert_eq!(
            b.stats.snapshot().blocks_kept_whole,
            kept_before + 2,
            "stolen blocks range-test whole from surviving summaries"
        );
        drain_free(&b, &mut thief);
    }

    #[test]
    fn adaptive_bins_collapse_to_one_on_a_single_stream() {
        // A monotone push order keeps the sealed-block monotone share at
        // 1.0 regardless of bin count, so the auto-sizer's collapse
        // probes all succeed: 4 → 2 → 1 within a few windows, shedding
        // the multi-bin unsealed-node bound.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::with_adaptive(8, 4, true);
        assert_eq!(list.bins(), 4);
        // One window = BIN_ADAPT_WINDOW blocks of 8 nodes; give it six
        // windows' worth of ascending-address pushes.
        let per_window = crate::controller::BIN_ADAPT_WINDOW as usize * 8;
        for _ in 0..6 {
            let mut nodes: Vec<Retired> = (0..per_window as u64).map(|i| mk(&b, i, i)).collect();
            nodes.sort_by_key(|r| r.ptr() as u64);
            for r in nodes {
                push_retired(&b, 0, &mut list, r);
            }
            // Keep the list bounded (and the free pool warm).
            let freed = unsafe { sweep_retire_list(&b, 0, &mut list, |_| false) };
            assert!(freed > 0);
        }
        assert_eq!(list.bins(), 1, "single stream must converge to 1 bin");
        let s = b.stats.snapshot();
        assert!(
            s.bin_resizes >= 2,
            "at least 4 → 2 → 1, saw {}",
            s.bin_resizes
        );
        drain_free(&b, &mut list);
    }

    #[test]
    fn adaptive_bins_grow_back_under_address_random_churn() {
        // A deterministically shuffled push order defeats every bin
        // count's separation, so the share stays low and the auto-sizer
        // grows to the maximum — and stays there (low share at the
        // ceiling holds, it does not oscillate).
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::with_adaptive(8, 1, true);
        assert_eq!(list.bins(), 1);
        let per_round = crate::controller::BIN_ADAPT_WINDOW as usize * 8;
        for _ in 0..8 {
            let mut nodes: Vec<Retired> = (0..per_round as u64).map(|i| mk(&b, i, i)).collect();
            nodes.sort_by_key(|r| r.ptr() as u64);
            // Deterministic shuffle: visit indices by a coprime stride.
            let n = nodes.len();
            let mut order: Vec<usize> = (0..n).map(|i| (i * 97) % n).collect();
            order.dedup();
            let mut slots: Vec<Option<Retired>> = nodes.into_iter().map(Some).collect();
            for i in order {
                if let Some(r) = slots[i].take() {
                    push_retired(&b, 0, &mut list, r);
                }
            }
            for s in slots.into_iter().flatten() {
                push_retired(&b, 0, &mut list, s);
            }
            let freed = unsafe { sweep_retire_list(&b, 0, &mut list, |_| false) };
            assert!(freed > 0);
        }
        assert_eq!(
            list.bins(),
            crate::config::MAX_RETIRE_BINS,
            "random churn must grow to the ceiling"
        );
        assert!(b.stats.snapshot().bin_resizes >= 3, "1 → 2 → 4 → 8");
        drain_free(&b, &mut list);
    }

    #[test]
    fn joining_thread_inherits_converged_bin_count() {
        // Controller v2: once any participant's auto-sizer has converged,
        // a joining thread's list is seeded with that count at adoption
        // time instead of re-walking the probe ladder from the default.
        let b = DomainBase::new(SmrConfig::for_tests(2));
        let mut list = RetireList::with_adaptive(8, 4, true);
        let per_window = crate::controller::BIN_ADAPT_WINDOW as usize * 8;
        for _ in 0..6 {
            let mut nodes: Vec<Retired> = (0..per_window as u64).map(|i| mk(&b, i, i)).collect();
            nodes.sort_by_key(|r| r.ptr() as u64);
            for r in nodes {
                push_retired(&b, 0, &mut list, r);
            }
            let freed = unsafe { sweep_retire_list(&b, 0, &mut list, |_| false) };
            assert!(freed > 0);
        }
        assert_eq!(list.bins(), 1, "tid 0 must converge to 1 bin first");
        // A joiner's fresh adaptive list inherits the converged count.
        let mut joiner = RetireList::with_adaptive(8, 4, true);
        b.adopt_orphan_chunk(1, &mut joiner);
        assert_eq!(joiner.bins(), 1, "joiner inherits the converged count");
        // A static list keeps its configured bins — seeding is
        // adaptive-only.
        let mut fixed = RetireList::with_adaptive(8, 4, false);
        b.adopt_orphan_chunk(1, &mut fixed);
        assert_eq!(fixed.bins(), 4, "static lists never reseed");
        // A list mid-fill is left alone (resizing requires sealed fills).
        let mut dirty = RetireList::with_adaptive(8, 4, true);
        push_retired(&b, 1, &mut dirty, mk(&b, 0, 0));
        b.adopt_orphan_chunk(1, &mut dirty);
        assert_eq!(dirty.bins(), 4, "non-empty fills defer to the sizer");
        unsafe { sweep_retire_list(&b, 1, &mut dirty, |_| false) };
        drain_free(&b, &mut list);
        drain_free(&b, &mut dirty);
    }

    #[test]
    fn static_bins_never_resize() {
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::with_adaptive(8, 4, false);
        let per_window = crate::controller::BIN_ADAPT_WINDOW as usize * 8;
        for _ in 0..4 {
            let mut nodes: Vec<Retired> = (0..per_window as u64).map(|i| mk(&b, i, i)).collect();
            nodes.sort_by_key(|r| r.ptr() as u64);
            for r in nodes {
                push_retired(&b, 0, &mut list, r);
            }
            unsafe { sweep_retire_list(&b, 0, &mut list, |_| false) };
        }
        assert_eq!(list.bins(), 4, "adaptive off: bins stay configured");
        assert_eq!(b.stats.snapshot().bin_resizes, 0);
        drain_free(&b, &mut list);
    }

    #[test]
    fn resize_seals_partials_and_conserves_nodes() {
        // A forced resize in the middle of a fill must seal every open
        // bin (accounted exactly once) and lose nothing.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::with_adaptive(RETIRE_BATCH_CAP, 4, true);
        for i in 0..13 {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        let outcome = list.seal_partial();
        account_seal(&b, 0, outcome);
        list.set_bins(8);
        assert_eq!(list.bins(), 8);
        assert_eq!(list.len(), 13, "conservation through the resize");
        assert_eq!(b.stats.snapshot().retired_nodes, 13);
        for i in 0..5 {
            push_retired(&b, 0, &mut list, mk(&b, 100 + i, 0));
        }
        list.seal_partial();
        list.set_bins(1);
        assert_eq!(list.bins(), 1);
        assert_eq!(list.len(), 18);
        drain_free(&b, &mut list);
    }

    #[test]
    fn era_monotone_seals_are_counted_and_fast_path_sweeps() {
        // Ascending birth eras in push order: every sealed block is
        // era-monotone, the counter says so, and the era sweep decides
        // blocks via merge-join on their FIRST sweep (whole-block frees
        // here, since nothing is reserved).
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(4, 1);
        for i in 0..8 {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        let s = b.stats.snapshot();
        assert_eq!(s.batches_sealed, 2);
        assert_eq!(s.blocks_sealed_era_monotone, 2, "ascending births count");
        // A zigzag-birth block must not count.
        for i in [5u64, 1, 7, 2] {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        let s = b.stats.snapshot();
        assert_eq!(s.batches_sealed, 3);
        assert_eq!(s.blocks_sealed_era_monotone, 2, "zigzag births don't");
        drain_free(&b, &mut list);
    }

    #[test]
    fn era_monotone_block_merge_joins_on_first_sweep() {
        // Era-reserved sweep over freshly sealed era-monotone blocks: the
        // merge-join path must produce the same survivors as the windowed
        // search would, on the very first sweep (no sort deferral).
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = RetireList::new(4, 1);
        // Lifespans [i, i]: reserved era 5 pins exactly birth 5.
        for i in 0..8 {
            push_retired(&b, 0, &mut list, mk(&b, i, i));
        }
        let freed = unsafe { free_era_unreserved(&b, 0, &mut list, &[5]) };
        assert_eq!(freed, 7);
        assert_eq!(eras_of(&list), vec![5]);
        drain_free(&b, &mut list);
    }

    #[test]
    fn kept_blocks_reuse_their_sort_cache_across_passes() {
        // A block pinned across passes must be decided from its cached
        // summary without rebuilding anything: survivors and order stay
        // identical over repeated sweeps.
        let b = DomainBase::new(SmrConfig::for_tests(1));
        let mut list = filled(&b, 4, &[0, 1, 2, 3]);
        let reserved: Vec<u64> = {
            let mut r: Vec<u64> = list
                .blocks
                .iter()
                .flat_map(|blk| blk.nodes())
                .map(|r| r.ptr() as u64)
                .collect();
            r.sort_unstable();
            r
        };
        for pass in 0..3 {
            let freed = unsafe { free_unreserved(&b, 0, &mut list, &reserved) };
            assert_eq!(freed, 0, "pass {pass}: everything pinned");
            assert_eq!(eras_of(&list), vec![0, 1, 2, 3], "order preserved");
        }
        assert_eq!(b.stats.snapshot().blocks_kept_whole, 3);
        drain_free(&b, &mut list);
    }

    #[test]
    fn quarantine_parks_releases_and_conserves() {
        let b = DomainBase::new(SmrConfig::for_tests(2).with_pressure_watermarks(4, 8, 12));
        b.claim(0);
        b.claim(1);
        // Two sealed blocks, all retire eras below the relaxed floor:
        // everything is provably pinned only by blocker tid 1's word 7.
        let mut list = filled(&b, 2, &[0, 0, 1, 1]);
        let rm = RelaxedMin {
            min: 10,
            blocker_tid: 1,
            blocker_word: 7,
        };
        let freed = unsafe { free_before_epoch_with_stalled(&b, 0, &mut list, 0, Some(&rm)) };
        assert_eq!(freed, 0, "quarantine never frees");
        assert_eq!(list.len(), 0, "both blocks left the list");
        assert_eq!(b.pressure_quarantine_len(), 2);
        let s = b.stats.snapshot();
        assert_eq!(s.blocks_quarantined, 2);
        assert_eq!(b.stats.pressure().quarantined(), 4);
        assert_eq!(
            b.stats.pressure().count(),
            0,
            "parked nodes leave the actionable backlog"
        );
        // Blocker still pinned: nothing to release.
        b.reclaim_released_quarantine(0, &mut list, |t, w| {
            assert_eq!((t, w), (1, 7));
            true
        });
        assert_eq!(list.len(), 0);
        assert_eq!(b.pressure_quarantine_len(), 2);
        // Blocker's reservation moved: everything returns to the list.
        b.reclaim_released_quarantine(0, &mut list, |_, _| false);
        assert_eq!(list.len(), 4, "released blocks rejoin the caller's list");
        assert_eq!(b.pressure_quarantine_len(), 0);
        let s = b.stats.snapshot();
        assert_eq!(s.blocks_unquarantined, 2);
        assert_eq!(b.stats.pressure().quarantined(), 0);
        drain_free(&b, &mut list);
        let s = b.stats.snapshot();
        assert_eq!(s.freed_nodes, s.retired_nodes, "conservation");
        assert_eq!(b.stats.pressure().count(), 0);
        b.release(1);
        b.release(0);
    }

    #[test]
    fn quarantine_releases_when_blocker_unregisters() {
        let b = DomainBase::new(SmrConfig::for_tests(2).with_pressure_watermarks(4, 8, 12));
        b.claim(0);
        b.claim(1);
        let mut list = filled(&b, 2, &[0, 0]);
        let rm = RelaxedMin {
            min: 10,
            blocker_tid: 1,
            blocker_word: 7,
        };
        unsafe { free_before_epoch_with_stalled(&b, 0, &mut list, 0, Some(&rm)) };
        assert_eq!(b.pressure_quarantine_len(), 1);
        // The blocker dies / deregisters: its pinned word no longer means
        // anything, even if the release predicate still claims it does.
        b.release(1);
        b.reclaim_released_quarantine(0, &mut list, |_, _| true);
        assert_eq!(list.len(), 2, "a reaped blocker releases its blocks");
        assert_eq!(b.pressure_quarantine_len(), 0);
        drain_free(&b, &mut list);
        b.release(0);
    }

    #[test]
    fn quarantined_blocks_freed_at_drop_conserve() {
        let b = DomainBase::new(SmrConfig::for_tests(2).with_pressure_watermarks(4, 8, 12));
        b.claim(0);
        b.claim(1);
        let mut list = filled(&b, 2, &[0, 0, 1, 1]);
        let rm = RelaxedMin {
            min: 10,
            blocker_tid: 1,
            blocker_word: 7,
        };
        unsafe { free_before_epoch_with_stalled(&b, 0, &mut list, 0, Some(&rm)) };
        assert_eq!(b.pressure_quarantine_len(), 2);
        let stats = Arc::clone(&b.stats);
        b.release(1);
        b.release(0);
        drop(b);
        let s = stats.snapshot();
        assert_eq!(s.freed_nodes, s.retired_nodes, "drop drains the quarantine");
    }

    #[test]
    fn striped_orphans_drain_from_any_stripe() {
        // Four tids park orphans on four stripes; a single adopter must
        // drain them all (its chunk scan covers every stripe), conserving
        // nodes exactly.
        let b = DomainBase::new(SmrConfig::for_tests(4));
        let total = 4 * 6;
        for t in 0..4 {
            b.claim(t);
            let mut list = filled(&b, 2, &[0, 0, 1, 1, 2, 2]);
            b.orphan_remaining(t, &mut list);
            b.release(t);
        }
        assert_eq!(b.orphan_len(), total);
        b.claim(0);
        let mut list = RetireList::new(2, 1);
        let mut adopted = 0usize;
        // Each steal takes at most ORPHAN_CHUNK_BLOCKS blocks; loop until
        // the stripes are dry.
        for _ in 0..64 {
            let before = list.len();
            b.steal_orphan_chunk(0, &mut list);
            adopted += list.len() - before;
            if b.orphan_len() == 0 {
                break;
            }
        }
        assert_eq!(adopted, total, "every stripe drains");
        assert_eq!(b.orphan_len(), 0);
        drain_free(&b, &mut list);
        let s = b.stats.snapshot();
        assert_eq!(s.freed_nodes, s.retired_nodes, "conservation");
        b.release(0);
    }

    #[test]
    fn free_pool_cap_trims_recycled_blocks() {
        let b = DomainBase::new(SmrConfig::for_tests(1).with_free_pool_cap(1));
        // Three sealed blocks, all freeable: the sweep recycles three
        // emptied boxes but the cap keeps only one.
        let mut list = filled(&b, 2, &[0, 0, 1, 1, 2, 2]);
        let freed = unsafe { sweep_retire_list(&b, 0, &mut list, |_| false) };
        assert_eq!(freed, 6);
        assert_eq!(list.free.len(), 1, "pool capped at the configured size");
        assert_eq!(b.stats.snapshot().pool_blocks_trimmed, 2);
    }

    #[test]
    fn hard_pressure_drops_the_free_pool_entirely() {
        // Watermarks of 1 put the gauge at Emergency from the first seal;
        // the sweep's epilogue must then trim the pool to zero even though
        // the configured cap would keep blocks around.
        let b = DomainBase::new(SmrConfig::for_tests(1).with_pressure_watermarks(1, 1, 1));
        let mut list = filled(&b, 2, &[0, 0, 5, 5]);
        assert!(b.stats.pressure().rung() >= PressureRung::Hard);
        let freed =
            unsafe { sweep_retire_list(&b, 0, &mut list, |r| r.header().retire_era() >= 5) };
        assert_eq!(freed, 2);
        assert!(
            list.free.is_empty(),
            "under hard pressure the recycled pool is ballast"
        );
        assert!(b.stats.snapshot().pool_blocks_trimmed >= 1);
        drain_free(&b, &mut list);
    }

    #[test]
    fn scan_elects_lowest_stalled_blocker_under_emergency() {
        let b = DomainBase::new(SmrConfig::for_tests(3).with_pressure_watermarks(1, 1, 1));
        for t in 0..3 {
            b.claim(t);
        }
        // Trip the gauge to Emergency so the scan performs its election.
        note_escalation(&b, 0, b.stats.pressure().on_retired(1));
        assert_eq!(b.stats.pressure().rung(), PressureRung::Emergency);
        // t0 idle, t1 pinned at 5, t2 pinned at 9: after enough unchanged
        // passes both pinned readers count as stalled, and the election
        // picks t1 (the floor-holder). With every live reader stalled the
        // relaxed floor is the non-stalled minimum — here none, u64::MAX.
        let words = [u64::MAX, 5u64, 9u64];
        let mut result = (0u64, None);
        for _ in 0..=crate::pressure::STALLED_AFTER_PASSES {
            result = scan_epoch_reservations(&b, u64::MAX, |t| words[t]);
        }
        let (min, rm) = result;
        assert_eq!(min, 5);
        let rm = rm.expect("emergency rung with a stalled floor-holder");
        assert_eq!(rm.blocker_tid, 1);
        assert_eq!(rm.blocker_word, 5);
        assert_eq!(rm.min, u64::MAX);
        // The stall streak resets the moment the word moves.
        let (_, rm) = scan_epoch_reservations(&b, u64::MAX, |t| if t == 1 { 6 } else { words[t] });
        assert!(
            rm.is_none_or(|rm| rm.blocker_tid != 1),
            "a moved word un-stalls its owner"
        );
        for t in 0..3 {
            b.release(t);
        }
    }
}
