//! Reclaimable-object header and type-erased retirement records.
//!
//! Every object managed by a reclamation scheme embeds a [`Header`] as its
//! **first** field and is `#[repr(C)]`, so `*mut Node` and `*mut Header`
//! are interconvertible. The header carries the era tags used by hazard
//! eras / IBR (`birth_era`, `retire_era`), the allocation size for memory
//! accounting, and a liveness magic word used by the quarantine
//! use-after-free detector.

use core::sync::atomic::{AtomicU64, Ordering};

/// Magic value in [`Header::meta`]'s high 32 bits while an object is live.
const LIVE_MAGIC: u64 = 0x51AE_0000_0000_0000;
/// Magic value after the object is logically freed into quarantine.
const POISON_MAGIC: u64 = 0xDEAD_0000_0000_0000;
const MAGIC_MASK: u64 = 0xFFFF_0000_0000_0000;
const SIZE_MASK: u64 = 0x0000_0000_FFFF_FFFF;
/// Meta bit recording that the object lives in an owned slab slot
/// ([`crate::slab`]) rather than a `Box` — the free path dispatches on it.
/// Masking a pointer to find its slab is only legal when this bit is set.
const SLAB_BIT: u64 = 0x0000_0001_0000_0000;

/// Intrusive header for reclaimable objects.
///
/// # Layout contract
///
/// Objects embedding a `Header` must be `#[repr(C)]` with the header first,
/// and must implement [`HasHeader`] (an unsafe marker enforcing exactly
/// that), so schemes can operate on type-erased `*mut Header`.
#[repr(C)]
pub struct Header {
    /// Global era at allocation time (hazard eras / IBR lifespan lower
    /// bound). Zero for schemes without eras.
    pub birth_era: u64,
    /// Global era at retirement. Written once by the retiring thread;
    /// relaxed atomics make the cross-thread scan in reclaimers race-free.
    retire_era: AtomicU64,
    /// `magic | allocation size` word; see module docs.
    meta: AtomicU64,
}

impl Header {
    /// A live header for an object of `size` bytes born in `birth_era`.
    pub fn new(birth_era: u64, size: usize) -> Self {
        debug_assert!(size as u64 <= SIZE_MASK, "allocation too large to track");
        Header {
            birth_era,
            retire_era: AtomicU64::new(u64::MAX),
            meta: AtomicU64::new(LIVE_MAGIC | (size as u64 & SIZE_MASK)),
        }
    }

    /// Records the era at which the object was retired.
    pub fn set_retire_era(&self, era: u64) {
        self.retire_era.store(era, Ordering::Relaxed);
    }

    /// Era recorded by [`Self::set_retire_era`], or `u64::MAX` if live.
    pub fn retire_era(&self) -> u64 {
        self.retire_era.load(Ordering::Relaxed)
    }

    /// Allocation size recorded at construction.
    pub fn size(&self) -> usize {
        (self.meta.load(Ordering::Relaxed) & SIZE_MASK) as usize
    }

    /// Whether the quarantine detector has marked this object freed.
    pub fn is_poisoned(&self) -> bool {
        self.meta.load(Ordering::Relaxed) & MAGIC_MASK == POISON_MAGIC
    }

    /// Whether the object lives in an owned slab slot (see [`crate::slab`]).
    /// Set once at allocation; the free path dispatches on it, and only
    /// slab-backed pointers may be masked down to their slab base.
    pub fn is_slab_backed(&self) -> bool {
        self.meta.load(Ordering::Relaxed) & SLAB_BIT != 0
    }

    /// Records that the object was placed in a slab slot. Called by the
    /// slab allocator before the pointer is published anywhere.
    pub(crate) fn mark_slab_backed(&self) {
        self.meta.fetch_or(SLAB_BIT, Ordering::Relaxed);
    }

    /// Marks the object freed (quarantine mode). Preserves the size *and*
    /// the slab bit: a quarantined slot must still free back into its slab
    /// when the quarantine releases it.
    pub(crate) fn poison(&self) {
        let keep = self.meta.load(Ordering::Relaxed) & (SIZE_MASK | SLAB_BIT);
        self.meta.store(POISON_MAGIC | keep, Ordering::Release);
    }
}

/// Marker trait for `#[repr(C)]` types whose first field is a [`Header`].
///
/// # Safety
///
/// Implementors guarantee the layout contract above, making
/// `*mut Self ⇄ *mut Header` casts valid.
pub unsafe trait HasHeader: Sized {
    /// Shared access to the embedded header.
    fn header(&self) -> &Header {
        // SAFETY: repr(C) + header-first guaranteed by the implementor.
        unsafe { &*(self as *const Self as *const Header) }
    }
}

/// Type-erased record of a retired object awaiting reclamation.
///
/// Carries the deallocation function so heterogeneous node types can share
/// one retire list.
pub struct Retired {
    ptr: *mut Header,
    /// `None` for slab-backed types with no drop glue: the slot return is
    /// the entire free, so the whole-slab settlement loop skips the record.
    drop_fn: Option<unsafe fn(*mut Header)>,
    /// Object size, captured at retirement (the header is hot then) so the
    /// sweeps' byte accounting reads the record, not the cold node header.
    size: u32,
}

// SAFETY: a Retired is an exclusively-owned deferred destructor; the object
// it points to is unlinked and only ever freed once, by whichever thread
// drains the retire list.
unsafe impl Send for Retired {}

impl Retired {
    /// Creates a retirement record for `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must point to a live `T` allocated either as a `Box` or from
    /// the slab allocator ([`crate::slab::alloc_value`] — the header's slab
    /// bit decides which free path runs), unlinked from every shared
    /// structure, and must not be retired again.
    pub unsafe fn new<T: HasHeader>(ptr: *mut T) -> Retired {
        unsafe fn drop_box<T>(h: *mut Header) {
            // SAFETY: constructed from Box<T> in `Retired::new`; called at
            // most once, after the scheme proved no thread can access it.
            unsafe { drop(Box::from_raw(h as *mut T)) }
        }
        unsafe fn drop_slab_payload<T>(h: *mut Header) {
            // SAFETY: the slab bit proved `h` is a slab slot; called at
            // most once, after the scheme proved no thread can access it.
            // The slot itself is returned by the caller ([`Retired::free`]
            // per node, or the whole-slab batch settlement in one step).
            unsafe { core::ptr::drop_in_place(h as *mut T) }
        }
        // SAFETY: `ptr` is live per the caller's contract.
        let hdr = unsafe { &*(ptr as *mut Header) };
        let slab = hdr.is_slab_backed();
        Retired {
            ptr: ptr as *mut Header,
            drop_fn: if slab {
                // No drop glue ⇒ returning the slot IS the free.
                core::mem::needs_drop::<T>().then_some(drop_slab_payload::<T> as _)
            } else {
                Some(drop_box::<T>)
            },
            size: hdr.size() as u32,
        }
    }

    /// The retired object's size in bytes, as recorded in its header at
    /// retirement time.
    #[inline]
    pub(crate) fn size(&self) -> usize {
        self.size as usize
    }

    /// The retired object's header.
    pub fn header(&self) -> &Header {
        // SAFETY: `ptr` stays valid until `free` (quarantine keeps the
        // allocation alive even after poisoning).
        unsafe { &*self.ptr }
    }

    /// Raw header pointer (for reservation-set membership tests).
    pub fn ptr(&self) -> *mut Header {
        self.ptr
    }

    /// Invokes the deallocation function.
    ///
    /// # Safety
    ///
    /// Caller must have established that no thread can access the object —
    /// this is precisely the reclamation scheme's job.
    pub(crate) unsafe fn free(self) {
        // SAFETY: forwarded contract. Slab-backed records drop the payload
        // then return their slot; Box-backed records drop whole.
        unsafe {
            let slab = (*self.ptr).is_slab_backed();
            if let Some(drop_fn) = self.drop_fn {
                drop_fn(self.ptr);
            }
            if slab {
                crate::slab::free_slot(self.ptr as *mut u8);
            }
        }
    }

    /// Drops the payload **without** returning the slot — the whole-slab
    /// settlement path, where the caller returns every slot of the block in
    /// one [`crate::slab::free_slots_batch`] accounting step.
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::free`], and the record must be slab-backed
    /// (the caller proved the block is confined to one slab).
    pub(crate) unsafe fn drop_payload_for_batch(self) {
        debug_assert!(self.header().is_slab_backed());
        if let Some(drop_fn) = self.drop_fn {
            // SAFETY: forwarded contract.
            unsafe { drop_fn(self.ptr) }
        }
    }
}

impl core::fmt::Debug for Retired {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Retired")
            .field("ptr", &self.ptr)
            .field("birth_era", &self.header().birth_era)
            .field("retire_era", &self.header().retire_era())
            .finish()
    }
}

/// Capacity of one retire-batch block (the internal `RetireBatch`). The configured seal threshold
/// ([`crate::config::SmrConfig::retire_batch`]) may be smaller — a block is
/// sealed once it reaches the threshold — but never larger.
pub const RETIRE_BATCH_CAP: usize = 32;

/// The key a sealed block's lazy sort index is ordered by (see
/// [`RetireBatch::sorted_order`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum SortKey {
    /// No valid sort index (freshly filled or compacted block).
    Unsorted,
    /// Ordered by record pointer — merge-joined against sorted pointer
    /// reservation sets (HP-family sweeps).
    Ptr,
    /// Ordered by `birth_era` — merge-joined against sorted era
    /// reservation sets (hazard-era sweeps).
    Birth,
}

/// Cached per-block key extrema, computed lazily in two independent
/// halves and reused by every sweep until the block is mutated:
///
/// * the **pointer** extrema read only the inline [`Retired`] records (no
///   header dereference — HP-family sweeps never touch node memory for
///   surviving blocks), while
/// * the **era** extrema pay one pass over the members' headers.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockSummary {
    /// Smallest record pointer in the block.
    pub min_ptr: u64,
    /// Largest record pointer in the block.
    pub max_ptr: u64,
    /// Smallest `birth_era` in the block.
    pub min_birth: u64,
    /// Smallest `retire_era` in the block.
    pub min_retire: u64,
    /// Largest `retire_era` in the block.
    pub max_retire: u64,
}

/// `summary_valid` bit: pointer extrema are current.
const SUMMARY_PTR: u8 = 1;
/// `summary_valid` bit: era extrema (birth + retire) are current.
const SUMMARY_ERA: u8 = 2;

/// `mono` bit: pushes so far form a non-decreasing run of the tracked key.
const MONO_ASC: u8 = 1;
/// `mono` bit: pushes so far form a non-increasing run of the tracked key.
const MONO_DESC: u8 = 2;
/// `mono` bit: incremental tracking lost (slots were rearranged); fall
/// back to a scan.
const MONO_UNKNOWN: u8 = 4;

/// A fixed-size block of [`Retired`] records — the unit of the batched
/// retirement pipeline.
///
/// Threads fill an array of these privately — one per arena bin, routed by
/// the node pointer's high bits (`retire` is a slot write plus a length
/// bump) — then *seal* each full block into their retire list as a single
/// block pointer, amortizing the stats update and the reclaim-threshold
/// test over the block. Reclaimers sweep block-at-a-time (see
/// `pop_core::base::sweep_retire_list`), recycling fully-freed blocks into
/// a per-thread free pool so steady-state retirement allocates nothing.
///
/// Sealed blocks additionally carry a lazily computed *sort cache*: a
/// [`BlockSummary`] of key extrema (for whole-block range tests against a
/// sorted reservation set) and a sort index over the slots (for merge-join
/// sweeps). Both are computed in place on first use — no allocation — and
/// invalidated by any mutation, so a block that survives a sweep untouched
/// amortizes its sort across every subsequent pass.
///
/// Like `Vec<Retired>`, dropping a non-empty block *leaks* the recorded
/// allocations ([`Retired`] has no `Drop`); only a reclamation pass (or
/// domain teardown) frees them.
pub(crate) struct RetireBatch {
    len: usize,
    /// Which key `order` is currently sorted by.
    sort_key: SortKey,
    /// [`SUMMARY_PTR`] / [`SUMMARY_ERA`] validity bits for `summary`.
    summary_valid: u8,
    /// Sweeps that have looked at this block since it last changed —
    /// drives the sort-deferral heuristic (see `note_sweep`).
    sweeps: u8,
    /// [`MONO_ASC`] / [`MONO_DESC`] pointer-direction bits, maintained
    /// incrementally at push time (conservative: cleared bits are never
    /// re-derived incrementally), or [`MONO_UNKNOWN`] after an in-place
    /// compaction rearranged the slots.
    mono: u8,
    /// The same direction bits for the members' `birth_era` keys — the
    /// era-scheme analogue of `mono`: retire order is near-birth-order in
    /// most workloads, so era-sorted permutations are often free too.
    mono_era: u8,
    /// Pointer of the most recent push — the comparison anchor for `mono`.
    last_ptr: u64,
    /// Birth era of the most recent push — the anchor for `mono_era`.
    last_birth: u64,
    /// Slot permutation ordered by `sort_key` (first `len` entries).
    order: [u8; RETIRE_BATCH_CAP],
    /// Cached key extrema (per-half validity in `summary_valid`).
    summary: BlockSummary,
    slots: [core::mem::MaybeUninit<Retired>; RETIRE_BATCH_CAP],
}

impl RetireBatch {
    /// A fresh, empty, heap-allocated block.
    pub(crate) fn boxed() -> Box<RetireBatch> {
        Box::new(RetireBatch {
            len: 0,
            sort_key: SortKey::Unsorted,
            summary_valid: 0,
            sweeps: 0,
            mono: MONO_ASC | MONO_DESC,
            mono_era: MONO_ASC | MONO_DESC,
            last_ptr: 0,
            last_birth: 0,
            order: [0; RETIRE_BATCH_CAP],
            summary: BlockSummary {
                min_ptr: 0,
                max_ptr: 0,
                min_birth: 0,
                min_retire: 0,
                max_retire: 0,
            },
            slots: [const { core::mem::MaybeUninit::uninit() }; RETIRE_BATCH_CAP],
        })
    }

    /// Number of initialized records.
    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no records.
    #[inline(always)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a record. The caller keeps `len() < RETIRE_BATCH_CAP` by
    /// sealing at its (smaller or equal) threshold.
    ///
    /// The pointer extrema are maintained *incrementally* here (two
    /// compares on the hot retire path): record pointers never change, so
    /// the [`SUMMARY_PTR`] half stays valid through the whole fill and
    /// sweeps never pay a scan for it. Era extrema are not — a caller may
    /// legally set a retire era after pushing — so [`SUMMARY_ERA`] (and
    /// the sort cache) are invalidated instead. Birth-era *direction* is
    /// tracked incrementally like the pointer direction (`birth_era` is
    /// immutable after allocation, and the header line is already hot —
    /// `retire_node` just stamped the retire era into it).
    #[inline]
    pub(crate) fn push(&mut self, r: Retired) {
        debug_assert!(self.len < RETIRE_BATCH_CAP, "retire block overfilled");
        let p = r.ptr() as u64;
        let birth = r.header().birth_era;
        if self.len == 0 {
            self.mono = MONO_ASC | MONO_DESC;
            self.mono_era = MONO_ASC | MONO_DESC;
        } else {
            if self.mono & MONO_UNKNOWN == 0 {
                // Incremental direction tracking: two compares against the
                // last push. After a `pop`, `last_ptr` is the popped
                // (extreme) value, which only makes the test stricter —
                // the bits stay conservative (set ⇒ truly monotone),
                // never optimistic.
                if p < self.last_ptr {
                    self.mono &= !MONO_ASC;
                }
                if p > self.last_ptr {
                    self.mono &= !MONO_DESC;
                }
            }
            if self.mono_era & MONO_UNKNOWN == 0 {
                if birth < self.last_birth {
                    self.mono_era &= !MONO_ASC;
                }
                if birth > self.last_birth {
                    self.mono_era &= !MONO_DESC;
                }
            }
        }
        self.last_ptr = p;
        self.last_birth = birth;
        if self.len == 0 {
            self.summary.min_ptr = p;
            self.summary.max_ptr = p;
            self.summary_valid = SUMMARY_PTR;
        } else if self.summary_valid & SUMMARY_PTR != 0 {
            self.summary.min_ptr = self.summary.min_ptr.min(p);
            self.summary.max_ptr = self.summary.max_ptr.max(p);
            self.summary_valid = SUMMARY_PTR;
        } else {
            // Existing members were never summarized (a pop invalidated
            // them): stay invalid and let the next sweep rescan.
            self.summary_valid = 0;
        }
        self.sort_key = SortKey::Unsorted;
        self.sweeps = 0;
        self.slots[self.len].write(r);
        self.len += 1;
    }

    /// Removes and returns the newest record.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Retired> {
        if self.len == 0 {
            return None;
        }
        self.invalidate_cache();
        self.len -= 1;
        // SAFETY: slot `len` was initialized by `push` and is now out of
        // the initialized prefix, so it cannot be read again.
        Some(unsafe { self.slots[self.len].assume_init_read() })
    }

    /// The initialized records as a slice (oldest first).
    #[inline]
    pub(crate) fn nodes(&self) -> &[Retired] {
        // SAFETY: the first `len` slots are initialized.
        unsafe { core::slice::from_raw_parts(self.slots.as_ptr() as *const Retired, self.len) }
    }

    /// Drops the sort cache; any slot removal or rearrangement must call
    /// this (`push` keeps the pointer half alive instead — see there).
    #[inline]
    fn invalidate_cache(&mut self) {
        self.sort_key = SortKey::Unsorted;
        self.summary_valid = 0;
        self.sweeps = 0;
    }

    /// Whether the sort cache currently holds a `key`-ordered permutation.
    #[inline]
    pub(crate) fn has_sorted(&self, key: SortKey) -> bool {
        self.sort_key == key
    }

    /// O(1) monotonicity hint from the incremental push-time bits alone:
    /// `false` when tracking was lost ([`MONO_UNKNOWN`] after a
    /// compaction), never a scan. Sweeps use this to skip the
    /// sort-deferral heuristic — a monotone block's sorted permutation
    /// costs one detection pass, so even a first-sweep (churn) block
    /// takes the merge-join path when the binned fill made it monotone.
    #[inline]
    pub(crate) fn ptr_monotone_hint(&self) -> bool {
        self.mono & MONO_UNKNOWN == 0 && self.mono & (MONO_ASC | MONO_DESC) != 0
    }

    /// Whether the slots form an address-monotone run (ascending *or*
    /// descending pointers). Answered from the incremental push-time bits
    /// when they are live; a block that went through an in-place
    /// compaction ([`Self::set_len`]) pays one scan instead. Used by the
    /// seal path to count [`monotone sealed
    /// blocks`](crate::stats::ShardStats::blocks_sealed_monotone) — the
    /// share the arena-binned fill path is designed to maximize.
    pub(crate) fn is_ptr_monotone(&self) -> bool {
        if self.mono & MONO_UNKNOWN == 0 {
            return self.ptr_monotone_hint();
        }
        let nodes = self.nodes();
        let mut asc = true;
        let mut desc = true;
        for w in nodes.windows(2) {
            let (a, b) = (w[0].ptr() as u64, w[1].ptr() as u64);
            asc &= b >= a;
            desc &= b <= a;
        }
        asc || desc
    }

    /// O(1) birth-era monotonicity hint from the incremental push-time
    /// bits alone — the [`Self::ptr_monotone_hint`] analogue for the era
    /// sweeps: an era-monotone block's birth-sorted permutation costs one
    /// detection pass, so `free_era_unreserved` admits it to the
    /// merge-join path on its first sweep instead of deferring the sort.
    #[inline]
    pub(crate) fn era_monotone_hint(&self) -> bool {
        self.mono_era & MONO_UNKNOWN == 0 && self.mono_era & (MONO_ASC | MONO_DESC) != 0
    }

    /// Whether the slots form a birth-era-monotone run (ascending *or*
    /// descending), answered like [`Self::is_ptr_monotone`]: from the
    /// incremental bits when live, one header scan after a compaction.
    /// Feeds the `blocks_sealed_era_monotone` seal counter.
    pub(crate) fn is_era_monotone(&self) -> bool {
        if self.mono_era & MONO_UNKNOWN == 0 {
            return self.era_monotone_hint();
        }
        let nodes = self.nodes();
        let mut asc = true;
        let mut desc = true;
        for w in nodes.windows(2) {
            let (a, b) = (w[0].header().birth_era, w[1].header().birth_era);
            asc &= b >= a;
            desc &= b <= a;
        }
        asc || desc
    }

    /// Counts a sweep's visit and returns how many sweeps had seen this
    /// block (in its current state) before. Sweeps defer the block sort
    /// until a block proves long-lived (visited twice): single-visit
    /// blocks — the churn common case — never pay it.
    #[inline]
    pub(crate) fn note_sweep(&mut self) -> u8 {
        let s = self.sweeps;
        self.sweeps = s.saturating_add(1);
        s
    }

    /// Pointer extrema `(min_ptr, max_ptr)`, computed lazily from the
    /// inline records alone — **no header dereference** — and cached until
    /// the next mutation.
    pub(crate) fn ptr_range(&mut self) -> (u64, u64) {
        if self.summary_valid & SUMMARY_PTR == 0 {
            debug_assert!(self.len > 0, "summary of an empty block");
            let mut min = u64::MAX;
            let mut max = 0u64;
            for r in self.nodes() {
                let p = r.ptr() as u64;
                min = min.min(p);
                max = max.max(p);
            }
            self.summary.min_ptr = min;
            self.summary.max_ptr = max;
            self.summary_valid |= SUMMARY_PTR;
        }
        (self.summary.min_ptr, self.summary.max_ptr)
    }

    /// Era extrema `(min_birth, min_retire, max_retire)`, computed lazily
    /// (one pass over the members' headers) and cached until the next
    /// mutation.
    pub(crate) fn era_ranges(&mut self) -> (u64, u64, u64) {
        if self.summary_valid & SUMMARY_ERA == 0 {
            debug_assert!(self.len > 0, "summary of an empty block");
            let mut min_birth = u64::MAX;
            let mut min_retire = u64::MAX;
            let mut max_retire = 0u64;
            for r in self.nodes() {
                let h = r.header();
                let retire = h.retire_era();
                min_birth = min_birth.min(h.birth_era);
                min_retire = min_retire.min(retire);
                max_retire = max_retire.max(retire);
            }
            self.summary.min_birth = min_birth;
            self.summary.min_retire = min_retire;
            self.summary.max_retire = max_retire;
            self.summary_valid |= SUMMARY_ERA;
        }
        (
            self.summary.min_birth,
            self.summary.min_retire,
            self.summary.max_retire,
        )
    }

    /// Slot indices ordered by `key`, computed lazily (stack-local pair
    /// sort, no allocation) and cached until the next mutation. Merge-join
    /// sweeps walk this permutation against a sorted reservation set
    /// instead of binary-searching per record.
    ///
    /// Keys are extracted once into a stack array of `(key, slot)` pairs —
    /// not recomputed per comparison through the slot indirection — and
    /// monotone blocks are detected in one pass and cost no sort at all:
    /// ascending (fresh sequential allocations, monotone eras) *and*
    /// descending (refills drawn LIFO from an allocator free list) runs
    /// both yield their permutation directly.
    pub(crate) fn sorted_order(&mut self, key: SortKey) -> &[u8] {
        debug_assert!(key != SortKey::Unsorted, "must sort by a real key");
        if self.sort_key != key {
            let n = self.len;
            let nodes = self.nodes();
            let mut pairs = [(0u64, 0u8); RETIRE_BATCH_CAP];
            let mut ascending = true;
            let mut descending = true;
            let mut prev = 0u64;
            for (i, p) in pairs[..n].iter_mut().enumerate() {
                let k = match key {
                    SortKey::Ptr => nodes[i].ptr() as u64,
                    SortKey::Birth => nodes[i].header().birth_era,
                    SortKey::Unsorted => unreachable!(),
                };
                if i > 0 {
                    ascending &= k >= prev;
                    descending &= k <= prev;
                }
                prev = k;
                *p = (k, i as u8);
            }
            if ascending {
                for (i, o) in self.order[..n].iter_mut().enumerate() {
                    *o = i as u8;
                }
            } else if descending {
                for (i, o) in self.order[..n].iter_mut().enumerate() {
                    *o = (n - 1 - i) as u8;
                }
            } else {
                pairs[..n].sort_unstable();
                for (o, p) in self.order[..n].iter_mut().zip(&pairs[..n]) {
                    *o = p.1;
                }
            }
            self.sort_key = key;
        }
        &self.order[..self.len]
    }

    /// Raw base pointer for in-place compaction sweeps.
    #[inline]
    pub(crate) fn as_mut_ptr(&mut self) -> *mut Retired {
        self.slots.as_mut_ptr() as *mut Retired
    }

    /// Overrides the initialized length (and drops the sort cache — the
    /// caller has rearranged slots).
    ///
    /// # Safety
    ///
    /// The first `len` slots must hold initialized records the caller has
    /// not moved out, and any truncated-away records must have been read
    /// out (or be deliberately abandoned).
    #[inline]
    pub(crate) unsafe fn set_len(&mut self, len: usize) {
        debug_assert!(len <= RETIRE_BATCH_CAP);
        self.invalidate_cache();
        // The caller rearranged slots: the push-time direction bits no
        // longer describe them (an emptied block starts fresh instead).
        let bits = if len == 0 {
            MONO_ASC | MONO_DESC
        } else {
            MONO_UNKNOWN
        };
        self.mono = bits;
        self.mono_era = bits;
        self.len = len;
    }
}

/// Strips data-structure mark bits (low 2 bits) from a pointer-sized word.
///
/// Lock-free structures tag pointers (e.g. Harris-Michael deletion marks);
/// reservations must record the *node address*, so schemes unmark before
/// storing and comparing.
#[inline(always)]
pub fn unmark_word(p: u64) -> u64 {
    p & !0b11
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::Strategy as _;

    #[repr(C)]
    struct TestNode {
        hdr: Header,
        payload: [u64; 4],
    }
    unsafe impl HasHeader for TestNode {}

    #[test]
    fn header_roundtrip() {
        let h = Header::new(42, 96);
        assert_eq!(h.birth_era, 42);
        assert_eq!(h.size(), 96);
        assert_eq!(h.retire_era(), u64::MAX);
        assert!(!h.is_poisoned());
        h.set_retire_era(77);
        assert_eq!(h.retire_era(), 77);
        h.poison();
        assert!(h.is_poisoned());
        assert_eq!(h.size(), 96, "poisoning must preserve the size field");
    }

    #[test]
    fn retired_reads_through_header() {
        let node = Box::into_raw(Box::new(TestNode {
            hdr: Header::new(3, core::mem::size_of::<TestNode>()),
            payload: [0; 4],
        }));
        let r = unsafe { Retired::new(node) };
        assert_eq!(r.header().birth_era, 3);
        r.header().set_retire_era(9);
        assert_eq!(unsafe { &*node }.hdr.retire_era(), 9);
        unsafe { r.free() };
    }

    #[test]
    fn retire_batch_push_pop_roundtrip() {
        let mut b = RetireBatch::boxed();
        assert!(b.is_empty());
        let mut ptrs = Vec::new();
        for i in 0..RETIRE_BATCH_CAP {
            let node = Box::into_raw(Box::new(TestNode {
                hdr: Header::new(i as u64, core::mem::size_of::<TestNode>()),
                payload: [0; 4],
            }));
            ptrs.push(node as *mut Header);
            b.push(unsafe { Retired::new(node) });
        }
        assert_eq!(b.len(), RETIRE_BATCH_CAP);
        assert_eq!(
            b.nodes().iter().map(|r| r.ptr()).collect::<Vec<_>>(),
            ptrs,
            "slice view preserves push order"
        );
        for i in (0..RETIRE_BATCH_CAP).rev() {
            let r = b.pop().unwrap();
            assert_eq!(r.ptr(), ptrs[i], "pop returns newest first");
            unsafe { r.free() };
        }
        assert!(b.pop().is_none());
    }

    #[test]
    fn unmark_strips_low_bits() {
        assert_eq!(unmark_word(0x1000), 0x1000);
        assert_eq!(unmark_word(0x1001), 0x1000);
        assert_eq!(unmark_word(0x1003), 0x1000);
        assert_eq!(unmark_word(3), 0);
    }

    /// One batch mutation in the sort-cache property test.
    #[derive(Clone, Copy, Debug)]
    enum BatchOp {
        /// Push a fresh node with this birth era.
        Push(u64),
        /// Remove the newest record (cache invalidation).
        Pop,
        /// Count a sweep visit (sort-deferral bookkeeping).
        NoteSweep,
        /// Build/read the pointer-sorted permutation.
        SortPtr,
        /// Build/read the birth-sorted permutation.
        SortBirth,
        /// In-place compaction to at most this many slots.
        Truncate(usize),
    }

    /// Shadow-model check: the sort cache under `ops` must always yield a
    /// permutation that is a true sort of the live slots, extrema that
    /// bound every slot, and a monotone flag that never over-claims.
    fn check_sort_cache_ops(ops: &[BatchOp]) {
        let mut b = RetireBatch::boxed();
        // Shadow of the initialized slots: (ptr word, birth era).
        let mut shadow: Vec<(u64, u64)> = Vec::new();
        // Every allocation, freed exactly once at the end (records in the
        // batch are just pointers; `Retired` has no Drop).
        let mut allocated: Vec<*mut TestNode> = Vec::new();
        // Whether the batch has only seen pushes since it was last empty —
        // the state every seal happens in, where the monotone flag must be
        // exact, not merely conservative.
        let mut pure_push = true;

        for &op in ops {
            match op {
                BatchOp::Push(birth) => {
                    if b.len() == RETIRE_BATCH_CAP {
                        continue;
                    }
                    if b.is_empty() {
                        pure_push = true;
                    }
                    let node = Box::into_raw(Box::new(TestNode {
                        hdr: Header::new(birth, core::mem::size_of::<TestNode>()),
                        payload: [0; 4],
                    }));
                    allocated.push(node);
                    let r = unsafe { Retired::new(node) };
                    r.header().set_retire_era(birth + 1);
                    shadow.push((r.ptr() as u64, birth));
                    b.push(r);
                }
                BatchOp::Pop => {
                    let got = b.pop().map(|r| r.ptr() as u64);
                    assert_eq!(got, shadow.pop().map(|s| s.0), "pop order");
                    pure_push = false;
                }
                BatchOp::NoteSweep => {
                    b.note_sweep();
                }
                BatchOp::SortPtr | BatchOp::SortBirth => {
                    if b.is_empty() {
                        continue;
                    }
                    let key = if matches!(op, BatchOp::SortPtr) {
                        SortKey::Ptr
                    } else {
                        SortKey::Birth
                    };
                    let ord: Vec<u8> = b.sorted_order(key).to_vec();
                    assert!(b.has_sorted(key));
                    let mut seen = vec![false; shadow.len()];
                    let mut prev = 0u64;
                    for (i, &slot) in ord.iter().enumerate() {
                        let s = shadow[slot as usize];
                        let k = if key == SortKey::Ptr { s.0 } else { s.1 };
                        assert!(!core::mem::replace(&mut seen[slot as usize], true));
                        assert!(i == 0 || k >= prev, "permutation must sort {key:?}");
                        prev = k;
                    }
                    assert!(seen.iter().all(|&s| s), "permutation must be total");
                }
                BatchOp::Truncate(keep) => {
                    let keep = keep.min(b.len());
                    // SAFETY: only shrinks; abandoned records stay owned by
                    // `allocated` and are freed below.
                    unsafe { b.set_len(keep) };
                    shadow.truncate(keep);
                    pure_push = false;
                }
            }
            // Invariants that must hold after every mutation.
            assert_eq!(b.len(), shadow.len());
            if !b.is_empty() {
                let (min_ptr, max_ptr) = b.ptr_range();
                let (min_birth, min_retire, max_retire) = b.era_ranges();
                for &(p, birth) in &shadow {
                    assert!(
                        (min_ptr..=max_ptr).contains(&p),
                        "ptr extrema must bound every slot"
                    );
                    assert!(min_birth <= birth, "birth extremum must bound");
                    assert!(
                        (min_retire..=max_retire).contains(&(birth + 1)),
                        "retire extrema must bound"
                    );
                }
                let truly_monotone = shadow.windows(2).all(|w| w[1].0 >= w[0].0)
                    || shadow.windows(2).all(|w| w[1].0 <= w[0].0);
                if b.is_ptr_monotone() {
                    assert!(truly_monotone, "monotone flag must never over-claim");
                }
                let truly_era_monotone = shadow.windows(2).all(|w| w[1].1 >= w[0].1)
                    || shadow.windows(2).all(|w| w[1].1 <= w[0].1);
                if b.is_era_monotone() {
                    assert!(
                        truly_era_monotone,
                        "era-monotone flag must never over-claim"
                    );
                }
                if pure_push {
                    assert_eq!(
                        b.is_ptr_monotone(),
                        truly_monotone,
                        "after pure pushes (the seal state) the flag is exact"
                    );
                    assert_eq!(
                        b.is_era_monotone(),
                        truly_era_monotone,
                        "after pure pushes the era flag is exact too"
                    );
                }
            }
        }
        drop(b); // leaks its records; the allocations are freed below
        for p in allocated {
            unsafe { drop(Box::from_raw(p)) };
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]

        /// ISSUE 4 satellite: arbitrary interleavings of
        /// push/pop/truncate/note_sweep/sort keep the sort cache honest.
        #[test]
        fn sort_cache_invariants_hold_under_arbitrary_ops(
            ops in proptest::collection::vec(
                proptest::prop_oneof![
                    (0u64..64).prop_map(BatchOp::Push),
                    proptest::Just(BatchOp::Pop),
                    proptest::Just(BatchOp::NoteSweep),
                    proptest::Just(BatchOp::SortPtr),
                    proptest::Just(BatchOp::SortBirth),
                    (0usize..RETIRE_BATCH_CAP).prop_map(BatchOp::Truncate),
                ],
                1..160,
            )
        ) {
            check_sort_cache_ops(&ops);
        }
    }

    #[test]
    fn has_header_view_matches_field() {
        let node = TestNode {
            hdr: Header::new(11, 64),
            payload: [1; 4],
        };
        assert_eq!(node.header().birth_era, 11);
        assert_eq!(node.header().size(), 64);
    }
}
