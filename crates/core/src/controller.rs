//! The per-domain **adaptive controller**: the feedback loop from sweep
//! outcomes back to the pacing knobs that PRs 1–4 left static.
//!
//! The paper's thesis is that reservations should cost nothing until a
//! reclaimer actually needs them. This module applies the same philosophy
//! to the *reclaimer's own* recurring costs:
//!
//! * **Epoch-freq decay** ([`PassController`]): a pass whose sweep frees
//!   nothing is evidence the domain is idle (everything pinned, or a
//!   trickle workload whose garbage drains elsewhere). Consecutive barren
//!   passes exponentially decay the epoch-advance cadence — the op-path
//!   clock tick stretches from `epoch_freq` to `epoch_freq << decay`, and
//!   only every `2^decay`-th trigger executes the full pass body (epoch
//!   aggregation with its stripe refreshes, reservation scan, sweep);
//!   skipped triggers cost one counter bump. The decay is bounded
//!   ([`MAX_EPOCH_DECAY`]) and resets to zero the moment any pass frees a
//!   block, so a domain that wakes up pays at most `2^MAX_EPOCH_DECAY`
//!   thinned triggers of extra reclamation latency — never a cliff.
//!   Skipping a sweep is always *safe*: epochs and reservations only ever
//!   delay frees, never legalize them.
//! * **Bin auto-sizing** ([`BinAdapt`], driven from the retire hot path in
//!   `base::push_retired`): each thread watches the monotone share of its
//!   own recently sealed blocks and hill-climbs its private fill-bin
//!   count. A low share means the address streams are interleaved faster
//!   than the current bins separate them — double the bins. A
//!   near-perfect share means binning may be unnecessary — probe half the
//!   bins and keep the collapse only if the share survives. Single-stream
//!   workloads converge to 1 bin (shedding the multi-bin unsealed-node
//!   bound); interleaved-arena churn grows to the maximum.
//!
//! Era-monotone seal detection, the third adaptivity item, lives in the
//! block itself (`header::RetireBatch` tracks birth-era direction bits
//! exactly as it tracks pointer direction; `base::free_era_unreserved`
//! admits era-monotone blocks to the merge-join path on their first
//! sweep) — no controller state needed.
//!
//! Everything here is advisory pacing: disabling the controller
//! (`SmrConfig::adaptive = false`, env `POP_ADAPTIVE=0`) restores the
//! exact static PR-4 behavior, which the CI fallback matrix pins.

use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Decay ceiling: at most `2^MAX_EPOCH_DECAY` (= 16×) stretch of the
/// epoch cadence and pass thinning. Bounds the reclamation-latency cost
/// of waking an idle domain to 16 thinned triggers.
pub const MAX_EPOCH_DECAY: u32 = 4;

/// Sealed blocks per bin-adaptation window: the monotone share is
/// re-evaluated (and the bin count possibly resized) once per this many
/// seals, so decisions average over ≥ `32 × RETIRE_BATCH_CAP` retires.
pub const BIN_ADAPT_WINDOW: u32 = 32;

/// Windows a thread holds off after a failed collapse probe before it
/// probes again (hysteresis against share oscillation at a boundary).
const BIN_PROBE_HOLDOFF: u8 = 4;

/// Monotone-share threshold (out of [`BIN_ADAPT_WINDOW`]) *below* which
/// the bins are failing to separate the address streams: grow.
const SHARE_LOW_NUM: u32 = BIN_ADAPT_WINDOW / 2;

/// Monotone-share threshold (out of [`BIN_ADAPT_WINDOW`]) at or *above*
/// which fewer bins may do: probe a collapse. 7/8 of the window.
const SHARE_HIGH_NUM: u32 = BIN_ADAPT_WINDOW - BIN_ADAPT_WINDOW / 8;

/// What a triggered reclamation pass should execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassAction {
    /// Run the whole pass: epoch advance, reservation scan, sweep.
    Full,
    /// Decayed domain, off-cycle trigger: skip the scan and sweep (the
    /// trigger pacing has already been reset by the caller, so the next
    /// trigger still waits a full `reclaim_freq` of retires).
    Thinned,
}

/// Per-domain epoch-cadence decay, shared by every reclaimer of the
/// domain (one cache line of state, touched only on pass paths).
///
/// The state machine is deliberately tiny: a bounded decay level that
/// consecutive barren passes deepen and the first freeing pass resets.
/// All loads/stores are relaxed — the level is pacing advice, and a
/// racing reclaimer acting on a stale level only runs (or skips) one
/// pass body it otherwise wouldn't, which is always safe.
pub struct PassController {
    /// Current decay level, `0..=MAX_EPOCH_DECAY`. Zero = full cadence.
    decay: AtomicU32,
    /// Triggered-pass counter driving the `2^decay` thinning cycle.
    passes: AtomicU64,
    /// `false` pins the controller at decay 0 (static PR-4 behavior).
    enabled: bool,
}

impl PassController {
    /// A controller honoring `SmrConfig::adaptive`.
    pub fn new(enabled: bool) -> Self {
        PassController {
            decay: AtomicU32::new(0),
            passes: AtomicU64::new(0),
            enabled,
        }
    }

    /// Current decay level (0 when disabled).
    #[inline]
    pub fn decay_level(&self) -> u32 {
        if !self.enabled {
            return 0;
        }
        self.decay.load(Ordering::Relaxed)
    }

    /// Whether the op path's periodic clock tick is due. `count` is the
    /// thread's private operation counter, `freq` the configured
    /// `epoch_freq`. The fast exit is the undecayed modulo — the shared
    /// decay word is loaded only on the 1-in-`freq` candidates, so the
    /// controller adds nothing to the op path's common case.
    #[inline]
    pub fn tick_due(&self, count: u64, freq: u64) -> bool {
        if !count.is_multiple_of(freq) {
            return false;
        }
        let d = self.decay_level();
        d == 0 || (count / freq).is_multiple_of(1u64 << d)
    }

    /// Gate for a *retire-triggered* reclamation pass: at decay `d`, one
    /// trigger in `2^d` executes the full pass body; the rest are
    /// thinned. Flush/unregister paths must use
    /// [`Self::begin_forced_pass`] instead — draining is never thinned.
    ///
    /// Undecayed (and disabled) controllers return without touching the
    /// shared pass counter: the common case adds **no** cross-thread RMW
    /// to the pass path — the counter only turns while a decay cycle
    /// actually needs the phase.
    #[inline]
    pub fn begin_pass(&self) -> PassAction {
        let d = self.decay_level();
        if d == 0 {
            return PassAction::Full;
        }
        let n = self.passes.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(1u64 << d) {
            PassAction::Full
        } else {
            PassAction::Thinned
        }
    }

    /// Forced-full variant for flush/unregister/escalation paths; while a
    /// decay cycle is live it still advances the thinning phase, so a
    /// forced pass counts as the periodic full one.
    #[inline]
    pub fn begin_forced_pass(&self) -> PassAction {
        if self.decay_level() > 0 {
            self.passes.fetch_add(1, Ordering::Relaxed);
        }
        PassAction::Full
    }

    /// Pressure-ladder hook (soft rung): snap the decay to zero *without*
    /// waiting for a freeing pass, so a domain that trips the soft
    /// watermark immediately returns to full epoch cadence and un-thinned
    /// passes. Idempotent and racy-safe — the decay word is pacing
    /// advice, and the worst a lost race costs is one thinned trigger.
    #[inline]
    pub fn cancel_decay(&self) {
        if self.enabled && self.decay.load(Ordering::Relaxed) != 0 {
            self.decay.store(0, Ordering::Relaxed);
        }
    }

    /// Feedback from an executed (full) pass: `freed > 0` snaps the decay
    /// back to zero — the no-cliff guarantee — while a barren pass
    /// deepens it one bounded step. Returns `true` when this call
    /// deepened the decay (the caller owes one `epoch_decay_steps`
    /// counter bump).
    pub fn note_pass_outcome(&self, freed: usize) -> bool {
        if !self.enabled {
            return false;
        }
        if freed > 0 {
            self.decay.store(0, Ordering::Relaxed);
            return false;
        }
        self.decay
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                (d < MAX_EPOCH_DECAY).then_some(d + 1)
            })
            .is_ok()
    }
}

/// What one bin-adaptation evaluation decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinDecision {
    /// Keep the current bin count.
    Hold,
    /// Resize the fill bins to this count (a power of two).
    Resize(usize),
}

/// Per-thread fill-bin auto-sizer (plain fields — owner-thread only, no
/// atomics; lives inside the thread's `RetireList`).
///
/// Feed every seal outcome in with [`Self::note_seal`]; once a window of
/// [`BIN_ADAPT_WINDOW`] blocks completes, [`Self::evaluate`] returns the
/// resize decision for the observed monotone share.
#[derive(Debug)]
pub struct BinAdapt {
    /// Adaptation ceiling (a power of two; 0 or 1 disables growth).
    max_bins: usize,
    /// Blocks sealed in the current window.
    window_blocks: u32,
    /// Of those, address-monotone at seal time.
    window_monotone: u32,
    /// Bin count before an in-flight collapse probe (0 = no probe).
    probe_from: usize,
    /// Windows to skip after a failed probe.
    holdoff: u8,
}

impl BinAdapt {
    /// An auto-sizer allowed to roam `1..=max_bins`.
    pub fn new(max_bins: usize) -> Self {
        BinAdapt {
            max_bins,
            window_blocks: 0,
            window_monotone: 0,
            probe_from: 0,
            holdoff: 0,
        }
    }

    /// Records one seal event. Returns `true` once per completed window —
    /// the caller should then ask [`Self::evaluate`].
    #[inline]
    pub fn note_seal(&mut self, blocks: u64, monotone: u64) -> bool {
        self.window_blocks += blocks as u32;
        self.window_monotone += monotone as u32;
        self.window_blocks >= BIN_ADAPT_WINDOW
    }

    /// Evaluates the completed window against the current bin count and
    /// resets it. The rules, in priority order:
    ///
    /// 1. A pending collapse probe is judged: if the share stayed high the
    ///    collapse sticks, otherwise grow back and hold off.
    /// 2. Low share (< 1/2): the streams are interleaving — double.
    /// 3. High share (≥ 7/8) with more than one bin: probe a collapse to
    ///    half; the next window judges it.
    pub fn evaluate(&mut self, current_bins: usize) -> BinDecision {
        // Normalize the share to the window size before resetting, so
        // over-full windows (multi-block seal events) compare fairly.
        let share_num = self
            .window_monotone
            .saturating_mul(BIN_ADAPT_WINDOW)
            .checked_div(self.window_blocks)
            .unwrap_or(0);
        self.window_blocks = 0;
        self.window_monotone = 0;

        if self.holdoff > 0 {
            self.holdoff -= 1;
            return BinDecision::Hold;
        }
        if self.probe_from != 0 {
            let probed_from = core::mem::replace(&mut self.probe_from, 0);
            if share_num >= SHARE_HIGH_NUM {
                // The collapse held: fewer bins still yield monotone
                // blocks. Keep it (and possibly probe further next time).
                return BinDecision::Hold;
            }
            // The collapse broke the share: restore and back off.
            self.holdoff = BIN_PROBE_HOLDOFF;
            return BinDecision::Resize(probed_from);
        }
        if share_num < SHARE_LOW_NUM && current_bins < self.max_bins {
            return BinDecision::Resize(current_bins * 2);
        }
        if share_num >= SHARE_HIGH_NUM && current_bins > 1 {
            self.probe_from = current_bins;
            return BinDecision::Resize(current_bins / 2);
        }
        BinDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_deepens_on_barren_and_resets_on_free() {
        let c = PassController::new(true);
        assert_eq!(c.decay_level(), 0);
        for step in 1..=MAX_EPOCH_DECAY {
            assert!(c.note_pass_outcome(0), "barren pass deepens");
            assert_eq!(c.decay_level(), step);
        }
        assert!(!c.note_pass_outcome(0), "bounded at MAX_EPOCH_DECAY");
        assert_eq!(c.decay_level(), MAX_EPOCH_DECAY);
        assert!(!c.note_pass_outcome(3), "freeing pass never deepens");
        assert_eq!(c.decay_level(), 0, "instant reset on the first free");
    }

    #[test]
    fn disabled_controller_is_inert() {
        let c = PassController::new(false);
        for _ in 0..10 {
            assert!(!c.note_pass_outcome(0));
        }
        assert_eq!(c.decay_level(), 0);
        for _ in 0..10 {
            assert_eq!(c.begin_pass(), PassAction::Full, "never thinned");
        }
        assert!(c.tick_due(64, 64), "plain modulo when disabled");
    }

    #[test]
    fn thinning_executes_one_in_two_pow_decay() {
        let c = PassController::new(true);
        for _ in 0..2 {
            c.note_pass_outcome(0);
        }
        assert_eq!(c.decay_level(), 2);
        let full = (0..16)
            .filter(|_| c.begin_pass() == PassAction::Full)
            .count();
        assert_eq!(full, 4, "1 in 2^2 triggers runs full");
    }

    #[test]
    fn forced_pass_is_always_full() {
        let c = PassController::new(true);
        for _ in 0..MAX_EPOCH_DECAY {
            c.note_pass_outcome(0);
        }
        for _ in 0..8 {
            assert_eq!(c.begin_forced_pass(), PassAction::Full);
        }
    }

    #[test]
    fn cancel_decay_restores_full_cadence() {
        let c = PassController::new(true);
        for _ in 0..MAX_EPOCH_DECAY {
            c.note_pass_outcome(0);
        }
        assert_eq!(c.decay_level(), MAX_EPOCH_DECAY);
        c.cancel_decay();
        assert_eq!(c.decay_level(), 0, "soft rung snaps decay to zero");
        assert_eq!(c.begin_pass(), PassAction::Full);
        c.cancel_decay(); // idempotent at zero
        assert_eq!(c.decay_level(), 0);
    }

    #[test]
    fn tick_due_stretches_with_decay() {
        let c = PassController::new(true);
        assert!(c.tick_due(64, 64));
        assert!(!c.tick_due(65, 64));
        c.note_pass_outcome(0); // decay 1: period doubles
        assert!(!c.tick_due(64, 64), "odd multiple skipped at decay 1");
        assert!(c.tick_due(128, 64), "even multiple still ticks");
    }

    #[test]
    fn bin_adapt_grows_on_low_share() {
        let mut a = BinAdapt::new(8);
        // A window of non-monotone blocks at 1 bin: double.
        for _ in 0..BIN_ADAPT_WINDOW - 1 {
            assert!(!a.note_seal(1, 0));
        }
        assert!(a.note_seal(1, 0), "window completes");
        assert_eq!(a.evaluate(1), BinDecision::Resize(2));
        // And again, up to the ceiling.
        for _ in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, 0);
        }
        assert_eq!(a.evaluate(4), BinDecision::Resize(8));
        for _ in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, 0);
        }
        assert_eq!(a.evaluate(8), BinDecision::Hold, "ceiling respected");
    }

    #[test]
    fn bin_adapt_collapse_probe_accepts_and_reverts() {
        let mut a = BinAdapt::new(8);
        // High share at 4 bins: probe a collapse to 2.
        for _ in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, 1);
        }
        assert_eq!(a.evaluate(4), BinDecision::Resize(2));
        // Share stays high: the collapse sticks (Hold at 2).
        for _ in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, 1);
        }
        assert_eq!(a.evaluate(2), BinDecision::Hold);
        // Next window probes 2 → 1.
        for _ in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, 1);
        }
        assert_eq!(a.evaluate(2), BinDecision::Resize(1));
        // This time the share collapses: revert to 2 and hold off.
        for _ in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, 0);
        }
        assert_eq!(a.evaluate(1), BinDecision::Resize(2));
        // Holdoff windows: no probing even at a high share.
        for _ in 0..BIN_PROBE_HOLDOFF {
            for _ in 0..BIN_ADAPT_WINDOW {
                a.note_seal(1, 1);
            }
            assert_eq!(a.evaluate(2), BinDecision::Hold, "holdoff window");
        }
        // Holdoff expired: probing resumes.
        for _ in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, 1);
        }
        assert_eq!(a.evaluate(2), BinDecision::Resize(1));
    }

    #[test]
    fn bin_adapt_mid_share_holds() {
        let mut a = BinAdapt::new(8);
        // ~70% monotone (the well-adapted interleaved regime): stable.
        for i in 0..BIN_ADAPT_WINDOW {
            a.note_seal(1, u64::from(i % 10 < 7));
        }
        assert_eq!(a.evaluate(8), BinDecision::Hold);
    }
}
