//! Reclamation-domain configuration.

use crate::header::RETIRE_BATCH_CAP;
use crate::pressure::PressureGauge;

/// Default publish-wait spin budget (the historical hard-coded
/// `SPIN_LIMIT`): roughly the cost of a few cache-miss round trips, enough
/// for a running peer's handler to publish before the waiter parks.
pub const DEFAULT_PUBLISH_SPIN: u32 = 128;

/// Upper bound on [`SmrConfig::retire_bins`]: more bins than this buys no
/// extra monotonicity (allocators rarely interleave more arenas per
/// thread) while inflating the per-thread unsealed-node bound
/// (`bins × (retire_batch − 1)`).
pub const MAX_RETIRE_BINS: usize = 8;

/// Default arena-bin count: enough to separate the address streams real
/// allocators interleave (fresh bump region + a few free-list arenas).
pub const DEFAULT_RETIRE_BINS: usize = 4;

/// Default publish-wait deadline (1 s wall clock, total per reclamation
/// pass). Generous enough that a merely descheduled peer on an
/// oversubscribed host publishes long before it; the deadline exists for
/// peers that will *never* publish (died without deregistering, signal
/// lost), where the watchdog falls back to conservative snapshots.
pub const DEFAULT_PUBLISH_DEADLINE_NS: u64 = 1_000_000_000;

/// Default soft pressure watermark, as a multiple of `reclaim_freq`: a
/// backlog of 8 full reclaim triggers' worth of garbage means passes are
/// consistently failing to free — stop decaying the cadence.
pub const PRESSURE_SOFT_FACTOR: usize = 8;

/// Default hard pressure watermark factor (see [`PRESSURE_SOFT_FACTOR`]).
pub const PRESSURE_HARD_FACTOR: usize = 16;

/// Default emergency pressure watermark factor (see
/// [`PRESSURE_SOFT_FACTOR`]).
pub const PRESSURE_EMERGENCY_FACTOR: usize = 32;

/// Default cap on each thread's recycled retire-block free pool, in
/// blocks. A pool this size absorbs every steady-state sweep's recycling
/// without allocator traffic; bursty retire storms that grow past it are
/// trimmed back at the next sweep instead of holding the high-water mark
/// forever.
pub const DEFAULT_FREE_POOL_CAP: usize = 32;

/// The one normalization rule for bin counts: a power of two (so bin
/// routing is a shift + mask) in `1..=MAX_RETIRE_BINS`, rounding upward
/// (3 → 4). Shared by the builder, `effective_bins` and `RetireList`.
pub(crate) fn normalize_bins(b: usize) -> usize {
    b.clamp(1, MAX_RETIRE_BINS).next_power_of_two()
}

/// How a POP reclaimer gets peers' reservations published before it scans
/// them (the publish half of `ping_all_and_wait`). The signal fan-out
/// variants differ only in how the reclaimer *waits* for the pinged
/// handlers; `Membarrier` replaces the whole fan-out with one
/// `membarrier(2)` heavy barrier and has nothing to wait for. See
/// `ARCHITECTURE.md` ("Publish modes") for the per-scheme decision table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PublishMode {
    /// Probe the host once: [`PublishMode::Membarrier`] when
    /// `membarrier(2)` `PRIVATE_EXPEDITED` is usable, else the signal
    /// fan-out (flavored by [`SmrConfig::futex_wait`]).
    Auto,
    /// Signal fan-out, yield-loop publish waits (the portable path).
    Signal,
    /// Signal fan-out, futex-parked publish waits — the historical
    /// default.
    #[default]
    Futex,
    /// One process-wide `membarrier(2)` barrier per pass: readers write
    /// reservations straight to their shared slots with plain stores, the
    /// reclaimer's barrier makes them visible, and there is no per-peer
    /// signaling or waiting at all. Falls back to the signal fan-out when
    /// the probe fails (seccomp/containers) or a barrier fails mid-pass.
    Membarrier,
}

impl PublishMode {
    /// Parses the `POP_PUBLISH_MODE` vocabulary.
    pub fn parse(s: &str) -> Option<PublishMode> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(PublishMode::Auto),
            "signal" | "yield" => Some(PublishMode::Signal),
            "futex" => Some(PublishMode::Futex),
            "membarrier" => Some(PublishMode::Membarrier),
            _ => None,
        }
    }
}

/// Tuning knobs shared by every reclamation scheme.
///
/// Field names follow the paper's pseudocode: `reclaim_freq` is the retire
/// list threshold that triggers a reclamation pass (Alg. 1 line 1),
/// `epoch_freq` the operations-per-epoch-advance period of the epoch-based
/// schemes (Alg. 3 line 1), and `pop_c` the multiplier `C` after which
/// EpochPOP escalates from epoch reclamation to publish-on-ping
/// (Alg. 3 line 26).
///
/// # Builders
///
/// Every knob has a `with_*` builder; out-of-range values are clamped,
/// never rejected:
///
/// ```
/// use pop_core::SmrConfig;
///
/// let cfg = SmrConfig::for_threads(8)
///     .with_reclaim_freq(1024)
///     .with_epoch_freq(32)
///     .with_retire_batch(16)
///     .with_retire_bins(3) // rounds up to the next power of two
///     .with_publish_spin(64)
///     .with_futex_wait(true)
///     .with_adaptive(false);
/// assert_eq!(cfg.retire_bins, 4);
/// assert_eq!(cfg.effective_batch(), 16);
/// assert!(!cfg.adaptive);
/// ```
///
/// # `POP_*` environment overrides
///
/// [`SmrConfig::for_threads`] and [`SmrConfig::for_tests`] apply the
/// environment overrides after the defaults, which is how the CI
/// fallback-path and fault matrices drive the whole test suite through
/// each switch without touching a call site:
///
/// | variable                  | effect                                       |
/// |---------------------------|----------------------------------------------|
/// | `POP_RETIRE_BATCH`        | seal threshold (`1` = unbatched retirement)  |
/// | `POP_RETIRE_BINS`         | arena fill bins (`1` = single fill block)    |
/// | `POP_FUTEX_WAIT`          | `0`/`off` = yield-loop publish waits         |
/// | `POP_ADAPTIVE`            | `0`/`off` = static knobs (no controller)     |
/// | `POP_PUBLISH_DEADLINE_MS` | publish-wait watchdog deadline (`0` = off)   |
/// | `POP_PRESSURE_SOFT`       | soft pressure watermark in nodes (`0` = gauge off) |
/// | `POP_PRESSURE_HARD`       | hard pressure watermark in nodes             |
/// | `POP_PRESSURE_EMERGENCY`  | emergency pressure watermark in nodes        |
/// | `POP_FREE_POOL_CAP`       | recycled-block pool cap in blocks (`0` = unbounded) |
/// | `POP_PUBLISH_MODE`        | POP publish mode: `auto` / `signal` / `futex` / `membarrier` |
/// | `POP_SLAB`                | `0`/`off` = legacy `Box` node allocation (no owned slabs) |
/// | `POP_FAULTS`              | fault plan (needs the `fault-injection` feature; parsed by `pop_runtime::faults`) |
///
/// ```
/// use pop_core::{PublishMode, SmrConfig};
///
/// std::env::set_var("POP_RETIRE_BATCH", "1");
/// std::env::set_var("POP_RETIRE_BINS", "1");
/// std::env::set_var("POP_FUTEX_WAIT", "off");
/// std::env::set_var("POP_ADAPTIVE", "0");
/// std::env::set_var("POP_PRESSURE_SOFT", "128");
/// std::env::set_var("POP_PRESSURE_HARD", "256");
/// std::env::set_var("POP_PRESSURE_EMERGENCY", "512");
/// std::env::set_var("POP_FREE_POOL_CAP", "4");
/// std::env::set_var("POP_PUBLISH_MODE", "membarrier");
/// std::env::set_var("POP_SLAB", "0");
/// let cfg = SmrConfig::for_tests(2);
/// assert_eq!(cfg.retire_batch, 1);
/// assert_eq!(cfg.retire_bins, 1);
/// assert!(!cfg.futex_wait);
/// assert!(!cfg.adaptive);
/// assert_eq!(
///     (cfg.pressure_soft, cfg.pressure_hard, cfg.pressure_emergency),
///     (128, 256, 512)
/// );
/// assert_eq!(cfg.free_pool_cap, 4);
/// assert_eq!(cfg.publish_mode, PublishMode::Membarrier);
/// assert!(!cfg.slab_alloc, "POP_SLAB=0 restores Box allocation");
///
/// // Unset (or unparsable) variables leave the defaults alone.
/// for k in [
///     "POP_RETIRE_BATCH", "POP_RETIRE_BINS", "POP_FUTEX_WAIT", "POP_ADAPTIVE",
///     "POP_PRESSURE_SOFT", "POP_PRESSURE_HARD", "POP_PRESSURE_EMERGENCY",
///     "POP_FREE_POOL_CAP", "POP_PUBLISH_MODE", "POP_SLAB",
/// ] {
///     std::env::remove_var(k);
/// }
/// let cfg = SmrConfig::for_tests(2);
/// assert!(cfg.retire_batch > 1 && cfg.retire_bins > 1);
/// assert!(cfg.futex_wait && cfg.adaptive);
/// assert!(cfg.pressure_soft > 0, "the gauge is on by default");
/// assert_eq!(cfg.publish_mode, PublishMode::Futex, "historical default");
/// assert!(cfg.slab_alloc, "owned slabs are the default allocator");
/// ```
#[derive(Clone, Debug)]
pub struct SmrConfig {
    /// Number of domain-local thread ids (`tid` in `0..max_threads`).
    pub max_threads: usize,
    /// Hazard-slot count per thread (`MAX_HP`). Lists need 3, trees 4; the
    /// default leaves headroom for user structures.
    pub slots: usize,
    /// Retire-list length that triggers a reclamation event. The paper uses
    /// 24 576 for all schemes (§5.0.1).
    pub reclaim_freq: usize,
    /// Operations between global-epoch advances for EBR / EpochPOP / IBR.
    pub epoch_freq: usize,
    /// EpochPOP escalation multiplier `C`: after an epoch-mode reclaim pass,
    /// a retire list still longer than `pop_c * reclaim_freq` indicates a
    /// delayed thread and engages publish-on-ping.
    pub pop_c: usize,
    /// Retirement-batch seal threshold: `retire` fills thread-private
    /// blocks (one per arena bin — see [`Self::retire_bins`]) and seals a
    /// block into the retire list once it holds `retire_batch` nodes,
    /// amortizing the stats update and the reclaim-threshold test. Clamped
    /// to `1..=RETIRE_BATCH_CAP` and never above `reclaim_freq` (so small
    /// thresholds still reclaim on time). `1` disables batching.
    pub retire_batch: usize,
    /// Arena-binned fill blocks: `retire` routes each node to one of
    /// `retire_bins` thread-private fill blocks keyed by its pointer's
    /// high bits (`ptr >> ARENA_SHIFT`), so nodes from different allocator
    /// arenas fill *different* blocks and most sealed blocks come out
    /// address-monotone — the merge-join sweep's fast path. Clamped to a
    /// power of two in `1..=MAX_RETIRE_BINS`; `1` restores the single
    /// fill block.
    pub retire_bins: usize,
    /// Spins a publish wait (`ping_all_and_wait`, NBR phase 2) burns before
    /// falling back to parking (`futex`) or yielding. Small values favor
    /// oversubscribed hosts; large values favor handlers that run within a
    /// cache-miss of the ping.
    pub publish_spin: u32,
    /// After the spin budget, park publish waits on a `futex(2)` keyed to
    /// the target's publish word (Linux; elsewhere this knob is ignored and
    /// waits `yield_now`). `false` forces the portable yield path.
    pub futex_wait: bool,
    /// Publish-wait watchdog deadline in nanoseconds, *total wall clock per
    /// reclamation pass* (`ping_all_and_wait`, NBR phase 2). A peer that
    /// has not published when it expires is handled conservatively — its
    /// shared reservations are re-snapshotted as-is (correct-by-keep), the
    /// pass completes, and the peer is probed for death and reaped if gone.
    /// `0` disables the watchdog (waits are unbounded, the pre-PR-6
    /// behavior).
    pub publish_deadline_ns: u64,
    /// The per-domain adaptive controller (`pop_core::controller`): epoch
    /// cadence decays on barren passes (instantly reset by the first
    /// freeing sweep), and each thread auto-sizes its fill-bin count from
    /// the observed monotone seal share — `retire_bins` then acts as the
    /// *initial* count, roaming `1..=MAX_RETIRE_BINS` (inert when
    /// `retire_bins` is 1, so the legacy single-block configuration stays
    /// byte-identical). `false` pins every knob at its configured value.
    pub adaptive: bool,
    /// Testing mode: freed nodes are poisoned and quarantined instead of
    /// deallocated, turning any use-after-free into a deterministic panic
    /// inside `protect`.
    pub quarantine: bool,
    /// Soft pressure watermark in nodes: an actionable unreclaimed backlog
    /// (retired − freed − quarantined) at or above this cancels epoch-decay
    /// pacing and forces full passes. `0` disables the entire pressure
    /// gauge. Env `POP_PRESSURE_SOFT`.
    pub pressure_soft: usize,
    /// Hard pressure watermark in nodes: at or above this, `retire` calls
    /// reclaim synchronously (bounded retries) and re-ping suspect
    /// laggards. Normalized to at least `pressure_soft`. Env
    /// `POP_PRESSURE_HARD`.
    pub pressure_hard: usize,
    /// Emergency pressure watermark in nodes: at or above this, passes run
    /// per-participant stalled-reader detection and quarantine blocks
    /// provably pinned only by a stalled blocker. Normalized to at least
    /// `pressure_hard`. Env `POP_PRESSURE_EMERGENCY`.
    pub pressure_emergency: usize,
    /// Cap on each thread's recycled retire-block free pool, in blocks
    /// (`0` = unbounded, the historical behavior). Sweeps trim the pool
    /// back to this cap — and all the way to empty while the domain is at
    /// [`crate::pressure::PressureRung::Hard`] or above, so emergency
    /// pressure actually returns memory to the allocator. Env
    /// `POP_FREE_POOL_CAP`.
    pub free_pool_cap: usize,
    /// How POP reclaimers publish peers' reservations: the signal fan-out
    /// ([`PublishMode::Signal`]/[`PublishMode::Futex`], differing only in
    /// wait flavor) or one process-wide [`PublishMode::Membarrier`]
    /// barrier per pass. Only the POP schemes consult this
    /// (HP-POP/HE-POP/Epoch-POP); NBR always keeps signals — its pings
    /// *neutralize* readers, which no memory barrier can do. Domains
    /// resolve it once at construction via
    /// [`Self::resolved_publish_mode`]. Env `POP_PUBLISH_MODE`
    /// (`auto`/`signal`/`futex`/`membarrier`).
    pub publish_mode: PublishMode,
    /// Allocate reclaimable nodes from the owned slab arenas
    /// ([`crate::slab`]): per-thread bump fills are address-monotone by
    /// construction, whole-slab frees settle via one range test, and
    /// fully-empty slabs are `madvise`d back to the OS. `false` restores
    /// plain `Box` allocation (the legacy pipeline, where arena bins are
    /// guessed from pointer high bits). Env `POP_SLAB`.
    pub slab_alloc: bool,
}

impl SmrConfig {
    /// Paper-faithful defaults for `n` threads, before env overrides.
    fn paper_defaults(n: usize) -> Self {
        let reclaim_freq = 24_576;
        SmrConfig {
            max_threads: n,
            slots: 8,
            reclaim_freq,
            epoch_freq: 64,
            pop_c: 2,
            retire_batch: RETIRE_BATCH_CAP,
            retire_bins: DEFAULT_RETIRE_BINS,
            publish_spin: DEFAULT_PUBLISH_SPIN,
            futex_wait: true,
            publish_deadline_ns: DEFAULT_PUBLISH_DEADLINE_NS,
            adaptive: true,
            quarantine: false,
            // The gauge defaults to enabled with generous watermarks: a
            // healthy workload never trips them (bench parity), a stalled
            // reader does. Scaled from the paper's retire threshold, not
            // re-derived by `with_reclaim_freq` — tests pin tiny
            // thresholds without entering pressure mode.
            pressure_soft: reclaim_freq * PRESSURE_SOFT_FACTOR,
            pressure_hard: reclaim_freq * PRESSURE_HARD_FACTOR,
            pressure_emergency: reclaim_freq * PRESSURE_EMERGENCY_FACTOR,
            free_pool_cap: DEFAULT_FREE_POOL_CAP,
            publish_mode: PublishMode::default(),
            slab_alloc: true,
        }
    }

    /// Paper-faithful defaults for `n` threads.
    pub fn for_threads(n: usize) -> Self {
        Self::paper_defaults(n).with_env_overrides()
    }

    /// Test defaults before env overrides: small thresholds that force
    /// frequent reclamation, so every code path (ping, publish, scan,
    /// free) runs within a few hundred operations. Tests that *assert*
    /// defaults use this directly so they stay env-independent.
    fn test_defaults(n: usize) -> Self {
        SmrConfig {
            reclaim_freq: 64,
            epoch_freq: 4,
            ..Self::paper_defaults(n)
        }
    }

    /// Test defaults (small thresholds) plus the `POP_*` env overrides, so the CI
    /// fallback-path matrix drives every test through one switch.
    pub fn for_tests(n: usize) -> Self {
        Self::test_defaults(n).with_env_overrides()
    }

    /// Applies the `POP_*` environment overrides (CI's fallback-path
    /// matrix legs run the test suite with `POP_RETIRE_BINS=1`,
    /// `POP_RETIRE_BATCH=1` and `POP_FUTEX_WAIT=0` without touching any
    /// call site). Unset or unparsable variables change nothing.
    ///
    /// Also arms the fault-injection layer from `POP_FAULTS` (a no-op
    /// unless the `fault-injection` feature is compiled in): domain
    /// construction is the one chokepoint every harness passes through.
    fn with_env_overrides(self) -> Self {
        pop_runtime::faults::init_from_env();
        self.with_overrides_from(|k| std::env::var(k).ok())
    }

    /// Env-override core, parameterized over the lookup for testability.
    fn with_overrides_from(mut self, get: impl Fn(&str) -> Option<String>) -> Self {
        if let Some(b) = get("POP_RETIRE_BATCH").and_then(|v| v.parse().ok()) {
            self = self.with_retire_batch(b);
        }
        if let Some(b) = get("POP_RETIRE_BINS").and_then(|v| v.parse().ok()) {
            self = self.with_retire_bins(b);
        }
        if let Some(v) = get("POP_FUTEX_WAIT") {
            match v.as_str() {
                "0" | "false" | "off" => self.futex_wait = false,
                "1" | "true" | "on" => self.futex_wait = true,
                _ => {}
            }
        }
        if let Some(v) = get("POP_ADAPTIVE") {
            match v.as_str() {
                "0" | "false" | "off" => self.adaptive = false,
                "1" | "true" | "on" => self.adaptive = true,
                _ => {}
            }
        }
        if let Some(ms) = get("POP_PUBLISH_DEADLINE_MS").and_then(|v| v.parse::<u64>().ok()) {
            self.publish_deadline_ns = ms.saturating_mul(1_000_000);
        }
        if let Some(n) = get("POP_PRESSURE_SOFT").and_then(|v| v.parse().ok()) {
            self.pressure_soft = n;
        }
        if let Some(n) = get("POP_PRESSURE_HARD").and_then(|v| v.parse().ok()) {
            self.pressure_hard = n;
        }
        if let Some(n) = get("POP_PRESSURE_EMERGENCY").and_then(|v| v.parse().ok()) {
            self.pressure_emergency = n;
        }
        if let Some(n) = get("POP_FREE_POOL_CAP").and_then(|v| v.parse().ok()) {
            self.free_pool_cap = n;
        }
        if let Some(v) = get("POP_SLAB") {
            match v.as_str() {
                "0" | "false" | "off" => self.slab_alloc = false,
                "1" | "true" | "on" => self.slab_alloc = true,
                _ => {}
            }
        }
        // Applied last: an explicit signal/futex mode also pins the wait
        // flavor, overriding a conflicting POP_FUTEX_WAIT.
        if let Some(m) = get("POP_PUBLISH_MODE").and_then(|v| PublishMode::parse(&v)) {
            self = self.with_publish_mode(m);
        }
        self
    }

    /// Builder-style override of the retire-list threshold.
    pub fn with_reclaim_freq(mut self, f: usize) -> Self {
        self.reclaim_freq = f.max(1);
        self
    }

    /// Builder-style override of the epoch advance period.
    pub fn with_epoch_freq(mut self, f: usize) -> Self {
        self.epoch_freq = f.max(1);
        self
    }

    /// Builder-style override of the EpochPOP escalation multiplier.
    pub fn with_pop_c(mut self, c: usize) -> Self {
        self.pop_c = c.max(1);
        self
    }

    /// Builder-style override of the per-thread hazard slot count.
    pub fn with_slots(mut self, s: usize) -> Self {
        self.slots = s.max(1);
        self
    }

    /// Builder-style override of the publish-wait spin budget.
    pub fn with_publish_spin(mut self, spins: u32) -> Self {
        self.publish_spin = spins;
        self
    }

    /// Builder-style toggle for futex-parked publish waits.
    pub fn with_futex_wait(mut self, on: bool) -> Self {
        self.futex_wait = on;
        self
    }

    /// Builder-style override of the publish-wait watchdog deadline
    /// (nanoseconds of wall clock per reclamation pass; `0` disables the
    /// watchdog and restores unbounded waits).
    pub fn with_publish_deadline_ns(mut self, ns: u64) -> Self {
        self.publish_deadline_ns = ns;
        self
    }

    /// Builder-style toggle for the adaptive domain controller (epoch
    /// decay + bin auto-sizing). `false` pins every knob at its
    /// configured value — the static PR-4 behavior.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Builder-style override of the retirement-batch seal threshold
    /// (clamped to `1..=RETIRE_BATCH_CAP`).
    pub fn with_retire_batch(mut self, b: usize) -> Self {
        self.retire_batch = b.clamp(1, RETIRE_BATCH_CAP);
        self
    }

    /// Builder-style override of the arena-bin count (clamped to a power
    /// of two in `1..=MAX_RETIRE_BINS`; rounding is upward, so 3 → 4).
    pub fn with_retire_bins(mut self, b: usize) -> Self {
        self.retire_bins = normalize_bins(b);
        self
    }

    /// The seal threshold actually used by retire lists: the configured
    /// batch, never above `reclaim_freq` (a threshold the batch could
    /// otherwise straddle without ever triggering a pass).
    pub fn effective_batch(&self) -> usize {
        self.retire_batch
            .clamp(1, RETIRE_BATCH_CAP)
            .min(self.reclaim_freq.max(1))
    }

    /// The fill-bin count retire lists *start* with: a power of two (so
    /// bin routing is a shift + mask) in `1..=MAX_RETIRE_BINS`. With
    /// [`Self::adaptive_bins`] this is the initial value of a per-thread
    /// auto-sized count; otherwise it is fixed.
    pub fn effective_bins(&self) -> usize {
        normalize_bins(self.retire_bins)
    }

    /// Whether per-thread bin auto-sizing is live: the controller is on
    /// *and* binning itself is on (a configured single fill block is the
    /// legacy pipeline and stays exactly that).
    pub fn adaptive_bins(&self) -> bool {
        self.adaptive && self.effective_bins() > 1
    }

    /// Enables the quarantine use-after-free detector (tests only).
    pub fn with_quarantine(mut self) -> Self {
        self.quarantine = true;
        self
    }

    /// Builder-style override of the three pressure watermarks (in nodes
    /// of actionable unreclaimed backlog). `soft == 0` disables the gauge;
    /// the gauge normalizes `soft ≤ hard ≤ emergency` at construction.
    pub fn with_pressure_watermarks(mut self, soft: usize, hard: usize, emergency: usize) -> Self {
        self.pressure_soft = soft;
        self.pressure_hard = hard;
        self.pressure_emergency = emergency;
        self
    }

    /// Builder-style override of the recycled-block free-pool cap (in
    /// blocks; `0` = unbounded).
    pub fn with_free_pool_cap(mut self, cap: usize) -> Self {
        self.free_pool_cap = cap;
        self
    }

    /// Builder-style toggle for slab-backed node allocation (`false` =
    /// legacy `Box` allocation; see [`Self::slab_alloc`]).
    pub fn with_slab(mut self, on: bool) -> Self {
        self.slab_alloc = on;
        self
    }

    /// Builder-style override of the POP publish mode. An explicit
    /// [`PublishMode::Signal`] or [`PublishMode::Futex`] also aligns
    /// [`Self::futex_wait`] (they *are* the two wait flavors of the signal
    /// fan-out); `Auto`/`Membarrier` leave it alone — it flavors the
    /// fallback path when the membarrier probe fails.
    pub fn with_publish_mode(mut self, m: PublishMode) -> Self {
        self.publish_mode = m;
        match m {
            PublishMode::Signal => self.futex_wait = false,
            PublishMode::Futex => self.futex_wait = true,
            PublishMode::Auto | PublishMode::Membarrier => {}
        }
        self
    }

    /// Resolves [`Self::publish_mode`] against the host, never returning
    /// `Auto`: `Auto` and `Membarrier` become [`PublishMode::Membarrier`]
    /// exactly when the per-process `membarrier(2)` probe succeeds
    /// (`pop_runtime::membarrier::is_available`, which registers on first
    /// call), and otherwise downgrade to the signal fan-out in the flavor
    /// [`Self::futex_wait`] selects — the seccomp/container fallback.
    /// Domains call this once at construction; a barrier failing *mid-pass*
    /// later is handled by `PopShared`'s sticky per-domain downgrade.
    pub fn resolved_publish_mode(&self) -> PublishMode {
        let fan_out = if self.futex_wait {
            PublishMode::Futex
        } else {
            PublishMode::Signal
        };
        match self.publish_mode {
            PublishMode::Auto | PublishMode::Membarrier => {
                if pop_runtime::membarrier::is_available() {
                    PublishMode::Membarrier
                } else {
                    fan_out
                }
            }
            PublishMode::Signal | PublishMode::Futex => fan_out,
        }
    }

    /// The [`PressureGauge`] this configuration describes (how `DomainBase`
    /// seeds its stats).
    pub fn pressure_gauge(&self) -> PressureGauge {
        PressureGauge::new(
            self.pressure_soft,
            self.pressure_hard,
            self.pressure_emergency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SmrConfig::paper_defaults(4);
        assert_eq!(c.reclaim_freq, 24_576, "paper §5.0.1 retire threshold");
        assert_eq!(c.max_threads, 4);
        assert_eq!(c.publish_spin, DEFAULT_PUBLISH_SPIN);
        assert!(c.futex_wait, "futex parking is the default wait mode");
        assert!(!c.quarantine);
    }

    #[test]
    fn publish_wait_builders() {
        let c = SmrConfig::test_defaults(1)
            .with_publish_spin(0)
            .with_futex_wait(false);
        assert_eq!(c.publish_spin, 0, "zero-spin (park immediately) is legal");
        assert!(!c.futex_wait);
    }

    #[test]
    fn builders_clamp_to_one() {
        let c = SmrConfig::test_defaults(1)
            .with_reclaim_freq(0)
            .with_epoch_freq(0)
            .with_pop_c(0)
            .with_slots(0)
            .with_retire_batch(0);
        assert_eq!(c.reclaim_freq, 1);
        assert_eq!(c.epoch_freq, 1);
        assert_eq!(c.pop_c, 1);
        assert_eq!(c.slots, 1);
        assert_eq!(c.retire_batch, 1);
    }

    #[test]
    fn retire_bins_clamp_to_powers_of_two() {
        assert_eq!(SmrConfig::test_defaults(1).retire_bins, DEFAULT_RETIRE_BINS);
        let c = SmrConfig::test_defaults(1).with_retire_bins(0);
        assert_eq!(c.retire_bins, 1, "bins clamp up to one");
        let c = SmrConfig::test_defaults(1).with_retire_bins(3);
        assert_eq!(c.retire_bins, 4, "bins round up to a power of two");
        let c = SmrConfig::test_defaults(1).with_retire_bins(64);
        assert_eq!(c.retire_bins, MAX_RETIRE_BINS, "bins clamp to the max");
        assert_eq!(c.effective_bins(), MAX_RETIRE_BINS);
        // effective_bins also repairs a hand-set field.
        let mut c = SmrConfig::test_defaults(1);
        c.retire_bins = 5;
        assert_eq!(c.effective_bins(), 8);
    }

    #[test]
    fn env_overrides_drive_the_fallback_matrix() {
        let env = |k: &str| match k {
            "POP_RETIRE_BATCH" => Some("1".to_string()),
            "POP_RETIRE_BINS" => Some("1".to_string()),
            "POP_FUTEX_WAIT" => Some("off".to_string()),
            "POP_ADAPTIVE" => Some("0".to_string()),
            _ => None,
        };
        let c = SmrConfig::test_defaults(2).with_overrides_from(env);
        assert_eq!(c.retire_batch, 1);
        assert_eq!(c.retire_bins, 1);
        assert!(!c.futex_wait);
        assert!(!c.adaptive);
        // Unset / garbage values leave the defaults alone.
        let c = SmrConfig::test_defaults(2)
            .with_overrides_from(|k| (k == "POP_FUTEX_WAIT").then(|| "maybe".to_string()));
        assert_eq!(c.retire_batch, RETIRE_BATCH_CAP);
        assert_eq!(c.retire_bins, DEFAULT_RETIRE_BINS);
        assert!(c.futex_wait);
        assert!(c.adaptive, "controller is on by default");
    }

    #[test]
    fn publish_deadline_default_builder_and_env() {
        let c = SmrConfig::test_defaults(1);
        assert_eq!(c.publish_deadline_ns, DEFAULT_PUBLISH_DEADLINE_NS);
        let c = c.with_publish_deadline_ns(0);
        assert_eq!(c.publish_deadline_ns, 0, "zero (watchdog off) is legal");
        let c = SmrConfig::test_defaults(1)
            .with_overrides_from(|k| (k == "POP_PUBLISH_DEADLINE_MS").then(|| "50".to_string()));
        assert_eq!(c.publish_deadline_ns, 50_000_000, "env override is in ms");
        let c = SmrConfig::test_defaults(1)
            .with_overrides_from(|k| (k == "POP_PUBLISH_DEADLINE_MS").then(|| "fast".to_string()));
        assert_eq!(
            c.publish_deadline_ns, DEFAULT_PUBLISH_DEADLINE_NS,
            "garbage leaves the default alone"
        );
    }

    #[test]
    fn adaptive_bins_requires_both_switches() {
        let c = SmrConfig::test_defaults(1);
        assert!(c.adaptive_bins(), "default: adaptive on, bins > 1");
        assert!(!c.clone().with_adaptive(false).adaptive_bins());
        assert!(
            !c.with_retire_bins(1).adaptive_bins(),
            "a configured single fill block stays the legacy pipeline"
        );
    }

    #[test]
    fn pressure_defaults_builders_and_env() {
        let c = SmrConfig::test_defaults(1);
        assert_eq!(c.pressure_soft, 24_576 * PRESSURE_SOFT_FACTOR);
        assert_eq!(c.pressure_emergency, 24_576 * PRESSURE_EMERGENCY_FACTOR);
        assert_eq!(c.free_pool_cap, DEFAULT_FREE_POOL_CAP);
        assert!(c.pressure_gauge().enabled(), "gauge on by default");
        let c = c.with_pressure_watermarks(0, 0, 0);
        assert!(!c.pressure_gauge().enabled(), "soft 0 turns it off");
        let c = SmrConfig::test_defaults(1)
            .with_pressure_watermarks(10, 20, 40)
            .with_free_pool_cap(0);
        assert_eq!((c.pressure_soft, c.pressure_hard), (10, 20));
        assert_eq!(c.free_pool_cap, 0, "zero (unbounded pool) is legal");
        let c = SmrConfig::test_defaults(1).with_overrides_from(|k| match k {
            "POP_PRESSURE_SOFT" => Some("5".to_string()),
            "POP_PRESSURE_HARD" => Some("6".to_string()),
            "POP_PRESSURE_EMERGENCY" => Some("7".to_string()),
            "POP_FREE_POOL_CAP" => Some("2".to_string()),
            _ => None,
        });
        assert_eq!(
            (c.pressure_soft, c.pressure_hard, c.pressure_emergency),
            (5, 6, 7)
        );
        assert_eq!(c.free_pool_cap, 2);
        let c = SmrConfig::test_defaults(1)
            .with_overrides_from(|k| (k == "POP_PRESSURE_SOFT").then(|| "lots".to_string()));
        assert_eq!(
            c.pressure_soft,
            24_576 * PRESSURE_SOFT_FACTOR,
            "garbage leaves the default alone"
        );
    }

    #[test]
    fn slab_default_builder_and_env() {
        let c = SmrConfig::test_defaults(1);
        assert!(c.slab_alloc, "owned slabs are the default");
        assert!(!c.with_slab(false).slab_alloc);
        let c = SmrConfig::test_defaults(1)
            .with_overrides_from(|k| (k == "POP_SLAB").then(|| "off".to_string()));
        assert!(!c.slab_alloc, "POP_SLAB=off restores Box allocation");
        let c = SmrConfig::test_defaults(1)
            .with_slab(false)
            .with_overrides_from(|k| (k == "POP_SLAB").then(|| "1".to_string()));
        assert!(c.slab_alloc, "POP_SLAB=1 forces slabs back on");
        let c = SmrConfig::test_defaults(1)
            .with_overrides_from(|k| (k == "POP_SLAB").then(|| "sideways".to_string()));
        assert!(c.slab_alloc, "garbage leaves the default alone");
    }

    #[test]
    fn publish_mode_parse_vocabulary() {
        assert_eq!(PublishMode::parse("auto"), Some(PublishMode::Auto));
        assert_eq!(PublishMode::parse("signal"), Some(PublishMode::Signal));
        assert_eq!(PublishMode::parse("yield"), Some(PublishMode::Signal));
        assert_eq!(PublishMode::parse("FUTEX"), Some(PublishMode::Futex));
        assert_eq!(
            PublishMode::parse("Membarrier"),
            Some(PublishMode::Membarrier)
        );
        assert_eq!(PublishMode::parse("signals"), None);
    }

    #[test]
    fn publish_mode_builder_aligns_wait_flavor() {
        let c = SmrConfig::test_defaults(1);
        assert_eq!(c.publish_mode, PublishMode::Futex, "historical default");
        let c = c.with_publish_mode(PublishMode::Signal);
        assert!(!c.futex_wait, "explicit signal mode forces yield waits");
        let c = c.with_publish_mode(PublishMode::Futex);
        assert!(c.futex_wait, "explicit futex mode forces parked waits");
        let c = c
            .with_futex_wait(false)
            .with_publish_mode(PublishMode::Membarrier);
        assert!(!c.futex_wait, "membarrier mode leaves the fallback flavor");
    }

    #[test]
    fn publish_mode_env_override_wins_over_futex_wait() {
        let c = SmrConfig::test_defaults(2).with_overrides_from(|k| match k {
            "POP_FUTEX_WAIT" => Some("on".to_string()),
            "POP_PUBLISH_MODE" => Some("signal".to_string()),
            _ => None,
        });
        assert_eq!(c.publish_mode, PublishMode::Signal);
        assert!(!c.futex_wait, "mode is applied after the wait knob");
        let c = SmrConfig::test_defaults(2)
            .with_overrides_from(|k| (k == "POP_PUBLISH_MODE").then(|| "sideways".to_string()));
        assert_eq!(
            c.publish_mode,
            PublishMode::Futex,
            "garbage leaves the default alone"
        );
    }

    #[test]
    fn resolved_mode_never_says_auto_and_respects_the_host() {
        let avail = pop_runtime::membarrier::is_available();
        let auto = SmrConfig::test_defaults(1)
            .with_publish_mode(PublishMode::Auto)
            .resolved_publish_mode();
        let explicit = SmrConfig::test_defaults(1)
            .with_publish_mode(PublishMode::Membarrier)
            .resolved_publish_mode();
        if avail {
            assert_eq!(auto, PublishMode::Membarrier);
            assert_eq!(explicit, PublishMode::Membarrier);
        } else {
            assert_eq!(auto, PublishMode::Futex, "auto falls back to futex");
            assert_eq!(explicit, PublishMode::Futex);
        }
        assert_eq!(
            SmrConfig::test_defaults(1)
                .with_publish_mode(PublishMode::Signal)
                .resolved_publish_mode(),
            PublishMode::Signal
        );
        assert_eq!(
            SmrConfig::test_defaults(1).resolved_publish_mode(),
            PublishMode::Futex
        );
    }

    #[test]
    fn effective_batch_never_straddles_the_threshold() {
        let c = SmrConfig::test_defaults(1).with_reclaim_freq(4);
        assert_eq!(c.effective_batch(), 4, "batch shrinks to reclaim_freq");
        let c = SmrConfig::test_defaults(1).with_reclaim_freq(1 << 20);
        assert_eq!(c.effective_batch(), RETIRE_BATCH_CAP);
        let c = SmrConfig::test_defaults(1).with_retire_batch(RETIRE_BATCH_CAP * 8);
        assert_eq!(c.retire_batch, RETIRE_BATCH_CAP, "clamped to block cap");
    }
}
