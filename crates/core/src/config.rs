//! Reclamation-domain configuration.

use crate::header::RETIRE_BATCH_CAP;

/// Default publish-wait spin budget (the historical hard-coded
/// `SPIN_LIMIT`): roughly the cost of a few cache-miss round trips, enough
/// for a running peer's handler to publish before the waiter parks.
pub const DEFAULT_PUBLISH_SPIN: u32 = 128;

/// Tuning knobs shared by every reclamation scheme.
///
/// Field names follow the paper's pseudocode: `reclaim_freq` is the retire
/// list threshold that triggers a reclamation pass (Alg. 1 line 1),
/// `epoch_freq` the operations-per-epoch-advance period of the epoch-based
/// schemes (Alg. 3 line 1), and `pop_c` the multiplier `C` after which
/// EpochPOP escalates from epoch reclamation to publish-on-ping
/// (Alg. 3 line 26).
#[derive(Clone, Debug)]
pub struct SmrConfig {
    /// Number of domain-local thread ids (`tid` in `0..max_threads`).
    pub max_threads: usize,
    /// Hazard-slot count per thread (`MAX_HP`). Lists need 3, trees 4; the
    /// default leaves headroom for user structures.
    pub slots: usize,
    /// Retire-list length that triggers a reclamation event. The paper uses
    /// 24 576 for all schemes (§5.0.1).
    pub reclaim_freq: usize,
    /// Operations between global-epoch advances for EBR / EpochPOP / IBR.
    pub epoch_freq: usize,
    /// EpochPOP escalation multiplier `C`: after an epoch-mode reclaim pass,
    /// a retire list still longer than `pop_c * reclaim_freq` indicates a
    /// delayed thread and engages publish-on-ping.
    pub pop_c: usize,
    /// Retirement-batch seal threshold: `retire` fills a thread-private
    /// block and seals it into the retire list every `retire_batch` nodes,
    /// amortizing the stats update and the reclaim-threshold test. Clamped
    /// to `1..=RETIRE_BATCH_CAP` and never above `reclaim_freq` (so small
    /// thresholds still reclaim on time). `1` disables batching.
    pub retire_batch: usize,
    /// Spins a publish wait (`ping_all_and_wait`, NBR phase 2) burns before
    /// falling back to parking (`futex`) or yielding. Small values favor
    /// oversubscribed hosts; large values favor handlers that run within a
    /// cache-miss of the ping.
    pub publish_spin: u32,
    /// After the spin budget, park publish waits on a `futex(2)` keyed to
    /// the target's publish word (Linux; elsewhere this knob is ignored and
    /// waits `yield_now`). `false` forces the portable yield path.
    pub futex_wait: bool,
    /// Testing mode: freed nodes are poisoned and quarantined instead of
    /// deallocated, turning any use-after-free into a deterministic panic
    /// inside `protect`.
    pub quarantine: bool,
}

impl SmrConfig {
    /// Paper-faithful defaults for `n` threads.
    pub fn for_threads(n: usize) -> Self {
        SmrConfig {
            max_threads: n,
            slots: 8,
            reclaim_freq: 24_576,
            epoch_freq: 64,
            pop_c: 2,
            retire_batch: RETIRE_BATCH_CAP,
            publish_spin: DEFAULT_PUBLISH_SPIN,
            futex_wait: true,
            quarantine: false,
        }
    }

    /// Small thresholds that force frequent reclamation; intended for tests
    /// so every code path (ping, publish, scan, free) runs within a few
    /// hundred operations.
    pub fn for_tests(n: usize) -> Self {
        SmrConfig {
            max_threads: n,
            slots: 8,
            reclaim_freq: 64,
            epoch_freq: 4,
            pop_c: 2,
            retire_batch: RETIRE_BATCH_CAP,
            publish_spin: DEFAULT_PUBLISH_SPIN,
            futex_wait: true,
            quarantine: false,
        }
    }

    /// Builder-style override of the retire-list threshold.
    pub fn with_reclaim_freq(mut self, f: usize) -> Self {
        self.reclaim_freq = f.max(1);
        self
    }

    /// Builder-style override of the epoch advance period.
    pub fn with_epoch_freq(mut self, f: usize) -> Self {
        self.epoch_freq = f.max(1);
        self
    }

    /// Builder-style override of the EpochPOP escalation multiplier.
    pub fn with_pop_c(mut self, c: usize) -> Self {
        self.pop_c = c.max(1);
        self
    }

    /// Builder-style override of the per-thread hazard slot count.
    pub fn with_slots(mut self, s: usize) -> Self {
        self.slots = s.max(1);
        self
    }

    /// Builder-style override of the publish-wait spin budget.
    pub fn with_publish_spin(mut self, spins: u32) -> Self {
        self.publish_spin = spins;
        self
    }

    /// Builder-style toggle for futex-parked publish waits.
    pub fn with_futex_wait(mut self, on: bool) -> Self {
        self.futex_wait = on;
        self
    }

    /// Builder-style override of the retirement-batch seal threshold
    /// (clamped to `1..=RETIRE_BATCH_CAP`).
    pub fn with_retire_batch(mut self, b: usize) -> Self {
        self.retire_batch = b.clamp(1, RETIRE_BATCH_CAP);
        self
    }

    /// The seal threshold actually used by retire lists: the configured
    /// batch, never above `reclaim_freq` (a threshold the batch could
    /// otherwise straddle without ever triggering a pass).
    pub fn effective_batch(&self) -> usize {
        self.retire_batch
            .clamp(1, RETIRE_BATCH_CAP)
            .min(self.reclaim_freq.max(1))
    }

    /// Enables the quarantine use-after-free detector (tests only).
    pub fn with_quarantine(mut self) -> Self {
        self.quarantine = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SmrConfig::for_threads(4);
        assert_eq!(c.reclaim_freq, 24_576, "paper §5.0.1 retire threshold");
        assert_eq!(c.max_threads, 4);
        assert_eq!(c.publish_spin, DEFAULT_PUBLISH_SPIN);
        assert!(c.futex_wait, "futex parking is the default wait mode");
        assert!(!c.quarantine);
    }

    #[test]
    fn publish_wait_builders() {
        let c = SmrConfig::for_tests(1)
            .with_publish_spin(0)
            .with_futex_wait(false);
        assert_eq!(c.publish_spin, 0, "zero-spin (park immediately) is legal");
        assert!(!c.futex_wait);
    }

    #[test]
    fn builders_clamp_to_one() {
        let c = SmrConfig::for_tests(1)
            .with_reclaim_freq(0)
            .with_epoch_freq(0)
            .with_pop_c(0)
            .with_slots(0)
            .with_retire_batch(0);
        assert_eq!(c.reclaim_freq, 1);
        assert_eq!(c.epoch_freq, 1);
        assert_eq!(c.pop_c, 1);
        assert_eq!(c.slots, 1);
        assert_eq!(c.retire_batch, 1);
    }

    #[test]
    fn effective_batch_never_straddles_the_threshold() {
        let c = SmrConfig::for_tests(1).with_reclaim_freq(4);
        assert_eq!(c.effective_batch(), 4, "batch shrinks to reclaim_freq");
        let c = SmrConfig::for_tests(1).with_reclaim_freq(1 << 20);
        assert_eq!(c.effective_batch(), RETIRE_BATCH_CAP);
        let c = SmrConfig::for_tests(1).with_retire_batch(RETIRE_BATCH_CAP * 8);
        assert_eq!(c.retire_batch, RETIRE_BATCH_CAP, "clamped to block cap");
    }
}
