//! Per-domain instrumentation counters, **sharded per thread**.
//!
//! The paper's evaluation reports, besides throughput: *max retire-list
//! size* (Figs 1–4), *max resident memory* and *total unreclaimed nodes*
//! (Figs 5–11). These counters feed all three: live bytes are sampled by
//! the workload runner for the resident-memory high-water mark, and
//! `retired - freed` at the end of a run is the unreclaimed-node count.
//!
//! ## Sharding model
//!
//! Every reclamation scheme counts events on its *hot* paths — `retire`
//! and `note_alloc` run once per update operation. A single shared counter
//! block would make every worker thread in every scheme bounce the same
//! cache lines on every operation, drowning the very effects (one relaxed
//! store per read, no fence) the schemes are measured for. Instead,
//! [`DomainStats`] holds one [`ShardStats`] block per domain thread id,
//! each padded to its own cache line (pair):
//!
//! * **Writers** increment only `shard(tid)` — an uncontended RMW on a
//!   line owned by that thread. The shard a counter lands on is whichever
//!   thread *performed the event*: a reclaimer freeing another thread's
//!   garbage counts the free on its own shard. Totals are what matter.
//! * **Readers** ([`DomainStats::snapshot`], [`DomainStats::live_bytes`],
//!   …) aggregate lazily by summing the shards at read time. Aggregation
//!   is O(threads) and runs only on sampling/reporting paths.
//! * **One overflow shard** (index `max_threads`) serves contexts with no
//!   registered tid — domain teardown accounting in `DomainBase::drop` and
//!   any future signal-handler counting that cannot name a tid.
//!
//! All increments are `Relaxed`: the counters are monotonic event tallies
//! whose exact interleaving is irrelevant. Aggregated differences
//! (`retired - freed`, `allocated - freed`) use saturating subtraction:
//! a racing reader may observe a free (counted on the reclaimer's shard)
//! before the matching retire (counted earlier on another shard it has
//! already read), transiently seeing `freed > retired`.

use core::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::pressure::PressureGauge;

/// One thread's private counter block (a single cache line pair).
#[derive(Default)]
pub struct ShardStats {
    /// Nodes allocated through [`crate::smr::Smr::note_alloc`].
    pub allocated_nodes: AtomicU64,
    /// Bytes allocated.
    pub allocated_bytes: AtomicU64,
    /// Nodes whose deallocation function ran (or that entered quarantine).
    pub freed_nodes: AtomicU64,
    /// Bytes freed.
    pub freed_bytes: AtomicU64,
    /// Nodes passed to `retire`. Counted once per sealed batch (one RMW
    /// per `retire_batch` nodes), so a thread's in-progress fill block is
    /// not yet included; every seal point (threshold, flush, unregister)
    /// brings the total exact.
    pub retired_nodes: AtomicU64,
    /// Retirement batches sealed into retire lists.
    pub batches_sealed: AtomicU64,
    /// Sealed blocks whose slots were address-monotone (ascending or
    /// descending pointers) at seal time — the blocks the merge-join
    /// sweep orders for free. The arena-binned fill path exists to push
    /// this toward `batches_sealed`.
    pub blocks_sealed_monotone: AtomicU64,
    /// Sealed blocks whose slots were *birth-era*-monotone at seal time —
    /// the blocks `free_era_unreserved` (HE / IBR-family sweeps)
    /// merge-joins on their first sweep without paying a sort.
    pub blocks_sealed_era_monotone: AtomicU64,
    /// Adaptive-controller events: epoch-cadence decay deepened one step
    /// (a barren pass on an already-quiet domain).
    pub epoch_decay_steps: AtomicU64,
    /// Adaptive-controller events: a thread resized its fill-bin count
    /// (grow on a low monotone share, collapse probe on a high one).
    pub bin_resizes: AtomicU64,
    /// Sealed blocks freed whole by the sweep fast path (every member
    /// failed the keep predicate).
    pub blocks_freed_whole: AtomicU64,
    /// Sealed blocks retained whole by the sweep fast path (every member
    /// survived; no records moved).
    pub blocks_kept_whole: AtomicU64,
    /// Orphaned nodes adopted from the domain list at registration.
    pub orphans_adopted: AtomicU64,
    /// Orphaned nodes stolen by reclaimer passes (sweep-time adoption,
    /// which drains orphans even on static thread memberships).
    pub orphans_stolen: AtomicU64,
    /// Signals sent by reclaimers (`pingAllToPublish`).
    pub pings_sent: AtomicU64,
    /// Pings elided because the target was provably quiescent with empty
    /// published reservations (the quiescent-thread filter).
    pub pings_skipped: AtomicU64,
    /// Pings elided by the *adaptive* filter: the target had been observed
    /// quiescent for so many consecutive passes that even its slot scan
    /// was skipped (one streak-word load instead).
    pub pings_elided_adaptive: AtomicU64,
    /// Publisher executions (signal handler or self-publish).
    pub publishes: AtomicU64,
    /// Epoch-mode reclamation passes (EBR / EpochPOP fast path).
    pub epoch_passes: AtomicU64,
    /// Publish-on-ping reclamation passes (HazardPtrPOP / escalations).
    pub pop_passes: AtomicU64,
    /// Operation restarts forced by neutralization (NBR).
    pub restarts: AtomicU64,
    /// High-water mark of this thread's retire-list length.
    pub max_retire_len: AtomicU64,
    /// Asymmetric heavy barriers executed via `membarrier(2)` (both the
    /// `HPAsym` baseline and the POP membarrier publish mode land here —
    /// the one counting site is `PopShared::heavy_membarrier`).
    pub membarriers: AtomicU64,
    /// POP reclamation passes whose entire signal fan-out was replaced by
    /// one membarrier heavy barrier (`PublishMode::Membarrier` fast path).
    pub membarrier_passes: AtomicU64,
    /// Per-peer signals a membarrier pass would otherwise have had to
    /// send: the registered-peer count of each membarrier pass, summed.
    /// The membarrier-mode analogue of `pings_skipped` — under this mode
    /// the fan-out is elided *whole*, so the per-peer skip/elide counters
    /// stay untouched and this one carries the savings.
    pub signals_avoided: AtomicU64,
    /// Publish waits abandoned by the watchdog: the deadline expired with
    /// at least one pinged peer unpublished, and the pass completed on
    /// conservative re-snapshots instead.
    pub publish_wait_timeouts: AtomicU64,
    /// Pings whose send failed outright (target dead or `pthread_kill`
    /// errored) — the peer was skipped, never waited on.
    pub pings_failed: AtomicU64,
    /// Dead participants reaped: registration slot recovered and their
    /// pending retirements orphaned for adoption.
    pub participants_reaped: AtomicU64,
    /// Faults injected on this domain's publish paths (the `PublishDelay`
    /// site; always 0 without the `fault-injection` feature).
    pub faults_injected: AtomicU64,
    /// Upward crossings of the soft pressure watermark
    /// ([`crate::pressure::PressureRung::Soft`]).
    pub pressure_soft_trips: AtomicU64,
    /// Upward crossings of the hard pressure watermark.
    pub pressure_hard_trips: AtomicU64,
    /// Upward crossings of the emergency pressure watermark.
    pub pressure_emergency_trips: AtomicU64,
    /// Sealed blocks moved into the stalled-reader quarantine (provably
    /// pinned only by a known-stalled participant).
    pub blocks_quarantined: AtomicU64,
    /// Quarantined blocks released back into a retire list (their blocker
    /// advanced, went quiescent, or was reaped).
    pub blocks_unquarantined: AtomicU64,
    /// Recycled retire-batch boxes returned to the allocator by free-pool
    /// trimming (the [`crate::config::SmrConfig::free_pool_cap`] cap, or
    /// pressure-driven trims to zero).
    pub pool_blocks_trimmed: AtomicU64,
    /// Nodes placed in owned slab slots by [`crate::smr::alloc_node`]
    /// (Box-backed allocations — oversized types, `POP_SLAB=0` — are the
    /// difference to `allocated_nodes`).
    pub slab_allocs: AtomicU64,
    /// Sealed blocks freed whole whose members all lived in one slab —
    /// settlement was a single range test against the slab base, the
    /// owned-arena fast path the slab allocator exists to maximize.
    pub slab_frees_whole: AtomicU64,
    /// Operations restarted by VBR because the announced version lagged the
    /// domain version past the tolerance window (the scheme's substitute
    /// for per-node sweeps: the reader re-announces and retries).
    pub version_aborts: AtomicU64,
}

impl ShardStats {
    /// Records a retire-list length observation (reclamation events only,
    /// so the `fetch_max` stays off the per-operation path).
    pub fn observe_retire_len(&self, len: usize) {
        self.max_retire_len.fetch_max(len as u64, Ordering::Relaxed);
    }
}

/// Event counters for one reclamation domain, sharded per thread, plus
/// the domain's [`PressureGauge`] (a point-in-time level, not an event
/// tally, so it lives beside the shards rather than inside them).
pub struct DomainStats {
    /// `max_threads` per-tid shards plus one trailing overflow shard.
    shards: Box<[CachePadded<ShardStats>]>,
    /// The domain's memory-pressure gauge (disabled unless constructed
    /// with [`DomainStats::with_pressure`]).
    pressure: PressureGauge,
}

impl DomainStats {
    /// Creates counters for a domain of `max_threads` participants, with
    /// a disabled pressure gauge (standalone/diagnostic use).
    pub fn new(max_threads: usize) -> Self {
        Self::with_pressure(max_threads, PressureGauge::disabled())
    }

    /// Creates counters for a domain of `max_threads` participants with
    /// the given pressure gauge (how `DomainBase` builds its stats from
    /// the [`crate::config::SmrConfig`] watermarks).
    pub fn with_pressure(max_threads: usize, pressure: PressureGauge) -> Self {
        let mut shards = Vec::with_capacity(max_threads + 1);
        shards.resize_with(max_threads + 1, CachePadded::default);
        DomainStats {
            shards: shards.into_boxed_slice(),
            pressure,
        }
    }

    /// The domain's memory-pressure gauge.
    #[inline]
    pub fn pressure(&self) -> &PressureGauge {
        &self.pressure
    }

    /// The counter block owned by domain thread `tid`.
    ///
    /// Hot paths write here and nowhere else; `tid` must be a valid domain
    /// thread id (callers already hold one for every counting operation).
    #[inline(always)]
    pub fn shard(&self, tid: usize) -> &ShardStats {
        debug_assert!(
            tid < self.shards.len() - 1,
            "tid {tid} out of range for {} stat shards",
            self.shards.len() - 1
        );
        &self.shards[tid]
    }

    /// The overflow block for contexts without a registered tid (domain
    /// teardown, diagnostics).
    #[inline]
    pub fn overflow(&self) -> &ShardStats {
        &self.shards[self.shards.len() - 1]
    }

    fn sum(&self, f: impl Fn(&ShardStats) -> u64) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(f(s)))
    }

    /// Nodes currently allocated and not yet freed (live + retired).
    pub fn live_nodes(&self) -> u64 {
        self.sum(|s| s.allocated_nodes.load(Ordering::Relaxed))
            .saturating_sub(self.sum(|s| s.freed_nodes.load(Ordering::Relaxed)))
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> u64 {
        self.sum(|s| s.allocated_bytes.load(Ordering::Relaxed))
            .saturating_sub(self.sum(|s| s.freed_bytes.load(Ordering::Relaxed)))
    }

    /// Nodes retired but not yet freed — the paper's "unreclaimed garbage".
    pub fn unreclaimed_nodes(&self) -> u64 {
        self.sum(|s| s.retired_nodes.load(Ordering::Relaxed))
            .saturating_sub(self.sum(|s| s.freed_nodes.load(Ordering::Relaxed)))
    }

    /// Point-in-time aggregate of every counter across all shards.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        for s in self.shards.iter() {
            out.allocated_nodes = out
                .allocated_nodes
                .wrapping_add(s.allocated_nodes.load(Ordering::Relaxed));
            out.allocated_bytes = out
                .allocated_bytes
                .wrapping_add(s.allocated_bytes.load(Ordering::Relaxed));
            out.freed_nodes = out
                .freed_nodes
                .wrapping_add(s.freed_nodes.load(Ordering::Relaxed));
            out.freed_bytes = out
                .freed_bytes
                .wrapping_add(s.freed_bytes.load(Ordering::Relaxed));
            out.retired_nodes = out
                .retired_nodes
                .wrapping_add(s.retired_nodes.load(Ordering::Relaxed));
            out.batches_sealed = out
                .batches_sealed
                .wrapping_add(s.batches_sealed.load(Ordering::Relaxed));
            out.blocks_sealed_monotone = out
                .blocks_sealed_monotone
                .wrapping_add(s.blocks_sealed_monotone.load(Ordering::Relaxed));
            out.blocks_sealed_era_monotone = out
                .blocks_sealed_era_monotone
                .wrapping_add(s.blocks_sealed_era_monotone.load(Ordering::Relaxed));
            out.epoch_decay_steps = out
                .epoch_decay_steps
                .wrapping_add(s.epoch_decay_steps.load(Ordering::Relaxed));
            out.bin_resizes = out
                .bin_resizes
                .wrapping_add(s.bin_resizes.load(Ordering::Relaxed));
            out.blocks_freed_whole = out
                .blocks_freed_whole
                .wrapping_add(s.blocks_freed_whole.load(Ordering::Relaxed));
            out.blocks_kept_whole = out
                .blocks_kept_whole
                .wrapping_add(s.blocks_kept_whole.load(Ordering::Relaxed));
            out.orphans_adopted = out
                .orphans_adopted
                .wrapping_add(s.orphans_adopted.load(Ordering::Relaxed));
            out.orphans_stolen = out
                .orphans_stolen
                .wrapping_add(s.orphans_stolen.load(Ordering::Relaxed));
            out.pings_sent = out
                .pings_sent
                .wrapping_add(s.pings_sent.load(Ordering::Relaxed));
            out.pings_skipped = out
                .pings_skipped
                .wrapping_add(s.pings_skipped.load(Ordering::Relaxed));
            out.pings_elided_adaptive = out
                .pings_elided_adaptive
                .wrapping_add(s.pings_elided_adaptive.load(Ordering::Relaxed));
            out.publishes = out
                .publishes
                .wrapping_add(s.publishes.load(Ordering::Relaxed));
            out.epoch_passes = out
                .epoch_passes
                .wrapping_add(s.epoch_passes.load(Ordering::Relaxed));
            out.pop_passes = out
                .pop_passes
                .wrapping_add(s.pop_passes.load(Ordering::Relaxed));
            out.restarts = out
                .restarts
                .wrapping_add(s.restarts.load(Ordering::Relaxed));
            out.max_retire_len = out
                .max_retire_len
                .max(s.max_retire_len.load(Ordering::Relaxed));
            out.membarriers = out
                .membarriers
                .wrapping_add(s.membarriers.load(Ordering::Relaxed));
            out.membarrier_passes = out
                .membarrier_passes
                .wrapping_add(s.membarrier_passes.load(Ordering::Relaxed));
            out.signals_avoided = out
                .signals_avoided
                .wrapping_add(s.signals_avoided.load(Ordering::Relaxed));
            out.publish_wait_timeouts = out
                .publish_wait_timeouts
                .wrapping_add(s.publish_wait_timeouts.load(Ordering::Relaxed));
            out.pings_failed = out
                .pings_failed
                .wrapping_add(s.pings_failed.load(Ordering::Relaxed));
            out.participants_reaped = out
                .participants_reaped
                .wrapping_add(s.participants_reaped.load(Ordering::Relaxed));
            out.faults_injected = out
                .faults_injected
                .wrapping_add(s.faults_injected.load(Ordering::Relaxed));
            out.pressure_soft_trips = out
                .pressure_soft_trips
                .wrapping_add(s.pressure_soft_trips.load(Ordering::Relaxed));
            out.pressure_hard_trips = out
                .pressure_hard_trips
                .wrapping_add(s.pressure_hard_trips.load(Ordering::Relaxed));
            out.pressure_emergency_trips = out
                .pressure_emergency_trips
                .wrapping_add(s.pressure_emergency_trips.load(Ordering::Relaxed));
            out.blocks_quarantined = out
                .blocks_quarantined
                .wrapping_add(s.blocks_quarantined.load(Ordering::Relaxed));
            out.blocks_unquarantined = out
                .blocks_unquarantined
                .wrapping_add(s.blocks_unquarantined.load(Ordering::Relaxed));
            out.pool_blocks_trimmed = out
                .pool_blocks_trimmed
                .wrapping_add(s.pool_blocks_trimmed.load(Ordering::Relaxed));
            out.slab_allocs = out
                .slab_allocs
                .wrapping_add(s.slab_allocs.load(Ordering::Relaxed));
            out.slab_frees_whole = out
                .slab_frees_whole
                .wrapping_add(s.slab_frees_whole.load(Ordering::Relaxed));
            out.version_aborts = out
                .version_aborts
                .wrapping_add(s.version_aborts.load(Ordering::Relaxed));
        }
        out.slab_released_bytes = crate::slab::released_bytes();
        out
    }
}

/// Plain-data aggregate of [`DomainStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`ShardStats::allocated_nodes`].
    pub allocated_nodes: u64,
    /// See [`ShardStats::allocated_bytes`].
    pub allocated_bytes: u64,
    /// See [`ShardStats::freed_nodes`].
    pub freed_nodes: u64,
    /// See [`ShardStats::freed_bytes`].
    pub freed_bytes: u64,
    /// See [`ShardStats::retired_nodes`].
    pub retired_nodes: u64,
    /// See [`ShardStats::batches_sealed`].
    pub batches_sealed: u64,
    /// See [`ShardStats::blocks_sealed_monotone`].
    pub blocks_sealed_monotone: u64,
    /// See [`ShardStats::blocks_sealed_era_monotone`].
    pub blocks_sealed_era_monotone: u64,
    /// See [`ShardStats::epoch_decay_steps`].
    pub epoch_decay_steps: u64,
    /// See [`ShardStats::bin_resizes`].
    pub bin_resizes: u64,
    /// See [`ShardStats::blocks_freed_whole`].
    pub blocks_freed_whole: u64,
    /// See [`ShardStats::blocks_kept_whole`].
    pub blocks_kept_whole: u64,
    /// See [`ShardStats::orphans_adopted`].
    pub orphans_adopted: u64,
    /// See [`ShardStats::orphans_stolen`].
    pub orphans_stolen: u64,
    /// See [`ShardStats::pings_sent`].
    pub pings_sent: u64,
    /// See [`ShardStats::pings_skipped`].
    pub pings_skipped: u64,
    /// See [`ShardStats::pings_elided_adaptive`].
    pub pings_elided_adaptive: u64,
    /// See [`ShardStats::publishes`].
    pub publishes: u64,
    /// See [`ShardStats::epoch_passes`].
    pub epoch_passes: u64,
    /// See [`ShardStats::pop_passes`].
    pub pop_passes: u64,
    /// See [`ShardStats::restarts`].
    pub restarts: u64,
    /// Maximum over all shards of [`ShardStats::max_retire_len`].
    pub max_retire_len: u64,
    /// See [`ShardStats::membarriers`].
    pub membarriers: u64,
    /// See [`ShardStats::membarrier_passes`].
    pub membarrier_passes: u64,
    /// See [`ShardStats::signals_avoided`].
    pub signals_avoided: u64,
    /// See [`ShardStats::publish_wait_timeouts`].
    pub publish_wait_timeouts: u64,
    /// See [`ShardStats::pings_failed`].
    pub pings_failed: u64,
    /// See [`ShardStats::participants_reaped`].
    pub participants_reaped: u64,
    /// See [`ShardStats::faults_injected`].
    pub faults_injected: u64,
    /// See [`ShardStats::pressure_soft_trips`].
    pub pressure_soft_trips: u64,
    /// See [`ShardStats::pressure_hard_trips`].
    pub pressure_hard_trips: u64,
    /// See [`ShardStats::pressure_emergency_trips`].
    pub pressure_emergency_trips: u64,
    /// See [`ShardStats::blocks_quarantined`].
    pub blocks_quarantined: u64,
    /// See [`ShardStats::blocks_unquarantined`].
    pub blocks_unquarantined: u64,
    /// See [`ShardStats::pool_blocks_trimmed`].
    pub pool_blocks_trimmed: u64,
    /// See [`ShardStats::slab_allocs`].
    pub slab_allocs: u64,
    /// See [`ShardStats::slab_frees_whole`].
    pub slab_frees_whole: u64,
    /// See [`ShardStats::version_aborts`].
    pub version_aborts: u64,
    /// **Process-wide** bytes the slab allocator has handed back to the OS
    /// (`madvise(MADV_DONTNEED)` on fully-empty slabs) — sampled from
    /// [`crate::slab::released_bytes`] at snapshot time. Unlike the other
    /// fields this is a global gauge shared by every domain in the process,
    /// not a per-domain tally.
    pub slab_released_bytes: u64,
}

impl StatsSnapshot {
    /// Unreclaimed garbage in this snapshot.
    pub fn unreclaimed_nodes(&self) -> u64 {
        self.retired_nodes.saturating_sub(self.freed_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_accounting_aggregates_across_shards() {
        let s = DomainStats::new(2);
        s.shard(0).allocated_nodes.fetch_add(10, Ordering::Relaxed);
        s.shard(0).allocated_bytes.fetch_add(640, Ordering::Relaxed);
        // Frees land on a different shard (reclaimer ≠ allocator).
        s.shard(1).freed_nodes.fetch_add(4, Ordering::Relaxed);
        s.shard(1).freed_bytes.fetch_add(256, Ordering::Relaxed);
        assert_eq!(s.live_nodes(), 6);
        assert_eq!(s.live_bytes(), 384);
    }

    #[test]
    fn unreclaimed_saturates() {
        let s = DomainStats::new(1);
        s.shard(0).freed_nodes.fetch_add(3, Ordering::Relaxed);
        assert_eq!(s.unreclaimed_nodes(), 0, "must not underflow");
    }

    #[test]
    fn retire_len_high_water_is_max_over_shards() {
        let s = DomainStats::new(2);
        s.shard(0).observe_retire_len(5);
        s.shard(1).observe_retire_len(17);
        s.shard(0).observe_retire_len(9);
        assert_eq!(s.snapshot().max_retire_len, 17);
    }

    #[test]
    fn overflow_shard_counts_toward_totals() {
        let s = DomainStats::new(1);
        s.shard(0).retired_nodes.fetch_add(2, Ordering::Relaxed);
        s.overflow().freed_nodes.fetch_add(1, Ordering::Relaxed);
        assert_eq!(s.snapshot().freed_nodes, 1);
        assert_eq!(s.unreclaimed_nodes(), 1);
    }

    #[test]
    fn robustness_counters_aggregate_across_shards() {
        let s = DomainStats::new(2);
        s.shard(0)
            .publish_wait_timeouts
            .fetch_add(2, Ordering::Relaxed);
        s.shard(1).pings_failed.fetch_add(3, Ordering::Relaxed);
        s.overflow()
            .participants_reaped
            .fetch_add(1, Ordering::Relaxed);
        s.shard(0).faults_injected.fetch_add(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.publish_wait_timeouts, 2);
        assert_eq!(snap.pings_failed, 3);
        assert_eq!(snap.participants_reaped, 1);
        assert_eq!(snap.faults_injected, 5);
    }

    #[test]
    fn pressure_counters_aggregate_across_shards() {
        let s = DomainStats::new(2);
        s.shard(0)
            .pressure_soft_trips
            .fetch_add(1, Ordering::Relaxed);
        s.shard(1)
            .pressure_hard_trips
            .fetch_add(2, Ordering::Relaxed);
        s.overflow()
            .pressure_emergency_trips
            .fetch_add(3, Ordering::Relaxed);
        s.shard(0)
            .blocks_quarantined
            .fetch_add(4, Ordering::Relaxed);
        s.shard(1)
            .blocks_unquarantined
            .fetch_add(5, Ordering::Relaxed);
        s.overflow()
            .pool_blocks_trimmed
            .fetch_add(6, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.pressure_soft_trips, 1);
        assert_eq!(snap.pressure_hard_trips, 2);
        assert_eq!(snap.pressure_emergency_trips, 3);
        assert_eq!(snap.blocks_quarantined, 4);
        assert_eq!(snap.blocks_unquarantined, 5);
        assert_eq!(snap.pool_blocks_trimmed, 6);
    }

    #[test]
    fn slab_and_version_counters_aggregate_across_shards() {
        let s = DomainStats::new(2);
        s.shard(0).slab_allocs.fetch_add(7, Ordering::Relaxed);
        s.shard(1).slab_frees_whole.fetch_add(2, Ordering::Relaxed);
        s.overflow().version_aborts.fetch_add(3, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.slab_allocs, 7);
        assert_eq!(snap.slab_frees_whole, 2);
        assert_eq!(snap.version_aborts, 3);
    }

    #[test]
    fn default_stats_carry_a_disabled_gauge() {
        let s = DomainStats::new(1);
        assert!(!s.pressure().enabled());
        s.pressure().on_retired(1 << 20);
        assert_eq!(
            s.pressure().rung(),
            crate::pressure::PressureRung::Normal,
            "disabled gauge never escalates"
        );
    }

    #[test]
    fn shards_do_not_share_cache_lines() {
        let s = DomainStats::new(4);
        let a = s.shard(0) as *const _ as usize;
        let b = s.shard(1) as *const _ as usize;
        assert!(b - a >= 64, "adjacent shards must be on distinct lines");
    }
}
