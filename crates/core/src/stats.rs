//! Per-domain instrumentation counters.
//!
//! The paper's evaluation reports, besides throughput: *max retire-list
//! size* (Figs 1–4), *max resident memory* and *total unreclaimed nodes*
//! (Figs 5–11). These counters feed all three: live bytes are sampled by
//! the workload runner for the resident-memory high-water mark, and
//! `retired - freed` at the end of a run is the unreclaimed-node count.
//!
//! All increments are `Relaxed`: the counters are monotonic event tallies
//! whose exact interleaving is irrelevant, and the hot-path cost must stay
//! at one uncontended cache line per thread-local event.

use core::sync::atomic::{AtomicU64, Ordering};

/// Event counters for one reclamation domain.
#[derive(Default)]
pub struct DomainStats {
    /// Nodes allocated through [`crate::smr::Smr::note_alloc`].
    pub allocated_nodes: AtomicU64,
    /// Bytes allocated.
    pub allocated_bytes: AtomicU64,
    /// Nodes whose deallocation function ran (or that entered quarantine).
    pub freed_nodes: AtomicU64,
    /// Bytes freed.
    pub freed_bytes: AtomicU64,
    /// Nodes passed to `retire`.
    pub retired_nodes: AtomicU64,
    /// Signals sent by reclaimers (`pingAllToPublish`).
    pub pings_sent: AtomicU64,
    /// Publisher executions (signal handler or self-publish).
    pub publishes: AtomicU64,
    /// Epoch-mode reclamation passes (EBR / EpochPOP fast path).
    pub epoch_passes: AtomicU64,
    /// Publish-on-ping reclamation passes (HazardPtrPOP / escalations).
    pub pop_passes: AtomicU64,
    /// Operation restarts forced by neutralization (NBR).
    pub restarts: AtomicU64,
    /// High-water mark of any thread's retire-list length.
    pub max_retire_len: AtomicU64,
    /// Asymmetric heavy barriers executed via `membarrier(2)`.
    pub membarriers: AtomicU64,
}

impl DomainStats {
    /// Nodes currently allocated and not yet freed (live + retired).
    pub fn live_nodes(&self) -> u64 {
        self.allocated_nodes
            .load(Ordering::Relaxed)
            .saturating_sub(self.freed_nodes.load(Ordering::Relaxed))
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes
            .load(Ordering::Relaxed)
            .saturating_sub(self.freed_bytes.load(Ordering::Relaxed))
    }

    /// Nodes retired but not yet freed — the paper's "unreclaimed garbage".
    pub fn unreclaimed_nodes(&self) -> u64 {
        self.retired_nodes
            .load(Ordering::Relaxed)
            .saturating_sub(self.freed_nodes.load(Ordering::Relaxed))
    }

    /// Records a retire-list length observation (reclamation events only,
    /// so the `fetch_max` stays off the per-operation path).
    pub fn observe_retire_len(&self, len: usize) {
        self.max_retire_len.fetch_max(len as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            allocated_nodes: self.allocated_nodes.load(Ordering::Relaxed),
            allocated_bytes: self.allocated_bytes.load(Ordering::Relaxed),
            freed_nodes: self.freed_nodes.load(Ordering::Relaxed),
            freed_bytes: self.freed_bytes.load(Ordering::Relaxed),
            retired_nodes: self.retired_nodes.load(Ordering::Relaxed),
            pings_sent: self.pings_sent.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            epoch_passes: self.epoch_passes.load(Ordering::Relaxed),
            pop_passes: self.pop_passes.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            max_retire_len: self.max_retire_len.load(Ordering::Relaxed),
            membarriers: self.membarriers.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`DomainStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`DomainStats::allocated_nodes`].
    pub allocated_nodes: u64,
    /// See [`DomainStats::allocated_bytes`].
    pub allocated_bytes: u64,
    /// See [`DomainStats::freed_nodes`].
    pub freed_nodes: u64,
    /// See [`DomainStats::freed_bytes`].
    pub freed_bytes: u64,
    /// See [`DomainStats::retired_nodes`].
    pub retired_nodes: u64,
    /// See [`DomainStats::pings_sent`].
    pub pings_sent: u64,
    /// See [`DomainStats::publishes`].
    pub publishes: u64,
    /// See [`DomainStats::epoch_passes`].
    pub epoch_passes: u64,
    /// See [`DomainStats::pop_passes`].
    pub pop_passes: u64,
    /// See [`DomainStats::restarts`].
    pub restarts: u64,
    /// See [`DomainStats::max_retire_len`].
    pub max_retire_len: u64,
    /// See [`DomainStats::membarriers`].
    pub membarriers: u64,
}

impl StatsSnapshot {
    /// Unreclaimed garbage in this snapshot.
    pub fn unreclaimed_nodes(&self) -> u64 {
        self.retired_nodes.saturating_sub(self.freed_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_accounting() {
        let s = DomainStats::default();
        s.allocated_nodes.fetch_add(10, Ordering::Relaxed);
        s.allocated_bytes.fetch_add(640, Ordering::Relaxed);
        s.freed_nodes.fetch_add(4, Ordering::Relaxed);
        s.freed_bytes.fetch_add(256, Ordering::Relaxed);
        assert_eq!(s.live_nodes(), 6);
        assert_eq!(s.live_bytes(), 384);
    }

    #[test]
    fn unreclaimed_saturates() {
        let s = DomainStats::default();
        s.freed_nodes.fetch_add(3, Ordering::Relaxed);
        assert_eq!(s.unreclaimed_nodes(), 0, "must not underflow");
    }

    #[test]
    fn retire_len_high_water() {
        let s = DomainStats::default();
        s.observe_retire_len(5);
        s.observe_retire_len(17);
        s.observe_retire_len(9);
        assert_eq!(s.snapshot().max_retire_len, 17);
    }
}
