//! The scheme-generic safe-memory-reclamation interface.
//!
//! All twelve schemes implement [`Smr`]; concurrent data structures are
//! written once against it. The interface mirrors the programmer's view of
//! hazard pointers from the paper (§4.1.1): `read` (here [`Smr::protect`]),
//! `clear` (folded into [`Smr::end_op`]) and `retire`, extended with the
//! epoch-style operation brackets (`begin_op`/`end_op`) and NBR's
//! write-phase bracket (`begin_write`/`end_write`) so that restart-based
//! and epoch-based schemes fit the same call sites. For schemes that don't
//! need a bracket the calls are no-ops and compile away under
//! monomorphization.

use core::sync::atomic::AtomicPtr;
use std::sync::Arc;

use crate::config::SmrConfig;
use crate::header::{Header, Retired};
use crate::stats::DomainStats;

/// Request to restart the current operation from its entry point.
///
/// Only returned by neutralization-based schemes (NBR+); all other schemes'
/// `protect`/`begin_write` never fail. Data-structure operations propagate
/// it with `?` and re-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Restart;

/// Result of a protected read.
pub type ReadResult<T> = Result<*mut T, Restart>;

/// A safe-memory-reclamation scheme (one instance = one *domain*).
///
/// # Thread model
///
/// A domain serves `config().max_threads` participants addressed by small
/// *domain thread ids* (`tid`). Each participant calls
/// [`Smr::register`] **on its own OS thread** and uses the returned guard's
/// tid for every subsequent call from that thread. Registration enforces
/// exclusivity (double-claiming a tid panics), which is what makes the
/// internally `UnsafeCell`-based retire lists sound.
///
/// # Operation protocol (matches the paper's pseudocode)
///
/// ```text
/// begin_op(tid);
/// loop over nodes:  p = protect(tid, slot, &link)?;   // Alg.1 read()
/// for updates:      begin_write(tid, &[ptrs])?;  CAS;  retire(tid, r);  end_write(tid);
/// end_op(tid);                                         // Alg.1 clear()
/// ```
///
/// `retire` must be called inside a `begin_write`/`end_write` bracket (the
/// unlinking CAS and the retirement form NBR's write phase; for all other
/// schemes the bracket is free).
pub trait Smr: Send + Sync + Sized + 'static {
    /// Scheme name as used in the paper's plots (e.g. `"HazardPtrPOP"`).
    const NAME: &'static str;
    /// Whether the scheme bounds unreclaimed garbage under thread delays
    /// (the paper's robustness property).
    const ROBUST: bool;
    /// Whether threads must be signalable (registers with the process
    /// registry so reclaimers can ping them).
    const NEEDS_SIGNALS: bool;

    /// Creates a domain.
    fn new(cfg: SmrConfig) -> Arc<Self>;

    /// The domain's configuration.
    fn config(&self) -> &SmrConfig;

    /// The domain's instrumentation counters.
    fn stats(&self) -> &DomainStats;

    /// Registers the calling thread under `tid`, returning an RAII guard.
    ///
    /// Panics if `tid` is out of range or already claimed.
    fn register(self: &Arc<Self>, tid: usize) -> Registration<Self> {
        let signal = if Self::NEEDS_SIGNALS {
            let s = pop_runtime::register_current_shared();
            self.bind_gtid(tid, s.gtid());
            Some(s)
        } else {
            None
        };
        self.register_raw(tid);
        Registration {
            smr: Arc::clone(self),
            tid,
            _signal: signal,
        }
    }

    /// Associates domain `tid` with a global (signalable) thread id.
    /// Overridden by signal-based schemes; no-op otherwise.
    fn bind_gtid(&self, _tid: usize, _gtid: usize) {}

    /// Claims `tid` and initializes per-thread state. Prefer
    /// [`Smr::register`], which also handles signal registration.
    fn register_raw(&self, tid: usize);

    /// Releases `tid`: flushes the retire list (reclaiming what it can,
    /// orphaning the rest to the domain) and clears reservations.
    fn unregister(&self, tid: usize);

    /// Operation prologue (epoch announcement for EBR-family schemes).
    fn begin_op(&self, tid: usize);

    /// Operation epilogue — clears reservations (paper's `clear()`).
    fn end_op(&self, tid: usize);

    /// Protected read of `src` into hazard `slot` — the paper's `read()`.
    ///
    /// Returns the pointer read from `src`, possibly carrying data-structure
    /// mark bits (reservations are recorded unmarked). `Err(Restart)` only
    /// for neutralization-based schemes.
    fn protect<T>(&self, tid: usize, slot: usize, src: &AtomicPtr<T>) -> ReadResult<T>;

    /// Quarantine use-after-free oracle: asserts `ptr` (mark bits ignored)
    /// has not been freed. No-op unless [`SmrConfig::quarantine`] is set.
    ///
    /// Data structures must call this at the point where a protected
    /// pointer is confirmed reachable and about to be dereferenced — i.e.
    /// *after* their mark/flag re-checks. Calling it directly on every
    /// `protect` result would mis-fire: a traversal may legally read a
    /// dangling pointer out of a dead (but still reserved) node's stale
    /// edge, provided it discards the value after seeing the dead node's
    /// mark.
    #[inline]
    fn check_live<T>(&self, ptr: *mut T) {
        if self.config().quarantine {
            let word = crate::header::unmark_word(ptr as u64);
            if word != 0 {
                let hdr = word as *const Header;
                // SAFETY: quarantined allocations are never unmapped.
                assert!(
                    !unsafe { &*hdr }.is_poisoned(),
                    "use-after-free: dereferencing a freed node ({ptr:p})"
                );
            }
        }
    }

    /// Polls for a pending neutralization request (NBR) — data structures
    /// must call this inside spin loops that do not otherwise go through
    /// [`Smr::protect`] (e.g. waiting on a node lock), so a reclaimer is
    /// never left waiting on a spinning reader. No-op for other schemes.
    #[inline]
    fn check_restart(&self, _tid: usize) -> Result<(), Restart> {
        Ok(())
    }

    /// Enters the write phase, reserving `ptrs` for schemes that need
    /// explicit pre-write reservations (NBR). Must precede any structural
    /// CAS; pass every pointer the write will dereference or unlink.
    fn begin_write(&self, _tid: usize, _ptrs: &[*mut Header]) -> Result<(), Restart> {
        Ok(())
    }

    /// Leaves the write phase.
    fn end_write(&self, _tid: usize) {}

    /// Retires an unlinked object; may trigger a reclamation pass.
    ///
    /// # Safety
    ///
    /// The object must be unlinked from every shared structure, retired
    /// exactly once, and the call must come from the thread owning `tid`,
    /// inside a `begin_write` bracket.
    unsafe fn retire(&self, tid: usize, retired: Retired);

    /// Global era for birth-tagging allocations (0 for era-free schemes).
    fn current_era(&self) -> u64 {
        0
    }

    /// Accounts a node allocation of `bytes` bytes on `tid`'s stat shard.
    ///
    /// This is a hot-path call (once per insert); the shard keeps the
    /// increment on a cache line owned by the calling thread.
    fn note_alloc(&self, tid: usize, bytes: usize) {
        use core::sync::atomic::Ordering::Relaxed;
        let shard = self.stats().shard(tid);
        shard.allocated_nodes.fetch_add(1, Relaxed);
        shard.allocated_bytes.fetch_add(bytes as u64, Relaxed);
    }

    /// Reverses [`Smr::note_alloc`] for a node that was deallocated before
    /// ever being published (e.g. a failed insert CAS). Must run on the
    /// same `tid` that noted the allocation, keeping each shard's counters
    /// individually non-negative.
    fn note_dealloc_unpublished(&self, tid: usize, bytes: usize) {
        use core::sync::atomic::Ordering::Relaxed;
        let shard = self.stats().shard(tid);
        shard.allocated_nodes.fetch_sub(1, Relaxed);
        shard.allocated_bytes.fetch_sub(bytes as u64, Relaxed);
    }

    /// Aggressively attempts to reclaim `tid`'s retire list regardless of
    /// thresholds (shutdown and tests).
    fn flush(&self, tid: usize);
}

/// RAII thread registration for a reclamation domain.
///
/// Bound to the registering OS thread (not `Send`); dropping it flushes and
/// releases the tid. The process-registry handle (for signal-based schemes)
/// is released after the domain-level unregistration, so a thread remains
/// pingable for exactly as long as it participates.
pub struct Registration<S: Smr> {
    smr: Arc<S>,
    tid: usize,
    _signal: Option<pop_runtime::SharedRegistration>,
}

impl<S: Smr> Registration<S> {
    /// The registered domain thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The domain this registration belongs to.
    pub fn domain(&self) -> &Arc<S> {
        &self.smr
    }
}

impl<S: Smr> Drop for Registration<S> {
    fn drop(&mut self) {
        self.smr.unregister(self.tid);
    }
}

/// RAII operation bracket: `begin_op` on construction, `end_op` on drop.
///
/// The panic-safety primitive for code that can unwind mid-operation
/// (assertion failures in tests, oracle panics under quarantine): an
/// operation abandoned by an unwinding thread still runs its epilogue, so
/// its epoch announcement / reservations / activity word are cleared and
/// reclaimers never wait on (or keep garbage for) an operation that no
/// longer exists. Schemes whose `end_op` is a no-op compile it away.
///
/// Not `Send` (holds the registering thread's `tid` by contract), and
/// borrows the domain, so it cannot outlive it.
pub struct OpGuard<'a, S: Smr> {
    smr: &'a S,
    tid: usize,
}

impl<'a, S: Smr> OpGuard<'a, S> {
    /// Enters an operation bracket on `tid`.
    ///
    /// Caller contract: same as [`Smr::begin_op`] — `tid` is registered to
    /// the calling thread, and brackets do not nest.
    pub fn enter(smr: &'a S, tid: usize) -> Self {
        smr.begin_op(tid);
        OpGuard { smr, tid }
    }

    /// The bracketed domain thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }
}

impl<S: Smr> Drop for OpGuard<'_, S> {
    fn drop(&mut self) {
        self.smr.end_op(self.tid);
    }
}

/// Convenience: protect repeatedly until a non-restarting scheme succeeds —
/// used by single-threaded tests and examples where `Restart` is impossible
/// yet the type system requires handling it.
pub fn protect_infallible<S: Smr, T>(
    smr: &S,
    tid: usize,
    slot: usize,
    src: &AtomicPtr<T>,
) -> *mut T {
    loop {
        if let Ok(p) = smr.protect(tid, slot, src) {
            return p;
        }
    }
}

/// Helper: retire a typed node allocated with [`alloc_node`] (wraps
/// [`Retired::new`] — which dispatches slab vs `Box` on the header's slab
/// bit — and the era tagging common to every call site).
///
/// # Safety
///
/// Same contract as [`Smr::retire`].
pub unsafe fn retire_node<S: Smr, T: crate::header::HasHeader>(smr: &S, tid: usize, node: *mut T) {
    // SAFETY: forwarded contract — node is unlinked and retired once.
    unsafe {
        let r = Retired::new(node);
        r.header().set_retire_era(smr.current_era());
        smr.retire(tid, r);
    }
}

/// Allocates a reclaimable node for `smr`'s domain: slab-backed when
/// [`SmrConfig::slab_alloc`] is on and `T` fits a slab size class (counted
/// as `slab_allocs` on `tid`'s shard), `Box`-backed otherwise. Either way
/// the allocation is accounted via [`Smr::note_alloc`] and must be released
/// through [`retire_node`], [`dealloc_node_unpublished`] or
/// [`free_node_raw`] — never a bare `Box::from_raw`.
pub fn alloc_node<S: Smr, T: crate::header::HasHeader>(smr: &S, tid: usize, value: T) -> *mut T {
    use core::sync::atomic::Ordering::Relaxed;
    smr.note_alloc(tid, core::mem::size_of::<T>());
    let p = crate::slab::alloc_value(value, smr.config().slab_alloc);
    // SAFETY: freshly allocated above, exclusively owned.
    if unsafe { (*p).header().is_slab_backed() } {
        smr.stats().shard(tid).slab_allocs.fetch_add(1, Relaxed);
    }
    p
}

/// Frees a node that was never published to the shared structure (e.g. a
/// failed insert CAS), reversing [`alloc_node`]'s accounting.
///
/// # Safety
///
/// `node` must come from [`alloc_node`] on this domain, be unpublished (no
/// other thread ever saw it), and not be freed again. Must run on the same
/// `tid` that allocated it.
pub unsafe fn dealloc_node_unpublished<S: Smr, T: crate::header::HasHeader>(
    smr: &S,
    tid: usize,
    node: *mut T,
) {
    // SAFETY: forwarded contract — exclusively owned, freed once; the slab
    // bit picks the matching free path.
    unsafe { crate::slab::free_value(node) };
    smr.note_dealloc_unpublished(tid, core::mem::size_of::<T>());
}

/// Frees a node during structure teardown (`Drop` walks), dispatching on
/// the header's slab bit. The replacement for the bare `Box::from_raw` that
/// teardown paths used before owned slabs existed — calling that on a slab
/// slot is undefined behavior.
///
/// # Safety
///
/// `node` must be a live allocation from [`alloc_node`] /
/// [`crate::slab::alloc_value`] (or `Box::into_raw`), unreachable by every
/// other thread, and not freed again.
pub unsafe fn free_node_raw<T: crate::header::HasHeader>(node: *mut T) {
    // SAFETY: forwarded contract.
    unsafe { crate::slab::free_value(node) }
}

/// Erases a typed node pointer to the header pointer used by
/// [`Smr::begin_write`] reservation lists.
pub fn as_header<T: crate::header::HasHeader>(p: *mut T) -> *mut Header {
    p as *mut Header
}
