//! Memory-pressure gauge, watermark escalation ladder, and stalled-reader
//! tracking — the domain's bounded-garbage enforcement machinery.
//!
//! The epoch/era schemes (EBR, EpochPOP, IBR, HE, HE-POP) inherit the
//! classic non-robustness failure: one stalled reader pins an unbounded
//! retire backlog. This module gives every domain a [`PressureGauge`] that
//! tracks *actionable* unreclaimed garbage — nodes retired, not yet freed,
//! and **not** parked in the stalled-reader quarantine — against three
//! watermarks, and drives a four-rung escalation ladder:
//!
//! | rung | trigger | response |
//! |------|---------|----------|
//! | [`PressureRung::Normal`] | below soft | nothing |
//! | [`PressureRung::Soft`] | `count ≥ soft` | cancel epoch decay, force full passes |
//! | [`PressureRung::Hard`] | `count ≥ hard` | inline reclamation retries on the retire path, re-ping suspect laggards |
//! | [`PressureRung::Emergency`] | `count ≥ emergency` | quarantine blocks provably pinned only by a stalled reader; trim free pools |
//!
//! Quarantined nodes leave the gauge (they are unfreeable until the
//! blocker advances, so re-counting them would keep the domain pinned at
//! emergency with nothing actionable left), but stay in the raw
//! `retired − freed` conservation ledger: every quarantined block is
//! eventually freed — when the blocker advances, is reaped, or the domain
//! drops.
//!
//! ## Hysteresis
//!
//! Escalation happens the moment `count` reaches a watermark;
//! de-escalation requires falling below ⅞ of it. A workload hovering at a
//! boundary therefore trips the rung **once** instead of toggling (and
//! re-counting trips) on every retire/free pair, while a freeing sweep
//! that collapses the backlog de-escalates — possibly several rungs —
//! immediately.
//!
//! ## Concurrency model
//!
//! All counters are relaxed atomics updated by whichever thread performs
//! the seal/free/quarantine event; the rung is settled with a CAS loop
//! against the freshly read count. Racing settles may observe each
//! other's counts — the rung is a pacing heuristic, never a safety
//! predicate, so transient disagreement is harmless. Trip reporting is
//! exact per *transition* (the CAS loser retries against the new rung).

use core::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Consecutive observation passes with an unchanged, non-idle reservation
/// word after which a participant is considered stalled (the emergency
/// rung's per-participant detector). Small: each pass already implies the
/// reclaimer failed to free behind this reader.
pub const STALLED_AFTER_PASSES: u32 = 3;

/// Bounded inline-retry budget for the hard rung: how many extra
/// synchronous reclamation attempts a `retire` call may make (with a
/// spin-loop backoff between them) before giving up until the next retire.
pub const HARD_RETRY_LIMIT: u32 = 2;

/// One rung of the escalation ladder. Ordered: comparisons like
/// `rung >= PressureRung::Hard` express "hard measures (or worse) are
/// engaged".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum PressureRung {
    /// Below every watermark; no intervention.
    Normal = 0,
    /// Soft watermark reached: pacing concessions are cancelled.
    Soft = 1,
    /// Hard watermark reached: retire paths reclaim synchronously.
    Hard = 2,
    /// Emergency watermark reached: stalled-reader quarantine engages.
    Emergency = 3,
}

impl PressureRung {
    fn from_u8(v: u8) -> PressureRung {
        match v {
            0 => PressureRung::Normal,
            1 => PressureRung::Soft,
            2 => PressureRung::Hard,
            _ => PressureRung::Emergency,
        }
    }

    /// The next rung down (saturating at [`PressureRung::Normal`]).
    fn step_down(self) -> PressureRung {
        PressureRung::from_u8((self as u8).saturating_sub(1))
    }
}

/// An upward rung transition reported by a gauge update: the gauge moved
/// from `from` (exclusive) to `to` (inclusive). Callers bump one trip
/// counter per rung crossed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Escalation {
    /// Rung before the update.
    pub from: PressureRung,
    /// Rung after the update (strictly above `from`).
    pub to: PressureRung,
}

impl Escalation {
    /// Whether this transition crossed (entered or passed through) `rung`.
    pub fn crossed(&self, rung: PressureRung) -> bool {
        self.from < rung && rung <= self.to
    }
}

/// Per-domain memory-pressure gauge (module docs).
///
/// `count` is the actionable backlog: nodes sealed into retire lists,
/// minus nodes freed, minus nodes currently quarantined behind a stalled
/// reader. Both subtractions saturate — a racing reader may observe a
/// free before the matching seal, exactly like the stats shards — so the
/// gauge can never underflow.
pub struct PressureGauge {
    /// Soft watermark (`0` disables the whole gauge).
    soft: u64,
    /// Hard watermark (normalized `≥ soft`).
    hard: u64,
    /// Emergency watermark (normalized `≥ hard`).
    emergency: u64,
    /// Actionable unreclaimed nodes (see struct docs).
    count: AtomicU64,
    /// Nodes currently parked in the stalled-reader quarantine.
    quarantined: AtomicU64,
    /// Current [`PressureRung`] as its `u8` discriminant.
    rung: AtomicU8,
}

impl PressureGauge {
    /// A gauge with the given watermarks. `soft == 0` disables it (the
    /// rung stays [`PressureRung::Normal`] forever); otherwise the
    /// watermarks are normalized to `soft ≤ hard ≤ emergency`.
    pub fn new(soft: usize, hard: usize, emergency: usize) -> Self {
        let soft = soft as u64;
        let hard = (hard as u64).max(soft);
        let emergency = (emergency as u64).max(hard);
        PressureGauge {
            soft,
            hard,
            emergency,
            count: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            rung: AtomicU8::new(PressureRung::Normal as u8),
        }
    }

    /// A permanently-disabled gauge (every update is a no-op).
    pub fn disabled() -> Self {
        Self::new(0, 0, 0)
    }

    /// Whether the gauge is live (a non-zero soft watermark).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.soft > 0
    }

    /// Actionable unreclaimed nodes (retired − freed − quarantined).
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Nodes currently parked in the stalled-reader quarantine.
    #[inline]
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// The currently settled escalation rung.
    #[inline]
    pub fn rung(&self) -> PressureRung {
        PressureRung::from_u8(self.rung.load(Ordering::Relaxed))
    }

    /// The emergency watermark after normalization (test observability,
    /// chaos-harness bounds).
    #[inline]
    pub fn emergency_watermark(&self) -> u64 {
        self.emergency
    }

    /// Nodes sealed into a retire list. Returns the upward transition, if
    /// this update caused one.
    #[inline]
    pub fn on_retired(&self, n: usize) -> Option<Escalation> {
        if !self.enabled() || n == 0 {
            return None;
        }
        self.count.fetch_add(n as u64, Ordering::Relaxed);
        self.settle()
    }

    /// Nodes freed (deallocation function ran, or poisoned into the UAF
    /// quarantine). De-escalates silently.
    #[inline]
    pub fn on_freed(&self, n: usize) {
        if !self.enabled() || n == 0 {
            return;
        }
        saturating_sub(&self.count, n as u64);
        let _ = self.settle();
    }

    /// Nodes moved from a retire list into the stalled-reader quarantine:
    /// they leave the actionable count but stay accounted (struct docs).
    #[inline]
    pub fn on_quarantined(&self, n: usize) {
        if !self.enabled() || n == 0 {
            return;
        }
        self.quarantined.fetch_add(n as u64, Ordering::Relaxed);
        saturating_sub(&self.count, n as u64);
        let _ = self.settle();
    }

    /// Nodes released from the quarantine back into a retire list (their
    /// blocker advanced or was reaped). They become actionable again;
    /// a re-escalation here is reported like any other.
    #[inline]
    pub fn on_unquarantined(&self, n: usize) -> Option<Escalation> {
        if !self.enabled() || n == 0 {
            return None;
        }
        saturating_sub(&self.quarantined, n as u64);
        self.count.fetch_add(n as u64, Ordering::Relaxed);
        self.settle()
    }

    /// Watermark that admits `r` (callers guarantee `r > Normal`).
    fn watermark(&self, r: PressureRung) -> u64 {
        match r {
            PressureRung::Normal => 0,
            PressureRung::Soft => self.soft,
            PressureRung::Hard => self.hard,
            PressureRung::Emergency => self.emergency,
        }
    }

    /// The rung a count of `c` settles to from `cur`: escalation is
    /// immediate at each watermark; de-escalation from `r` requires
    /// falling below ⅞ of `r`'s watermark (hysteresis, module docs).
    fn target_for(&self, c: u64, cur: PressureRung) -> PressureRung {
        let up = if c >= self.emergency {
            PressureRung::Emergency
        } else if c >= self.hard {
            PressureRung::Hard
        } else if c >= self.soft {
            PressureRung::Soft
        } else {
            PressureRung::Normal
        };
        if up >= cur {
            return up;
        }
        let mut r = cur;
        while r > up {
            let wm = self.watermark(r);
            if c >= wm - wm / 8 {
                break;
            }
            r = r.step_down();
        }
        r
    }

    /// Settles the rung against the current count; reports an upward
    /// transition to exactly one caller (the CAS winner).
    fn settle(&self) -> Option<Escalation> {
        loop {
            let cur = self.rung();
            let target = self.target_for(self.count.load(Ordering::Relaxed), cur);
            if target == cur {
                return None;
            }
            if self
                .rung
                .compare_exchange(
                    cur as u8,
                    target as u8,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return (target > cur).then_some(Escalation {
                    from: cur,
                    to: target,
                });
            }
        }
    }
}

/// `a -= b`, saturating at zero (mirrors the stats shards' tolerance for
/// frees observed before their matching seal).
fn saturating_sub(a: &AtomicU64, b: u64) {
    let _ = a.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(b))
    });
}

/// Per-participant stalled-reader detector: a reclaimer feeds each pass's
/// observed reservation word per tid; a word that stays unchanged (and
/// non-idle) across [`STALLED_AFTER_PASSES`] passes marks its owner
/// stalled. Word `0` means "idle/quiescent" and resets the streak —
/// callers normalize their scheme's idle sentinel (EBR's `u64::MAX`
/// quiescent epoch, HE's empty slots) to `0`.
///
/// Racing observers only make ages fuzzy (a streak may be double-counted
/// or reset late); stall detection is a pacing heuristic and never a
/// safety predicate, so that is harmless.
pub struct StallTracker {
    slots: Box<[StallSlot]>,
}

struct StallSlot {
    word: AtomicU64,
    age: AtomicU32,
}

impl StallTracker {
    /// A tracker for `n` participants, all idle.
    pub fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || StallSlot {
            word: AtomicU64::new(0),
            age: AtomicU32::new(0),
        });
        StallTracker {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Records one pass's observation of `tid`'s reservation word and
    /// returns its updated age (consecutive passes unchanged). `0` = idle.
    pub fn observe(&self, tid: usize, word: u64) -> u32 {
        let s = &self.slots[tid];
        if word == 0 {
            s.word.store(0, Ordering::Relaxed);
            s.age.store(0, Ordering::Relaxed);
            return 0;
        }
        if s.word.load(Ordering::Relaxed) == word {
            s.age.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            s.word.store(word, Ordering::Relaxed);
            s.age.store(0, Ordering::Relaxed);
            0
        }
    }

    /// Whether `tid`'s last observation chain qualifies as stalled.
    pub fn is_stalled(&self, tid: usize) -> bool {
        self.slots[tid].age.load(Ordering::Relaxed) >= STALLED_AFTER_PASSES
    }

    /// Forgets `tid`'s history (unregister / reap).
    pub fn clear(&self, tid: usize) {
        self.slots[tid].word.store(0, Ordering::Relaxed);
        self.slots[tid].age.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::Strategy as _;

    fn gauge() -> PressureGauge {
        PressureGauge::new(100, 200, 400)
    }

    #[test]
    fn disabled_gauge_is_inert() {
        let g = PressureGauge::disabled();
        assert!(!g.enabled());
        assert_eq!(g.on_retired(1_000_000), None);
        assert_eq!(g.count(), 0, "disabled gauge counts nothing");
        assert_eq!(g.rung(), PressureRung::Normal);
    }

    #[test]
    fn watermarks_normalize_monotone() {
        let g = PressureGauge::new(500, 100, 50);
        assert_eq!(g.on_retired(499), None);
        let e = g.on_retired(1).expect("trip at the lifted watermark");
        // Hard/emergency below soft are lifted *to* soft, so all three
        // rungs share one watermark and trip together.
        assert_eq!(e.from, PressureRung::Normal);
        assert_eq!(e.to, PressureRung::Emergency);
        assert!(e.crossed(PressureRung::Soft));
        assert!(e.crossed(PressureRung::Hard));
        assert_eq!(g.emergency_watermark(), 500);
    }

    #[test]
    fn rungs_escalate_at_watermarks_and_report_each_crossing() {
        let g = gauge();
        assert_eq!(g.on_retired(99), None);
        let e = g.on_retired(1).expect("soft trip at exactly the watermark");
        assert_eq!(e.to, PressureRung::Soft);
        assert!(e.crossed(PressureRung::Soft));
        assert!(!e.crossed(PressureRung::Hard));
        let e = g.on_retired(300).expect("jump straight to emergency");
        assert_eq!(e.from, PressureRung::Soft);
        assert_eq!(e.to, PressureRung::Emergency);
        assert!(e.crossed(PressureRung::Hard), "pass-through rung counted");
        assert!(e.crossed(PressureRung::Emergency));
        assert!(!e.crossed(PressureRung::Soft), "already-held rung is not");
    }

    #[test]
    fn boundary_hover_does_not_retrip() {
        let g = gauge();
        assert!(g.on_retired(100).is_some(), "first trip");
        // Oscillate one node around the watermark: hysteresis holds the
        // rung, so no de-escalation and no second trip.
        for _ in 0..10 {
            g.on_freed(1);
            assert_eq!(g.rung(), PressureRung::Soft, "⅞ band holds the rung");
            assert_eq!(g.on_retired(1), None, "no re-trip while held");
        }
        // Dropping below ⅞ of the watermark releases it...
        g.on_freed(20);
        assert_eq!(g.rung(), PressureRung::Normal);
        // ...and the next crossing is a genuine new trip.
        assert!(g.on_retired(20).is_some());
    }

    #[test]
    fn freeing_sweep_deescalates_instantly_and_monotonically() {
        let g = gauge();
        g.on_retired(400);
        assert_eq!(g.rung(), PressureRung::Emergency);
        // A big freeing sweep drops straight past every rung.
        g.on_freed(400);
        assert_eq!(g.rung(), PressureRung::Normal);
        assert_eq!(g.count(), 0);
        // Partial relief de-escalates only as far as the count justifies.
        g.on_retired(399);
        assert_eq!(g.rung(), PressureRung::Hard);
        g.on_freed(250); // count 149: below ⅞·200, above ⅞·100
        assert_eq!(g.rung(), PressureRung::Soft, "one rung at a time");
    }

    #[test]
    fn quarantine_moves_nodes_out_of_the_actionable_count() {
        let g = gauge();
        g.on_retired(400);
        assert_eq!(g.rung(), PressureRung::Emergency);
        g.on_quarantined(350);
        assert_eq!(g.count(), 50);
        assert_eq!(g.quarantined(), 350);
        assert_eq!(g.rung(), PressureRung::Normal, "quarantine drains gauge");
        // Release makes them actionable again — and may re-escalate.
        let e = g.on_unquarantined(350).expect("release re-escalates");
        assert_eq!(e.to, PressureRung::Emergency);
        assert_eq!(g.quarantined(), 0);
        assert_eq!(g.count(), 400);
    }

    #[test]
    fn frees_observed_before_seals_saturate() {
        let g = gauge();
        g.on_freed(10);
        assert_eq!(g.count(), 0, "gauge never goes negative");
        g.on_unquarantined(5);
        assert_eq!(g.quarantined(), 0);
        assert_eq!(g.count(), 5);
    }

    #[test]
    fn stall_tracker_ages_only_unchanged_nonidle_words() {
        let t = StallTracker::new(2);
        assert_eq!(t.observe(0, 7), 0, "first sighting starts the streak");
        assert_eq!(t.observe(0, 7), 1);
        assert_eq!(t.observe(0, 7), 2);
        assert!(!t.is_stalled(0));
        assert_eq!(t.observe(0, 7), 3);
        assert!(t.is_stalled(0), "stalled after STALLED_AFTER_PASSES");
        // An advancing word resets the streak.
        assert_eq!(t.observe(0, 8), 0);
        assert!(!t.is_stalled(0));
        // Idle (word 0) resets too, and never ages.
        for _ in 0..10 {
            assert_eq!(t.observe(1, 0), 0);
        }
        assert!(!t.is_stalled(1));
        // clear() forgets history.
        t.observe(0, 9);
        t.observe(0, 9);
        t.clear(0);
        assert_eq!(t.observe(0, 9), 0, "cleared slot restarts from scratch");
    }

    /// One gauge mutation in the conservation property test.
    #[derive(Clone, Copy, Debug)]
    enum GaugeOp {
        Retire(u16),
        Free(u16),
        Quarantine(u16),
        Unquarantine(u16),
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]

        /// Arbitrary retire/free/quarantine interleavings: the gauge never
        /// goes negative, never leaks (count + quarantined tracks the
        /// shadow ledger exactly when ops are well-formed), and the rung
        /// always matches what the settled count justifies.
        #[test]
        fn gauge_conserves_under_arbitrary_interleavings(
            ops in proptest::collection::vec(
                proptest::prop_oneof![
                    (0u16..500).prop_map(GaugeOp::Retire),
                    (0u16..500).prop_map(GaugeOp::Free),
                    (0u16..500).prop_map(GaugeOp::Quarantine),
                    (0u16..500).prop_map(GaugeOp::Unquarantine),
                ],
                1..200,
            )
        ) {
            let g = PressureGauge::new(64, 256, 1024);
            // Shadow ledger of well-formed traffic: ops are clamped to
            // what is actually outstanding, the way real sweeps only free
            // or quarantine nodes that exist.
            let (mut count, mut quarantined) = (0u64, 0u64);
            for op in ops {
                match op {
                    GaugeOp::Retire(n) => {
                        g.on_retired(n as usize);
                        count += n as u64;
                    }
                    GaugeOp::Free(n) => {
                        let n = (n as u64).min(count);
                        g.on_freed(n as usize);
                        count -= n;
                    }
                    GaugeOp::Quarantine(n) => {
                        let n = (n as u64).min(count);
                        g.on_quarantined(n as usize);
                        count -= n;
                        quarantined += n;
                    }
                    GaugeOp::Unquarantine(n) => {
                        let n = (n as u64).min(quarantined);
                        g.on_unquarantined(n as usize);
                        quarantined -= n;
                        count += n;
                    }
                }
                assert!(g.count() == count, "gauge neither leaks nor underflows");
                assert!(g.quarantined() == quarantined);
                // The settled rung is always one the count admits under
                // hysteresis: at or above its ⅞ release bound, and below
                // the next watermark up.
                let r = g.rung();
                let wm = |r: PressureRung| match r {
                    PressureRung::Normal => 0u64,
                    PressureRung::Soft => 64,
                    PressureRung::Hard => 256,
                    PressureRung::Emergency => 1024,
                };
                let lower = wm(r) - wm(r) / 8;
                assert!(count >= lower, "rung {r:?} held below its release bound");
                if r < PressureRung::Emergency {
                    let next = PressureRung::from_u8(r as u8 + 1);
                    assert!(count < wm(next), "count {count} demands a higher rung than {r:?}");
                }
            }
        }
    }
}
