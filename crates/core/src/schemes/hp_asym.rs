//! `HPAsym` — hazard pointers with an asymmetric process-wide barrier
//! (the Folly / `sys_membarrier` design the paper benchmarks as `HPAsym`).
//!
//! Readers publish reservations to the shared slots with **relaxed** stores
//! (no fence) and validate with a re-read; the StoreLoad ordering that
//! classic HP pays per read is executed *once per reclamation pass* by the
//! reclaimer as a process-wide barrier:
//!
//! * `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)` when the kernel
//!   supports it, or
//! * a signal-driven barrier otherwise (every registered thread's handler
//!   executes a fence and bumps a counter — liburcu's "signal flavor"),
//!   reusing the publish-on-ping engine with the copy step degenerate
//!   (reservations are already shared).
//!
//! Correctness of the relaxed-store fast path: the reclaimer's barrier sits
//! between unlink and scan. Any reader whose reservation store was not yet
//! visible at the barrier must execute its validation load after the
//! barrier, and therefore observes the unlink and retries (paper §2.1.2
//! discussion of [Dice et al.] and Folly).

use core::sync::atomic::{compiler_fence, fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use pop_runtime::membarrier;
use pop_runtime::signal::register_publisher;
use pop_runtime::PublisherHandle;

use crate::base::{
    collect_slot_words_into, free_unreserved, push_retired, DomainBase, RetireSlot, ScratchSlot,
};
use crate::config::SmrConfig;
use crate::header::{unmark_word, Retired};
use crate::pop_shared::PopShared;
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
}

/// Folly-style hazard pointers with asymmetric fences.
pub struct HazardPtrAsym {
    base: DomainBase,
    /// Eagerly-shared reservations (relaxed stores).
    shared: Box<[AtomicU64]>,
    /// Signal fallback barrier (0 copy slots: reservations are already
    /// shared; the handler contributes its fence + counter increment).
    barrier: &'static PopShared,
    publisher: PublisherHandle,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl HazardPtrAsym {
    #[inline(always)]
    fn idx(&self, tid: usize, slot: usize) -> usize {
        debug_assert!(slot < self.base.cfg.slots);
        tid * self.base.cfg.slots + slot
    }

    /// The heavy side of the asymmetric barrier. `counters` is the caller's
    /// reusable scratch for the signal fallback.
    fn heavy_barrier(&self, tid: usize, counters: &mut Vec<u64>) {
        // `heavy_membarrier` is the runtime service's single probe +
        // counting site, shared with the POP membarrier publish mode.
        if !self.barrier.heavy_membarrier(tid) {
            // Signal fallback: each handler fences and bumps its counter;
            // waiting for all counters gives the same process-wide ordering.
            self.barrier.ping_all_and_wait(tid, counters);
        }
    }

    fn reclaim(&self, tid: usize) {
        fence(Ordering::SeqCst);
        // SAFETY: tid ownership per the registration contract.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        self.heavy_barrier(tid, &mut scratch.counters);
        // Reap a confirmed-dead participant (signal-fallback barriers flag
        // one via the publish-wait watchdog; the membarrier path never
        // pings, so detection rides the fallback or another domain). The
        // eager reservation words are zeroed inside the closure — i.e.
        // before `reap_one_dead` releases the tid for reuse — so the store
        // can never clobber a new claimant's live reservation.
        self.barrier.reap_one_dead(&self.base, tid, |t| {
            for s in 0..self.base.cfg.slots {
                self.shared[t * self.base.cfg.slots + s].store(0, Ordering::Release);
            }
            // SAFETY: `reap_one_dead` established exclusivity (won reap
            // CAS + registry-confirmed death of the owner).
            unsafe { self.threads[t].retire.get() }
        });
        collect_slot_words_into(
            &self.base,
            self.base.cfg.slots,
            &self.shared,
            &mut scratch.reserved,
        );
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.stats.shard(tid).observe_retire_len(list.len());
        // SAFETY: post-barrier, every reader either has its reservation
        // visible in `reserved` or will fail validation against the unlink.
        unsafe { free_unreserved(&self.base, tid, list, &scratch.reserved) };
    }

    /// Whether this process reclaims via `membarrier(2)` (vs signals).
    pub fn uses_membarrier(&self) -> bool {
        membarrier::is_available()
    }
}

impl Smr for HazardPtrAsym {
    const NAME: &'static str = "HPAsym";
    const ROBUST: bool = true;
    // Register with the signal registry for the fallback barrier.
    const NEEDS_SIGNALS: bool = true;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let cells = cfg.max_threads * cfg.slots;
        let mut shared = Vec::with_capacity(cells);
        shared.resize_with(cells, || AtomicU64::new(0));
        let n = cfg.max_threads;
        let base = DomainBase::new(cfg);
        // Zero copy-slots: the barrier publisher only fences and counts.
        // Quiescent filtering stays OFF — the reservations this barrier
        // orders live in `self.shared`, not in the PopShared slots, so
        // every handler execution is load-bearing.
        let barrier = PopShared::leak(
            n,
            0,
            Arc::clone(&base.stats),
            false,
            base.cfg.publish_spin,
            base.cfg.futex_wait,
            base.cfg.publish_deadline_ns,
            // Not membarrier-*configured*: the PopShared here is only the
            // signal fallback engine. The membarrier fast path is taken
            // explicitly in `heavy_barrier` via `heavy_membarrier`.
            false,
        );
        let publisher = register_publisher(barrier);
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&base.cfg),
                scratch: ScratchSlot::new(),
            })
        });
        Arc::new(HazardPtrAsym {
            base,
            shared: shared.into_boxed_slice(),
            barrier,
            publisher,
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.base.bind_gtid(tid, gtid);
        self.barrier.register(tid, gtid);
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        for s in 0..self.base.cfg.slots {
            self.shared[self.idx(tid, s)].store(0, Ordering::Release);
        }
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.end_op(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.barrier.unregister(tid);
        self.base.clear_gtid(tid);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, _tid: usize) {}

    #[inline]
    fn end_op(&self, tid: usize) {
        for s in 0..self.base.cfg.slots {
            self.shared[self.idx(tid, s)].store(0, Ordering::Release);
        }
    }

    /// Fence-free protected read: relaxed reservation store + validation.
    #[inline]
    fn protect<T>(&self, tid: usize, slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        let cell = &self.shared[self.idx(tid, slot)];
        loop {
            let p = src.load(Ordering::Acquire);
            cell.store(unmark_word(p as u64), Ordering::Relaxed);
            // Keep the store before the validation load in program order;
            // free at run time — the reclaimer's barrier does the real work.
            compiler_fence(Ordering::SeqCst);
            if src.load(Ordering::Acquire) == p {
                return Ok(p);
            }
        }
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.reclaim(tid);
        }
    }

    fn flush(&self, tid: usize) {
        self.reclaim(tid);
    }
}

impl Drop for HazardPtrAsym {
    fn drop(&mut self) {
        self.publisher.deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;
    use std::sync::atomic::AtomicBool;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &HazardPtrAsym, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(0, core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn protect_publishes_eagerly_without_fence() {
        let smr = HazardPtrAsym::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let node = alloc(&smr, 1);
        let src = AtomicPtr::new(node);
        let _ = smr.protect(0, 0, &src).unwrap();
        assert_eq!(
            smr.shared[0].load(Ordering::Acquire),
            node as u64,
            "reservation must be in the shared slot immediately"
        );
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }

    #[test]
    fn barrier_reclaim_respects_cross_thread_reservation() {
        let smr = HazardPtrAsym::new(SmrConfig::for_tests(2).with_reclaim_freq(4));
        let reg0 = smr.register(0);
        let hot = alloc(&smr, 7);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                let p = smr.protect(1, 0, &src).unwrap();
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                assert_eq!(unsafe { (*p).v }, 7);
                smr.end_op(1);
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 1);
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg0);
    }

    #[test]
    fn some_heavy_barrier_mechanism_ran() {
        let smr = HazardPtrAsym::new(SmrConfig::for_tests(1).with_reclaim_freq(2));
        let reg = smr.register(0);
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        let s = smr.stats().snapshot();
        assert!(
            s.membarriers > 0 || s.publishes > 0,
            "either membarrier or the signal fallback must have executed"
        );
        drop(reg);
    }
}
