//! **`EpochPOP`** — epoch-based reclamation fused with HazardPtrPOP (paper
//! §4.2, Alg. 3).
//!
//! Threads run *both* protocols simultaneously:
//!
//! * **Epoch mode** (the common case): operations announce the global epoch
//!   like EBR; reclaimers free nodes retired before the minimum announced
//!   epoch. Fast — one ordered store per operation.
//! * **POP mode** (delay suspected): every read has *also* been recording a
//!   private pointer reservation (relaxed store, no fence). When an
//!   epoch-mode pass leaves the retire list above `C × reclaim_freq`, the
//!   reclaimer concludes some thread is stuck in an old epoch, pings all
//!   threads, and frees everything not ptr-reserved — skipping only the
//!   bounded `N × H` reserved set. No global mode switch; different threads
//!   may reclaim in different modes concurrently (unlike QSense).

use core::sync::atomic::{compiler_fence, fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use pop_runtime::signal::register_publisher;
use pop_runtime::PublisherHandle;

use crate::base::{
    free_before_epoch_with_stalled, free_unreserved, push_retired, scan_epoch_reservations,
    DomainBase, EpochClocks, RetireSlot, ScratchSlot,
};
use crate::config::SmrConfig;
use crate::controller::{PassAction, PassController};
use crate::header::{unmark_word, Retired};
use crate::pop_shared::PopShared;
use crate::pressure::{PressureRung, HARD_RETRY_LIMIT};
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

use super::ebr::QUIESCENT;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
    op_count: AtomicU64,
}

/// Dual-mode epoch + publish-on-ping reclamation.
pub struct EpochPop {
    base: DomainBase,
    clocks: EpochClocks,
    /// Epoch-cadence decay (adaptive controller). Thinning never applies
    /// to the POP escalation — robustness is exempt from pacing.
    ctl: PassController,
    /// `reservedEpoch[tid]` (Alg. 3 line 4).
    reserved_epoch: Box<[CachePadded<AtomicU64>]>,
    /// Private pointer reservations published on ping (Alg. 3 lines 6–8).
    pop: &'static PopShared,
    publisher: PublisherHandle,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl EpochPop {
    /// Alg. 3 `reclaimEpochFreeable`: the EBR fast path. In-place sweep —
    /// no allocation. Retire-triggered passes (`forced = false`) honor the
    /// controller's decay thinning; flush passes are always full.
    fn reclaim_epoch_freeable(&self, tid: usize, forced: bool) {
        let rung = self.base.stats.pressure().rung();
        if rung >= PressureRung::Soft {
            // Ladder rung 1: pressure overrides the barren-pass economy.
            self.ctl.cancel_decay();
        }
        let action = if forced || rung >= PressureRung::Soft {
            self.ctl.begin_forced_pass()
        } else {
            self.ctl.begin_pass()
        };
        if action == PassAction::Thinned {
            return;
        }
        let shard = self.base.stats.shard(tid);
        shard.epoch_passes.fetch_add(1, Ordering::Relaxed);
        // Reclaimer-side epoch advance by max-aggregation (the op path
        // only ticks a private clock).
        self.clocks.advance_max_scan(tid);
        fence(Ordering::SeqCst);
        let (min, relaxed) = scan_epoch_reservations(&self.base, QUIESCENT, |t| {
            self.reserved_epoch[t].load(Ordering::SeqCst)
        });
        // SAFETY: tid ownership per the registration contract.
        let list = unsafe { self.threads[tid].retire.get() };
        // Ladder rung 3 unwind: blocks parked on a blocker that moved (or
        // was reaped) rejoin the list for re-filtering below.
        self.base.reclaim_released_quarantine(tid, list, |t, w| {
            self.reserved_epoch[t].load(Ordering::SeqCst) == w
        });
        shard.observe_retire_len(list.len());
        // SAFETY: nodes retired before every announced epoch are
        // unreachable. The relaxed floor never frees: it parks blocks
        // pinned solely by the known-stalled blocker.
        let freed =
            unsafe { free_before_epoch_with_stalled(&self.base, tid, list, min, relaxed.as_ref()) };
        if self.ctl.note_pass_outcome(freed) {
            shard.epoch_decay_steps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Alg. 3 lines 26–30: the robust POP escalation. Allocation-free via
    /// the thread's scratch buffers. Never thinned — the escalation check
    /// in `retire` runs after every trigger regardless of decay, so the
    /// garbage bound `C × reclaim_freq + N × H` survives an idle spell.
    fn reclaim_pop_freeable(&self, tid: usize) {
        self.base
            .stats
            .shard(tid)
            .pop_passes
            .fetch_add(1, Ordering::Relaxed);
        // SAFETY: tid ownership.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        self.pop.ping_all_and_wait(tid, &mut scratch.counters);
        // Reap a confirmed-dead participant before scanning. Releasing
        // its domain tid also unpins the epoch min-scan (which gates on
        // `is_registered`) — a thread that died mid-op stops stalling the
        // epoch fast path the moment it is reaped; `register_raw` resets
        // `reserved_epoch` for the next claimant.
        self.pop.reap_one_dead(&self.base, tid, |t| {
            // SAFETY: `reap_one_dead` established exclusivity (won reap
            // CAS + registry-confirmed death of the owner).
            unsafe { self.threads[t].retire.get() }
        });
        self.pop.collect_reserved_into(&mut scratch.reserved);
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        // SAFETY: every thread published its private reservations,
        // deregistered, or was provably quiescent holding none; anything
        // unreserved is unreachable — even for threads stuck in ancient
        // epochs, because they too record local reservations on every read.
        let freed = unsafe { free_unreserved(&self.base, tid, list, &scratch.reserved) };
        // A freeing POP pass un-decays the domain (garbage is moving
        // again); a barren one deepens like any other barren pass.
        if self.ctl.note_pass_outcome(freed) {
            self.base
                .stats
                .shard(tid)
                .epoch_decay_steps
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Smr for EpochPop {
    const NAME: &'static str = "EpochPOP";
    const ROBUST: bool = true;
    const NEEDS_SIGNALS: bool = true;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let base = DomainBase::new(cfg);
        let pop = PopShared::leak(
            n,
            base.cfg.slots,
            Arc::clone(&base.stats),
            true,
            base.cfg.publish_spin,
            base.cfg.futex_wait,
            base.cfg.publish_deadline_ns,
            base.cfg.resolved_publish_mode() == crate::config::PublishMode::Membarrier,
        );
        let publisher = register_publisher(pop);
        let mut reserved = Vec::with_capacity(n);
        reserved.resize_with(n, || CachePadded::new(AtomicU64::new(QUIESCENT)));
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&base.cfg),
                scratch: ScratchSlot::new(),
                op_count: AtomicU64::new(0),
            })
        });
        Arc::new(EpochPop {
            clocks: EpochClocks::new(n),
            ctl: PassController::new(base.cfg.adaptive),
            reserved_epoch: reserved.into_boxed_slice(),
            pop,
            publisher,
            threads: threads.into_boxed_slice(),
            base,
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.base.bind_gtid(tid, gtid);
        self.pop.register(tid, gtid);
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        self.reserved_epoch[tid].store(QUIESCENT, Ordering::SeqCst);
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.reserved_epoch[tid].store(QUIESCENT, Ordering::SeqCst);
        self.pop.clear_local(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.pop.unregister(tid);
        self.base.clear_gtid(tid);
        self.base.release(tid);
    }

    /// Alg. 3 `startOp`: periodic private clock tick + announcement (no
    /// shared RMW on the op path).
    #[inline]
    fn begin_op(&self, tid: usize) {
        let ts = &self.threads[tid];
        let c = ts.op_count.load(Ordering::Relaxed) + 1;
        ts.op_count.store(c, Ordering::Relaxed);
        if self.ctl.tick_due(c, self.base.cfg.epoch_freq as u64) {
            self.clocks.tick(tid);
        }
        self.pop.note_active(tid);
        self.reserved_epoch[tid].store(self.clocks.current(), Ordering::SeqCst);
    }

    /// Alg. 3 `endOp`: announce quiescence and clear local reservations.
    #[inline]
    fn end_op(&self, tid: usize) {
        self.reserved_epoch[tid].store(QUIESCENT, Ordering::Release);
        self.pop.clear_local(tid);
        self.pop.note_quiescent(tid);
    }

    /// Alg. 3 `read()`: identical to HazardPtrPOP — private reservation,
    /// no fence. In epoch mode these reservations are ignored; they become
    /// load-bearing the moment a reclaimer escalates.
    #[inline]
    fn protect<T>(&self, tid: usize, slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        loop {
            let p = src.load(Ordering::Acquire);
            self.pop.set_local(tid, slot, unmark_word(p as u64));
            compiler_fence(Ordering::SeqCst);
            if src.load(Ordering::Acquire) == p {
                return Ok(p);
            }
        }
    }

    /// Alg. 3 `retire`: batched push; at the reclaim threshold an epoch
    /// pass, with POP escalation when the list stays above
    /// `C × reclaim_freq`.
    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.reclaim_epoch_freeable(tid, false);
            // Re-check *after* the epoch pass (Alg. 3 line 26): a long list
            // that epochs could not drain implicates a delayed thread. The
            // check runs even when decay thinned the epoch pass, so the
            // robust escalation is never delayed by the controller.
            let still = unsafe { self.threads[tid].retire.get() }.len();
            if still >= self.base.cfg.pop_c * self.base.cfg.reclaim_freq {
                self.reclaim_pop_freeable(tid);
            }
            // Ladder rung 2: the hard watermark converts retirement into
            // synchronous reclamation — nudge the suspects whose
            // conservatively-kept reservations inflate the keep set, then
            // bounded forced retries with a growing spin backoff.
            let mut tries = 0u32;
            while tries < HARD_RETRY_LIMIT
                && self.base.stats.pressure().rung() >= PressureRung::Hard
            {
                self.pop.reping_suspects(tid);
                for _ in 0..(64u32 << tries) {
                    core::hint::spin_loop();
                }
                self.reclaim_epoch_freeable(tid, true);
                tries += 1;
            }
        }
    }

    fn current_era(&self) -> u64 {
        self.clocks.current()
    }

    fn flush(&self, tid: usize) {
        self.reclaim_epoch_freeable(tid, true);
        if !unsafe { self.threads[tid].retire.get() }.is_empty() {
            self.reclaim_pop_freeable(tid);
        }
    }
}

impl Drop for EpochPop {
    fn drop(&mut self) {
        self.publisher.deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;
    use std::sync::atomic::AtomicBool;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &EpochPop, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn epoch_mode_reclaims_without_signals() {
        let smr = EpochPop::new(SmrConfig::for_tests(1).with_reclaim_freq(16));
        let reg = smr.register(0);
        for i in 0..200 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        let s = smr.stats().snapshot();
        assert!(s.epoch_passes >= 1, "epoch fast path ran");
        assert_eq!(
            s.pings_sent, 0,
            "undelayed workload must never escalate to signals — the \
             paper's headline property of EpochPOP"
        );
        assert!(s.freed_nodes > 0);
        drop(reg);
    }

    #[test]
    fn stalled_thread_triggers_pop_escalation_and_bounded_garbage() {
        // Signal path pinned — the escalation assertion counts pings.
        let cfg = SmrConfig::for_tests(2)
            .with_reclaim_freq(16)
            .with_pop_c(2)
            .with_publish_mode(crate::config::PublishMode::Futex);
        let smr = EpochPop::new(cfg);
        let reg0 = smr.register(0);
        let hot = alloc(&smr, 9);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let stalled = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                smr.begin_op(1); // announce an epoch and never advance
                let p = smr.protect(1, 0, &src).unwrap();
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                // The protected node must still be readable even though
                // thousands of epoch-mode frees were blocked and POP
                // reclaimed around us.
                assert_eq!(unsafe { (*p).v }, 9);
                smr.end_op(1);
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..4000u64 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        let s = smr.stats().snapshot();
        assert!(s.pop_passes >= 1, "stall must engage publish-on-ping");
        assert!(s.pings_sent >= 1);
        let bound = (smr.config().pop_c * smr.config().reclaim_freq
            + smr.config().max_threads * smr.config().slots) as u64;
        assert!(
            s.unreclaimed_nodes() <= bound,
            "garbage {} exceeds EpochPOP bound {} despite stalled reader",
            s.unreclaimed_nodes(),
            bound
        );
        hold.store(false, Ordering::Release);
        stalled.join().unwrap();
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg0);
    }

    #[test]
    fn flush_drains_via_both_modes() {
        let smr = EpochPop::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        smr.begin_op(0);
        for i in 0..10 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        // Still inside an op: epoch pass can't free everything, flush
        // escalates to POP which skips only the (empty) reserved set.
        smr.end_op(0);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }
}
