//! `NBR+` — neutralization-based reclamation (Singh, Brown & Mashtizadeh
//! 2021/2024), in the *cooperative* variant described in DESIGN.md (S2).
//!
//! NBR readers hold **no reservations at all** during read phases — the
//! fastest possible read path. Before writing, a thread publishes the few
//! pointers its write will touch (`begin_write`), with one fence. A
//! reclaimer *neutralizes* all other threads: in the original, the signal
//! handler `siglongjmp`s read-phase threads back to their operation entry;
//! here (longjmp across Rust frames is UB) the handler raises a per-thread
//! flag that readers consume at the next [`NbrPlus::protect`] /
//! [`NbrPlus::check_restart`], returning `Restart` so the operation unwinds
//! to its entry point and acknowledges via a restart counter.
//!
//! The reclaimer frees only after every other thread is (a) quiescent,
//! (b) began a fresh operation, (c) in a write phase (its reservations are
//! honored), or (d) acknowledged a restart — so no thread can still hold a
//! read-phase pointer obtained before the retirees were unlinked. This
//! preserves NBR's observable costs: reservation-free reads, and frequent
//! restarts of long-running read operations under reclamation pressure
//! (the paper's Figure 4 effect).

use core::sync::atomic::{
    fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use pop_runtime::signal::{ping_gtid, register_publisher};
use pop_runtime::{futex, PingOutcome, Publisher, PublisherHandle, Registry};

use crate::base::{free_unreserved, push_retired, DomainBase, RetireSlot, ScratchSlot};
use crate::config::SmrConfig;
use crate::header::{unmark_word, Header, Retired};
use crate::smr::{ReadResult, Restart, Smr};
use crate::stats::DomainStats;

/// Phase-2 park timeout. Every exit condition now wakes the progress word
/// (restart acks since PR 3; going-quiescent, write-phase entry and
/// deregistration since PR 4's waiter-flag checks in `end_op` /
/// `begin_write` / `unregister`), so the timeout is a pure liveness
/// backstop — long enough not to matter, short enough to bound a lost
/// wake.
const NBR_WAIT_TIMEOUT_NS: u64 = 1_000_000;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
}

/// Signal-handler-visible shared state (leaked, like `PopShared`).
struct NbrShared {
    nthreads: usize,
    slots: usize,
    /// Write-phase reservations, published in `begin_write`.
    wres: Box<[AtomicU64]>,
    /// Restart requested; consumed by the owner at the next checkpoint.
    neutralized: Box<[CachePadded<AtomicBool>]>,
    /// Owner is inside an operation.
    in_op: Box<[CachePadded<AtomicBool>]>,
    /// Owner is inside a write phase (reservations published).
    in_write: Box<[CachePadded<AtomicBool>]>,
    /// Restart acknowledgements.
    restart_seq: Box<[CachePadded<AtomicU64>]>,
    /// 32-bit futex key; phase-2 waiters park on it after their spin
    /// budget. Bumped on every restart acknowledgement, and — when a
    /// waiter has announced itself — by the going-quiescent, write-phase
    /// and deregistration exits ([`NbrShared::wake_phase2_waiters`]), so
    /// every exit wakes promptly and the wait's timeout is only a
    /// lost-signal backstop.
    progress: Box<[CachePadded<AtomicU32>]>,
    /// Waiters parked (or about to park) on `progress[t]`; the
    /// acknowledging thread skips the wake syscall when zero.
    wait_flag: Box<[CachePadded<AtomicU32>]>,
    /// Operation sequence numbers (bumped each `begin_op`): a change proves
    /// the thread went quiescent — equivalent to a restart for safety.
    op_seq: Box<[CachePadded<AtomicU64>]>,
    registered: Box<[AtomicBool]>,
    gtid_of: Box<[AtomicUsize]>,
    /// Registry generation captured at `bind_gtid`; `(gtid, generation)`
    /// names that registration forever, so liveness probes after the slot
    /// is recycled resolve to `Vacated`, never a false `Dead`.
    gtid_gen: Box<[AtomicU64]>,
    /// Set when a liveness probe confirms the owner's kernel thread is
    /// gone; consumed (CAS) by the reclaim path's reaper.
    peer_dead: Box<[AtomicBool]>,
    /// Whether the bound gtid was the calling thread's real registry slot
    /// at `bind_gtid` time ([`crate::base::registration_backed`]) — the
    /// license to read a later `Vacated` probe as death.
    gtid_backed: Box<[AtomicBool]>,
    stats: Arc<DomainStats>,
}

impl NbrShared {
    fn leak(nthreads: usize, slots: usize, stats: Arc<DomainStats>) -> &'static Self {
        fn padded_u64(n: usize) -> Box<[CachePadded<AtomicU64>]> {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
            v.into_boxed_slice()
        }
        fn padded_u32(n: usize) -> Box<[CachePadded<AtomicU32>]> {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, || CachePadded::new(AtomicU32::new(0)));
            v.into_boxed_slice()
        }
        fn padded_bool(n: usize) -> Box<[CachePadded<AtomicBool>]> {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, || CachePadded::new(AtomicBool::new(false)));
            v.into_boxed_slice()
        }
        let mut wres = Vec::with_capacity(nthreads * slots);
        wres.resize_with(nthreads * slots, || AtomicU64::new(0));
        let mut registered = Vec::with_capacity(nthreads);
        registered.resize_with(nthreads, || AtomicBool::new(false));
        let mut gtid_of = Vec::with_capacity(nthreads);
        gtid_of.resize_with(nthreads, || AtomicUsize::new(0));
        let mut gtid_gen = Vec::with_capacity(nthreads);
        gtid_gen.resize_with(nthreads, || AtomicU64::new(0));
        let mut peer_dead = Vec::with_capacity(nthreads);
        peer_dead.resize_with(nthreads, || AtomicBool::new(false));
        let mut gtid_backed = Vec::with_capacity(nthreads);
        gtid_backed.resize_with(nthreads, || AtomicBool::new(false));
        Box::leak(Box::new(NbrShared {
            nthreads,
            slots,
            wres: wres.into_boxed_slice(),
            neutralized: padded_bool(nthreads),
            in_op: padded_bool(nthreads),
            in_write: padded_bool(nthreads),
            restart_seq: padded_u64(nthreads),
            progress: padded_u32(nthreads),
            wait_flag: padded_u32(nthreads),
            op_seq: padded_u64(nthreads),
            registered: registered.into_boxed_slice(),
            gtid_of: gtid_of.into_boxed_slice(),
            gtid_gen: gtid_gen.into_boxed_slice(),
            peer_dead: peer_dead.into_boxed_slice(),
            gtid_backed: gtid_backed.into_boxed_slice(),
            stats,
        }))
    }

    fn clear_wres(&self, tid: usize) {
        for s in 0..self.slots {
            self.wres[tid * self.slots + s].store(0, Ordering::Release);
        }
    }

    /// Wakes phase-2 waiters parked on `tid`'s progress word, for the exit
    /// conditions that do not bump the word on their own: going quiescent
    /// (`end_op`), entering a write phase (`begin_write`) and
    /// deregistration (`unregister`). Costs **one shared load** when
    /// nobody waits (the common case — this is the ROADMAP's "waiter-flag
    /// check").
    ///
    /// Ordering: the caller must order its state change before this
    /// flag load with a `SeqCst` fence (Dekker). Pairing with the waiter's
    /// announce-then-recheck-then-park sequence: if this load misses the
    /// waiter's flag bump, the waiter's fence follows ours, so its
    /// pre-park re-check observes the state change and it never parks; if
    /// the load sees the flag, the word bump + wake either precede the
    /// park (kernel re-checks the word: `EAGAIN`) or hit a parked waiter.
    fn wake_phase2_waiters(&self, tid: usize) {
        if self.wait_flag[tid].load(Ordering::SeqCst) > 0 {
            self.progress[tid].fetch_add(1, Ordering::SeqCst);
            futex::wake_all(&self.progress[tid]);
        }
    }

    /// Phase 2's exit predicate for peer `t`: true once `t` provably holds
    /// no read-phase pointer predating the reclaimer's unlinks (see the
    /// five cases in the module docs).
    fn phase2_satisfied(&self, t: usize, seq0: u64, ops0: u64) -> bool {
        !self.registered[t].load(Ordering::Acquire) // deregistered
            || !self.in_op[t].load(Ordering::Acquire) // quiescent
            || self.in_write[t].load(Ordering::Acquire) // reservations honored
            || self.restart_seq[t].load(Ordering::Acquire) > seq0 // acked restart
            || self.op_seq[t].load(Ordering::Acquire) != ops0 // fresh operation
    }

    /// The `(gtid, generation)` pair naming slot `t`'s registration, if
    /// the slot is registered and bound.
    fn registration_of(&self, t: usize) -> Option<(usize, u64)> {
        if !self.registered[t].load(Ordering::Acquire) {
            return None;
        }
        match self.gtid_of[t].load(Ordering::Acquire) {
            0 => None,
            g => Some((g - 1, self.gtid_gen[t].load(Ordering::Acquire))),
        }
    }

    /// Probes slot `t`'s owner in the global registry; flags the slot for
    /// reaping only on a confirmed death of the *same* registration
    /// generation — a dead kernel tid, or a backed registration vacated by
    /// the dead thread's TLS teardown
    /// ([`crate::base::registration_confirmed_dead`]). Ambiguity leaves
    /// the flag alone — no reap is always correct (correct-by-keep).
    fn note_dead_if_confirmed(&self, t: usize) {
        if let Some((gtid, generation)) = self.registration_of(t) {
            let backed = self.gtid_backed[t].load(Ordering::Relaxed);
            if crate::base::registration_confirmed_dead(gtid, generation, backed) {
                self.peer_dead[t].store(true, Ordering::Release);
            }
        }
    }

    /// Consumes one dead-peer flag (CAS), handing its slot index to the
    /// caller's reap attempt.
    fn take_dead(&self) -> Option<usize> {
        (0..self.nthreads).find(|&t| {
            self.peer_dead[t]
                .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        })
    }

    /// Reaper-side `unregister` for a participant whose thread died inside
    /// an operation: clears every signal-handler-visible trace of the slot
    /// and wakes phase-2 waiters parked on it. Caller must hold the reap
    /// exclusivity (`DomainBase::try_begin_reap` + a won `Registry::reap`).
    fn force_unregister(&self, tid: usize) {
        self.in_write[tid].store(false, Ordering::Release);
        self.in_op[tid].store(false, Ordering::Release);
        self.neutralized[tid].store(false, Ordering::Release);
        self.clear_wres(tid);
        self.registered[tid].store(false, Ordering::Release);
        fence(Ordering::SeqCst);
        // Cold path: wake unconditionally so any reclaimer parked on the
        // dead slot's progress word re-checks `registered` now.
        self.progress[tid].fetch_add(1, Ordering::SeqCst);
        futex::wake_all(&self.progress[tid]);
        self.gtid_of[tid].store(0, Ordering::Release);
        self.gtid_backed[tid].store(false, Ordering::Relaxed);
    }
}

impl Publisher for NbrShared {
    /// Signal-handler side of neutralization: request a restart unless the
    /// pinged thread is in a write phase. Atomics + fence only.
    ///
    /// Registry slots recycle, so the gtid may still be bound by a dead
    /// thread's domain tid alongside the live claimant's; the claim
    /// generation captured at `bind_gtid` keeps this handler from acting
    /// on the corpse's binding (same guard as the POP publisher, where it
    /// is load-bearing — here it only keeps stats and neutralization
    /// flags honest, since the ack a reclaimer waits for must come from
    /// the bound thread itself).
    fn publish(&self, gtid: usize) {
        let current = Registry::global().generation_of(gtid);
        for t in 0..self.nthreads {
            if self.registered[t].load(Ordering::Acquire)
                && self.gtid_of[t].load(Ordering::Acquire) == gtid + 1
            {
                let stale = self.gtid_backed[t].load(Ordering::Relaxed)
                    && self.gtid_gen[t].load(Ordering::Relaxed) != current;
                if stale {
                    continue;
                }
                if !self.in_write[t].load(Ordering::Acquire) {
                    self.neutralized[t].store(true, Ordering::Release);
                }
                fence(Ordering::SeqCst);
                self.stats
                    .shard(t)
                    .publishes
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Cooperative neutralization-based reclamation.
pub struct NbrPlus {
    base: DomainBase,
    shared: &'static NbrShared,
    publisher: PublisherHandle,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl NbrPlus {
    /// Consumes a pending neutralization, acknowledging the restart (and
    /// waking any reclaimer parked on this thread's progress word).
    #[inline]
    fn consume_neutralization(&self, tid: usize) -> bool {
        let sh = self.shared;
        if sh.neutralized[tid].load(Ordering::Relaxed)
            && sh.neutralized[tid].swap(false, Ordering::AcqRel)
        {
            sh.restart_seq[tid].fetch_add(1, Ordering::Release);
            if self.base.cfg.futex_wait && futex::supported() {
                // Dekker with the phase-2 waiter: SeqCst bump before the
                // wait-flag load, so a parked reclaimer is always woken.
                // In yield mode no waiter parks; skip the bookkeeping.
                sh.progress[tid].fetch_add(1, Ordering::SeqCst);
                if sh.wait_flag[tid].load(Ordering::SeqCst) > 0 {
                    futex::wake_all(&sh.progress[tid]);
                }
            }
            self.base
                .stats
                .shard(tid)
                .restarts
                .fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn reclaim(&self, tid: usize) {
        let sh = self.shared;
        let shard = self.base.stats.shard(tid);
        shard.pop_passes.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);

        // Phase 1: snapshot progress counters, then request neutralization.
        // All buffers come from this thread's reusable scratch — the pass
        // allocates nothing in steady state.
        const SKIP: u64 = u64::MAX;
        // SAFETY: tid ownership per the registration contract.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        let seq0 = &mut scratch.counters;
        let ops0 = &mut scratch.op_counters;
        seq0.clear();
        seq0.resize(sh.nthreads, SKIP);
        ops0.clear();
        ops0.resize(sh.nthreads, 0);
        for t in 0..sh.nthreads {
            if t != tid && sh.registered[t].load(Ordering::Acquire) {
                seq0[t] = sh.restart_seq[t].load(Ordering::Acquire);
                ops0[t] = sh.op_seq[t].load(Ordering::Acquire);
            }
        }
        let mut pings = 0u64;
        let mut skipped = 0u64;
        let mut failed = 0u64;
        for (t, &s0) in seq0.iter().enumerate() {
            if s0 != SKIP {
                sh.neutralized[t].store(true, Ordering::SeqCst);
            }
        }
        fence(Ordering::SeqCst);
        for (t, s0) in seq0.iter_mut().enumerate() {
            if *s0 == SKIP {
                continue;
            }
            // Signal elision (NBR+'s optimization): a thread outside any
            // operation holds no read-phase pointers, and any operation it
            // begins concurrently observes our unlinks (its `begin_op`
            // ends in a SeqCst fence pairing with ours above) — no need to
            // interrupt it. Its write-phase reservations, if any appear,
            // are honored by the phase-3 scan regardless.
            if !sh.in_op[t].load(Ordering::SeqCst) {
                *s0 = SKIP;
                skipped += 1;
                continue;
            }
            if let Some(g) = match sh.gtid_of[t].load(Ordering::Acquire) {
                0 => None,
                g => Some(g - 1),
            } {
                match ping_gtid(g) {
                    PingOutcome::Sent => pings += 1,
                    PingOutcome::Inactive => {}
                    PingOutcome::Dead | PingOutcome::Failed(_) => {
                        // The peer never saw the neutralization request.
                        // Phase 2 still waits on it (bounded by the pass
                        // deadline below), and a confirmed kernel-level
                        // death arms the reaper.
                        failed += 1;
                        sh.note_dead_if_confirmed(t);
                    }
                }
            }
        }
        shard.pings_sent.fetch_add(pings, Ordering::Relaxed);
        shard.pings_skipped.fetch_add(skipped, Ordering::Relaxed);
        if failed > 0 {
            shard.pings_failed.fetch_add(failed, Ordering::Relaxed);
        }

        // Phase 2: wait until every peer provably holds no read-phase
        // pointer predating our unlinks (see module docs for the cases).
        // Bounded spin (SmrConfig::publish_spin) then park on the peer's
        // progress word: every exit wakes it — restart acks bump it
        // directly, and `end_op` / `begin_write` / `unregister` run the
        // waiter-flag check — so the park's timeout is only the backstop
        // for lost signals, not any exit's detection latency.
        let spin_limit = self.base.cfg.publish_spin;
        let use_futex = self.base.cfg.futex_wait && futex::supported();
        // Watchdog: bounded total wall clock for the whole phase-2 wait
        // (SmrConfig::publish_deadline_ns; 0 disables). Armed lazily on
        // the first spin-budget exhaustion so uncontended passes never
        // read the clock. On expiry the laggard could not be neutralized;
        // the pass degrades conservatively — phase 3 frees nothing and
        // every retiree is kept for a later pass (correct-by-keep) — and
        // a registry probe arms the reaper if the laggard's thread is
        // actually dead.
        let deadline_ns = self.base.cfg.publish_deadline_ns;
        let mut pass_deadline: Option<Instant> = None;
        let mut timeouts = 0u64;
        let mut timed_out = false;
        for t in 0..sh.nthreads {
            if seq0[t] == SKIP {
                continue;
            }
            let mut spins = 0u32;
            while !sh.phase2_satisfied(t, seq0[t], ops0[t]) {
                spins = spins.saturating_add(1);
                if spins <= spin_limit {
                    core::hint::spin_loop();
                    continue;
                }
                if deadline_ns > 0 {
                    let deadline = *pass_deadline
                        .get_or_insert_with(|| Instant::now() + Duration::from_nanos(deadline_ns));
                    if Instant::now() >= deadline {
                        timeouts += 1;
                        timed_out = true;
                        sh.note_dead_if_confirmed(t);
                        break;
                    }
                }
                if use_futex {
                    // Announce, read the word, re-check, park. A peer
                    // exit between the announce and the FUTEX_WAIT either
                    // lands in the re-check (its SeqCst fence follows our
                    // announce), changes the word (EAGAIN), or sees our
                    // flag and wakes us. The wait result is deliberately
                    // ignored: wall clock above decides expiry, so a
                    // spurious wake or a timed-out park are
                    // indistinguishable here — both just re-check.
                    sh.wait_flag[t].fetch_add(1, Ordering::SeqCst);
                    let w = sh.progress[t].load(Ordering::SeqCst);
                    if !sh.phase2_satisfied(t, seq0[t], ops0[t]) {
                        let _ = futex::wait_timeout(&sh.progress[t], w, NBR_WAIT_TIMEOUT_NS);
                    }
                    sh.wait_flag[t].fetch_sub(1, Ordering::SeqCst);
                } else {
                    std::thread::yield_now();
                }
            }
        }
        if timeouts > 0 {
            shard
                .publish_wait_timeouts
                .fetch_add(timeouts, Ordering::Relaxed);
        }
        fence(Ordering::SeqCst);

        // Reap at most one confirmed-dead participant per pass (cold
        // path; the CAS pair makes the reaper the slot's unique accessor).
        self.maybe_reap(tid);

        // Phase 3: honor write-phase reservations, free the rest. A
        // timed-out phase 2 proves nothing about the laggard's read-phase
        // pointers, so the pass frees NOTHING — the retire list simply
        // rides to the next pass (by which point the reaper has removed a
        // dead laggard, or a live one has caught up).
        if timed_out {
            // SAFETY: tid ownership per the registration contract.
            let list = unsafe { self.threads[tid].retire.get() };
            // Keep the retired-node accounting truthful: a normal pass
            // seals partial batches inside its sweep; a timed-out pass
            // must seal explicitly or everything kept this round would be
            // invisible to `unreclaimed_nodes`.
            crate::base::seal_and_account(&self.base, tid, list);
            shard.observe_retire_len(list.len());
            return;
        }
        let reserved = &mut scratch.reserved;
        reserved.clear();
        for t in 0..sh.nthreads {
            if !sh.registered[t].load(Ordering::Acquire) {
                continue;
            }
            for s in 0..sh.slots {
                let w = sh.wres[t * sh.slots + s].load(Ordering::Acquire);
                if w != 0 {
                    reserved.push(w);
                }
            }
        }
        reserved.sort_unstable();
        reserved.dedup();
        // SAFETY: tid ownership per the registration contract.
        let list = unsafe { self.threads[tid].retire.get() };
        shard.observe_retire_len(list.len());
        // SAFETY: phase 2 established no peer holds an unreserved pointer
        // to our (already unlinked) retirees.
        unsafe { free_unreserved(&self.base, tid, list, reserved) };
    }

    /// Reaps one participant whose kernel thread was confirmed dead: parks
    /// its remaining retires as orphans, releases its slot, and erases it
    /// from the signal-handler-visible state so phase 2 stops waiting on
    /// it. Exclusivity comes from the per-slot reap CAS plus re-confirming
    /// the death ([`crate::base::reap_registration`]) for that
    /// `(gtid, generation)`.
    fn maybe_reap(&self, tid: usize) {
        let sh = self.shared;
        let Some(t) = sh.take_dead() else { return };
        if t == tid || !self.base.try_begin_reap(t) {
            return;
        }
        let confirmed = match sh.registration_of(t) {
            Some((gtid, generation)) => {
                let backed = sh.gtid_backed[t].load(Ordering::Relaxed);
                crate::base::reap_registration(gtid, generation, backed)
            }
            None => false,
        };
        if confirmed {
            // Erase the handler-visible state first: `reap_participant`
            // ends by releasing the domain tid for reuse, and a new
            // claimant's registration must not race our teardown.
            sh.force_unregister(t);
            // SAFETY: the reap CAS plus the won registry reap make this
            // thread the unique accessor of the dead slot's single-owner
            // state; the owner's kernel task no longer exists.
            let list = unsafe { self.threads[t].retire.get() };
            self.base.reap_participant(tid, t, list);
        }
        self.base.end_reap(t);
    }
}

impl Smr for NbrPlus {
    const NAME: &'static str = "NBR+";
    const ROBUST: bool = true;
    const NEEDS_SIGNALS: bool = true;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let base = DomainBase::new(cfg);
        let shared = NbrShared::leak(n, base.cfg.slots, Arc::clone(&base.stats));
        let publisher = register_publisher(shared);
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&base.cfg),
                scratch: ScratchSlot::new(),
            })
        });
        Arc::new(NbrPlus {
            base,
            shared,
            publisher,
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.base.bind_gtid(tid, gtid);
        let sh = self.shared;
        sh.clear_wres(tid);
        sh.neutralized[tid].store(false, Ordering::Relaxed);
        sh.in_op[tid].store(false, Ordering::Relaxed);
        sh.in_write[tid].store(false, Ordering::Relaxed);
        sh.peer_dead[tid].store(false, Ordering::Relaxed);
        let generation = if gtid < pop_runtime::MAX_THREADS {
            Registry::global().generation_of(gtid)
        } else {
            0
        };
        sh.gtid_gen[tid].store(generation, Ordering::Relaxed);
        sh.gtid_backed[tid].store(crate::base::registration_backed(gtid), Ordering::Relaxed);
        sh.gtid_of[tid].store(gtid + 1, Ordering::Relaxed);
        sh.registered[tid].store(true, Ordering::Release);
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        let sh = self.shared;
        sh.in_write[tid].store(false, Ordering::Release);
        sh.in_op[tid].store(false, Ordering::Release);
        sh.clear_wres(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        sh.registered[tid].store(false, Ordering::Release);
        // Wake coverage for the deregistered exit (cold path: fence +
        // flag check unconditionally).
        fence(Ordering::SeqCst);
        sh.wake_phase2_waiters(tid);
        sh.gtid_of[tid].store(0, Ordering::Relaxed);
        self.base.clear_gtid(tid);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, tid: usize) {
        let sh = self.shared;
        // A fresh operation implicitly acknowledges any pending restart
        // request — we hold no pointers yet.
        sh.neutralized[tid].store(false, Ordering::Relaxed);
        sh.op_seq[tid].fetch_add(1, Ordering::Release);
        sh.in_op[tid].store(true, Ordering::SeqCst);
        // Two-SC-fence pairing with the reclaimer's fence before it reads
        // `in_op` (signal elision) or breaks its phase-2 wait: either the
        // reclaimer sees us in-op, or this operation's reads observe its
        // unlinks. A bare SeqCst store does not order our subsequent plain
        // loads on non-TSO targets.
        fence(Ordering::SeqCst);
    }

    #[inline]
    fn end_op(&self, tid: usize) {
        let sh = self.shared;
        sh.in_write[tid].store(false, Ordering::Release);
        sh.in_op[tid].store(false, Ordering::Release);
        if self.base.cfg.futex_wait && futex::supported() {
            // Wake coverage for the going-quiescent exit (ROADMAP item):
            // the fence orders the in_op clear before the waiter-flag
            // load (Dekker, see `wake_phase2_waiters`); a parked
            // reclaimer stops waiting on us now instead of riding the
            // timeout. In yield mode no waiter parks — skip both.
            fence(Ordering::SeqCst);
            sh.wake_phase2_waiters(tid);
        }
    }

    /// NBR's defining property: a read is a plain load plus one relaxed
    /// flag poll — no reservation, no fence. (The quarantine oracle runs at
    /// the data structure's deref points via `check_live`, not here.)
    #[inline]
    fn protect<T>(&self, tid: usize, _slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        if self.consume_neutralization(tid) {
            return Err(Restart);
        }
        Ok(src.load(Ordering::Acquire))
    }

    #[inline]
    fn check_restart(&self, tid: usize) -> Result<(), Restart> {
        if self.consume_neutralization(tid) {
            Err(Restart)
        } else {
            Ok(())
        }
    }

    /// Publish the write set with one fence and verify no neutralization
    /// raced in (Dekker with the reclaimer's flag-store/fence/scan).
    fn begin_write(&self, tid: usize, ptrs: &[*mut Header]) -> Result<(), Restart> {
        let sh = self.shared;
        assert!(
            ptrs.len() <= sh.slots,
            "write set of {} exceeds {} reservation slots",
            ptrs.len(),
            sh.slots
        );
        let base_idx = tid * sh.slots;
        for (i, &p) in ptrs.iter().enumerate() {
            sh.wres[base_idx + i].store(unmark_word(p as u64), Ordering::Release);
        }
        for s in ptrs.len()..sh.slots {
            sh.wres[base_idx + s].store(0, Ordering::Release);
        }
        sh.in_write[tid].store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        if self.consume_neutralization(tid) {
            sh.in_write[tid].store(false, Ordering::Release);
            sh.clear_wres(tid);
            return Err(Restart);
        }
        if self.base.cfg.futex_wait && futex::supported() {
            // Wake coverage for the entered-write-phase exit: the fence
            // above already orders the in_write store before the flag
            // load; a parked reclaimer proceeds to honor our published
            // reservations instead of riding the timeout.
            sh.wake_phase2_waiters(tid);
        }
        Ok(())
    }

    fn end_write(&self, tid: usize) {
        let sh = self.shared;
        sh.in_write[tid].store(false, Ordering::Release);
        sh.clear_wres(tid);
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            debug_assert!(
                self.shared.in_write[tid].load(Ordering::Relaxed),
                "NBR retire must be called inside a begin_write bracket"
            );
            self.reclaim(tid);
        }
    }

    fn flush(&self, tid: usize) {
        // Flush runs at shutdown/test boundaries, outside operations; mark
        // the write phase so concurrent reclaimers skip waiting on us.
        let sh = self.shared;
        let was = sh.in_write[tid].swap(true, Ordering::SeqCst);
        self.reclaim(tid);
        sh.in_write[tid].store(was, Ordering::Release);
    }
}

impl Drop for NbrPlus {
    fn drop(&mut self) {
        self.publisher.deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::{as_header, retire_node};
    use std::sync::atomic::AtomicBool as StdBool;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &NbrPlus, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(0, core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn reads_carry_no_reservations() {
        let smr = NbrPlus::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        smr.begin_op(0);
        let node = alloc(&smr, 1);
        let src = AtomicPtr::new(node);
        let p = smr.protect(0, 0, &src).unwrap();
        assert_eq!(p, node);
        let any_res =
            (0..smr.shared.slots).any(|s| smr.shared.wres[s].load(Ordering::Acquire) != 0);
        assert!(!any_res, "read phase must not reserve");
        smr.end_op(0);
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }

    #[test]
    fn neutralization_restarts_reader_and_reclaims() {
        let smr = NbrPlus::new(SmrConfig::for_tests(2).with_reclaim_freq(8));
        let reg0 = smr.register(0);
        let stop = Arc::new(StdBool::new(false));
        let restarted = Arc::new(StdBool::new(false));
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let stop = Arc::clone(&stop);
            let restarted = Arc::clone(&restarted);
            move || {
                let reg1 = smr.register(1);
                ready_tx.send(()).unwrap();
                let dummy = AtomicPtr::new(core::ptr::null_mut::<N>());
                while !stop.load(Ordering::Acquire) {
                    smr.begin_op(1);
                    // Long-running read: poll protect in a loop.
                    for _ in 0..64 {
                        if smr.protect(1, 0, &dummy).is_err() {
                            restarted.store(true, Ordering::Release);
                            break;
                        }
                    }
                    smr.end_op(1);
                }
                drop(reg1);
            }
        });
        ready_rx.recv().unwrap();
        // Writer retires enough to trip multiple neutralization rounds.
        smr.begin_op(0);
        smr.begin_write(0, &[]).unwrap();
        for i in 0..256 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.end_write(0);
        smr.end_op(0);
        let s = smr.stats().snapshot();
        // Signal elision may skip a reader caught between operations; every
        // neutralization round either pings it or proves it quiescent.
        assert!(
            s.pings_sent + s.pings_skipped >= 1,
            "reclaimer must ping or elide: {s:?}"
        );
        assert!(s.freed_nodes > 0, "reclaimer must free");
        stop.store(true, Ordering::Release);
        reader.join().unwrap();
        drop(reg0);
        let s = smr.stats().snapshot();
        assert!(
            s.restarts >= 1 || !restarted.load(Ordering::Acquire),
            "if the reader observed a restart, the counter must agree"
        );
    }

    #[test]
    fn write_reservations_are_honored() {
        let smr = NbrPlus::new(SmrConfig::for_tests(2).with_reclaim_freq(4));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        // Thread 1 enters a write phase holding a reservation on `hot`.
        let hot = alloc(&smr, 7);
        smr.begin_op(1);
        smr.begin_write(1, &[as_header(hot)]).unwrap();
        // Thread 0 retires hot + filler; reclamation must keep `hot`.
        smr.begin_op(0);
        smr.begin_write(0, &[]).unwrap();
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.end_write(0);
        smr.end_op(0);
        smr.flush(0);
        assert_eq!(
            smr.stats().snapshot().unreclaimed_nodes(),
            1,
            "write-reserved node must survive"
        );
        // Thread 1 leaves its write phase; now it frees.
        smr.end_write(1);
        smr.end_op(1);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn begin_write_detects_racing_neutralization() {
        let smr = NbrPlus::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        smr.begin_op(0);
        // Simulate a reclaimer's flag arriving before the write phase.
        smr.shared.neutralized[0].store(true, Ordering::SeqCst);
        let r = smr.begin_write(0, &[]);
        assert_eq!(r, Err(Restart), "racing neutralization must abort");
        assert!(
            !smr.shared.in_write[0].load(Ordering::Acquire),
            "aborted write phase must roll back"
        );
        smr.end_op(0);
        drop(reg);
    }

    #[test]
    fn quiescent_exit_wakes_parked_phase2_waiter_promptly() {
        // The PR-4 wake-coverage fix: a reclaimer parked in phase 2
        // (publish_spin 0 → immediate park) must be FUTEX_WAKEd by the
        // peer's going-quiescent `end_op`, not left to ride the 1 ms
        // timeout backstop. The reader waits until the waiter has
        // announced itself before ending its op and timestamps that
        // moment; the median park-to-return latency must sit well under
        // the timeout (a missing wake pays the full 1 ms every round).
        if !futex::supported() {
            return; // nothing ever parks off Linux
        }
        // Futex mode forced explicitly: this test measures the futex wake
        // path, and in yield mode (e.g. the POP_FUTEX_WAIT=off CI leg) no
        // waiter ever announces itself — the reader would spin forever.
        let smr = NbrPlus::new(
            SmrConfig::for_tests(2)
                .with_publish_spin(0)
                .with_futex_wait(true),
        );
        let reg0 = smr.register(0);
        const ROUNDS: usize = 9;
        let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
        let (inop_tx, inop_rx) = std::sync::mpsc::channel::<()>();
        let (t0_tx, t0_rx) = std::sync::mpsc::channel::<std::time::Instant>();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            move || {
                let reg1 = smr.register(1);
                for _ in 0..ROUNDS {
                    go_rx.recv().unwrap();
                    smr.begin_op(1);
                    inop_tx.send(()).unwrap();
                    // Hold the read phase until the reclaimer's phase-2
                    // waiter has announced itself on our progress word
                    // (it parks right after, or its pre-park re-check
                    // sees the end_op — prompt either way).
                    while smr.shared.wait_flag[1].load(Ordering::SeqCst) == 0 {
                        std::hint::spin_loop();
                    }
                    let t0 = std::time::Instant::now();
                    smr.end_op(1);
                    t0_tx.send(t0).unwrap();
                }
                drop(reg1);
            }
        });
        let mut lat_ns: Vec<u64> = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            go_tx.send(()).unwrap();
            inop_rx.recv().unwrap();
            // flush runs a full reclamation pass: phase 1 pings the
            // in-op reader (which never checkpoints, so never acks) and
            // phase 2 blocks on it until its end_op.
            smr.flush(0);
            let done = std::time::Instant::now();
            let t0 = t0_rx.recv().unwrap();
            lat_ns.push(done.duration_since(t0).as_nanos() as u64);
        }
        reader.join().unwrap();
        drop(reg0);
        lat_ns.sort_unstable();
        let median = lat_ns[ROUNDS / 2];
        assert!(
            median < NBR_WAIT_TIMEOUT_NS / 2,
            "going-quiescent exit must wake the parked waiter well under \
             the {NBR_WAIT_TIMEOUT_NS} ns timeout backstop; median {median} ns \
             (all: {lat_ns:?})"
        );
    }

    #[test]
    fn phase2_deadline_unwedges_stuck_peer_and_keeps_everything() {
        // A peer wedged in a read phase (never checkpointing, never
        // acking) must not hang the reclaimer forever: the pass deadline
        // expires, the pass frees NOTHING (correct-by-keep), and — the
        // peer's thread being alive — nothing is reaped. Once the peer
        // goes quiescent, the next pass frees normally.
        let smr = NbrPlus::new(
            SmrConfig::for_tests(2)
                .with_publish_spin(8)
                .with_publish_deadline_ns(30_000_000),
        );
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        // Wedge slot 1: in-op, never consuming its neutralization flag.
        // (Both slots are owned by this test thread, which is alive, so
        // the timeout's registry probe must NOT arm the reaper.)
        smr.shared.op_seq[1].fetch_add(1, Ordering::Release);
        smr.shared.in_op[1].store(true, Ordering::SeqCst);
        smr.begin_op(0);
        smr.begin_write(0, &[]).unwrap();
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.end_write(0);
        smr.end_op(0);
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert!(
            s.publish_wait_timeouts >= 1,
            "wedged peer must trip the pass deadline: {s:?}"
        );
        assert_eq!(
            s.unreclaimed_nodes(),
            8,
            "a timed-out pass must free nothing"
        );
        assert_eq!(s.participants_reaped, 0, "live peer must not be reaped");
        // Neutralization raised a restart request on the wedged slot;
        // consume it the cooperative way, then go quiescent.
        smr.shared.neutralized[1].store(false, Ordering::SeqCst);
        smr.shared.in_op[1].store(false, Ordering::SeqCst);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn check_restart_consumes_flag_once() {
        let smr = NbrPlus::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        smr.begin_op(0);
        smr.shared.neutralized[0].store(true, Ordering::SeqCst);
        assert_eq!(smr.check_restart(0), Err(Restart));
        assert_eq!(smr.check_restart(0), Ok(()), "flag consumed");
        smr.end_op(0);
        drop(reg);
    }
}
