//! `NR` — no reclamation.
//!
//! Retired nodes are leaked. This is the paper's `NR` series: an upper
//! bound on throughput (zero reclamation overhead) and an unbounded lower
//! bound on memory. Useful as the normalization baseline of Figure 4.
//!
//! NR still retires through the shared batch pipeline: nodes fill a block,
//! the seal runs the amortized accounting, and the sealed block is then
//! *abandoned* (its records leaked, its box recycled) — so even the leak
//! baseline pays only one stats RMW per batch.

use core::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::base::{account_seal, seal_and_account, DomainBase, RetireSlot};
use crate::config::SmrConfig;
use crate::header::Retired;
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

/// Leaky "reclamation": every retire is a leak.
pub struct NoReclaim {
    base: DomainBase,
    threads: Box<[CachePadded<RetireSlot>]>,
}

impl Smr for NoReclaim {
    const NAME: &'static str = "NR";
    const ROBUST: bool = false;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || CachePadded::new(RetireSlot::for_cfg(&cfg)));
        Arc::new(NoReclaim {
            base: DomainBase::new(cfg),
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
    }

    fn unregister(&self, tid: usize) {
        self.flush(tid);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, _tid: usize) {}

    #[inline]
    fn end_op(&self, _tid: usize) {}

    #[inline]
    fn protect<T>(&self, _tid: usize, _slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        Ok(src.load(Ordering::Acquire))
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].get() };
        if let Some(outcome) = list.push(retired) {
            account_seal(&self.base, tid, outcome);
            // Deliberate leak: NR never frees. `Retired` has no Drop impl,
            // so abandoning the sealed records leaks the allocations while
            // the block box recycles into the fill pool.
            list.leak_sealed_blocks();
        }
    }

    fn flush(&self, tid: usize) {
        // SAFETY: tid ownership (flush runs on the owning thread).
        let list = unsafe { self.threads[tid].get() };
        seal_and_account(&self.base, tid, list);
        list.leak_sealed_blocks();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    #[test]
    fn nr_leaks_by_design() {
        let smr = NoReclaim::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        for i in 0..10u64 {
            let p = Box::into_raw(Box::new(N {
                hdr: Header::new(0, core::mem::size_of::<N>()),
                v: i,
            }));
            smr.note_alloc(0, core::mem::size_of::<N>());
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.retired_nodes, 10);
        assert_eq!(s.freed_nodes, 0, "NR must never free");
        assert_eq!(s.unreclaimed_nodes(), 10);
        drop(reg);
    }

    #[test]
    fn protect_is_plain_load() {
        let smr = NoReclaim::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let node = Box::into_raw(Box::new(N {
            hdr: Header::new(0, 0),
            v: 9,
        }));
        let src = AtomicPtr::new(node);
        let got = smr.protect(0, 0, &src).unwrap();
        assert_eq!(got, node);
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }
}
