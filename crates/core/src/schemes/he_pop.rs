//! **`HazardEraPOP`** — hazard eras with publish-on-ping (paper Appendix
//! B.2, Alg. 5).
//!
//! Like [`crate::schemes::he::HazardEra`], readers reserve eras — but
//! privately, with relaxed stores and *no fence even on era change*
//! (Alg. 5 line 16: "no store load fence needed"). Reservations reach
//! reclaimers through the ping → signal-handler → publish path shared with
//! HazardPtrPOP. Before pinging, the reclaimer advances the global era so
//! that reservations made after the ping cannot cover the retiring nodes'
//! lifespans (the safety argument of Property 6 relies on this advance).

use core::sync::atomic::{compiler_fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use pop_runtime::signal::register_publisher;
use pop_runtime::PublisherHandle;

use crate::base::{
    free_era_unreserved_with_stalled, push_retired, DomainBase, RetireSlot, ScratchSlot,
};
use crate::config::SmrConfig;
use crate::header::Retired;
use crate::pop_shared::PopShared;
use crate::pressure::{PressureRung, HARD_RETRY_LIMIT, STALLED_AFTER_PASSES};
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
}

/// Hazard eras that publish reservations on ping.
pub struct HazardEraPop {
    base: DomainBase,
    era: CachePadded<AtomicU64>,
    /// Era words (0 = NONE) flowing local → shared on ping.
    pop: &'static PopShared,
    publisher: PublisherHandle,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl HazardEraPop {
    fn pop_reclaim(&self, tid: usize) {
        let shard = self.base.stats.shard(tid);
        shard.pop_passes.fetch_add(1, Ordering::Relaxed);
        // Advance the era before pinging (see module docs).
        self.era.fetch_add(1, Ordering::AcqRel);
        // SAFETY: tid ownership per the registration contract.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        self.pop.ping_all_and_wait(tid, &mut scratch.counters);
        // Reap a confirmed-dead participant before scanning — its era
        // reservations protect nothing and its slot is recovered now.
        self.pop.reap_one_dead(&self.base, tid, |t| {
            // SAFETY: `reap_one_dead` established exclusivity (won reap
            // CAS + registry-confirmed death of the owner).
            unsafe { self.threads[t].retire.get() }
        });
        self.pop.collect_reserved_into(&mut scratch.reserved);
        // Stall tracking over *published* words: a pinged reader stuck on
        // one era keeps republishing the same signature. Under the
        // emergency rung, split out the non-stalled threads' reservations
        // and elect the stalled reader with the lowest pinned era.
        let emergency = self.base.stats.pressure().rung() >= PressureRung::Emergency;
        let mut blocker: Option<(usize, u64)> = None;
        for t in 0..self.base.cfg.max_threads {
            if !self.base.is_registered(t) {
                continue;
            }
            let sig = self.pop.shared_word_signature(t);
            let stalled = self.base.stall.observe(t, sig) >= STALLED_AFTER_PASSES && sig != 0;
            if emergency && stalled && blocker.is_none_or(|(_, bw)| sig < bw) {
                blocker = Some((t, sig));
            }
        }
        let active = blocker.map(|(bt, bw)| {
            self.pop
                .collect_reserved_into_filtered(&mut scratch.active, |t| {
                    !self.base.stall.is_stalled(t)
                });
            (scratch.active.as_slice(), bt, bw)
        });
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        // Ladder rung 3 unwind: blocks parked on an era the blocker no
        // longer publishes (or a reaped blocker) rejoin the list and are
        // re-filtered against the full union below.
        self.base
            .reclaim_released_quarantine(tid, list, |t, w| self.pop.holds_shared_word(t, w));
        shard.observe_retire_len(list.len());
        // SAFETY: all threads published, deregistered, or were provably
        // quiescent holding no era reservations; `reserved` holds every era
        // any thread may rely on. The active split never frees: blocks
        // pinned only by the stalled blocker's eras are parked, not freed.
        unsafe {
            free_era_unreserved_with_stalled(&self.base, tid, list, &scratch.reserved, active)
        };
    }
}

impl Smr for HazardEraPop {
    const NAME: &'static str = "HazardEraPOP";
    const ROBUST: bool = true;
    const NEEDS_SIGNALS: bool = true;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let base = DomainBase::new(cfg);
        let pop = PopShared::leak(
            n,
            base.cfg.slots,
            Arc::clone(&base.stats),
            true,
            base.cfg.publish_spin,
            base.cfg.futex_wait,
            base.cfg.publish_deadline_ns,
            base.cfg.resolved_publish_mode() == crate::config::PublishMode::Membarrier,
        );
        let publisher = register_publisher(pop);
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&base.cfg),
                scratch: ScratchSlot::new(),
            })
        });
        Arc::new(HazardEraPop {
            base,
            era: CachePadded::new(AtomicU64::new(1)),
            pop,
            publisher,
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.base.bind_gtid(tid, gtid);
        self.pop.register(tid, gtid);
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.pop.clear_local(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.pop.unregister(tid);
        self.base.clear_gtid(tid);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, tid: usize) {
        // Activity word → odd so reclaimers ping us (quiescent filter).
        self.pop.note_active(tid);
    }

    #[inline]
    fn end_op(&self, tid: usize) {
        // Alg. 5 clear(): local era slots back to NONE.
        self.pop.clear_local(tid);
        self.pop.note_quiescent(tid);
    }

    /// Alg. 5 `read()`: reserve the era locally; no fence on era change.
    #[inline]
    fn protect<T>(&self, tid: usize, slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        let mut prev_era = self.pop.local_at(tid, slot);
        loop {
            let p = src.load(Ordering::Acquire);
            let e = self.era.load(Ordering::Acquire);
            if e == prev_era {
                return Ok(p);
            }
            self.pop.set_local(tid, slot, e);
            compiler_fence(Ordering::SeqCst);
            prev_era = e;
        }
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.pop_reclaim(tid);
            // Ladder rung 2: nudge suspects (whose conservatively-kept
            // reservations inflate the keep set), then bounded synchronous
            // retries while the hard watermark stays breached.
            let mut tries = 0u32;
            while tries < HARD_RETRY_LIMIT
                && self.base.stats.pressure().rung() >= PressureRung::Hard
            {
                self.pop.reping_suspects(tid);
                for _ in 0..(64u32 << tries) {
                    core::hint::spin_loop();
                }
                self.pop_reclaim(tid);
                tries += 1;
            }
        }
    }

    fn current_era(&self) -> u64 {
        self.era.load(Ordering::Acquire)
    }

    fn flush(&self, tid: usize) {
        self.pop_reclaim(tid);
    }
}

impl Drop for HazardEraPop {
    fn drop(&mut self) {
        self.publisher.deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;
    use std::sync::atomic::AtomicBool;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &HazardEraPop, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn local_era_reservation_is_private() {
        let smr = HazardEraPop::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let node = alloc(&smr, 1);
        let src = AtomicPtr::new(node);
        let _ = smr.protect(0, 0, &src).unwrap();
        assert_eq!(smr.pop.local_at(0, 0), smr.current_era());
        assert!(smr.pop.collect_reserved().is_empty(), "nothing shared yet");
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }

    #[test]
    fn pinged_reader_era_blocks_freeing() {
        // Signal path pinned — this test asserts an actual ping landed.
        let smr = HazardEraPop::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(4)
                .with_publish_mode(crate::config::PublishMode::Futex),
        );
        let reg0 = smr.register(0);
        let hot = alloc(&smr, 7);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                let p = smr.protect(1, 0, &src).unwrap();
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                assert_eq!(unsafe { (*p).v }, 7, "node alive under reserved era");
                smr.end_op(1);
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert!(s.pings_sent >= 1);
        assert!(
            s.unreclaimed_nodes() >= 1,
            "hot node's lifespan intersects the reader's published era"
        );
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg0);
    }

    #[test]
    fn era_advances_before_ping() {
        let smr = HazardEraPop::new(SmrConfig::for_tests(1).with_reclaim_freq(2));
        let reg = smr.register(0);
        let e0 = smr.current_era();
        for i in 0..4 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        assert!(smr.current_era() > e0, "reclaim must advance the era");
        drop(reg);
    }
}
