//! `IBR` — interval-based reclamation, 2GE variant (Wen et al. 2018).
//!
//! Each thread publishes one reservation *interval* `[lower, upper]` of
//! epochs instead of per-slot eras. `begin_op` announces the current epoch
//! as both bounds; each protected read raises `upper` to the current epoch
//! (with an ordered store only when the epoch changed — the same
//! amortization as hazard eras, but with a single interval per thread).
//! A node is freeable when its `[birth_era, retire_era]` lifespan
//! intersects no thread's interval.

use core::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::base::{
    full_mask, push_retired, sweep_blocks, BlockPlan, DomainBase, EpochClocks, RetireSlot,
    ScratchSlot,
};
use crate::config::SmrConfig;
use crate::controller::{PassAction, PassController};
use crate::header::Retired;
use crate::pressure::{PressureRung, HARD_RETRY_LIMIT, STALLED_AFTER_PASSES};
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

/// Interval bound announced while quiescent.
const QUIESCENT: u64 = u64::MAX;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
    op_count: AtomicU64,
}

/// 2GE interval-based reclamation.
pub struct Ibr {
    base: DomainBase,
    clocks: EpochClocks,
    /// Epoch-cadence decay (adaptive controller).
    ctl: PassController,
    lower: Box<[CachePadded<AtomicU64>]>,
    upper: Box<[CachePadded<AtomicU64>]>,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl Ibr {
    /// Stall-aware interval collection: every registered lower bound feeds
    /// the domain stall tracker (ages accrue before the emergency rung
    /// engages). Under the emergency rung the non-stalled intervals are
    /// split into `active` and the stalled reader with the lowest pinned
    /// bound is elected blocker; otherwise `active` is left empty and no
    /// blocker is returned.
    fn collect_intervals_into(
        &self,
        out: &mut Vec<(u64, u64)>,
        active: &mut Vec<(u64, u64)>,
    ) -> Option<(usize, u64)> {
        let emergency = self.base.stats.pressure().rung() >= PressureRung::Emergency;
        out.clear();
        active.clear();
        let mut blocker: Option<(usize, u64)> = None;
        for t in 0..self.base.cfg.max_threads {
            if !self.base.is_registered(t) {
                continue;
            }
            let lo = self.lower[t].load(Ordering::SeqCst);
            let hi = self.upper[t].load(Ordering::SeqCst);
            // Quiescent is idle, never stalled; live lower bounds shift by
            // one so a reader pinned at epoch 0 stays distinguishable.
            let sig = if lo == QUIESCENT {
                0
            } else {
                lo.wrapping_add(1)
            };
            let stalled =
                self.base.stall.observe(t, sig) >= STALLED_AFTER_PASSES && lo != QUIESCENT;
            if lo == QUIESCENT {
                continue;
            }
            out.push((lo, hi));
            if !emergency {
                continue;
            }
            if stalled {
                if blocker.is_none_or(|(_, bw)| lo < bw) {
                    blocker = Some((t, lo));
                }
            } else {
                active.push((lo, hi));
            }
        }
        blocker
    }

    /// One interval pass. Retire-triggered passes honor decay thinning;
    /// flush/unregister passes are always full.
    fn reclaim(&self, tid: usize, forced: bool) {
        let rung = self.base.stats.pressure().rung();
        if rung >= PressureRung::Soft {
            // Ladder rung 1: pressure overrides the barren-pass economy.
            self.ctl.cancel_decay();
        }
        let action = if forced || rung >= PressureRung::Soft {
            self.ctl.begin_forced_pass()
        } else {
            self.ctl.begin_pass()
        };
        if action == PassAction::Thinned {
            return;
        }
        // Advance the epoch (reclaimer-side max-aggregation; the self-tick
        // keeps nodes retired from now on separable from old intervals).
        self.clocks.advance_max_scan(tid);
        fence(Ordering::SeqCst);
        // SAFETY: tid ownership per the registration contract.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        let blocker =
            self.collect_intervals_into(&mut scratch.intervals, &mut scratch.active_intervals);
        let intervals = &scratch.intervals;
        let active = &scratch.active_intervals;
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        // Ladder rung 3 unwind: blocks parked on a lower bound that moved
        // (or a reaped blocker) rejoin the list for re-filtering below.
        self.base.reclaim_released_quarantine(tid, list, |t, w| {
            self.lower[t].load(Ordering::SeqCst) == w
        });
        self.base.stats.shard(tid).observe_retire_len(list.len());
        // SAFETY: a node whose lifespan intersects no announced interval
        // cannot have been acquired by any thread. Quarantine (emergency
        // rung) parks blocks that some interval pins but no *non-stalled*
        // interval touches — the envelope test is sound because every
        // member lifespan lies inside the block envelope.
        let freed = unsafe {
            sweep_blocks(&self.base, tid, list, |b| {
                let n = b.len();
                let mut mask = 0u32;
                for (i, r) in b.nodes().iter().enumerate() {
                    let birth = r.header().birth_era;
                    let retire = r.header().retire_era();
                    if intervals
                        .iter()
                        .any(|&(lo, hi)| birth <= hi && retire >= lo)
                    {
                        mask |= 1u32 << i;
                    }
                }
                if mask & full_mask(n) == 0 {
                    // Fully freeable: never quarantine what can be freed.
                    return BlockPlan::Mask(0);
                }
                if let Some((blocker_tid, word)) = blocker {
                    let (min_birth, _, max_retire) = b.era_ranges();
                    if active
                        .iter()
                        .all(|&(lo, hi)| !(min_birth <= hi && max_retire >= lo))
                    {
                        return BlockPlan::Quarantine { blocker_tid, word };
                    }
                }
                BlockPlan::Mask(mask)
            })
        };
        if self.ctl.note_pass_outcome(freed) {
            self.base
                .stats
                .shard(tid)
                .epoch_decay_steps
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Smr for Ibr {
    const NAME: &'static str = "IBR";
    const ROBUST: bool = true;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let mut lower = Vec::with_capacity(n);
        lower.resize_with(n, || CachePadded::new(AtomicU64::new(QUIESCENT)));
        let mut upper = Vec::with_capacity(n);
        upper.resize_with(n, || CachePadded::new(AtomicU64::new(QUIESCENT)));
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&cfg),
                scratch: ScratchSlot::new(),
                op_count: AtomicU64::new(0),
            })
        });
        Arc::new(Ibr {
            clocks: EpochClocks::new(n),
            ctl: PassController::new(cfg.adaptive),
            lower: lower.into_boxed_slice(),
            upper: upper.into_boxed_slice(),
            threads: threads.into_boxed_slice(),
            base: DomainBase::new(cfg),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        self.lower[tid].store(QUIESCENT, Ordering::SeqCst);
        self.upper[tid].store(QUIESCENT, Ordering::SeqCst);
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.end_op(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, tid: usize) {
        let ts = &self.threads[tid];
        let c = ts.op_count.load(Ordering::Relaxed) + 1;
        ts.op_count.store(c, Ordering::Relaxed);
        if self.ctl.tick_due(c, self.base.cfg.epoch_freq as u64) {
            // Private clock tick — no shared RMW on the op path.
            self.clocks.tick(tid);
        }
        let e = self.clocks.current();
        self.lower[tid].store(e, Ordering::Relaxed);
        // SeqCst on the second bound orders the whole announcement before
        // subsequent reads (one fence per operation, as in EBR).
        self.upper[tid].store(e, Ordering::SeqCst);
    }

    #[inline]
    fn end_op(&self, tid: usize) {
        self.lower[tid].store(QUIESCENT, Ordering::Release);
        self.upper[tid].store(QUIESCENT, Ordering::Release);
    }

    /// IBR's tagged read: raise `upper` (with an ordered store) only when
    /// the global epoch moved since this thread's last announcement.
    #[inline]
    fn protect<T>(&self, tid: usize, _slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        let upper = &self.upper[tid];
        let mut cur = upper.load(Ordering::Relaxed);
        loop {
            let p = src.load(Ordering::Acquire);
            let e = self.clocks.current();
            if e == cur {
                return Ok(p);
            }
            // Epoch changed mid-read: extend the interval and re-read so
            // the returned pointer's read is covered by the reservation.
            upper.store(e, Ordering::SeqCst);
            cur = e;
        }
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.reclaim(tid, false);
            // Ladder rung 2: bounded synchronous retries while the hard
            // watermark stays breached, with a growing spin backoff.
            let mut tries = 0u32;
            while tries < HARD_RETRY_LIMIT
                && self.base.stats.pressure().rung() >= PressureRung::Hard
            {
                for _ in 0..(64u32 << tries) {
                    core::hint::spin_loop();
                }
                self.reclaim(tid, true);
                tries += 1;
            }
        }
    }

    fn current_era(&self) -> u64 {
        self.clocks.current()
    }

    fn flush(&self, tid: usize) {
        self.reclaim(tid, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &Ibr, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn quiescent_thread_blocks_nothing() {
        let smr = Ibr::new(SmrConfig::for_tests(2).with_reclaim_freq(8));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1); // registered but quiescent
        for i in 0..32 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn old_interval_blocks_intersecting_nodes() {
        let smr = Ibr::new(SmrConfig::for_tests(2).with_reclaim_freq(4));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        // Thread 1 opens an interval at the current epoch and stays in-op.
        smr.begin_op(1);
        let hot = alloc(&smr, 7);
        let src = AtomicPtr::new(hot);
        let _ = smr.protect(1, 0, &src).unwrap();
        // Thread 0 retires `hot`: lifespan [now, now] intersects t1's
        // interval → must be retained.
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        assert!(smr.stats().snapshot().unreclaimed_nodes() >= 1);
        // Thread 1 leaves; everything drains.
        smr.end_op(1);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn interval_extends_on_epoch_change() {
        let smr = Ibr::new(SmrConfig::for_tests(1).with_epoch_freq(1));
        let reg = smr.register(0);
        smr.begin_op(0);
        let lo0 = smr.lower[0].load(Ordering::SeqCst);
        // Advance the epoch underneath the running op, through the
        // sanctioned path: tick the clock, aggregate as a reclaimer would.
        for _ in 0..5 {
            smr.clocks.tick(0);
        }
        smr.clocks.advance_max_scan(0);
        let node = alloc(&smr, 1);
        let src = AtomicPtr::new(node);
        let _ = smr.protect(0, 0, &src).unwrap();
        let hi = smr.upper[0].load(Ordering::SeqCst);
        assert!(hi >= lo0 + 5, "upper bound must chase the epoch");
        assert_eq!(smr.lower[0].load(Ordering::SeqCst), lo0, "lower pinned");
        smr.end_op(0);
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }
}
