//! `Hyaline-1` — batched reference counting in the Hyaline/Crystalline
//! family (Nikolaev & Ravindran), the stand-in for the paper's appendix
//! Crystalline comparison (DESIGN.md substitution S4).
//!
//! Readers pay one fetch-and-add on a shared word at operation entry and
//! one at exit — the family's signature cost profile (no per-read work, but
//! op-boundary contention on shared counters, unlike EBR's per-thread
//! announcements). Retired nodes are sealed into *batches* pushed onto a
//! global list; a batch carries a reference count equal to the number of
//! readers active at push time, and each such reader decrements it on exit.
//! Whoever brings the count to zero frees the whole batch — reclamation is
//! fully asynchronous (no reclaimer ever waits).
//!
//! ## The packed-word trick
//!
//! Correct counting requires the *batch-list head* and the *active-reader
//! count* to change atomically (otherwise a reader can be counted for a
//! batch it will never decrement, or vice versa). Hyaline uses a
//! double-word CAS on `(HPtr, HRef)`; portable Rust has no stable 128-bit
//! atomic, so we pack a 32-bit batch *index* (into an append-only arena)
//! and a 32-bit count into one `AtomicU64`:
//!
//! * `enter`: `FAA(word, +1)` — atomically increments the count *and*
//!   observes the head index the reader entered at.
//! * `exit`: `FAA(word, -1)` — atomically decrements *and* observes the
//!   current head; the reader then walks head → its entry index,
//!   decrementing every batch pushed during its activity.
//! * `push`: CAS `(old_head, count) → (new_head, count)`; the count in the
//!   successful CAS is exactly the set of readers that will decrement.
//!
//! Batch structs are freed by the zero-decrementer; arena indices are never
//! reused (no ABA). Like real Hyaline-1 (and unlike Crystalline proper),
//! this is **not robust**: a stalled reader pins every batch sealed during
//! its stay.

use core::sync::atomic::{AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::base::{push_retired, seal_and_account, DomainBase, RetireSlot};
use crate::config::SmrConfig;
use crate::header::{RetireBatch, Retired};
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

/// Maximum batches per domain (indices are never recycled).
const ARENA_CAP: usize = 1 << 16;
/// Bias keeping a batch's refcount positive until the pusher adjusts it.
const BIAS: i64 = 1 << 40;

const COUNT_MASK: u64 = 0xFFFF_FFFF;

struct Batch {
    /// Remaining decrements + pusher adjustment (see BIAS).
    refs: AtomicI64,
    /// Arena index of the next-older batch (0 = end of list).
    next_idx: u32,
    /// Sealed blocks from the pusher's batched retire list — Hyaline's
    /// historical node `Vec` replaced by the shared block pipeline, so
    /// retirement and settlement both work block-at-a-time (boxed on
    /// purpose: blocks travel as single pointers).
    #[allow(clippy::vec_box)]
    blocks: Vec<Box<RetireBatch>>,
}

struct ThreadState {
    retire: RetireSlot,
    /// Head index observed at `begin_op`.
    entry_idx: AtomicU64,
}

/// Single-slot Hyaline batched reference counting.
pub struct Hyaline {
    base: DomainBase,
    /// Packed `(head_idx << 32) | active_count`.
    word: CachePadded<AtomicU64>,
    /// Append-only idx → batch arena (slot 0 unused: 0 is the nil index).
    arena: Box<[AtomicPtr<Batch>]>,
    next_free_idx: CachePadded<AtomicU64>,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl Hyaline {
    #[inline]
    fn resolve(&self, idx: u32) -> *mut Batch {
        self.arena[idx as usize].load(Ordering::Acquire)
    }

    /// Frees every node of `batch` and the batch itself, accounting on
    /// `tid`'s stat shard.
    ///
    /// # Safety
    ///
    /// Caller must be the decrementer that brought `refs` to zero, running
    /// on the thread registered as `tid`.
    unsafe fn free_batch(&self, tid: usize, batch: *mut Batch) {
        // SAFETY: exclusive access per the zero-decrementer contract.
        let b = unsafe { Box::from_raw(batch) };
        for mut blk in b.blocks {
            // SAFETY: every counted reader has exited (refs == 0) and the
            // nodes were unlinked before the batch was pushed. One stats
            // update per block.
            unsafe { self.base.free_block(tid, &mut blk) };
        }
    }

    /// Walks `head_idx → entry_idx` (exclusive), decrementing each batch
    /// pushed during the calling reader's activity.
    fn traverse_and_decrement(&self, tid: usize, head_idx: u32, entry_idx: u32) {
        let mut cur_idx = head_idx;
        while cur_idx != entry_idx && cur_idx != 0 {
            let batch = self.resolve(cur_idx);
            debug_assert!(!batch.is_null(), "walked to unpublished batch");
            // Read `next` *before* the decrement: after decrementing, the
            // batch may be freed by us or anyone.
            // SAFETY: this batch counted us (pushed after our enter-FAA),
            // so it cannot reach zero refs before our decrement.
            let next = unsafe { (*batch).next_idx };
            let prev = unsafe { (*batch).refs.fetch_sub(1, Ordering::AcqRel) };
            if prev == 1 {
                // SAFETY: we brought refs to zero.
                unsafe { self.free_batch(tid, batch) };
            }
            cur_idx = next;
        }
    }

    /// Seals the caller's retire list into a batch and publishes it.
    fn seal_and_push(&self, tid: usize) {
        // SAFETY: tid ownership per the registration contract.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.stats.shard(tid).observe_retire_len(list.len());
        // Seal (and account) the partial fill block so the batch carries
        // every retired node.
        seal_and_account(&self.base, tid, list);
        if list.is_empty() {
            return;
        }
        let idx = self.next_free_idx.fetch_add(1, Ordering::Relaxed);
        assert!(
            (idx as usize) < ARENA_CAP,
            "Hyaline batch arena exhausted; raise reclaim_freq or ARENA_CAP"
        );
        let idx = idx as u32;
        let batch = Box::into_raw(Box::new(Batch {
            refs: AtomicI64::new(BIAS),
            next_idx: 0,
            blocks: list.take_blocks(),
        }));
        self.arena[idx as usize].store(batch, Ordering::Release);
        loop {
            let w = self.word.load(Ordering::Acquire);
            let count = (w & COUNT_MASK) as i64;
            // SAFETY: not yet reachable — we own the batch until the CAS.
            unsafe { (*batch).next_idx = (w >> 32) as u32 };
            let new = ((idx as u64) << 32) | (w & COUNT_MASK);
            if self
                .word
                .compare_exchange_weak(w, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Adjust the bias to the actual reader count at push time.
                // SAFETY: batch is published; refs is atomic.
                let prev = unsafe { (*batch).refs.fetch_add(count - BIAS, Ordering::AcqRel) };
                if prev + count - BIAS == 0 {
                    // Every counted reader already exited (decrementing the
                    // bias) — we are the effective zero-decrementer.
                    // SAFETY: refs reached zero with our adjustment.
                    unsafe { self.free_batch(tid, batch) };
                }
                self.base
                    .stats
                    .shard(tid)
                    .epoch_passes
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

impl Smr for Hyaline {
    const NAME: &'static str = "Hyaline1";
    const ROBUST: bool = false;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let mut arena = Vec::with_capacity(ARENA_CAP);
        arena.resize_with(ARENA_CAP, || AtomicPtr::new(core::ptr::null_mut()));
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&cfg),
                entry_idx: AtomicU64::new(0),
            })
        });
        Arc::new(Hyaline {
            base: DomainBase::new(cfg),
            word: CachePadded::new(AtomicU64::new(0)),
            arena: arena.into_boxed_slice(),
            next_free_idx: CachePadded::new(AtomicU64::new(1)),
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
    }

    fn unregister(&self, tid: usize) {
        // Push whatever is left as a final batch; it frees when the last
        // concurrent reader exits.
        self.seal_and_push(tid);
        self.base.release(tid);
    }

    /// Hyaline `enter`: one FAA atomically joins the active set and records
    /// the entry head.
    #[inline]
    fn begin_op(&self, tid: usize) {
        let w = self.word.fetch_add(1, Ordering::SeqCst);
        debug_assert!((w & COUNT_MASK) < COUNT_MASK, "active count overflow");
        self.threads[tid]
            .entry_idx
            .store(w >> 32, Ordering::Relaxed);
    }

    /// Hyaline `leave`: one FAA leaves the active set, then the reader
    /// settles its debts on batches pushed during its stay.
    #[inline]
    fn end_op(&self, tid: usize) {
        let w = self.word.fetch_sub(1, Ordering::SeqCst);
        let head = (w >> 32) as u32;
        let entry = self.threads[tid].entry_idx.load(Ordering::Relaxed) as u32;
        if head != entry {
            self.traverse_and_decrement(tid, head, entry);
        }
    }

    #[inline]
    fn protect<T>(&self, _tid: usize, _slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        // Readers are protected by batch reference counting; a read is a
        // plain load.
        Ok(src.load(Ordering::Acquire))
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.seal_and_push(tid);
        }
    }

    fn flush(&self, tid: usize) {
        self.seal_and_push(tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;
    use std::sync::atomic::AtomicBool;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &Hyaline, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(0, core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn no_readers_batch_frees_at_push() {
        let smr = Hyaline::new(SmrConfig::for_tests(1).with_reclaim_freq(4));
        let reg = smr.register(0);
        smr.begin_op(0);
        for i in 0..3 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.end_op(0);
        // Quiescent: the push (via flush) sees count == 0 and frees itself.
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }

    #[test]
    fn active_reader_defers_batch_until_exit() {
        let smr = Hyaline::new(SmrConfig::for_tests(2).with_reclaim_freq(4));
        let reg0 = smr.register(0);
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                smr.begin_op(1);
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                smr.end_op(1); // exit settles the debt and frees the batch
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        assert!(
            smr.stats().snapshot().unreclaimed_nodes() > 0,
            "active reader was counted; batch must wait for it"
        );
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        assert_eq!(
            smr.stats().snapshot().unreclaimed_nodes(),
            0,
            "reader exit frees the deferred batch"
        );
        drop(reg0);
    }

    #[test]
    fn reader_entering_after_push_owes_nothing() {
        let smr = Hyaline::new(SmrConfig::for_tests(2).with_reclaim_freq(2));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        // Push a batch with nobody active: frees instantly.
        for i in 0..2 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        // A later reader must not underflow any refcount on exit.
        smr.begin_op(1);
        smr.end_op(1);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn many_batches_under_churning_readers() {
        let smr = Hyaline::new(SmrConfig::for_tests(3).with_reclaim_freq(8));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 1..3 {
            readers.push(std::thread::spawn({
                let smr = Arc::clone(&smr);
                let stop = Arc::clone(&stop);
                move || {
                    let reg = smr.register(t);
                    while !stop.load(Ordering::Acquire) {
                        smr.begin_op(t);
                        std::hint::spin_loop();
                        smr.end_op(t);
                    }
                    drop(reg);
                }
            }));
        }
        let reg0 = smr.register(0);
        for i in 0..5000u64 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.retired_nodes, 5000);
        assert_eq!(
            s.unreclaimed_nodes(),
            0,
            "all batches settle once readers drain"
        );
        drop(reg0);
    }
}
