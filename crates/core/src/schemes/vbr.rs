//! `VBR` — version-based reclamation over the owned slab arenas (scheme
//! #12, PR 10).
//!
//! Readers announce the global **version** on operation entry (one ordered
//! store per operation, like EBR) and `u64::MAX` on exit. A reclamation
//! pass is a *version bump*: `version += 1`, scan the announcements, and
//! free every sealed block whose members were all retired strictly before
//! the minimum announced version — with the slab allocator's
//! address-monotone fills, almost every such block settles whole against
//! its slab in one range test (`slab_frees_whole`), and fully-empty slabs
//! hand their pages back to the OS (`slab_released_bytes`).
//!
//! The scheme's defining trade: instead of the reclaimer pinging laggards
//! (POP's signal/membarrier fan-out), the *reader* re-validates its own
//! announcement on every read. A reader whose announced version has fallen
//! [`VBR_MAX_LAG`] or more bumps behind the global version is
//! **version-aborted**: `protect` refreshes the announcement to the
//! current version and returns [`Restart`] *before* loading the pointer.
//! One read by the laggard therefore unpins everything it held — the ping
//! is reader-initiated, so VBR needs neither signals nor membarrier
//! (`NEEDS_SIGNALS = false`) and its publish mode resolves to `None`.
//!
//! Garbage is bounded by `VBR_MAX_LAG` bumps for every reader that keeps
//! reading. The residual gap (hence `ROBUST = false`, same flag as EBR): a
//! reader parked *inside* an operation that never reads again pins its
//! announcement's version until it wakes — but unlike EBR, the very first
//! read after waking aborts and unpins, rather than resuming on stale
//! protection. Crashed participants are handled by the registry's
//! dead-participant reaping, as for every scheme.
//!
//! **No quarantine, by construction** (PR 10 satellite 4): the pressure
//! ladder's rung-3 stalled-reader quarantine exists for schemes where one
//! stalled reader pins unbounded garbage. Under VBR one read by the
//! laggard drains the whole backlog (the abort refreshes its
//! announcement), so parking pinned blocks buys nothing: the pass plan has
//! no `Quarantine` arm and the domain's stalled-reader quarantine is never
//! engaged. The `blocks_quarantined` counter is structurally zero for this
//! scheme.
//!
//! Write phases (`begin_write`/`end_write`) suspend the abort check:
//! NBR-style writers that already hold validated references must not be
//! restarted mid-CAS. Lag is re-checked (and the announcement refreshed)
//! in `begin_write` itself, before the write phase is entered.

use core::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::base::{
    push_retired, scan_epoch_reservations, sweep_blocks, BlockPlan, DomainBase, RetireSlot,
};
use crate::config::SmrConfig;
use crate::controller::{PassAction, PassController};
use crate::header::{Header, Retired};
use crate::pressure::{PressureRung, HARD_RETRY_LIMIT};
use crate::smr::{ReadResult, Restart, Smr};
use crate::stats::DomainStats;

/// Version announced while quiescent.
pub(crate) const QUIESCENT: u64 = u64::MAX;

/// Maximum tolerated announcement lag, in version bumps. A reader whose
/// announced version trails the global version by at least this much is
/// version-aborted on its next `protect` (outside write phases). Small
/// enough to bound garbage to a few retire batches per thread; large
/// enough that a reader racing one concurrent pass never aborts.
pub const VBR_MAX_LAG: u64 = 8;

struct ThreadState {
    retire: RetireSlot,
    /// Inside `begin_write`..`end_write`: version aborts are suppressed.
    in_write: AtomicBool,
    /// Operations since registration (diagnostic only; VBR has no clock
    /// tick — the version moves on reclamation passes alone).
    op_count: AtomicU64,
}

/// Version-based reclamation (scheme #12): bump, scan, settle whole slabs.
pub struct Vbr {
    base: DomainBase,
    /// The global version word. Bumped (SeqCst) once per reclamation pass.
    version: CachePadded<AtomicU64>,
    /// Pass-cadence decay (adaptive controller), same pacing as EBR.
    ctl: PassController,
    /// `announced[tid]`: the version the thread entered its operation at.
    announced: Box<[CachePadded<AtomicU64>]>,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl Vbr {
    /// One version-bump pass. Same controller discipline as EBR's epoch
    /// pass: retire-triggered passes are subject to decay thinning, forced
    /// (flush/unregister/pressure) passes always run full.
    fn reclaim_version_freeable(&self, tid: usize, forced: bool) {
        let rung = self.base.stats.pressure().rung();
        if rung >= PressureRung::Soft {
            self.ctl.cancel_decay();
        }
        let action = if forced || rung >= PressureRung::Soft {
            self.ctl.begin_forced_pass()
        } else {
            self.ctl.begin_pass()
        };
        if action == PassAction::Thinned {
            return;
        }
        let shard = self.base.stats.shard(tid);
        shard.epoch_passes.fetch_add(1, Ordering::Relaxed);
        // Reclamation *is* a version bump: one RMW on the global word.
        self.version.fetch_add(1, Ordering::SeqCst);
        // Order the announcement scan after this thread's preceding
        // unlinks (and after the bump above).
        fence(Ordering::SeqCst);
        let (min, _relaxed) = scan_epoch_reservations(&self.base, QUIESCENT, |t| {
            self.announced[t].load(Ordering::SeqCst)
        });
        // SAFETY: tid ownership per the registration contract.
        let list = unsafe { self.threads[tid].retire.get() };
        // No reclaim_released_quarantine call: VBR never parks blocks (see
        // the module docs) — there is nothing to hand back.
        shard.observe_retire_len(list.len());
        // SAFETY: a block whose maximum retire version is strictly below
        // every announced version is unreachable — any reader that could
        // still hold a reference to a member announced no later than that
        // member's retire version, and that announcement is still honored
        // by this min-scan until the reader's next read refreshes it.
        // Whole-block verdicts only — VBR never splits a block (no Mask)
        // and never quarantines.
        let freed = unsafe {
            sweep_blocks(&self.base, tid, list, |b| {
                let (_, _, max_retire) = b.era_ranges();
                if max_retire < min {
                    BlockPlan::FreeAll
                } else {
                    BlockPlan::KeepAll
                }
            })
        };
        if self.ctl.note_pass_outcome(freed) {
            shard.epoch_decay_steps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lag check + re-announce. Returns `Err(Restart)` (and counts a
    /// version abort) when the announcement had gone stale.
    #[inline]
    fn check_lag(&self, tid: usize) -> Result<(), Restart> {
        let cur = self.version.load(Ordering::Relaxed);
        let mine = self.announced[tid].load(Ordering::Relaxed);
        if mine != QUIESCENT && cur.wrapping_sub(mine) >= VBR_MAX_LAG {
            // Stale: refresh the announcement so the retried operation
            // starts current, then abort the read.
            self.announced[tid].store(cur, Ordering::SeqCst);
            self.base
                .stats
                .shard(tid)
                .version_aborts
                .fetch_add(1, Ordering::Relaxed);
            return Err(Restart);
        }
        Ok(())
    }

    /// Current minimum announced version (test/diagnostic use).
    pub fn min_version(&self) -> u64 {
        let mut min = u64::MAX;
        for t in 0..self.base.cfg.max_threads {
            if self.base.is_registered(t) {
                min = min.min(self.announced[t].load(Ordering::SeqCst));
            }
        }
        min
    }
}

impl Smr for Vbr {
    const NAME: &'static str = "VBR";
    const ROBUST: bool = false;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let mut announced = Vec::with_capacity(n);
        announced.resize_with(n, || CachePadded::new(AtomicU64::new(QUIESCENT)));
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&cfg),
                in_write: AtomicBool::new(false),
                op_count: AtomicU64::new(0),
            })
        });
        Arc::new(Vbr {
            version: CachePadded::new(AtomicU64::new(1)),
            ctl: PassController::new(cfg.adaptive),
            announced: announced.into_boxed_slice(),
            threads: threads.into_boxed_slice(),
            base: DomainBase::new(cfg),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        self.announced[tid].store(QUIESCENT, Ordering::SeqCst);
        self.threads[tid].in_write.store(false, Ordering::Relaxed);
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.announced[tid].store(QUIESCENT, Ordering::SeqCst);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, tid: usize) {
        let ts = &self.threads[tid];
        ts.op_count.fetch_add(1, Ordering::Relaxed);
        // SeqCst: the announcement must be globally visible before this
        // thread reads any data-structure pointer (the one ordered store
        // VBR pays per operation — same cost model as EBR).
        self.announced[tid].store(self.version.load(Ordering::Relaxed), Ordering::SeqCst);
    }

    #[inline]
    fn end_op(&self, tid: usize) {
        self.threads[tid].in_write.store(false, Ordering::Relaxed);
        self.announced[tid].store(QUIESCENT, Ordering::Release);
    }

    #[inline]
    fn protect<T>(&self, tid: usize, _slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        // Version readers are pre-protected by their announcement — but
        // only while it is fresh. A stale announcement version-aborts
        // (outside write phases) instead of pinning garbage.
        if !self.threads[tid].in_write.load(Ordering::Relaxed) {
            self.check_lag(tid)?;
        }
        Ok(src.load(Ordering::Acquire))
    }

    fn check_restart(&self, tid: usize) -> Result<(), Restart> {
        if self.threads[tid].in_write.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.check_lag(tid)
    }

    fn begin_write(&self, tid: usize, _protected: &[*mut Header]) -> Result<(), Restart> {
        // Last abort window before the write phase: once in_write is set,
        // this thread will not be restarted until end_write.
        self.check_lag(tid)?;
        self.threads[tid].in_write.store(true, Ordering::Relaxed);
        Ok(())
    }

    fn end_write(&self, tid: usize) {
        self.threads[tid].in_write.store(false, Ordering::Relaxed);
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.reclaim_version_freeable(tid, false);
            // Pressure rung 2: bounded forced retries, same shape as EBR.
            // (Rung 3 quarantine does not exist for VBR — see module docs.)
            let mut tries = 0u32;
            while tries < HARD_RETRY_LIMIT
                && self.base.stats.pressure().rung() >= PressureRung::Hard
            {
                for _ in 0..(64u32 << tries) {
                    core::hint::spin_loop();
                }
                self.reclaim_version_freeable(tid, true);
                tries += 1;
            }
        }
    }

    fn current_era(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    fn flush(&self, tid: usize) {
        self.reclaim_version_freeable(tid, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::{alloc_node, retire_node};

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &Arc<Vbr>, v: u64) -> *mut N {
        alloc_node(
            &**smr,
            0,
            N {
                hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
                v,
            },
        )
    }

    #[test]
    fn single_thread_reclaims_after_quiescence() {
        let smr = Vbr::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        for i in 0..100 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.retired_nodes, 100);
        assert!(
            s.freed_nodes >= 90,
            "quiescent single thread frees nearly everything, freed = {}",
            s.freed_nodes
        );
        drop(reg);
    }

    #[test]
    fn stalled_reader_aborts_and_unpins_on_next_read() {
        // Pin adaptive off: every retire trigger runs a full pass, so the
        // version advances deterministically past VBR_MAX_LAG.
        let smr = Vbr::new(SmrConfig::for_tests(2).with_adaptive(false));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        // Reader enters at the current version and stalls.
        smr.begin_op(1);
        let slot = AtomicPtr::new(core::ptr::null_mut::<N>());
        assert!(
            smr.protect(1, 0, &slot).is_ok(),
            "fresh announcement must not abort"
        );
        // Writer churns: every full pass bumps the version. The parked
        // announcement pins the backlog retired after the pin.
        for i in 0..2000 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        smr.flush(0);
        let s1 = smr.stats().snapshot();
        assert!(
            s1.unreclaimed_nodes() > 0,
            "a parked announcement is honored until the reader's next read"
        );
        // The stalled reader's next read aborts with a version restart —
        // and the abort itself re-announces a fresh version.
        assert!(
            smr.protect(1, 0, &slot).is_err(),
            "stale announcement must version-abort"
        );
        assert!(smr.stats().snapshot().version_aborts >= 1);
        // The retry proceeds, and the refreshed announcement unpins the
        // backlog: one read by the laggard is the whole ping.
        assert!(smr.protect(1, 0, &slot).is_ok(), "retry runs current");
        smr.flush(0);
        assert!(
            smr.stats().snapshot().freed_nodes > s1.freed_nodes,
            "the backlog drains as soon as the laggard reads once"
        );
        smr.end_op(1);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn write_phase_suppresses_version_aborts() {
        let smr = Vbr::new(SmrConfig::for_tests(2).with_adaptive(false));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        smr.begin_op(1);
        assert!(smr.begin_write(1, &[]).is_ok());
        for i in 0..2000 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        let slot = AtomicPtr::new(core::ptr::null_mut::<N>());
        assert!(
            smr.protect(1, 0, &slot).is_ok(),
            "writers are never restarted mid-write-phase"
        );
        assert!(smr.check_restart(1).is_ok());
        smr.end_write(1);
        // Outside the write phase the stale announcement aborts again.
        assert!(smr.protect(1, 0, &slot).is_err());
        smr.end_op(1);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn reclamation_is_a_version_bump() {
        let smr = Vbr::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let v0 = smr.current_era();
        // Op path alone never moves the version word.
        for _ in 0..64 {
            smr.begin_op(0);
            smr.end_op(0);
        }
        assert_eq!(smr.current_era(), v0, "ops do not bump the version");
        smr.flush(0);
        assert!(
            smr.current_era() > v0,
            "a reclamation pass is exactly a version bump"
        );
        drop(reg);
    }

    #[test]
    fn no_quarantine_by_construction() {
        // Satellite 4 (unit half): even with quarantine enabled, the
        // pressure ladder fully escalated, and a reader parked across
        // heavy churn, VBR parks nothing — the pass plan has no
        // Quarantine arm, so the rung-3 quarantine is a structural no-op.
        let smr = Vbr::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(16)
                .with_retire_bins(1)
                .with_pressure_watermarks(64, 96, 128)
                .with_quarantine(),
        );
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        smr.begin_op(1); // parked reader pins everything retired after it
        for i in 0..4000 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert!(
            s.pressure_emergency_trips >= 1,
            "the ladder must have escalated for the no-op to mean anything: {s:?}"
        );
        assert_eq!(
            s.blocks_quarantined, 0,
            "VBR must never quarantine (no-op rung by construction)"
        );
        assert!(
            s.unreclaimed_nodes() > 0,
            "the parked announcement is honored meanwhile"
        );
        smr.end_op(1);
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.unreclaimed_nodes(), 0, "drains once the reader leaves");
        assert_eq!(s.blocks_quarantined, 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn min_version_ignores_unregistered_slots() {
        let smr = Vbr::new(SmrConfig::for_tests(4));
        let reg = smr.register(2);
        smr.begin_op(2);
        assert_eq!(smr.min_version(), smr.announced[2].load(Ordering::SeqCst));
        smr.end_op(2);
        assert_eq!(smr.min_version(), QUIESCENT);
        drop(reg);
    }
}
