//! **`HazardPtrPOP`** — hazard pointers with publish-on-ping (paper §4.1,
//! Algorithms 1–2). The primary contribution.
//!
//! Reads record reservations with a relaxed store into thread-private slots
//! — *no fence* (Alg. 1 line 12: "no store load fence needed"). When a
//! reclaimer's retire list reaches the threshold it pings every registered
//! thread with a POSIX signal; each handler copies local → shared
//! reservations, fences once, and bumps its publish counter. The reclaimer
//! waits for all counters to advance, scans the shared slots, and frees
//! everything unreserved.
//!
//! Robustness (paper Property 3): at most `N × H` nodes (threads × slots)
//! can ever be exempted from a reclamation pass, so per-thread garbage is
//! bounded by `reclaim_freq + N × H`.

use core::sync::atomic::{compiler_fence, AtomicPtr, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use pop_runtime::signal::register_publisher;
use pop_runtime::PublisherHandle;

use crate::base::{free_unreserved, push_retired, DomainBase, RetireSlot, ScratchSlot};
use crate::config::SmrConfig;
use crate::header::{unmark_word, Retired};
use crate::pop_shared::PopShared;
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
}

/// Hazard pointers that publish reservations on ping.
pub struct HazardPtrPop {
    base: DomainBase,
    /// Leaked shared state reachable from the signal handler.
    pop: &'static PopShared,
    publisher: PublisherHandle,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl HazardPtrPop {
    /// The paper's `retire` threshold path (Alg. 1 lines 18–22):
    /// `collectPublishedCounters; pingAllToPublish; waitForAllPublished;
    /// reclaimHPFreeable`. Allocation-free in steady state: all buffers
    /// come from the thread's [`ScratchSlot`].
    fn pop_reclaim(&self, tid: usize) {
        let shard = self.base.stats.shard(tid);
        shard.pop_passes.fetch_add(1, Ordering::Relaxed);
        // SAFETY: tid ownership per the registration contract.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        self.pop.ping_all_and_wait(tid, &mut scratch.counters);
        // Reap a confirmed-dead participant (flagged by the wait's
        // watchdog) before scanning: a dead thread's reservations protect
        // nothing, and removing it now recovers its slot and parks its
        // retires this pass instead of next.
        self.pop.reap_one_dead(&self.base, tid, |t| {
            // SAFETY: `reap_one_dead` established exclusivity (won reap
            // CAS + registry-confirmed death of the owner).
            unsafe { self.threads[t].retire.get() }
        });
        self.pop.collect_reserved_into(&mut scratch.reserved);
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        shard.observe_retire_len(list.len());
        // SAFETY: every thread published (counter advanced), deregistered
        // (flushing empty reservations), or was provably quiescent holding
        // no reservations; `reserved` therefore covers every pointer any
        // thread can still dereference.
        unsafe { free_unreserved(&self.base, tid, list, &scratch.reserved) };
    }

    /// Test observability: currently published (shared) reservations.
    #[doc(hidden)]
    pub fn published_reservations(&self) -> Vec<u64> {
        self.pop.collect_reserved()
    }
}

impl Smr for HazardPtrPop {
    const NAME: &'static str = "HazardPtrPOP";
    const ROBUST: bool = true;
    const NEEDS_SIGNALS: bool = true;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let base = DomainBase::new(cfg);
        let pop = PopShared::leak(
            n,
            base.cfg.slots,
            Arc::clone(&base.stats),
            true,
            base.cfg.publish_spin,
            base.cfg.futex_wait,
            base.cfg.publish_deadline_ns,
            base.cfg.resolved_publish_mode() == crate::config::PublishMode::Membarrier,
        );
        let publisher = register_publisher(pop);
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&base.cfg),
                scratch: ScratchSlot::new(),
            })
        });
        Arc::new(HazardPtrPop {
            base,
            pop,
            publisher,
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn bind_gtid(&self, tid: usize, gtid: usize) {
        self.base.bind_gtid(tid, gtid);
        self.pop.register(tid, gtid);
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.pop.clear_local(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.pop.unregister(tid);
        self.base.clear_gtid(tid);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, tid: usize) {
        // Activity word → odd: reclaimers must ping us from here on. The
        // fence inside is the one ordered instruction HazardPtrPOP pays
        // per *operation* (reads stay fence-free); it buys eliding signals
        // to quiescent threads.
        self.pop.note_active(tid);
    }

    #[inline]
    fn end_op(&self, tid: usize) {
        // Paper's clear(): reset local reservations when going quiescent.
        self.pop.clear_local(tid);
        self.pop.note_quiescent(tid);
    }

    /// Alg. 1 `read()`: load, reserve locally (relaxed), validate. The
    /// `compiler_fence` pins program order in codegen but emits no
    /// instruction — signal delivery is the synchronization point.
    #[inline]
    fn protect<T>(&self, tid: usize, slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        loop {
            let p = src.load(Ordering::Acquire);
            self.pop.set_local(tid, slot, unmark_word(p as u64));
            compiler_fence(Ordering::SeqCst);
            if src.load(Ordering::Acquire) == p {
                return Ok(p);
            }
        }
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.pop_reclaim(tid);
        }
    }

    fn flush(&self, tid: usize) {
        self.pop_reclaim(tid);
    }
}

impl Drop for HazardPtrPop {
    fn drop(&mut self) {
        // Stop handler dispatches; the PopShared arrays stay leaked by
        // design (a dispatch may be in flight on another thread).
        self.publisher.deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &HazardPtrPop, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(0, core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn reservations_stay_private_until_ping() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let node = alloc(&smr, 1);
        let src = AtomicPtr::new(node);
        let _ = smr.protect(0, 0, &src).unwrap();
        assert!(
            smr.published_reservations().is_empty(),
            "no eager publication — the defining property of POP"
        );
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }

    #[test]
    fn single_thread_reclaim_respects_own_reservations() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(1).with_reclaim_freq(4));
        let reg = smr.register(0);
        let hot = alloc(&smr, 42);
        let src = AtomicPtr::new(hot);
        let _ = smr.protect(0, 0, &src).unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0); // drain sub-threshold leftovers
        let s = smr.stats().snapshot();
        assert!(s.pop_passes >= 1, "threshold reclaim ran");
        assert_eq!(
            s.unreclaimed_nodes(),
            1,
            "self-published reservation protects the hot node"
        );
        smr.end_op(0);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }

    #[test]
    fn cross_thread_ping_publishes_and_protects() {
        // Pin the signal path: the assertions below are about pings and
        // handler publishes, which a POP_PUBLISH_MODE=membarrier CI leg
        // would (correctly) elide.
        let smr = HazardPtrPop::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(4)
                .with_publish_mode(crate::config::PublishMode::Futex),
        );
        let reg0 = smr.register(0);
        let hot = alloc(&smr, 7);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();

        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                let p = smr.protect(1, 0, &src).unwrap();
                tx.send(()).unwrap();
                // Keep the protection while spinning; the reclaimer's ping
                // interrupts this loop and publishes our reservation.
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                // Node must still be dereferenceable here.
                assert_eq!(unsafe { (*p).v }, 7);
                smr.end_op(1);
                drop(reg1);
            }
        });

        rx.recv().unwrap();
        // Unlink and retire the protected node plus filler, forcing a
        // publish-on-ping reclamation pass.
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert!(s.pings_sent >= 1, "reclaimer pinged the reader");
        assert!(s.publishes >= 1, "reader's handler published");
        assert_eq!(
            s.unreclaimed_nodes(),
            1,
            "pinged reader's reservation was honored"
        );
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg0);
    }

    #[test]
    fn membarrier_mode_protects_without_any_signals() {
        // Same cross-thread shape as above, but under the membarrier
        // publish mode: the reader's reservation reaches the reclaimer
        // through the shared slots + one heavy barrier — no ping, no
        // handler publish — and is honored identically.
        if !pop_runtime::membarrier::is_available() {
            return;
        }
        let smr = HazardPtrPop::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(4)
                .with_publish_mode(crate::config::PublishMode::Membarrier),
        );
        let reg0 = smr.register(0);
        let hot = alloc(&smr, 7);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                let p = smr.protect(1, 0, &src).unwrap();
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                assert_eq!(unsafe { (*p).v }, 7);
                smr.end_op(1);
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.pings_sent, 0, "membarrier mode must not signal");
        assert_eq!(s.publishes, 0, "no handler publishes either");
        assert!(s.membarrier_passes >= 1, "the pass took the fast path");
        assert!(s.signals_avoided >= 1, "the elided fan-out is accounted");
        assert_eq!(
            s.unreclaimed_nodes(),
            1,
            "shared-slot reservation honored without any publication step"
        );
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg0);
    }

    #[test]
    fn quiescent_idle_thread_is_not_pinged() {
        // A registered but quiescent peer with empty reservations must be
        // skipped by pingAllToPublish — the quiescent-thread filter.
        let smr = HazardPtrPop::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(4)
                // Signal path pinned: the filter counters only move there.
                .with_publish_mode(crate::config::PublishMode::Futex),
        );
        let reg0 = smr.register(0);
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let idler = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                // One full op cycle, then stay registered but idle.
                smr.begin_op(1);
                smr.end_op(1);
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        for i in 0..16 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.pings_sent, 0, "idle quiescent peer must not be signalled");
        assert!(s.pings_skipped >= 1, "the filter must record the elision");
        assert_eq!(s.unreclaimed_nodes(), 0, "skipping must not block frees");
        hold.store(false, Ordering::Release);
        idler.join().unwrap();
        drop(reg0);
    }

    #[test]
    fn parked_reclaimer_is_woken_by_pinged_readers_handler() {
        // Zero spin budget: the reclaimer parks on the reader's publish
        // word immediately after pinging. The reader's signal handler must
        // publish and FUTEX_WAKE the reclaimer — the pass completes well
        // before the wait-timeout backstop could accumulate.
        let smr = HazardPtrPop::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(4)
                .with_publish_spin(0)
                // Futex mode pinned: this test is about the park/wake pair.
                .with_publish_mode(crate::config::PublishMode::Futex),
        );
        let reg0 = smr.register(0);
        let hot = alloc(&smr, 11);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                let _ = smr.protect(1, 0, &src).unwrap();
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                smr.end_op(1);
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        let t0 = std::time::Instant::now();
        smr.flush(0);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "handler wake must release the parked reclaimer"
        );
        let s = smr.stats().snapshot();
        assert!(s.pings_sent >= 1, "reader was pinged");
        assert!(s.publishes >= 1, "handler published");
        assert_eq!(s.unreclaimed_nodes(), 1, "reservation honored");
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg0);
    }

    #[test]
    fn robustness_bound_holds_with_stalled_reader() {
        // A reader stalls while holding one protection; the writer keeps
        // retiring. Unlike EBR, garbage must stay bounded.
        let cfg = SmrConfig::for_tests(2).with_reclaim_freq(32);
        let smr = HazardPtrPop::new(cfg);
        let reg0 = smr.register(0);
        let hot = alloc(&smr, 9);
        let src = Arc::new(AtomicPtr::new(hot));
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let smr = Arc::clone(&smr);
            let src = Arc::clone(&src);
            let hold = Arc::clone(&hold);
            move || {
                let reg1 = smr.register(1);
                let _ = smr.protect(1, 0, &src).unwrap();
                tx.send(()).unwrap();
                while hold.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                smr.end_op(1);
                drop(reg1);
            }
        });
        rx.recv().unwrap();
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..2000u64 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        let s = smr.stats().snapshot();
        let bound =
            (smr.config().reclaim_freq + smr.config().max_threads * smr.config().slots) as u64;
        assert!(
            s.unreclaimed_nodes() <= bound,
            "garbage {} exceeds robustness bound {}",
            s.unreclaimed_nodes(),
            bound
        );
        hold.store(false, Ordering::Release);
        reader.join().unwrap();
        drop(reg0);
    }
}
