//! The twelve reclamation schemes.
//!
//! | Module | Scheme | Paper role |
//! |--------|--------|------------|
//! | [`nr`] | `NR` — no reclamation (leak) | baseline floor |
//! | [`ebr`] | `EBR` — RCU-style epochs (Alg. 6) | fast, not robust |
//! | [`hp`] | `HP` — classic hazard pointers | robust, fence per read |
//! | [`hp_asym`] | `HPAsym` — membarrier/Folly-style HP | baseline |
//! | [`hp_pop`] | **`HazardPtrPOP`** (Alg. 1–2) | contribution |
//! | [`he`] | `HE` — hazard eras (Alg. 4) | baseline |
//! | [`he_pop`] | **`HazardEraPOP`** (Alg. 5) | contribution |
//! | [`epoch_pop`] | **`EpochPOP`** (Alg. 3) | contribution |
//! | [`ibr`] | `IBR` — 2GE interval-based | baseline |
//! | [`nbr`] | `NBR+` — neutralization (cooperative) | baseline |
//! | [`hyaline`] | `Hyaline-1` — Crystalline-family batch refcounting | appendix baseline |
//! | [`vbr`] | `VBR` — version-based, owned slab arenas (PR 10) | allocator-integration scheme |

pub mod ebr;
pub mod epoch_pop;
pub mod he;
pub mod he_pop;
pub mod hp;
pub mod hp_asym;
pub mod hp_pop;
pub mod hyaline;
pub mod ibr;
pub mod nbr;
pub mod nr;
pub mod vbr;
