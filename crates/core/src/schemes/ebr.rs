//! `EBR` — RCU-style epoch-based reclamation (paper Appendix C, Alg. 6).
//!
//! Readers announce the global epoch on operation entry (one ordered store
//! per *operation*, not per read) and announce `u64::MAX` on exit.
//! Reclaimers free objects retired strictly before the minimum announced
//! epoch. Fast, but **not robust**: one delayed reader pins every retire
//! list in the system — the failure mode EpochPOP repairs.
//!
//! The global epoch is advanced by reclaimer passes only (per-thread clock
//! ticks + max-aggregation, `EpochClocks`); the op path performs no
//! shared RMW. Retirement is batched (`base::push_retired`).

use core::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::base::{
    free_before_epoch_with_stalled, push_retired, scan_epoch_reservations, DomainBase, EpochClocks,
    RelaxedMin, RetireSlot,
};
use crate::config::SmrConfig;
use crate::controller::{PassAction, PassController};
use crate::header::Retired;
use crate::pressure::{PressureRung, HARD_RETRY_LIMIT};
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

/// Epoch announced while quiescent.
pub(crate) const QUIESCENT: u64 = u64::MAX;

struct ThreadState {
    retire: RetireSlot,
    /// Operations since registration; drives the periodic clock tick.
    op_count: AtomicU64,
}

/// RCU-style epoch-based reclamation.
pub struct Ebr {
    base: DomainBase,
    clocks: EpochClocks,
    /// Epoch-cadence decay (adaptive controller).
    ctl: PassController,
    /// `reservedEpoch[tid]` (Alg. 6 line 4).
    reserved: Box<[CachePadded<AtomicU64>]>,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl Ebr {
    /// One epoch pass. Retire-triggered passes (`forced = false`) are
    /// subject to the controller's decay thinning: on a decayed (long
    /// barren) domain only every `2^decay`-th trigger pays the scan and
    /// sweep. Flush/unregister passes are always full — draining is never
    /// thinned, so the first freeable sweep resets the decay instantly.
    fn reclaim_epoch_freeable(&self, tid: usize, forced: bool) {
        let rung = self.base.stats.pressure().rung();
        if rung >= PressureRung::Soft {
            // Ladder rung 1: accumulating garbage overrides the barren-pass
            // economy — every trigger pays a full scan until the gauge
            // de-escalates.
            self.ctl.cancel_decay();
        }
        let action = if forced || rung >= PressureRung::Soft {
            self.ctl.begin_forced_pass()
        } else {
            self.ctl.begin_pass()
        };
        if action == PassAction::Thinned {
            return;
        }
        let shard = self.base.stats.shard(tid);
        shard.epoch_passes.fetch_add(1, Ordering::Relaxed);
        // Reclaimer-side epoch advance: the only writer of the global word.
        self.clocks.advance_max_scan(tid);
        // Order the announcement scan after this thread's preceding unlinks.
        fence(Ordering::SeqCst);
        let (min, relaxed) = self.scan_reserved_epochs();
        // SAFETY: tid ownership per the registration contract.
        let list = unsafe { self.threads[tid].retire.get() };
        // Ladder rung 3 unwind: parked blocks whose blocker's announcement
        // moved (or whose blocker is gone) rejoin this list and are
        // re-filtered against *current* reservations by the sweep below.
        self.base.reclaim_released_quarantine(tid, list, |t, w| {
            self.reserved[t].load(Ordering::SeqCst) == w
        });
        shard.observe_retire_len(list.len());
        // SAFETY: nodes retired before every announced epoch are
        // unreachable — no thread that could hold a reference is still in
        // its operation. Block-granular in-place sweep: no allocation. The
        // relaxed floor (emergency rung only) never frees: it parks blocks
        // pinned solely by the known-stalled blocker.
        let freed =
            unsafe { free_before_epoch_with_stalled(&self.base, tid, list, min, relaxed.as_ref()) };
        if self.ctl.note_pass_outcome(freed) {
            shard.epoch_decay_steps.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn min_reserved_epoch(&self) -> u64 {
        let mut min = u64::MAX;
        for t in 0..self.base.cfg.max_threads {
            if self.base.is_registered(t) {
                min = min.min(self.reserved[t].load(Ordering::SeqCst));
            }
        }
        min
    }

    /// Stall-aware announcement scan (see [`scan_epoch_reservations`]).
    fn scan_reserved_epochs(&self) -> (u64, Option<RelaxedMin>) {
        scan_epoch_reservations(&self.base, QUIESCENT, |t| {
            self.reserved[t].load(Ordering::SeqCst)
        })
    }

    /// Current minimum announced epoch (test/diagnostic use).
    pub fn min_epoch(&self) -> u64 {
        self.min_reserved_epoch()
    }
}

impl Smr for Ebr {
    const NAME: &'static str = "EBR";
    const ROBUST: bool = false;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let n = cfg.max_threads;
        let mut reserved = Vec::with_capacity(n);
        reserved.resize_with(n, || CachePadded::new(AtomicU64::new(QUIESCENT)));
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&cfg),
                op_count: AtomicU64::new(0),
            })
        });
        Arc::new(Ebr {
            clocks: EpochClocks::new(n),
            ctl: PassController::new(cfg.adaptive),
            reserved: reserved.into_boxed_slice(),
            threads: threads.into_boxed_slice(),
            base: DomainBase::new(cfg),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        self.reserved[tid].store(QUIESCENT, Ordering::SeqCst);
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.reserved[tid].store(QUIESCENT, Ordering::SeqCst);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, tid: usize) {
        let ts = &self.threads[tid];
        let c = ts.op_count.load(Ordering::Relaxed) + 1;
        ts.op_count.store(c, Ordering::Relaxed);
        if self.ctl.tick_due(c, self.base.cfg.epoch_freq as u64) {
            // Private clock tick on this thread's own line — no shared RMW
            // (the controller stretches the period to `epoch_freq << decay`
            // on idle domains; the decay word is only consulted on the
            // 1-in-epoch_freq candidates).
            self.clocks.tick(tid);
        }
        // SeqCst: the announcement must be globally visible before this
        // thread reads any data-structure pointer (the one fence EBR pays
        // per operation).
        self.reserved[tid].store(self.clocks.current(), Ordering::SeqCst);
    }

    #[inline]
    fn end_op(&self, tid: usize) {
        self.reserved[tid].store(QUIESCENT, Ordering::Release);
    }

    #[inline]
    fn protect<T>(&self, _tid: usize, _slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        // Epoch readers are pre-protected by their announcement.
        Ok(src.load(Ordering::Acquire))
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.reclaim_epoch_freeable(tid, false);
            // Ladder rung 2: the hard watermark converts retirement into
            // synchronous reclamation — bounded forced retries with a
            // growing spin backoff, giving laggards a window to advance.
            let mut tries = 0u32;
            while tries < HARD_RETRY_LIMIT
                && self.base.stats.pressure().rung() >= PressureRung::Hard
            {
                for _ in 0..(64u32 << tries) {
                    core::hint::spin_loop();
                }
                self.reclaim_epoch_freeable(tid, true);
                tries += 1;
            }
        }
    }

    fn current_era(&self) -> u64 {
        self.clocks.current()
    }

    fn flush(&self, tid: usize) {
        self.reclaim_epoch_freeable(tid, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &Ebr, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn single_thread_reclaims_after_quiescence() {
        let smr = Ebr::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        for i in 0..100 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.retired_nodes, 100);
        assert!(
            s.freed_nodes >= 90,
            "quiescent single thread frees nearly everything, freed = {}",
            s.freed_nodes
        );
        drop(reg);
    }

    #[test]
    fn stalled_reader_blocks_reclamation() {
        let smr = Ebr::new(SmrConfig::for_tests(2));
        let reg0 = smr.register(0);
        let stalled = std::thread::spawn({
            let smr = Arc::clone(&smr);
            move || {
                let reg1 = smr.register(1);
                smr.begin_op(1); // enter and never leave
                std::thread::sleep(std::time::Duration::from_millis(300));
                smr.end_op(1);
                drop(reg1);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Reader parked in an old epoch: nothing retired after its entry
        // may be freed.
        let freed_before = smr.stats().snapshot().freed_nodes;
        for i in 0..500 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(
            s.freed_nodes, freed_before,
            "EBR must not free past a stalled reader (the robustness gap)"
        );
        stalled.join().unwrap();
        smr.flush(0);
        assert!(
            smr.stats().snapshot().freed_nodes > freed_before,
            "after the reader leaves, garbage drains"
        );
        drop(reg0);
    }

    #[test]
    fn op_path_ticks_private_clock_only() {
        // The epoch max-aggregation invariant, scheme-level: operations
        // advance a private clock; the global word moves only when a
        // reclaimer pass aggregates.
        let smr = Ebr::new(SmrConfig::for_tests(2).with_epoch_freq(2));
        let reg = smr.register(0);
        let e0 = smr.current_era();
        let c0 = smr.clocks.local_of(0);
        for _ in 0..10 {
            smr.begin_op(0);
            smr.end_op(0);
        }
        assert_eq!(
            smr.current_era(),
            e0,
            "no reclaimer pass ran: the shared epoch word must not move"
        );
        assert!(
            smr.clocks.local_of(0) >= c0 + 5,
            "private clock ticks every 2 ops"
        );
        smr.flush(0); // a pass aggregates
        assert!(
            smr.current_era() >= c0 + 5,
            "max-aggregation publishes the ticked clock"
        );
        drop(reg);
    }

    #[test]
    fn barren_passes_decay_and_thin_triggered_passes() {
        // A stalled reader makes every pass barren: the controller must
        // deepen the decay (counted) and thin retire-triggered passes, so
        // the pinned regime stops paying a full scan per trigger.
        let smr = Ebr::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(32)
                .with_retire_bins(1) // one fill bin: deterministic seal/trigger points
                .with_adaptive(true), // pin against the POP_ADAPTIVE=0 CI leg
        );
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        smr.begin_op(1); // reader parks in the current epoch
        let triggers = 64u64;
        for i in 0..32 * triggers {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        let s = smr.stats().snapshot();
        assert_eq!(s.freed_nodes, 0, "everything pinned by the reader");
        assert!(
            s.epoch_decay_steps >= crate::controller::MAX_EPOCH_DECAY as u64,
            "barren passes must deepen the decay, saw {}",
            s.epoch_decay_steps
        );
        assert!(
            s.epoch_passes < triggers,
            "decay must thin triggered passes: {} full of {} triggers",
            s.epoch_passes,
            triggers
        );
        // No reclamation-latency cliff: the reader leaves, and the very
        // next (forced) pass frees everything and resets the decay.
        smr.end_op(1);
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.unreclaimed_nodes(), 0, "first freeable sweep drains");
        assert_eq!(smr.ctl.decay_level(), 0, "decay resets on the free");
        // And with the decay reset, triggered passes run full again.
        let full_before = smr.stats().snapshot().epoch_passes;
        for i in 0..64 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        assert!(
            smr.stats().snapshot().epoch_passes > full_before,
            "post-reset triggers execute full passes"
        );
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn adaptive_off_never_decays_or_thins() {
        let smr = Ebr::new(
            SmrConfig::for_tests(2)
                .with_reclaim_freq(32)
                .with_retire_bins(1)
                .with_adaptive(false),
        );
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        smr.begin_op(1); // stalled reader: every pass is barren
        let triggers = 16u64;
        for i in 0..32 * triggers {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        let s = smr.stats().snapshot();
        assert_eq!(s.epoch_decay_steps, 0, "static config never decays");
        assert_eq!(
            s.epoch_passes, triggers,
            "every trigger runs a full pass when adaptive is off"
        );
        smr.end_op(1);
        smr.flush(0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn min_epoch_ignores_unregistered_slots() {
        let smr = Ebr::new(SmrConfig::for_tests(4));
        let reg = smr.register(2);
        smr.begin_op(2);
        assert_eq!(smr.min_epoch(), smr.reserved[2].load(Ordering::SeqCst));
        smr.end_op(2);
        assert_eq!(smr.min_epoch(), QUIESCENT);
        drop(reg);
    }
}
