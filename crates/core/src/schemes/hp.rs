//! `HP` — classic hazard pointers (Michael 2004; paper §2.1).
//!
//! Every protected read stores the pointer to a shared SWMR slot, executes
//! a **full memory fence**, and re-reads the source to validate
//! reachability. The per-read fence is the overhead publish-on-ping
//! removes; this implementation is the faithful baseline.

use core::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::base::{
    collect_slot_words_into, free_unreserved, push_retired, DomainBase, RetireSlot, ScratchSlot,
};
use crate::config::SmrConfig;
use crate::header::{unmark_word, Retired};
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
}

/// Classic eager-publishing hazard pointers.
pub struct HazardPtr {
    base: DomainBase,
    /// `sharedReservations[tid][slot]` — eagerly published on every read.
    shared: Box<[AtomicU64]>,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl HazardPtr {
    #[inline(always)]
    fn idx(&self, tid: usize, slot: usize) -> usize {
        debug_assert!(slot < self.base.cfg.slots);
        tid * self.base.cfg.slots + slot
    }

    fn reclaim(&self, tid: usize) {
        // Order the reservation scan after this thread's preceding unlinks
        // (pairs with readers' per-read fences).
        fence(Ordering::SeqCst);
        // SAFETY: tid ownership per the registration contract.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        collect_slot_words_into(
            &self.base,
            self.base.cfg.slots,
            &self.shared,
            &mut scratch.reserved,
        );
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.stats.shard(tid).observe_retire_len(list.len());
        // SAFETY: `reserved` covers every published reservation; HP readers
        // publish (with a fence) before dereferencing.
        unsafe { free_unreserved(&self.base, tid, list, &scratch.reserved) };
    }
}

impl Smr for HazardPtr {
    const NAME: &'static str = "HP";
    const ROBUST: bool = true;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let cells = cfg.max_threads * cfg.slots;
        let mut shared = Vec::with_capacity(cells);
        shared.resize_with(cells, || AtomicU64::new(0));
        let n = cfg.max_threads;
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&cfg),
                scratch: ScratchSlot::new(),
            })
        });
        Arc::new(HazardPtr {
            base: DomainBase::new(cfg),
            shared: shared.into_boxed_slice(),
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        for s in 0..self.base.cfg.slots {
            self.shared[self.idx(tid, s)].store(0, Ordering::Release);
        }
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.end_op(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, _tid: usize) {}

    #[inline]
    fn end_op(&self, tid: usize) {
        for s in 0..self.base.cfg.slots {
            self.shared[self.idx(tid, s)].store(0, Ordering::Release);
        }
    }

    #[inline]
    fn protect<T>(&self, tid: usize, slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        let cell = &self.shared[self.idx(tid, slot)];
        loop {
            let p = src.load(Ordering::Acquire);
            cell.store(unmark_word(p as u64), Ordering::Release);
            // The fence every read pays in classic HP (paper §2.1.1 step 2):
            // makes the reservation visible before the validation re-read.
            fence(Ordering::SeqCst);
            if src.load(Ordering::Acquire) == p {
                return Ok(p);
            }
        }
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.reclaim(tid);
        }
    }

    fn flush(&self, tid: usize) {
        self.reclaim(tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &HazardPtr, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(0, core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn protect_records_and_validates() {
        let smr = HazardPtr::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let node = alloc(&smr, 1);
        let src = AtomicPtr::new(node);
        let got = smr.protect(0, 0, &src).unwrap();
        assert_eq!(got, node);
        assert_eq!(
            smr.shared[0].load(Ordering::Acquire),
            node as u64,
            "reservation published eagerly"
        );
        smr.end_op(0);
        assert_eq!(smr.shared[0].load(Ordering::Acquire), 0);
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }

    #[test]
    fn reserved_nodes_survive_reclaim() {
        let smr = HazardPtr::new(SmrConfig::for_tests(2).with_reclaim_freq(8));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        // Thread 1 protects a node...
        let hot = alloc(&smr, 42);
        let src = AtomicPtr::new(hot);
        let got = smr.protect(1, 0, &src).unwrap();
        assert_eq!(got, hot);
        // ...thread 0 retires it (simulating an unlink) plus filler.
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..16 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert!(s.freed_nodes >= 16, "unreserved filler freed");
        assert_eq!(
            s.unreclaimed_nodes(),
            1,
            "exactly the protected node survives"
        );
        // Release the protection: next pass frees it.
        smr.end_op(1);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn marked_pointers_are_unmarked_in_reservations() {
        let smr = HazardPtr::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let node = alloc(&smr, 7);
        let marked = (node as u64 | 1) as *mut N;
        let src = AtomicPtr::new(marked);
        let got = smr.protect(0, 0, &src).unwrap();
        assert_eq!(got as u64, node as u64 | 1, "mark returned to the caller");
        assert_eq!(
            smr.shared[0].load(Ordering::Acquire),
            node as u64,
            "reservation recorded unmarked"
        );
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }

    #[test]
    fn quarantine_check_live_catches_freed_node() {
        let smr = HazardPtr::new(SmrConfig::for_tests(1).with_quarantine());
        let reg = smr.register(0);
        let node = alloc(&smr, 5);
        unsafe { retire_node(&*smr, 0, node) };
        smr.flush(0); // frees into quarantine (not reserved)
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            smr.check_live(node);
        }));
        assert!(r.is_err(), "check_live of a freed node must panic");
        // A live node passes.
        let live = alloc(&smr, 6);
        smr.check_live(live);
        unsafe { drop(Box::from_raw(live)) };
        drop(reg);
    }
}
