//! `HE` — hazard eras (Ramalhete & Correia 2017; paper Appendix B.1,
//! Alg. 4).
//!
//! Readers reserve the current *era* (a global monotonically increasing
//! timestamp) instead of individual pointers. A fence is needed only when
//! the era changed since the slot's last publication, which amortizes the
//! per-read cost of classic HP. A node is freeable when no reserved era
//! intersects its `[birth_era, retire_era]` lifespan.

use core::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::base::{
    free_era_unreserved_with_stalled, push_retired, DomainBase, RetireSlot, ScratchSlot,
};
use crate::config::SmrConfig;
use crate::header::Retired;
use crate::pressure::{PressureRung, HARD_RETRY_LIMIT, STALLED_AFTER_PASSES};
use crate::smr::{ReadResult, Smr};
use crate::stats::DomainStats;

/// Era slot value meaning "nothing reserved".
pub(crate) const NONE: u64 = 0;

struct ThreadState {
    retire: RetireSlot,
    scratch: ScratchSlot,
}

/// Hazard eras with eager (fenced) era publication.
pub struct HazardEra {
    base: DomainBase,
    /// Global era clock, starts at 1 (0 is the NONE sentinel).
    era: CachePadded<AtomicU64>,
    /// `sharedReservations[tid][slot]` holding era numbers.
    shared: Box<[AtomicU64]>,
    threads: Box<[CachePadded<ThreadState>]>,
}

impl HazardEra {
    #[inline(always)]
    fn idx(&self, tid: usize, slot: usize) -> usize {
        debug_assert!(slot < self.base.cfg.slots);
        tid * self.base.cfg.slots + slot
    }

    /// Stall-aware era collection: gathers the union of published eras
    /// into `reserved` (sorted, deduplicated) while feeding each thread's
    /// minimum published era into the domain stall tracker. Under the
    /// emergency rung the non-stalled threads' eras are additionally split
    /// into `active`, and the stalled reader with the lowest pinned era is
    /// elected blocker.
    fn collect_eras_stalled(
        &self,
        reserved: &mut Vec<u64>,
        active: &mut Vec<u64>,
    ) -> Option<(usize, u64)> {
        let emergency = self.base.stats.pressure().rung() >= PressureRung::Emergency;
        reserved.clear();
        active.clear();
        let mut blocker: Option<(usize, u64)> = None;
        for t in 0..self.base.cfg.max_threads {
            if !self.base.is_registered(t) {
                continue;
            }
            // Signature = minimum published era (NONE == 0 means idle): a
            // stalled reader re-publishing the same pinned era keeps it
            // constant; any progress moves it.
            let mut sig = 0u64;
            let start = reserved.len();
            for s in 0..self.base.cfg.slots {
                let w = self.shared[self.idx(t, s)].load(Ordering::Acquire);
                if w != 0 {
                    reserved.push(w);
                    if sig == 0 || w < sig {
                        sig = w;
                    }
                }
            }
            let stalled = self.base.stall.observe(t, sig) >= STALLED_AFTER_PASSES && sig != 0;
            if !emergency {
                continue;
            }
            if stalled {
                if blocker.is_none_or(|(_, bw)| sig < bw) {
                    blocker = Some((t, sig));
                }
            } else {
                let end = reserved.len();
                active.extend_from_within(start..end);
            }
        }
        reserved.sort_unstable();
        reserved.dedup();
        active.sort_unstable();
        active.dedup();
        blocker
    }

    fn reclaim(&self, tid: usize) {
        // Alg. 4 line 21: advance the era so nodes retired from now on have
        // disjoint lifespans from long-held reservations.
        self.era.fetch_add(1, Ordering::AcqRel);
        fence(Ordering::SeqCst);
        // SAFETY: tid ownership per the registration contract.
        let scratch = unsafe { self.threads[tid].scratch.get() };
        let blocker = self.collect_eras_stalled(&mut scratch.reserved, &mut scratch.active);
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        // Ladder rung 3 unwind: blocks parked on an era the blocker no
        // longer publishes (or a reaped blocker) rejoin the list and are
        // re-filtered against the full union below.
        self.base.reclaim_released_quarantine(tid, list, |t, w| {
            (0..self.base.cfg.slots)
                .any(|s| self.shared[self.idx(t, s)].load(Ordering::Acquire) == w)
        });
        self.base.stats.shard(tid).observe_retire_len(list.len());
        let active = blocker.map(|(t, w)| (scratch.active.as_slice(), t, w));
        // SAFETY: `reserved` contains every published era; a node whose
        // lifespan misses all of them cannot be reachable from any reader.
        // The active split never frees: blocks pinned only by the stalled
        // blocker's eras are parked, not freed.
        unsafe {
            free_era_unreserved_with_stalled(&self.base, tid, list, &scratch.reserved, active)
        };
    }
}

impl Smr for HazardEra {
    const NAME: &'static str = "HE";
    const ROBUST: bool = true;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        let cells = cfg.max_threads * cfg.slots;
        let mut shared = Vec::with_capacity(cells);
        shared.resize_with(cells, || AtomicU64::new(NONE));
        let n = cfg.max_threads;
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, || {
            CachePadded::new(ThreadState {
                retire: RetireSlot::for_cfg(&cfg),
                scratch: ScratchSlot::new(),
            })
        });
        Arc::new(HazardEra {
            base: DomainBase::new(cfg),
            era: CachePadded::new(AtomicU64::new(1)),
            shared: shared.into_boxed_slice(),
            threads: threads.into_boxed_slice(),
        })
    }

    fn config(&self) -> &SmrConfig {
        &self.base.cfg
    }

    fn stats(&self) -> &DomainStats {
        &self.base.stats
    }

    fn register_raw(&self, tid: usize) {
        self.base.claim(tid);
        for s in 0..self.base.cfg.slots {
            self.shared[self.idx(tid, s)].store(NONE, Ordering::Release);
        }
        // SAFETY: tid was just claimed; this thread owns the slot.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.adopt_orphan_chunk(tid, list);
    }

    fn unregister(&self, tid: usize) {
        self.end_op(tid);
        self.flush(tid);
        // SAFETY: tid ownership until release.
        let list = unsafe { self.threads[tid].retire.get() };
        self.base.orphan_remaining(tid, list);
        self.base.release(tid);
    }

    #[inline]
    fn begin_op(&self, _tid: usize) {}

    #[inline]
    fn end_op(&self, tid: usize) {
        for s in 0..self.base.cfg.slots {
            self.shared[self.idx(tid, s)].store(NONE, Ordering::Release);
        }
    }

    /// Alg. 4 `read()`: fence only when the era advanced since this slot's
    /// last publication.
    #[inline]
    fn protect<T>(&self, tid: usize, slot: usize, src: &AtomicPtr<T>) -> ReadResult<T> {
        let cell = &self.shared[self.idx(tid, slot)];
        let mut prev_era = cell.load(Ordering::Relaxed);
        loop {
            let p = src.load(Ordering::Acquire);
            let e = self.era.load(Ordering::Acquire);
            if e == prev_era {
                return Ok(p);
            }
            cell.store(e, Ordering::Release);
            // The amortized StoreLoad fence (only on era change).
            fence(Ordering::SeqCst);
            prev_era = e;
        }
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: tid ownership.
        let list = unsafe { self.threads[tid].retire.get() };
        if push_retired(&self.base, tid, list, retired) {
            self.reclaim(tid);
            // Ladder rung 2: bounded synchronous retries while the hard
            // watermark stays breached (HE has no pass controller, so the
            // soft rung is inert here; the hard rung is the first to act).
            let mut tries = 0u32;
            while tries < HARD_RETRY_LIMIT
                && self.base.stats.pressure().rung() >= PressureRung::Hard
            {
                for _ in 0..(64u32 << tries) {
                    core::hint::spin_loop();
                }
                self.reclaim(tid);
                tries += 1;
            }
        }
    }

    fn current_era(&self) -> u64 {
        self.era.load(Ordering::Acquire)
    }

    fn flush(&self, tid: usize) {
        self.reclaim(tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{HasHeader, Header};
    use crate::smr::retire_node;

    #[repr(C)]
    struct N {
        hdr: Header,
        v: u64,
    }
    unsafe impl HasHeader for N {}

    fn alloc(smr: &HazardEra, v: u64) -> *mut N {
        smr.note_alloc(0, core::mem::size_of::<N>());
        Box::into_raw(Box::new(N {
            hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
            v,
        }))
    }

    #[test]
    fn era_reservation_blocks_intersecting_lifespans() {
        let smr = HazardEra::new(SmrConfig::for_tests(2).with_reclaim_freq(4));
        let reg0 = smr.register(0);
        let reg1 = smr.register(1);
        // Thread 1 reserves the current era by protecting something.
        let hot = alloc(&smr, 7);
        let src = AtomicPtr::new(hot);
        let _ = smr.protect(1, 0, &src).unwrap();
        // Thread 0 retires `hot` (its lifespan covers t1's reserved era).
        src.store(core::ptr::null_mut(), Ordering::SeqCst);
        unsafe { retire_node(&*smr, 0, hot) };
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        // `hot` must survive; the fillers were born after the reserved era
        // but their lifespans *also* intersect it only if retired while it
        // was current — at minimum `hot` survives.
        assert!(s.unreclaimed_nodes() >= 1, "reserved-era node retained");
        smr.end_op(1);
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg1);
        drop(reg0);
    }

    #[test]
    fn era_advances_on_reclaim() {
        let smr = HazardEra::new(SmrConfig::for_tests(1).with_reclaim_freq(2));
        let reg = smr.register(0);
        let e0 = smr.current_era();
        for i in 0..8 {
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
        }
        assert!(smr.current_era() > e0);
        drop(reg);
    }

    #[test]
    fn stable_era_needs_no_republication() {
        let smr = HazardEra::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        let node = alloc(&smr, 1);
        let src = AtomicPtr::new(node);
        let _ = smr.protect(0, 0, &src).unwrap();
        let published = smr.shared[0].load(Ordering::Acquire);
        assert_eq!(published, smr.current_era());
        // Era unchanged: repeated protects must keep the same reservation.
        for _ in 0..10 {
            let _ = smr.protect(0, 0, &src).unwrap();
        }
        assert_eq!(smr.shared[0].load(Ordering::Acquire), published);
        unsafe { drop(Box::from_raw(node)) };
        drop(reg);
    }

    #[test]
    fn quiescent_single_thread_drains_completely() {
        let smr = HazardEra::new(SmrConfig::for_tests(1).with_reclaim_freq(8));
        let reg = smr.register(0);
        for i in 0..64 {
            smr.begin_op(0);
            let p = alloc(&smr, i);
            unsafe { retire_node(&*smr, 0, p) };
            smr.end_op(0);
        }
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }
}
