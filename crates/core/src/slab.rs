//! Owned slab arenas: lock-free fixed-size allocation whose slabs *are* the
//! retire bins.
//!
//! The retire pipeline routes retirements into per-thread fill bins by the
//! pointer's high bits (`ARENA_SHIFT` in `base`), *guessing* that the
//! allocator clusters addresses. This module removes the guess: nodes are
//! allocated from 64 KiB slabs ([`SLAB_BYTES`] `== 1 << ARENA_SHIFT`, so a
//! slab coincides exactly with one arena bin), each slab is filled by **one
//! owner thread with a pure bump pointer**, and therefore every sequential
//! fill is address-monotone *by construction* — every seal takes the
//! `blocks_sealed_monotone` fast path, and whole-slab frees settle with one
//! range test instead of a merge-join (in the spirit of Blelloch & Wei's
//! constant-time fixed-size alloc/free).
//!
//! ## Slab lifecycle
//!
//! ```text
//!   map (64 KiB-aligned, pop_runtime::vm)     ┌──────────────┐
//!        │              owner bump-allocates  │    ACTIVE    │
//!        ▼            ┌──────────────────────►│ (one owner)  │
//!   ┌─────────┐       │                       └──────┬───────┘
//!   │  pool   │──reuse┘                              │ owner seals (slab
//!   └─────────┘                                      ▼ full / thread exit)
//!        ▲                                    ┌──────────────┐
//!        │ unique CAS winner releases payload │    SEALED    │
//!        │ pages (madvise DONTNEED) and pools │ (total set)  │
//!        │                                    └──────┬───────┘
//!        │            freed == total                 │ any thread's free
//!        └───────────────────────────────────────────┘
//! ```
//!
//! * **ACTIVE**: only the owner bumps `next`; frees from any thread just
//!   `fetch_add` the `freed` counter. Freed slots are *not* reused while the
//!   slab is active or sealed — reuse happens at slab granularity only, so
//!   the bump order (and hence address-monotonicity of fills) is never
//!   perturbed by free-list churn.
//! * **SEALED**: the owner published the final slot count in `total`. The
//!   free that makes `freed == total` wins a `SEALED → EMPTY` CAS — exactly
//!   one thread releases the payload pages back to the OS
//!   (`madvise(MADV_DONTNEED)`, counted by [`released_bytes`]) and returns
//!   the slab to the global pool.
//! * **Pool reuse** restarts the bump at zero: the recycled slab's fills are
//!   monotone again from the first slot.
//!
//! The slab header lives in the slab's **first page**, which is never
//! `madvise`d — only the payload pages (`4 KiB..64 KiB`) are released — so
//! state survives release and the mapping stays valid for the process
//! lifetime (type-stable memory: a stale reader faulting on a released slot
//! reads zeros, never SIGSEGVs).
//!
//! ## Dispatch
//!
//! A slab-backed object is branded by a bit in its [`crate::header::Header`]
//! meta word at
//! allocation time; every free path ([`free_value`], the type-erased
//! `Retired` destructor) dispatches on that bit, so `Box`-backed nodes
//! (oversized types, slab-disabled configs via `POP_SLAB=0` /
//! [`crate::config::SmrConfig::slab_alloc`], sentinels) coexist freely with
//! slab-backed ones in the same retire lists.

use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::cell::Cell;
use std::sync::Mutex;

use crate::header::HasHeader;

/// Slab size in bytes. Equal to `1 << ARENA_SHIFT` (see `base`), so the
/// retire pipeline's arena bin routing maps one slab to one bin.
pub const SLAB_BYTES: usize = 1 << 16;

/// The first page of every slab holds its [`SlabHeader`]; slots start here.
/// This page is never `madvise`d, so slab state survives a payload release.
const SLOT_OFFSET: usize = 4096;

/// Identifies a mapped slab (debug guard against masking a foreign pointer).
const SLAB_MAGIC: u32 = 0x51AB_A12E;

/// Slot size classes. Every reclaimable node type with
/// `size_of::<T>() <= 1024` lands in the smallest fitting class; larger
/// types fall back to `Box`. Classes are powers of two dividing
/// [`SLOT_OFFSET`], so slot addresses are class-aligned (and Rust guarantees
/// `align_of::<T>() <= size_of::<T>()` for the inhabited node types here).
const CLASSES: [usize; 6] = [32, 64, 128, 256, 512, 1024];

/// `total` sentinel while a slab is still ACTIVE (owner may still bump).
const TOTAL_OPEN: u32 = u32::MAX;

const STATE_ACTIVE: u32 = 0;
const STATE_SEALED: u32 = 1;
const STATE_EMPTY: u32 = 2;

/// Per-slab metadata, resident in the slab's first page.
#[repr(C)]
struct SlabHeader {
    magic: u32,
    /// Slot size class in bytes.
    slot_size: AtomicU32,
    /// [`STATE_ACTIVE`] → [`STATE_SEALED`] → [`STATE_EMPTY`] (then pooled).
    state: AtomicU32,
    /// Next slot index; written only by the owner thread while ACTIVE.
    next: AtomicU32,
    /// Slots freed so far; any thread, `fetch_add` only.
    freed: AtomicU32,
    /// Final slot count, [`TOTAL_OPEN`] until the owner seals.
    total: AtomicU32,
}

/// Process-wide bytes handed back to the OS via `madvise(MADV_DONTNEED)`.
static RELEASED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of slabs ever mapped (testing/diagnostics gauge).
static MAPPED_SLABS: AtomicU64 = AtomicU64::new(0);
/// Fully-empty slabs awaiting reuse, by base address. A `Mutex` is fine
/// here: it is touched once per *slab* (≥ 60 allocations between touches),
/// never on the per-slot paths, which stay lock-free.
static EMPTY_POOL: Mutex<Vec<usize>> = Mutex::new(Vec::new());

#[inline]
fn header_of(base: usize) -> &'static SlabHeader {
    debug_assert_eq!(base & (SLAB_BYTES - 1), 0, "not a slab base");
    // SAFETY: slab mappings are never unmapped for the process lifetime and
    // the header page is never madvise'd, so the reference stays valid.
    unsafe { &*(base as *const SlabHeader) }
}

/// Slots a slab of `class`-byte slots holds.
#[inline]
fn capacity_of(class: usize) -> u32 {
    ((SLAB_BYTES - SLOT_OFFSET) / class) as u32
}

/// Smallest class index fitting `size`, or `None` (Box fallback).
#[inline]
fn class_index(size: usize) -> Option<usize> {
    CLASSES.iter().position(|&c| size <= c)
}

/// Per-thread active slab bases, one per size class; 0 = none.
struct ActiveSlabs {
    bases: [Cell<usize>; CLASSES.len()],
}

impl Drop for ActiveSlabs {
    fn drop(&mut self) {
        // Thread exit seals this thread's actives so their slabs can reach
        // EMPTY once outstanding nodes are freed by surviving threads.
        for base in &self.bases {
            let b = base.replace(0);
            if b != 0 {
                seal_slab(b);
            }
        }
    }
}

thread_local! {
    static ACTIVE: ActiveSlabs = const {
        ActiveSlabs {
            bases: [const { Cell::new(0) }; CLASSES.len()],
        }
    };
}

/// Takes a slab for `class_idx` from the pool, or maps a fresh one.
fn acquire_slab(class_idx: usize) -> Option<usize> {
    let class = CLASSES[class_idx];
    let pooled = EMPTY_POOL.lock().unwrap().pop();
    if let Some(base) = pooled {
        let hdr = header_of(base);
        // The invariant the retire pipeline depends on: a slab is only ever
        // reused after every slot handed out was freed — no retire block can
        // still reference it. Enforced unconditionally, not debug-only.
        let total = hdr.total.load(Ordering::Acquire);
        let freed = hdr.freed.load(Ordering::Acquire);
        assert!(
            hdr.state.load(Ordering::Acquire) == STATE_EMPTY && freed == total,
            "pooled slab reused while slots are outstanding ({freed}/{total})"
        );
        hdr.slot_size.store(class as u32, Ordering::Relaxed);
        hdr.next.store(0, Ordering::Relaxed);
        hdr.freed.store(0, Ordering::Relaxed);
        hdr.total.store(TOTAL_OPEN, Ordering::Relaxed);
        hdr.state.store(STATE_ACTIVE, Ordering::Release);
        return Some(base);
    }
    let base = pop_runtime::vm::aligned_map(SLAB_BYTES, SLAB_BYTES)? as usize;
    MAPPED_SLABS.fetch_add(1, Ordering::Relaxed);
    // SAFETY: freshly mapped, zeroed, exclusively owned; header page is in
    // bounds.
    unsafe {
        (base as *mut SlabHeader).write(SlabHeader {
            magic: SLAB_MAGIC,
            slot_size: AtomicU32::new(class as u32),
            state: AtomicU32::new(STATE_ACTIVE),
            next: AtomicU32::new(0),
            freed: AtomicU32::new(0),
            total: AtomicU32::new(TOTAL_OPEN),
        });
    }
    Some(base)
}

/// Publishes the final slot count and moves the slab out of ACTIVE. Called
/// by the owner (slab full, thread exit, or [`release_thread_slabs`]).
fn seal_slab(base: usize) {
    let hdr = header_of(base);
    let filled = hdr.next.load(Ordering::Relaxed);
    hdr.total.store(filled, Ordering::Release);
    hdr.state.store(STATE_SEALED, Ordering::Release);
    // The owner itself may be the last referent (everything already freed,
    // or nothing was ever allocated).
    try_settle_empty(base);
}

/// If every handed-out slot has been freed, wins the unique
/// `SEALED → EMPTY` transition: releases the payload pages to the OS and
/// pools the slab for reuse.
fn try_settle_empty(base: usize) {
    let hdr = header_of(base);
    let total = hdr.total.load(Ordering::Acquire);
    if total == TOTAL_OPEN {
        return; // still ACTIVE — the owner may bump further
    }
    if hdr.freed.load(Ordering::Acquire) != total {
        return;
    }
    if hdr
        .state
        .compare_exchange(
            STATE_SEALED,
            STATE_EMPTY,
            Ordering::AcqRel,
            Ordering::Relaxed,
        )
        .is_err()
    {
        return; // another freeing thread won the settle
    }
    // Unique winner: every slot's drop happened-before (the freed RMW chain
    // synchronizes them), so the payload pages can go back to the OS. On
    // failure (or off Linux) the slab is still perfectly reusable — we just
    // don't count released bytes.
    if pop_runtime::vm::release_pages((base + SLOT_OFFSET) as *mut u8, SLAB_BYTES - SLOT_OFFSET) {
        RELEASED_BYTES.fetch_add((SLAB_BYTES - SLOT_OFFSET) as u64, Ordering::Relaxed);
    }
    EMPTY_POOL.lock().unwrap().push(base);
}

/// Bump-allocates one `class_idx` slot from the calling thread's active
/// slab, acquiring/recycling slabs as needed. `None` ⇒ fall back to `Box`
/// (mapping failed, or TLS is already torn down).
fn alloc_slot(class_idx: usize) -> Option<*mut u8> {
    ACTIVE
        .try_with(|active| {
            let cell = &active.bases[class_idx];
            loop {
                let mut base = cell.get();
                if base == 0 {
                    base = acquire_slab(class_idx)?;
                    cell.set(base);
                }
                let hdr = header_of(base);
                let class = CLASSES[class_idx];
                let next = hdr.next.load(Ordering::Relaxed);
                if next < capacity_of(class) {
                    // Owner-only bump: no RMW, no contention, and slot
                    // addresses are strictly increasing — the monotone-fill
                    // guarantee the whole module exists for.
                    hdr.next.store(next + 1, Ordering::Relaxed);
                    return Some((base + SLOT_OFFSET + next as usize * class) as *mut u8);
                }
                seal_slab(base);
                cell.set(0);
            }
        })
        .ok()
        .flatten()
}

/// Returns one slot to its slab. The last free of a sealed slab settles the
/// whole slab (pages released, slab pooled).
///
/// # Safety
///
/// `p` must be a slot pointer previously returned by [`alloc_slot`] (the
/// caller proves this via the header slab bit), freed exactly once, with no
/// remaining accesses to the slot's contents.
pub(crate) unsafe fn free_slot(p: *mut u8) {
    let base = (p as usize) & !(SLAB_BYTES - 1);
    let hdr = header_of(base);
    debug_assert_eq!(hdr.magic, SLAB_MAGIC, "freeing a non-slab pointer");
    // AcqRel: the release half publishes this slot's drop to the settle
    // winner; the acquire half joins the RMW chain so the winner's
    // `freed == total` read sees every predecessor.
    hdr.freed.fetch_add(1, Ordering::AcqRel);
    try_settle_empty(base);
}

/// Returns `n` slots of the slab at `base` in **one** accounting step —
/// the whole-slab settlement fast path: a wholly-freed retire block
/// confined to one slab replaces `n` per-slot RMWs and settle probes with
/// a single `fetch_add` and one probe.
///
/// # Safety
///
/// `base` must be the slab-aligned base of a mapped slab, the `n` slots
/// must each have been returned by [`alloc_slot`] from that slab, their
/// payloads already dropped, each counted exactly once, with no remaining
/// accesses to their contents.
pub(crate) unsafe fn free_slots_batch(base: usize, n: u32) {
    let hdr = header_of(base);
    debug_assert_eq!(hdr.magic, SLAB_MAGIC, "batch-freeing a non-slab base");
    // AcqRel as in `free_slot`: one RMW publishes all `n` drops.
    hdr.freed.fetch_add(n, Ordering::AcqRel);
    try_settle_empty(base);
}

/// Allocates `value`, slab-backed when `use_slab` is set and the type fits a
/// size class, `Box`-backed otherwise. The returned object's header carries
/// the slab bit iff the slab path was taken ([`Header::is_slab_backed`]);
/// free through [`free_value`] or the retire pipeline, never `Box::from_raw`
/// directly.
///
/// [`Header::is_slab_backed`]: crate::header::Header::is_slab_backed
pub fn alloc_value<T: HasHeader>(value: T, use_slab: bool) -> *mut T {
    if use_slab {
        if let Some(raw) = class_index(core::mem::size_of::<T>()).and_then(alloc_slot) {
            let p = raw as *mut T;
            // SAFETY: `raw` is a fresh, exclusively-owned, class-aligned
            // slot of at least `size_of::<T>()` bytes (class fit checked
            // above; `align_of::<T>() <= size_of::<T>() <= class`).
            unsafe {
                core::ptr::write(p, value);
                (*p).header().mark_slab_backed();
            }
            return p;
        }
    }
    Box::into_raw(Box::new(value))
}

/// Frees an object allocated by [`alloc_value`], dispatching on the
/// header's slab bit.
///
/// # Safety
///
/// `p` must come from [`alloc_value`] (or `Box::into_raw` of a `T`), be
/// unreachable by every other thread, and not be freed again.
pub unsafe fn free_value<T: HasHeader>(p: *mut T) {
    // SAFETY: `p` is live per the caller's contract.
    if unsafe { (*p).header().is_slab_backed() } {
        // SAFETY: slab bit ⇒ slot pointer; drop then return the slot.
        unsafe {
            core::ptr::drop_in_place(p);
            free_slot(p as *mut u8);
        }
    } else {
        // SAFETY: slab bit clear ⇒ the allocation came from `Box`.
        unsafe { drop(Box::from_raw(p)) }
    }
}

/// Seals the calling thread's active slabs so they can settle once their
/// outstanding nodes are freed. Benchmarks and tests call this before
/// asserting drain ([`released_bytes`] only moves for *sealed* slabs);
/// thread exit does it automatically. The next allocation simply starts a
/// fresh slab.
pub fn release_thread_slabs() {
    let _ = ACTIVE.try_with(|active| {
        for cell in &active.bases {
            let base = cell.replace(0);
            if base != 0 {
                seal_slab(base);
            }
        }
    });
}

/// Process-wide bytes returned to the OS by empty-slab settlement. Reported
/// in stats snapshots as `slab_released_bytes`.
pub fn released_bytes() -> u64 {
    RELEASED_BYTES.load(Ordering::Relaxed)
}

/// Number of fully-empty slabs currently pooled for reuse (testing hook).
pub fn pool_len() -> usize {
    EMPTY_POOL.lock().unwrap().len()
}

/// Total slabs ever mapped from the OS (testing hook).
pub fn mapped_slabs() -> u64 {
    MAPPED_SLABS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::Header;
    use proptest::Strategy as _;
    use std::collections::HashSet;

    #[repr(C)]
    struct Node {
        hdr: Header,
        payload: [u64; 5],
    }
    unsafe impl HasHeader for Node {}

    /// The pool and released-bytes gauge are process-global; tests that
    /// assert per-slab state serialize so a parallel test can't reacquire
    /// a slab between "we settled it" and "we assert it settled".
    static TEST_SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn node(tag: u64) -> Node {
        Node {
            hdr: Header::new(tag, core::mem::size_of::<Node>()),
            payload: [tag; 5],
        }
    }

    #[test]
    fn class_fitting_is_tight_and_oversize_falls_back() {
        assert_eq!(class_index(1), Some(0));
        assert_eq!(class_index(32), Some(0));
        assert_eq!(class_index(33), Some(1));
        assert_eq!(class_index(1024), Some(5));
        assert_eq!(class_index(1025), None);
    }

    #[test]
    fn slab_alloc_brands_header_and_box_does_not() {
        let s = alloc_value(node(1), true);
        let b = alloc_value(node(2), false);
        unsafe {
            assert!((*s).hdr.is_slab_backed());
            assert!(!(*b).hdr.is_slab_backed());
            assert_eq!((*s).payload, [1; 5]);
            free_value(s);
            free_value(b);
        }
        release_thread_slabs();
    }

    #[test]
    fn poison_preserves_slab_bit() {
        let s = alloc_value(node(3), true);
        unsafe {
            (*s).hdr.poison();
            assert!((*s).hdr.is_poisoned());
            assert!(
                (*s).hdr.is_slab_backed(),
                "quarantined slab slots must still free into their slab"
            );
            assert_eq!((*s).hdr.size(), core::mem::size_of::<Node>());
            free_value(s);
        }
        release_thread_slabs();
    }

    #[test]
    fn sequential_fill_is_address_monotone_by_construction() {
        let mut last = 0usize;
        let mut ptrs = Vec::new();
        let mut breaks = 0;
        for i in 0..3 * capacity_of(64) as u64 {
            let p = alloc_value(node(i), true) as usize;
            if last != 0 && p <= last {
                breaks += 1; // only legal at a slab boundary
            }
            last = p;
            ptrs.push(p);
        }
        assert!(breaks <= 3, "bump fills must be monotone within a slab");
        for p in ptrs {
            unsafe { free_value(p as *mut Node) };
        }
        release_thread_slabs();
    }

    #[test]
    fn full_cycle_releases_pages_and_recycles_the_slab() {
        let _guard = serial();
        let cap = capacity_of(64) as usize;
        let before_released = released_bytes();

        // Fill exactly one slab, then free everything.
        let ptrs: Vec<*mut Node> = (0..cap)
            .map(|i| alloc_value(node(i as u64), true))
            .collect();
        let base = ptrs[0] as usize & !(SLAB_BYTES - 1);
        assert!(
            ptrs.iter()
                .all(|&p| (p as usize) & !(SLAB_BYTES - 1) == base),
            "one slab's worth of fills must share a slab"
        );
        release_thread_slabs(); // seal so the last free can settle
        for p in ptrs {
            unsafe { free_value(p) };
        }
        assert_eq!(header_of(base).state.load(Ordering::Acquire), STATE_EMPTY);
        assert!(
            released_bytes() - before_released >= (SLAB_BYTES - SLOT_OFFSET) as u64,
            "settling one slab releases at least its payload pages"
        );

        // The next fill may reuse the pooled slab — and must restart its
        // bump at slot zero if it does.
        let p = alloc_value(node(99), true);
        let reused_base = p as usize & !(SLAB_BYTES - 1);
        if reused_base == base {
            assert_eq!(p as usize, base + SLOT_OFFSET, "recycled bump restarts");
        }
        unsafe { free_value(p) };
        release_thread_slabs();
    }

    #[test]
    fn sealing_an_untouched_slab_settles_immediately() {
        let _guard = serial();
        let p = alloc_value(node(7), true);
        unsafe { free_value(p) };
        // The active slab has zero outstanding slots; sealing must settle
        // it without waiting for any further free.
        let base = p as usize & !(SLAB_BYTES - 1);
        release_thread_slabs();
        assert_eq!(header_of(base).state.load(Ordering::Acquire), STATE_EMPTY);
    }

    /// One step of the interleaving property test.
    #[derive(Clone, Copy, Debug)]
    enum SlabOp {
        /// Allocate a node tagged with the step index.
        Alloc,
        /// Free the live allocation at this (modular) position.
        Free(usize),
        /// Seal the thread's active slabs mid-stream.
        Seal,
    }

    fn check_slab_ops(ops: &[SlabOp]) {
        let mut live: Vec<*mut Node> = Vec::new();
        // Every address currently handed out — a second hand-out of a live
        // address is the double-allocation bug this test exists to catch.
        let mut outstanding: HashSet<usize> = HashSet::new();
        for (i, &op) in ops.iter().enumerate() {
            match op {
                SlabOp::Alloc => {
                    let p = alloc_value(node(i as u64), true);
                    assert!(
                        outstanding.insert(p as usize),
                        "slot {p:p} handed out while still live"
                    );
                    unsafe {
                        assert_eq!((*p).payload, [i as u64; 5], "slot contents intact");
                    }
                    live.push(p);
                }
                SlabOp::Free(at) => {
                    if live.is_empty() {
                        continue;
                    }
                    let p = live.swap_remove(at % live.len());
                    assert!(outstanding.remove(&(p as usize)));
                    unsafe { free_value(p) };
                }
                SlabOp::Seal => release_thread_slabs(),
            }
            // Free-list integrity: every live node still reads back the tag
            // it was written with (no slot was recycled under us).
            for &p in &live {
                let tag = unsafe { (*p).payload[0] };
                assert_eq!(unsafe { (*p).payload }, [tag; 5]);
            }
        }
        for p in live {
            unsafe { free_value(p) };
        }
        release_thread_slabs();
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// ISSUE 10 satellite: arbitrary alloc/free/seal interleavings
        /// never double-hand-out a slot and keep live contents intact.
        #[test]
        fn alloc_free_seal_interleavings_preserve_integrity(
            ops in proptest::collection::vec(
                proptest::prop_oneof![
                    proptest::Just(SlabOp::Alloc),
                    (0usize..4096).prop_map(SlabOp::Free),
                    proptest::Just(SlabOp::Seal),
                ],
                1..400,
            )
        ) {
            check_slab_ops(&ops);
        }

        /// Empty-slab detection is exact: after freeing every allocation
        /// and sealing, each touched slab settles to EMPTY — and never
        /// settles while any slot is outstanding.
        #[test]
        fn empty_detection_is_exact(n in 1usize..300, hold in 0usize..64) {
            let _guard = serial();
            let ptrs: Vec<*mut Node> =
                (0..n).map(|i| alloc_value(node(i as u64), true)).collect();
            let bases: HashSet<usize> = ptrs
                .iter()
                .map(|&p| p as usize & !(SLAB_BYTES - 1))
                .collect();
            release_thread_slabs();
            let hold = hold.min(n - 1);
            for &p in &ptrs[hold..] {
                unsafe { free_value(p) };
            }
            if hold > 0 {
                // Slabs with outstanding slots must NOT be empty.
                for &p in &ptrs[..hold] {
                    let base = p as usize & !(SLAB_BYTES - 1);
                    assert_ne!(
                        header_of(base).state.load(Ordering::Acquire),
                        STATE_EMPTY,
                        "slab settled with live slots"
                    );
                }
                for &p in &ptrs[..hold] {
                    unsafe { free_value(p) };
                }
            }
            for base in bases {
                assert_eq!(
                    header_of(base).state.load(Ordering::Acquire),
                    STATE_EMPTY,
                    "all slots freed + sealed ⇒ slab must settle"
                );
            }
        }
    }

    /// ISSUE 10 satellite (cross-thread): producers bump-allocate while a
    /// consumer frees from another thread; recycled slabs must never hand
    /// out a slot while any prior hand-out of it is still outstanding.
    #[test]
    fn cross_thread_recycling_never_reissues_live_slots() {
        use std::sync::atomic::AtomicBool;
        use std::sync::{mpsc, Arc};

        const PRODUCERS: usize = 3;
        const PER_THREAD: usize = 4000;

        // Raw pointers are not Send: ship them as addresses.
        let (tx, rx) = mpsc::channel::<usize>();
        let issued = Arc::new(Mutex::new(HashSet::<usize>::new()));
        let failed = Arc::new(AtomicBool::new(false));

        let handles: Vec<_> = (0..PRODUCERS)
            .map(|t| {
                let tx = tx.clone();
                let issued = Arc::clone(&issued);
                let failed = Arc::clone(&failed);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let p = alloc_value(node((t * PER_THREAD + i) as u64), true);
                        if !issued.lock().unwrap().insert(p as usize) {
                            failed.store(true, Ordering::Relaxed);
                            return;
                        }
                        tx.send(p as usize).unwrap();
                        if i % 256 == 255 {
                            // Seal periodically so slabs cycle through
                            // EMPTY → pool → reuse while we run.
                            release_thread_slabs();
                        }
                    }
                    release_thread_slabs();
                })
            })
            .collect();
        drop(tx);

        // Consumer: free every node from a foreign thread (the settle CAS
        // and pool push race against the producers' acquire path).
        let mut freed = 0usize;
        for addr in rx {
            assert!(issued.lock().unwrap().remove(&addr));
            unsafe { free_value(addr as *mut Node) };
            freed += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!failed.load(Ordering::Relaxed), "slot double-issued");
        assert_eq!(freed, PRODUCERS * PER_THREAD);
    }
}
