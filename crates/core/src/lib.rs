//! # `pop-core` — Publish-on-Ping safe memory reclamation
//!
//! Reproduction of the reclamation schemes from *"Publish on Ping: A Better
//! Way to Publish Reservations in Memory Reclamation for Concurrent Data
//! Structures"* (Singh & Brown, PPoPP 2025), plus every baseline the paper
//! evaluates against.
//!
//! ## Model
//!
//! * A **domain** ([`Smr`] instance) manages reclamation for one data
//!   structure (or a group sharing garbage).
//! * Threads [`Smr::register`] for a domain-local `tid` and bracket each
//!   operation with [`Smr::begin_op`]/[`Smr::end_op`].
//! * Every shared-pointer read goes through [`Smr::protect`] (the paper's
//!   `read()`), every unlinked node through [`Smr::retire`].
//! * Reclaimable node types embed a [`Header`] first field (`#[repr(C)]`)
//!   and implement the [`HasHeader`] marker.
//!
//! ## Schemes
//!
//! See [`schemes`] for the full table. The paper's contributions are
//! [`schemes::hp_pop::HazardPtrPop`], [`schemes::he_pop::HazardEraPop`] and
//! [`schemes::epoch_pop::EpochPop`].
//!
//! ## Memory-ordering rationale
//!
//! Two orderings carry the whole crate; everything else is standard
//! acquire/release or relaxed counting.
//!
//! **The two-SeqCst-fence elision pairing.** Publish-on-ping readers
//! record reservations with *relaxed* stores — the paper's headline
//! saving — which is only sound because the reclaimer interrupts the
//! reader (POSIX signal) before trusting its published set, and signal
//! delivery orders the handler after every store the reader issued. The
//! quiescent-thread ping *filter* (skipping the signal for idle peers)
//! punches a hole in that argument, so it is re-sealed with a classic
//! Dekker pairing of SeqCst fences: `begin_op` bumps the thread's
//! activity word and issues a **SeqCst fence** before its first
//! data-structure read; the reclaimer unlinks, issues its own **SeqCst
//! fence**, then reads the activity word. In every interleaving the
//! reclaimer either observes the reader active (and pings it — the
//! signal path takes over) or the reader's subsequent protected reads
//! observe the unlink (and retry) — never both misses on a non-TSO
//! machine. `end_op` is a plain release bump: quiescence may be observed
//! late, which only costs an extra ping, never a wrong elision.
//!
//! **The futex Dekker.** Parked publish waits
//! (`SmrConfig::publish_spin` exhausted, `futex_wait` on) park on a
//! per-thread 32-bit publish word. The waiter *announces itself*
//! (waiter-count increment), re-checks the publish word, then
//! `futex(FUTEX_WAIT)`s; the publisher (signal handler / restart ack)
//! bumps the publish word, executes the matching **SeqCst** edge, and
//! calls `FUTEX_WAKE` only when the waiter count is non-zero. The
//! SeqCst pairing makes "waiter announced, publisher saw zero waiters"
//! and "publisher bumped, waiter saw the old word" mutually exclusive,
//! so the wake is never lost; the wait's timeout is a pure liveness
//! backstop for peers that exit without publishing. The same shape
//! covers NBR's phase-2 park (`end_op`/`begin_write`/`unregister` run
//! the waiter-flag check — one shared load when nobody waits).
//!
//! ## Adaptivity
//!
//! The [`controller`] module closes the feedback loop from sweep
//! outcomes to the pacing knobs: barren passes decay the epoch cadence
//! (instantly reset by the first freeing sweep), each thread auto-sizes
//! its arena fill bins from the monotone seal share, and blocks born
//! era-monotone take the era sweeps' merge-join path on their first
//! sweep. `SmrConfig::adaptive` (env `POP_ADAPTIVE`) turns the whole
//! loop off, restoring the static behavior the CI fallback matrix pins.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod base;
pub mod config;
pub mod controller;
pub mod header;
mod pop_shared;
pub mod pressure;
pub mod schemes;
pub mod slab;
pub mod smr;
pub mod stats;

/// Internals re-exported for property tests, benches and diagnostics. Not
/// a stable API surface.
#[doc(hidden)]
pub mod testing {
    pub use crate::base::{era_range_reserved, SweepBench};
}

pub use config::{PublishMode, SmrConfig};
pub use header::{unmark_word, HasHeader, Header, Retired, RETIRE_BATCH_CAP};
pub use pressure::{PressureGauge, PressureRung};
pub use smr::{
    alloc_node, as_header, dealloc_node_unpublished, free_node_raw, protect_infallible,
    retire_node, OpGuard, ReadResult, Registration, Restart, Smr,
};
pub use stats::{DomainStats, ShardStats, StatsSnapshot};

// Convenience aliases matching the paper's plot labels.
pub use schemes::ebr::Ebr;
pub use schemes::epoch_pop::EpochPop;
pub use schemes::he::HazardEra;
pub use schemes::he_pop::HazardEraPop;
pub use schemes::hp::HazardPtr;
pub use schemes::hp_asym::HazardPtrAsym;
pub use schemes::hp_pop::HazardPtrPop;
pub use schemes::hyaline::Hyaline;
pub use schemes::ibr::Ibr;
pub use schemes::nbr::NbrPlus;
pub use schemes::nr::NoReclaim;
pub use schemes::vbr::Vbr;
