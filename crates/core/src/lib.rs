//! # `pop-core` — Publish-on-Ping safe memory reclamation
//!
//! Reproduction of the reclamation schemes from *"Publish on Ping: A Better
//! Way to Publish Reservations in Memory Reclamation for Concurrent Data
//! Structures"* (Singh & Brown, PPoPP 2025), plus every baseline the paper
//! evaluates against.
//!
//! ## Model
//!
//! * A **domain** ([`Smr`] instance) manages reclamation for one data
//!   structure (or a group sharing garbage).
//! * Threads [`Smr::register`] for a domain-local `tid` and bracket each
//!   operation with [`Smr::begin_op`]/[`Smr::end_op`].
//! * Every shared-pointer read goes through [`Smr::protect`] (the paper's
//!   `read()`), every unlinked node through [`Smr::retire`].
//! * Reclaimable node types embed a [`Header`] first field (`#[repr(C)]`)
//!   and implement the [`HasHeader`] marker.
//!
//! ## Schemes
//!
//! See [`schemes`] for the full table. The paper's contributions are
//! [`schemes::hp_pop::HazardPtrPop`], [`schemes::he_pop::HazardEraPop`] and
//! [`schemes::epoch_pop::EpochPop`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod base;
pub mod config;
pub mod header;
mod pop_shared;
pub mod schemes;
pub mod smr;
pub mod stats;

/// Internals re-exported for property tests, benches and diagnostics. Not
/// a stable API surface.
#[doc(hidden)]
pub mod testing {
    pub use crate::base::{era_range_reserved, SweepBench};
}

pub use config::SmrConfig;
pub use header::{unmark_word, HasHeader, Header, Retired, RETIRE_BATCH_CAP};
pub use smr::{as_header, protect_infallible, retire_node, ReadResult, Registration, Restart, Smr};
pub use stats::{DomainStats, ShardStats, StatsSnapshot};

// Convenience aliases matching the paper's plot labels.
pub use schemes::ebr::Ebr;
pub use schemes::epoch_pop::EpochPop;
pub use schemes::he::HazardEra;
pub use schemes::he_pop::HazardEraPop;
pub use schemes::hp::HazardPtr;
pub use schemes::hp_asym::HazardPtrAsym;
pub use schemes::hp_pop::HazardPtrPop;
pub use schemes::hyaline::Hyaline;
pub use schemes::ibr::Ibr;
pub use schemes::nbr::NbrPlus;
pub use schemes::nr::NoReclaim;
