//! Steady-state reclamation passes must perform **zero heap allocations**.
//!
//! A counting global allocator tallies every allocation in this test
//! binary. Each scheme gets a warmup round (growing its retire list,
//! sealed-block free pool, and reclamation scratch buffers to working
//! size), then a measured round whose retire + flush sequence must
//! allocate nothing. With the batched retirement pipeline this covers the
//! whole block lifecycle: the measured round's seals draw fresh fill
//! blocks from the recycled free pool, and the block-granular sweep frees
//! whole blocks back into it — no `Box` churn. Every scheme runs inside
//! one test function so no other harness thread can pollute the counter
//! mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pop_core::{
    retire_node, Ebr, EpochPop, HasHeader, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym,
    HazardPtrPop, Header, Ibr, NbrPlus, Smr, SmrConfig, Vbr,
};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[repr(C)]
struct N {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for N {}

fn alloc_node<S: Smr>(smr: &S, v: u64) -> *mut N {
    smr.note_alloc(0, core::mem::size_of::<N>());
    Box::into_raw(Box::new(N {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
        v,
    }))
}

const BATCH: usize = 256;

/// Retires `BATCH` pre-allocated nodes and flushes, returning how many heap
/// allocations the retire + reclamation sequence performed.
fn allocs_during_pass<S: Smr>(smr: &S, nodes: Vec<*mut N>) -> u64 {
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    smr.begin_op(0);
    smr.begin_write(0, &[]).ok();
    for p in &nodes {
        // SAFETY: nodes are unlinked (never shared) and retired once.
        unsafe { retire_node(smr, 0, *p) };
    }
    smr.end_write(0);
    smr.end_op(0);
    smr.flush(0);
    ALLOC_COUNT.load(Ordering::Relaxed) - before
}

fn assert_steady_state_alloc_free<S: Smr>() {
    // Threshold above BATCH so the pass runs exactly once, in flush.
    let smr = S::new(SmrConfig::for_tests(1).with_reclaim_freq(4 * BATCH));
    let reg = smr.register(0);

    // Two warmup rounds: grow the retire list, scratch buffers, signal
    // registry, and any lazily-initialized runtime state.
    for _ in 0..2 {
        let nodes: Vec<*mut N> = (0..BATCH as u64).map(|i| alloc_node(&*smr, i)).collect();
        let _ = allocs_during_pass(&*smr, nodes);
    }

    // Measured round: node allocation happens before the measurement
    // starts; the retire + flush sequence itself must not allocate.
    let nodes: Vec<*mut N> = (0..BATCH as u64).map(|i| alloc_node(&*smr, i)).collect();
    let allocs = allocs_during_pass(&*smr, nodes);
    assert_eq!(
        allocs,
        0,
        "{}: steady-state reclamation pass must be allocation-free",
        S::NAME
    );
    assert_eq!(
        smr.stats().snapshot().unreclaimed_nodes(),
        0,
        "{}: the measured pass must actually reclaim",
        S::NAME
    );
    drop(reg);
}

// All schemes run inside ONE test function: the libtest harness spawns a
// thread per test, and a spawn landing inside another test's measured
// region would count as a spurious allocation.
#[test]
fn steady_state_passes_are_allocation_free() {
    assert_steady_state_alloc_free::<HazardPtrPop>();
    assert_steady_state_alloc_free::<HazardEraPop>();
    assert_steady_state_alloc_free::<EpochPop>();
    assert_steady_state_alloc_free::<HazardPtr>();
    assert_steady_state_alloc_free::<HazardPtrAsym>();
    assert_steady_state_alloc_free::<HazardEra>();
    assert_steady_state_alloc_free::<Ebr>();
    assert_steady_state_alloc_free::<Ibr>();
    assert_steady_state_alloc_free::<NbrPlus>();
    assert_steady_state_alloc_free::<Vbr>();

    cross_thread_pop_pass_is_allocation_free();
}

fn cross_thread_pop_pass_is_allocation_free() {
    // Same property with a quiescent peer registered: the ping-filter path
    // (activity/shared/local checks) must not allocate either.
    let smr = HazardPtrPop::new(SmrConfig::for_tests(2).with_reclaim_freq(4 * BATCH));
    let reg0 = smr.register(0);
    let (tx, rx) = std::sync::mpsc::channel();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let idler = std::thread::spawn({
        let smr = std::sync::Arc::clone(&smr);
        move || {
            let reg1 = smr.register(1);
            tx.send(()).unwrap();
            done_rx.recv().unwrap();
            drop(reg1);
        }
    });
    rx.recv().unwrap();
    for _ in 0..2 {
        let nodes: Vec<*mut N> = (0..BATCH as u64).map(|i| alloc_node(&*smr, i)).collect();
        let _ = allocs_during_pass(&*smr, nodes);
    }
    let nodes: Vec<*mut N> = (0..BATCH as u64).map(|i| alloc_node(&*smr, i)).collect();
    let allocs = allocs_during_pass(&*smr, nodes);
    assert_eq!(allocs, 0, "pass with registered peer must not allocate");
    done_tx.send(()).unwrap();
    idler.join().unwrap();
    drop(reg0);
}
