//! Property-based tests on the reclamation schemes' public API.
//!
//! Schemes differ wildly inside, but all must satisfy the same accounting
//! laws: `freed ≤ retired`, no loss of records, and complete drainage once
//! a lone thread goes quiescent and flushes (NR excepted — it leaks by
//! definition, and that too is asserted).

use proptest::prelude::*;
use std::sync::atomic::AtomicPtr;

use pop_core::testing::era_range_reserved;
use pop_core::{
    retire_node, Ebr, EpochPop, HasHeader, HazardEra, HazardEraPop, HazardPtr, HazardPtrAsym,
    HazardPtrPop, Header, Hyaline, Ibr, NbrPlus, NoReclaim, Smr, SmrConfig, Vbr,
};

#[repr(C)]
struct N {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for N {}

fn alloc<S: Smr>(smr: &S, v: u64) -> *mut N {
    smr.note_alloc(0, core::mem::size_of::<N>());
    Box::into_raw(Box::new(N {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
        v,
    }))
}

/// A single-threaded action against a scheme.
#[derive(Clone, Copy, Debug)]
enum Action {
    /// Allocate, (optionally protect), retire.
    RetireOne { protect_first: bool },
    /// Force a reclamation pass.
    Flush,
    /// Leave and re-enter an operation (quiescence point).
    Requiesce,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        any::<bool>().prop_map(|p| Action::RetireOne { protect_first: p }),
        Just(Action::Flush),
        Just(Action::Requiesce),
    ]
}

fn run_actions<S: Smr>(actions: &[Action]) -> (u64, u64, u64) {
    let smr = S::new(SmrConfig::for_tests(1).with_reclaim_freq(8));
    let reg = smr.register(0);
    smr.begin_op(0);
    for &a in actions {
        match a {
            Action::RetireOne { protect_first } => {
                let p = alloc(&*smr, 1);
                if protect_first {
                    let src = AtomicPtr::new(p);
                    let _ = smr.protect(0, 0, &src);
                }
                // The node was never linked anywhere, so retiring it
                // immediately is legal (no other thread can reach it).
                smr.begin_write(0, &[]).ok();
                unsafe { retire_node(&*smr, 0, p) };
                smr.end_write(0);
            }
            Action::Flush => smr.flush(0),
            Action::Requiesce => {
                smr.end_op(0);
                smr.begin_op(0);
            }
        }
    }
    smr.end_op(0);
    smr.flush(0);
    // Some schemes (era-granularity) may need a second pass once fully
    // quiescent.
    smr.flush(0);
    let s = smr.stats().snapshot();
    drop(reg);
    (s.retired_nodes, s.freed_nodes, s.unreclaimed_nodes())
}

macro_rules! accounting_laws {
    ($($name:ident : $scheme:ty),+ $(,)?) => {
        $(
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(32))]
                #[test]
                fn $name(actions in prop::collection::vec(action_strategy(), 1..60)) {
                    let (retired, freed, unreclaimed) = run_actions::<$scheme>(&actions);
                    let n_retires = actions
                        .iter()
                        .filter(|a| matches!(a, Action::RetireOne { .. }))
                        .count() as u64;
                    prop_assert_eq!(retired, n_retires, "every retire recorded");
                    prop_assert!(freed <= retired, "freed must not exceed retired");
                    prop_assert_eq!(
                        unreclaimed, 0,
                        "quiescent single thread must drain completely"
                    );
                }
            }
        )+
    };
}

accounting_laws! {
    ebr_accounting: Ebr,
    ibr_accounting: Ibr,
    hp_accounting: HazardPtr,
    hp_asym_accounting: HazardPtrAsym,
    he_accounting: HazardEra,
    nbr_accounting: NbrPlus,
    hp_pop_accounting: HazardPtrPop,
    he_pop_accounting: HazardEraPop,
    epoch_pop_accounting: EpochPop,
    hyaline_accounting: Hyaline,
    vbr_accounting: Vbr,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// NR's law is the opposite: nothing is ever freed.
    #[test]
    fn nr_leaks_everything(n in 1usize..100) {
        let smr = NoReclaim::new(SmrConfig::for_tests(1));
        let reg = smr.register(0);
        for i in 0..n {
            let p = alloc(&*smr, i as u64);
            unsafe { retire_node(&*smr, 0, p) };
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        prop_assert_eq!(s.retired_nodes, n as u64);
        prop_assert_eq!(s.freed_nodes, 0);
        drop(reg);
    }

    /// The hazard-era `canFree` predicate agrees with a brute-force scan.
    #[test]
    fn era_reservation_matches_bruteforce(
        mut reserved in prop::collection::vec(0u64..64, 0..20),
        birth in 0u64..64,
        len in 0u64..16,
    ) {
        reserved.sort_unstable();
        reserved.dedup();
        let retire = birth + len;
        let brute = reserved.iter().any(|&e| e >= birth && e <= retire);
        prop_assert_eq!(era_range_reserved(&reserved, birth, retire), brute);
    }

    /// Marked pointers never leak mark bits into reservations.
    #[test]
    fn unmark_word_clears_tags(addr in any::<u64>()) {
        let w = pop_core::unmark_word(addr);
        prop_assert_eq!(w & 0b11, 0);
        prop_assert_eq!(w, addr & !0b11);
    }
}
