//! Stress coverage for the sharded [`pop_core::DomainStats`].
//!
//! Two laws under concurrency:
//!
//! 1. **Conservation** — once all writers join, `snapshot()` totals equal
//!    the sum of every thread's locally-counted events, regardless of which
//!    shard each event landed on.
//! 2. **No underflow** — aggregate differences (`unreclaimed_nodes`,
//!    `live_nodes`) never wrap when a racing reader observes a free (on the
//!    reclaimer's shard) before the matching retire (on another shard).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use pop_core::{retire_node, DomainStats, Ebr, HasHeader, HazardPtrPop, Header, Smr, SmrConfig};

#[repr(C)]
struct N {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for N {}

fn alloc<S: Smr>(smr: &S, tid: usize, v: u64) -> *mut N {
    smr.note_alloc(tid, core::mem::size_of::<N>());
    Box::into_raw(Box::new(N {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
        v,
    }))
}

#[test]
fn snapshot_totals_equal_sum_of_per_thread_events() {
    const THREADS: usize = 4;
    const EVENTS: u64 = 10_000;
    let stats = Arc::new(DomainStats::new(THREADS));
    let start = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let stats = Arc::clone(&stats);
        let start = Arc::clone(&start);
        handles.push(std::thread::spawn(move || {
            start.wait();
            let shard = stats.shard(t);
            let mut local = (0u64, 0u64, 0u64);
            for i in 0..EVENTS {
                shard.retired_nodes.fetch_add(1, Ordering::Relaxed);
                local.0 += 1;
                if i % 2 == 0 {
                    shard.freed_nodes.fetch_add(1, Ordering::Relaxed);
                    local.1 += 1;
                }
                if i % 3 == 0 {
                    shard.allocated_bytes.fetch_add(64, Ordering::Relaxed);
                    local.2 += 64;
                }
            }
            local
        }));
    }
    let mut retired = 0;
    let mut freed = 0;
    let mut bytes = 0;
    for h in handles {
        let (r, f, b) = h.join().unwrap();
        retired += r;
        freed += f;
        bytes += b;
    }
    let s = stats.snapshot();
    assert_eq!(s.retired_nodes, retired);
    assert_eq!(s.freed_nodes, freed);
    assert_eq!(s.allocated_bytes, bytes);
    assert_eq!(s.unreclaimed_nodes(), retired - freed);
}

#[test]
fn racing_snapshot_reader_never_underflows() {
    // Writers pump paired retire+free increments on *different* shards
    // (retire on shard t, free on shard (t+1) % W) while a reader polls the
    // aggregates. A torn read may transiently see freed > retired; the
    // saturating aggregation must clamp, never wrap.
    const WRITERS: usize = 3;
    let stats = Arc::new(DomainStats::new(WRITERS));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut polls = 0u64;
            while !stop.load(Ordering::Acquire) {
                let u = stats.unreclaimed_nodes();
                let l = stats.live_nodes();
                assert!(
                    u < u64::MAX / 2 && l < u64::MAX / 2,
                    "aggregate wrapped: unreclaimed={u} live={l}"
                );
                let snap = stats.snapshot();
                assert!(snap.unreclaimed_nodes() < u64::MAX / 2);
                polls += 1;
            }
            polls
        })
    };

    let mut writers = Vec::new();
    for t in 0..WRITERS {
        let stats = Arc::clone(&stats);
        writers.push(std::thread::spawn(move || {
            for _ in 0..200_000u64 {
                // Free counted on a *different* shard than the retire, and
                // written first, maximizing the freed-before-retired window
                // for the reader.
                stats
                    .shard((t + 1) % WRITERS)
                    .freed_nodes
                    .fetch_add(1, Ordering::Relaxed);
                stats.shard(t).retired_nodes.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let polls = reader.join().unwrap();
    assert!(polls > 0, "reader must actually have raced the writers");
    // Conservation after the dust settles.
    let s = stats.snapshot();
    assert_eq!(s.retired_nodes, (WRITERS as u64) * 200_000);
    assert_eq!(s.freed_nodes, (WRITERS as u64) * 200_000);
    assert_eq!(s.unreclaimed_nodes(), 0);
}

#[test]
fn scheme_totals_survive_cross_thread_reclamation() {
    // End-to-end: events counted through a real scheme land on multiple
    // shards (retires on the retirer, frees on whichever thread reclaimed),
    // yet the aggregate equals the ground truth.
    const THREADS: usize = 3;
    const PER_THREAD: u64 = 2_000;
    let smr = HazardPtrPop::new(SmrConfig::for_tests(THREADS).with_reclaim_freq(32));
    let start = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let smr = Arc::clone(&smr);
        let start = Arc::clone(&start);
        handles.push(std::thread::spawn(move || {
            let reg = smr.register(t);
            start.wait();
            for i in 0..PER_THREAD {
                smr.begin_op(t);
                let p = alloc(&*smr, t, i);
                unsafe { retire_node(&*smr, t, p) };
                smr.end_op(t);
            }
            smr.flush(t);
            drop(reg);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = smr.stats().snapshot();
    assert_eq!(s.allocated_nodes, (THREADS as u64) * PER_THREAD);
    assert_eq!(s.retired_nodes, (THREADS as u64) * PER_THREAD);
    assert_eq!(s.unreclaimed_nodes(), 0, "all drained: {s:?}");
    assert_eq!(s.freed_nodes, s.retired_nodes);
}

#[test]
fn sampler_style_polling_under_ebr_churn() {
    // Mimics the workload Sampler: one thread polls live_bytes() on a
    // period while workers churn; the poll must stay within the bytes ever
    // allocated and never wrap.
    const THREADS: usize = 2;
    let smr = Ebr::new(SmrConfig::for_tests(THREADS).with_reclaim_freq(16));
    let stop = Arc::new(AtomicBool::new(false));
    // One allocation stays live for the whole run so the sampler observes
    // non-zero memory no matter how the scheduler interleaves the churn.
    let pinned = alloc(&*smr, 0, 0);
    let sampler = {
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = 0u64;
            while !stop.load(Ordering::Acquire) {
                let b = smr.stats().live_bytes();
                assert!(b < u64::MAX / 2, "live_bytes wrapped: {b}");
                peak = peak.max(b);
            }
            peak
        })
    };
    let mut workers = Vec::new();
    // The final flush runs only after every worker is quiescent, so no
    // announced epoch can block a free (which would orphan leftovers to
    // the domain and defer their accounting to domain drop).
    let done = Arc::new(Barrier::new(THREADS));
    for t in 0..THREADS {
        let smr = Arc::clone(&smr);
        let done = Arc::clone(&done);
        workers.push(std::thread::spawn(move || {
            let reg = smr.register(t);
            for i in 0..20_000u64 {
                smr.begin_op(t);
                let p = alloc(&*smr, t, i);
                unsafe { retire_node(&*smr, t, p) };
                smr.end_op(t);
            }
            done.wait();
            smr.flush(t);
            drop(reg);
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let peak = sampler.join().unwrap();
    assert!(peak > 0, "sampler must observe live memory at some point");
    assert_eq!(smr.stats().live_nodes(), 1, "only the pinned node remains");
    // SAFETY: never shared; free directly and reverse its accounting.
    unsafe { drop(Box::from_raw(pinned)) };
    smr.note_dealloc_unpublished(0, core::mem::size_of::<N>());
    assert_eq!(smr.stats().live_nodes(), 0);
}
