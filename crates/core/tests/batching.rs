//! Integration coverage for the batched retirement pipeline and the
//! per-thread epoch clocks.
//!
//! * Partial batches are sealed (and accounted) on `unregister` — nothing
//!   is leaked, and the conservation law `retired == freed` holds once the
//!   orphan is adopted and reclaimed by a later registrant.
//! * Block-granular sweeps free exactly what a per-node (`retire_batch 1`)
//!   configuration frees — same survivors, same totals.
//! * EBR / EpochPOP / IBR never write the shared epoch word from the op
//!   path: it moves only when a reclaimer pass max-aggregates the
//!   per-thread clocks.
//! * The adaptive ping filter eventually elides even the slot scan for
//!   long-quiescent peers, and still drains garbage.

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

use pop_core::{
    retire_node, Ebr, EpochPop, HasHeader, HazardPtr, HazardPtrPop, Header, Hyaline, Ibr, Smr,
    SmrConfig, RETIRE_BATCH_CAP,
};

#[repr(C)]
struct N {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for N {}

fn alloc<S: Smr>(smr: &S, tid: usize, v: u64) -> *mut N {
    smr.note_alloc(tid, core::mem::size_of::<N>());
    Box::into_raw(Box::new(N {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
        v,
    }))
}

#[test]
fn unregister_seals_partial_batch_and_adoption_reclaims_it() {
    // Thread 0 retires a sub-batch amount (nothing sealed yet) while
    // thread 1 holds a reservation pinning one node, then unregisters:
    // the partial batch must be sealed (accounted) and the pinned node
    // orphaned — never leaked. A later registrant adopts the orphan and
    // frees it once the reservation clears.
    // Batch and bins pinned: this test asserts exact seal points, which
    // the POP_* fallback env legs (and arena-boundary straddles under
    // multi-bin fills) would legitimately shift.
    let smr = HazardPtr::new(
        SmrConfig::for_tests(2)
            .with_reclaim_freq(1 << 16)
            .with_retire_batch(RETIRE_BATCH_CAP)
            .with_retire_bins(1),
    );
    let reg1 = smr.register(1);
    let reg0 = smr.register(0);

    let hot = alloc(&*smr, 0, 7);
    let src = AtomicPtr::new(hot);
    let _ = smr.protect(1, 0, &src).unwrap();
    src.store(core::ptr::null_mut(), Ordering::SeqCst);
    unsafe { retire_node(&*smr, 0, hot) };
    for i in 0..9 {
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
    }
    // Test premise: all 10 retires stay below one RETIRE_BATCH_CAP block.
    assert_eq!(
        smr.stats().snapshot().retired_nodes,
        0,
        "sub-batch retires are unaccounted until a seal point"
    );
    drop(reg0); // unregister: flush + seal partial + orphan leftovers
    let s = smr.stats().snapshot();
    assert_eq!(s.retired_nodes, 10, "unregister sealed the partial batch");
    assert_eq!(
        s.freed_nodes, 9,
        "everything unreserved freed on the way out"
    );
    assert_eq!(s.unreclaimed_nodes(), 1, "the pinned node is orphaned");
    assert_eq!(s.batches_sealed, 1);

    // Release the reservation; a joining thread adopts and reclaims.
    smr.end_op(1);
    let reg0 = smr.register(0);
    assert_eq!(
        smr.stats().snapshot().orphans_adopted,
        1,
        "registration adopts the orphan chunk"
    );
    smr.flush(0);
    let s = smr.stats().snapshot();
    assert_eq!(s.retired_nodes, 10, "adoption never recounts retires");
    assert_eq!(s.freed_nodes, 10, "conservation: all retired nodes freed");
    drop(reg0);
    drop(reg1);
}

/// Runs the same retire workload (with a pinned node) under the given
/// batch setting and returns (retired, freed, unreclaimed).
fn survivors_with_batch(batch: usize) -> (u64, u64, u64) {
    let smr = HazardPtrPop::new(
        SmrConfig::for_tests(2)
            .with_reclaim_freq(16)
            .with_retire_batch(batch),
    );
    let reg0 = smr.register(0);
    let hot = alloc(&*smr, 0, 42);
    let src = AtomicPtr::new(hot);
    let _ = smr.protect(0, 0, &src).unwrap();
    src.store(core::ptr::null_mut(), Ordering::SeqCst);
    unsafe { retire_node(&*smr, 0, hot) };
    for i in 0..100u64 {
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
    }
    smr.flush(0);
    let s = smr.stats().snapshot();
    let out = (s.retired_nodes, s.freed_nodes, s.unreclaimed_nodes());
    smr.end_op(0);
    smr.flush(0);
    assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
    drop(reg0);
    out
}

#[test]
fn block_sweep_matches_per_node_sweep() {
    let batched = survivors_with_batch(RETIRE_BATCH_CAP);
    let per_node = survivors_with_batch(1);
    assert_eq!(
        batched, per_node,
        "block-granular sweep must free the same set as per-node sweeps"
    );
    assert_eq!(batched.2, 1, "exactly the reserved node survives");
}

#[test]
fn batched_retires_count_fewer_stat_rmws() {
    // Observability of the amortization itself: 128 retires at the full
    // batch seal exactly 128 / RETIRE_BATCH_CAP times. Batch and bins
    // pinned — exact seal counts are what is being tested, and the POP_*
    // env legs / arena-boundary straddles would shift them.
    let smr = Ebr::new(
        SmrConfig::for_tests(1)
            .with_reclaim_freq(1 << 16)
            .with_retire_batch(RETIRE_BATCH_CAP)
            .with_retire_bins(1),
    );
    let reg = smr.register(0);
    for i in 0..(4 * RETIRE_BATCH_CAP as u64) {
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
    }
    let s = smr.stats().snapshot();
    assert_eq!(s.batches_sealed, 4);
    assert_eq!(s.retired_nodes, 4 * RETIRE_BATCH_CAP as u64);
    smr.flush(0);
    drop(reg);
}

/// Shared shape of the epoch-write-discipline assertion: `ops` runs the
/// op bracket `n` times, `era` reads the scheme's global epoch word.
fn assert_epoch_written_only_by_passes<S: Smr>(scheme: &str) {
    let smr = S::new(
        SmrConfig::for_tests(2)
            .with_epoch_freq(1)
            .with_reclaim_freq(8),
    );
    let reg = smr.register(0);
    let e0 = smr.current_era();
    // Plenty of op brackets, each eligible for an epoch tick — yet the
    // shared word must not move: the op path only ticks private clocks.
    for _ in 0..50 {
        smr.begin_op(0);
        smr.end_op(0);
    }
    assert_eq!(
        smr.current_era(),
        e0,
        "{scheme}: op path must never write the shared epoch word"
    );
    // A reclaimer pass max-aggregates the accumulated clock ticks.
    for i in 0..8u64 {
        smr.begin_op(0);
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
        smr.end_op(0);
    }
    smr.flush(0);
    assert!(
        smr.current_era() >= e0 + 50,
        "{scheme}: a pass must publish the ticked clocks ({} < {})",
        smr.current_era(),
        e0 + 50
    );
    smr.flush(0);
    drop(reg);
}

#[test]
fn epoch_word_only_written_by_reclaimer_max_aggregation() {
    assert_epoch_written_only_by_passes::<Ebr>("EBR");
    assert_epoch_written_only_by_passes::<EpochPop>("EpochPOP");
    assert_epoch_written_only_by_passes::<Ibr>("IBR");
}

#[test]
fn adaptive_elision_engages_against_idle_peer_and_still_drains() {
    let smr = HazardPtrPop::new(SmrConfig::for_tests(2).with_reclaim_freq(8));
    let reg0 = smr.register(0);
    let hold = Arc::new(AtomicBool::new(true));
    let (tx, rx) = std::sync::mpsc::channel();
    let idler = std::thread::spawn({
        let smr = Arc::clone(&smr);
        let hold = Arc::clone(&hold);
        move || {
            let reg1 = smr.register(1);
            smr.begin_op(1);
            smr.end_op(1);
            tx.send(()).unwrap();
            while hold.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            drop(reg1);
        }
    });
    rx.recv().unwrap();
    // Far more passes than the adaptive threshold: the first few verify
    // quiescence by scanning slots, the rest skip on the streak word.
    for round in 0..16u64 {
        for i in 0..8u64 {
            let p = alloc(&*smr, 0, round * 8 + i);
            unsafe { retire_node(&*smr, 0, p) };
        }
    }
    smr.flush(0);
    let s = smr.stats().snapshot();
    assert_eq!(s.pings_sent, 0, "idle peer never signalled");
    assert!(
        s.pings_elided_adaptive >= 1,
        "adaptive filter must engage after the streak: {s:?}"
    );
    assert!(s.pings_skipped >= 1, "initial passes verify the slow way");
    assert_eq!(s.unreclaimed_nodes(), 0, "elision must not block frees");
    hold.store(false, Ordering::Release);
    idler.join().unwrap();
    drop(reg0);
}

#[test]
fn hyaline_batches_ride_the_shared_blocks() {
    // Hyaline's global batches now carry sealed RetireBatch blocks; the
    // block-granular settlement must still free everything and the seal
    // accounting must stay exact.
    let smr = Hyaline::new(SmrConfig::for_tests(1).with_reclaim_freq(8));
    let reg = smr.register(0);
    for i in 0..100u64 {
        smr.begin_op(0);
        let p = alloc(&*smr, 0, i);
        unsafe { retire_node(&*smr, 0, p) };
        smr.end_op(0);
    }
    smr.flush(0);
    let s = smr.stats().snapshot();
    assert_eq!(s.retired_nodes, 100);
    assert_eq!(s.unreclaimed_nodes(), 0);
    assert!(s.batches_sealed >= 100 / RETIRE_BATCH_CAP as u64);
    drop(reg);
}
