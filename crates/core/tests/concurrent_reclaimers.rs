//! Concurrent reclaimers and signal coalescing.
//!
//! The paper (§4.1.1, parenthetical after `waitForAllPublished`): "when
//! multiple reclaimers send signals simultaneously, the signals are
//! effectively coalesced, and a reader publishing reservations once is
//! sufficient to satisfy all concurrent reclaimers." These tests drive
//! several reclaimers into simultaneous ping rounds against common readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use pop_core::{retire_node, EpochPop, HasHeader, HazardPtrPop, Header, Smr, SmrConfig};

#[repr(C)]
struct N {
    hdr: Header,
    v: u64,
}
unsafe impl HasHeader for N {}

fn alloc<S: Smr>(smr: &S, tid: usize, v: u64) -> *mut N {
    smr.note_alloc(tid, core::mem::size_of::<N>());
    Box::into_raw(Box::new(N {
        hdr: Header::new(smr.current_era(), core::mem::size_of::<N>()),
        v,
    }))
}

#[test]
fn simultaneous_reclaimers_coalesce_pings() {
    const RECLAIMERS: usize = 3;
    let smr = HazardPtrPop::new(SmrConfig::for_tests(RECLAIMERS + 1).with_reclaim_freq(64));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(RECLAIMERS + 1));

    // One reader spinning in protected reads.
    let reader = {
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            let reg = smr.register(RECLAIMERS);
            let node = alloc(&*smr, RECLAIMERS, 7);
            let src = core::sync::atomic::AtomicPtr::new(node);
            // Hold a reservation *before* releasing the reclaimers, so the
            // quiescent-thread filter cannot elide every ping: a reader
            // with a live local reservation must be signalled.
            smr.begin_op(RECLAIMERS);
            let _ = smr.protect(RECLAIMERS, 0, &src).unwrap();
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let p = smr.protect(RECLAIMERS, 0, &src).unwrap();
                assert_eq!(unsafe { (*p).v }, 7);
            }
            smr.end_op(RECLAIMERS);
            // Private node: free directly.
            unsafe { drop(Box::from_raw(node)) };
            smr.note_dealloc_unpublished(RECLAIMERS, core::mem::size_of::<N>());
            drop(reg);
        })
    };

    // Several reclaimers retiring simultaneously.
    let mut handles = Vec::new();
    for tid in 0..RECLAIMERS {
        let smr = Arc::clone(&smr);
        let start = Arc::clone(&start);
        handles.push(std::thread::spawn(move || {
            let reg = smr.register(tid);
            start.wait();
            for i in 0..2_000u64 {
                let p = alloc(&*smr, tid, i);
                unsafe { retire_node(&*smr, tid, p) };
            }
            smr.flush(tid);
            drop(reg);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    reader.join().unwrap();

    let s = smr.stats().snapshot();
    assert_eq!(s.retired_nodes, (RECLAIMERS as u64) * 2_000);
    assert_eq!(
        s.unreclaimed_nodes(),
        0,
        "all garbage drained despite concurrent reclaimers: {s:?}"
    );
    assert!(s.pings_sent > 0);
    // Coalescing means publishes need not equal pings; both only have to
    // make progress.
    assert!(s.publishes > 0);
}

#[test]
fn epoch_pop_mixed_mode_reclaimers() {
    // One thread reclaims via epochs while another escalates to pings —
    // the paper's "two threads could be reclaiming at the same time in
    // either mode" (§2.3).
    const THREADS: usize = 2;
    let smr = EpochPop::new(
        SmrConfig::for_tests(THREADS + 1)
            .with_reclaim_freq(64)
            .with_pop_c(1), // escalate aggressively
    );
    let stop = Arc::new(AtomicBool::new(false));

    // A slow reader pins old epochs intermittently, forcing some (not all)
    // reclaimers into POP mode.
    let laggard = {
        let smr = Arc::clone(&smr);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let reg = smr.register(THREADS);
            while !stop.load(Ordering::Relaxed) {
                smr.begin_op(THREADS);
                std::thread::sleep(std::time::Duration::from_millis(5));
                smr.end_op(THREADS);
            }
            drop(reg);
        })
    };

    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let smr = Arc::clone(&smr);
        handles.push(std::thread::spawn(move || {
            let reg = smr.register(tid);
            for i in 0..3_000u64 {
                smr.begin_op(tid);
                let p = alloc(&*smr, tid, i);
                unsafe { retire_node(&*smr, tid, p) };
                smr.end_op(tid);
            }
            smr.flush(tid);
            drop(reg);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    laggard.join().unwrap();

    let s = smr.stats().snapshot();
    assert!(s.epoch_passes > 0, "epoch fast path used");
    assert_eq!(s.unreclaimed_nodes(), 0, "drained: {s:?}");
}
