//! `ABT` — a relaxed (a,b)-tree after Brown (2017), adapted per DESIGN.md
//! substitution S5: per-node locks and **copy-on-write node replacement**
//! instead of LLX/SCX, preserving the property the SMR benchmark cares
//! about — fat-node traversals where *every* update retires node copies.
//!
//! * Leaves hold up to [`B`] sorted key/value pairs and are immutable after
//!   publication: updates install a modified copy in the parent's child
//!   array and retire the old leaf.
//! * Internal nodes have immutable separator arrays; only their child
//!   *pointers* mutate in place, under the node lock.
//! * Inserts split **preemptively, top-down** (Guibas–Sedgewick style): the
//!   first full node met during the descent is split under its (then
//!   non-full) parent, and the operation retries. This keeps every
//!   structural change local to a grandparent/parent/child window — no
//!   upward cascades — at the cost of relaxed balance.
//! * Deletes shrink leaves in place (COW); empty leaves are spliced out of
//!   their parent, and a parent left childless is replaced by an empty
//!   leaf. No merging/borrowing — also relaxed, as in Brown's trees.
//!
//! Traversal safety follows the lazy-list argument: protect each child
//! edge, then re-check the parent's `marked` flag (set under lock before
//! any unlink/replace).

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, dealloc_node_unpublished, free_node_raw, retire_node, HasHeader, Header,
    Restart, Smr,
};

use crate::{ConcurrentMap, Key, Value};

/// Maximum children per internal node / keys per leaf.
pub const B: usize = 16;

/// Tree node (leaf or internal). `#[repr(C)]`, header first.
#[repr(C)]
pub struct AbNode {
    hdr: Header,
    /// Leaf: element keys (`len` used). Internal: separators (`len - 1`
    /// used); child `i` covers keys `k` with `keys[i-1] <= k < keys[i]`
    /// under the convention "separator `s <= key` routes right".
    keys: [Key; B],
    /// Leaf payloads (`len` used); unused for internals.
    vals: [Value; B],
    /// Internal children (`len` used); null for leaves. Mutated in place
    /// only under `lock`.
    children: [AtomicPtr<AbNode>; B],
    /// Leaf: number of keys. Internal: number of children.
    len: u16,
    is_leaf: bool,
    /// Set under `lock` before this node is unlinked or COW-replaced.
    marked: AtomicBool,
    lock: AtomicBool,
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for AbNode {}

// Interior mutability is the point: each use stamps out a fresh array of
// independent atomics (a `static` would alias one shared array).
#[allow(clippy::declare_interior_mutable_const)]
const NULL_CHILDREN: [AtomicPtr<AbNode>; B] = [const { AtomicPtr::new(core::ptr::null_mut()) }; B];

impl AbNode {
    fn leaf<S: Smr>(smr: &S, tid: usize, keys: &[Key], vals: &[Value]) -> *mut AbNode {
        debug_assert!(keys.len() <= B && keys.len() == vals.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
        let mut k = [0u64; B];
        let mut v = [0u64; B];
        k[..keys.len()].copy_from_slice(keys);
        v[..vals.len()].copy_from_slice(vals);
        alloc_node(
            smr,
            tid,
            AbNode {
                hdr: Header::new(smr.current_era(), core::mem::size_of::<AbNode>()),
                keys: k,
                vals: v,
                children: NULL_CHILDREN,
                len: keys.len() as u16,
                is_leaf: true,
                marked: AtomicBool::new(false),
                lock: AtomicBool::new(false),
            },
        )
    }

    fn internal<S: Smr>(smr: &S, tid: usize, seps: &[Key], kids: &[*mut AbNode]) -> *mut AbNode {
        debug_assert!(kids.len() <= B && seps.len() + 1 == kids.len());
        debug_assert!(seps.windows(2).all(|w| w[0] < w[1]), "separators sorted");
        let mut k = [0u64; B];
        k[..seps.len()].copy_from_slice(seps);
        let children = NULL_CHILDREN;
        for (i, &c) in kids.iter().enumerate() {
            children[i].store(c, Ordering::Relaxed);
        }
        alloc_node(
            smr,
            tid,
            AbNode {
                hdr: Header::new(smr.current_era(), core::mem::size_of::<AbNode>()),
                keys: k,
                vals: [0u64; B],
                children,
                len: kids.len() as u16,
                is_leaf: false,
                marked: AtomicBool::new(false),
                lock: AtomicBool::new(false),
            },
        )
    }

    #[inline(always)]
    fn is_full(&self) -> bool {
        self.len as usize == B
    }

    /// Child index `key` routes through (internal nodes).
    #[inline(always)]
    fn route(&self, key: Key) -> usize {
        debug_assert!(!self.is_leaf);
        let seps = &self.keys[..self.len as usize - 1];
        seps.partition_point(|&s| s <= key)
    }

    /// Separators as a slice.
    fn seps(&self) -> &[Key] {
        &self.keys[..self.len as usize - 1]
    }

    fn lock<'a, S: Smr>(&'a self, smr: &S, tid: usize) -> Result<AbLockGuard<'a>, Restart> {
        loop {
            if self
                .lock
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(AbLockGuard { lock: &self.lock });
            }
            smr.check_restart(tid)?;
            core::hint::spin_loop();
        }
    }
}

struct AbLockGuard<'a> {
    lock: &'a AtomicBool,
}

impl Drop for AbLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.store(false, Ordering::Release);
    }
}

/// Descent position: grandparent, parent, current node, and the child
/// indices taken (`gi`: gpar→par edge, `pi`: par→curr edge).
struct Descent {
    gpar: *mut AbNode,
    par: *mut AbNode,
    curr: *mut AbNode,
    pi: usize,
}

/// The relaxed copy-on-write (a,b)-tree.
pub struct AbTree<S: Smr> {
    /// Immortal single-child anchor; `children[0]` is the root.
    root_holder: *mut AbNode,
    smr: Arc<S>,
}

// SAFETY: shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for AbTree<S> {}
unsafe impl<S: Smr> Sync for AbTree<S> {}

enum DescendOutcome {
    /// Reached a leaf (protected); splitting was not required.
    Leaf(Descent),
    /// Split a full node and retried — caller restarts the operation.
    SplitDone,
}

impl<S: Smr> AbTree<S> {
    /// Creates an empty tree.
    pub fn new(smr: Arc<S>) -> Self {
        // The anchor and initial empty leaf live outside domain accounting
        // only in the anchor's case: the leaf is COW-replaced like any
        // other, so it must be a tracked allocation.
        let leaf = AbNode::leaf(&*smr, 0, &[], &[]);
        let children = NULL_CHILDREN;
        children[0].store(leaf, Ordering::Relaxed);
        let root_holder = Box::into_raw(Box::new(AbNode {
            hdr: Header::new(0, core::mem::size_of::<AbNode>()),
            keys: [0u64; B],
            vals: [0u64; B],
            children,
            len: 1,
            is_leaf: false,
            marked: AtomicBool::new(false),
            lock: AtomicBool::new(false),
        }));
        AbTree { root_holder, smr }
    }

    /// Descends toward `key`. With `split_full`, the first full node met is
    /// split (under its guaranteed-non-full parent) and `SplitDone` is
    /// returned so the caller retries.
    fn descend(&self, tid: usize, key: Key, split_full: bool) -> Result<DescendOutcome, Restart> {
        'retry: loop {
            let mut gpar: *mut AbNode = core::ptr::null_mut();
            let mut par = self.root_holder;
            let mut pi = 0usize;
            let mut slot = 0usize;
            // SAFETY: root_holder is immortal.
            let mut curr = self
                .smr
                .protect(tid, slot, unsafe { &(*par).children[0] })?;
            loop {
                // SAFETY: par is the anchor or protected two slots ago.
                if unsafe { &*par }.marked.load(Ordering::Acquire) {
                    continue 'retry;
                }
                if curr.is_null() {
                    continue 'retry; // torn descent
                }
                // Unmarked par ⇒ live edge ⇒ curr reachable after its
                // reservation — safe to dereference.
                self.smr.check_live(curr);
                // SAFETY: curr protected in `slot`.
                let curr_ref = unsafe { &*curr };
                if split_full && curr_ref.is_full() {
                    self.split(tid, gpar, par, pi, curr)?;
                    return Ok(DescendOutcome::SplitDone);
                }
                if curr_ref.is_leaf {
                    return Ok(DescendOutcome::Leaf(Descent {
                        gpar,
                        par,
                        curr,
                        pi,
                    }));
                }
                let ci = curr_ref.route(key);
                gpar = par;
                par = curr;
                pi = ci;
                slot = (slot + 1) % 3;
                curr = self.smr.protect(tid, slot, &curr_ref.children[ci])?;
            }
        }
    }

    /// Splits full node `node` (child `pi` of `par`). The parent gains one
    /// child via COW replacement under `gpar`; splitting the root wraps it
    /// in a fresh root under the anchor instead.
    fn split(
        &self,
        tid: usize,
        gpar: *mut AbNode,
        par: *mut AbNode,
        pi: usize,
        node: *mut AbNode,
    ) -> Result<(), Restart> {
        // SAFETY: node protected by descend; par protected or anchor.
        let node_ref = unsafe { &*node };
        let par_ref = unsafe { &*par };
        let at_root = par == self.root_holder;

        // Lock top-down; the anchor has no grandparent.
        let _gl = if at_root {
            None
        } else {
            // SAFETY: gpar protected by descend (non-null below the anchor).
            Some(unsafe { &*gpar }.lock(&*self.smr, tid)?)
        };
        let _pl = par_ref.lock(&*self.smr, tid)?;
        let _nl = node_ref.lock(&*self.smr, tid)?;

        if par_ref.marked.load(Ordering::Acquire)
            || node_ref.marked.load(Ordering::Acquire)
            || par_ref.children[pi].load(Ordering::Acquire) != node
            || (!at_root && par_ref.is_full())
            || !node_ref.is_full()
        {
            return Err(Restart);
        }
        if !at_root {
            // SAFETY: gpar locked above.
            let gpar_ref = unsafe { &*gpar };
            if gpar_ref.marked.load(Ordering::Acquire) {
                return Err(Restart);
            }
        }

        // Build the two halves.
        let (left, right, sep) = if node_ref.is_leaf {
            let n = node_ref.len as usize;
            let m = n / 2;
            let l = AbNode::leaf(&*self.smr, tid, &node_ref.keys[..m], &node_ref.vals[..m]);
            let r = AbNode::leaf(&*self.smr, tid, &node_ref.keys[m..n], &node_ref.vals[m..n]);
            (l, r, node_ref.keys[m])
        } else {
            let n = node_ref.len as usize; // children
            let m = n / 2;
            let kids: Vec<*mut AbNode> = (0..n)
                .map(|i| node_ref.children[i].load(Ordering::Acquire))
                .collect();
            let l = AbNode::internal(&*self.smr, tid, &node_ref.seps()[..m - 1], &kids[..m]);
            let r = AbNode::internal(&*self.smr, tid, &node_ref.seps()[m..], &kids[m..]);
            (l, r, node_ref.seps()[m - 1])
        };

        let mut wset = [core::ptr::null_mut::<Header>(); 3];
        let mut wn = 0;
        if !at_root {
            wset[wn] = as_header(gpar);
            wn += 1;
        }
        wset[wn] = as_header(par);
        wn += 1;
        wset[wn] = as_header(node);
        wn += 1;
        if let Err(r) = self.smr.begin_write(tid, &wset[..wn]) {
            // Unpublished halves: free directly.
            // SAFETY: never shared.
            unsafe {
                dealloc_node_unpublished(&*self.smr, tid, left);
                dealloc_node_unpublished(&*self.smr, tid, right);
            }
            return Err(r);
        }

        if at_root {
            // Wrap in a new root: the anchor keeps exactly one child.
            let new_root = AbNode::internal(&*self.smr, tid, &[sep], &[left, right]);
            node_ref.marked.store(true, Ordering::Release);
            par_ref.children[0].store(new_root, Ordering::Release);
            // SAFETY: unlinked under locks — retired exactly once.
            unsafe { retire_node(&*self.smr, tid, node) };
        } else {
            // COW the parent with `node` replaced by `left`+`right`.
            let plen = par_ref.len as usize;
            let mut seps = Vec::with_capacity(plen);
            seps.extend_from_slice(par_ref.seps());
            seps.insert(pi, sep);
            let mut kids: Vec<*mut AbNode> = (0..plen)
                .map(|i| par_ref.children[i].load(Ordering::Acquire))
                .collect();
            kids[pi] = left;
            kids.insert(pi + 1, right);
            let new_par = AbNode::internal(&*self.smr, tid, &seps, &kids);
            // SAFETY: gpar locked (non-anchor path).
            let gpar_ref = unsafe { &*gpar };
            let gi = gpar_ref.route_to_child(par);
            let Some(gi) = gi else {
                // Parent edge moved under us (it was validated above, so
                // this indicates a racing replacement): undo and retry.
                // SAFETY: never shared.
                unsafe {
                    dealloc_node_unpublished(&*self.smr, tid, left);
                    dealloc_node_unpublished(&*self.smr, tid, right);
                    dealloc_node_unpublished(&*self.smr, tid, new_par);
                }
                self.smr.end_write(tid);
                return Err(Restart);
            };
            par_ref.marked.store(true, Ordering::Release);
            node_ref.marked.store(true, Ordering::Release);
            gpar_ref.children[gi].store(new_par, Ordering::Release);
            // SAFETY: unlinked under locks — retired exactly once each.
            unsafe {
                retire_node(&*self.smr, tid, par);
                retire_node(&*self.smr, tid, node);
            }
        }
        self.smr.end_write(tid);
        Ok(())
    }

    fn try_insert(&self, tid: usize, key: Key, value: Value) -> Result<bool, Restart> {
        let d = match self.descend(tid, key, true)? {
            DescendOutcome::SplitDone => return Err(Restart),
            DescendOutcome::Leaf(d) => d,
        };
        // SAFETY: leaf protected by descend.
        let leaf_ref = unsafe { &*d.curr };
        let n = leaf_ref.len as usize;
        if leaf_ref.keys[..n].binary_search(&key).is_ok() {
            return Ok(false);
        }
        debug_assert!(n < B, "full leaves are split during the descent");
        // SAFETY: par protected (or anchor).
        let par_ref = unsafe { &*d.par };
        let _pl = par_ref.lock(&*self.smr, tid)?;
        if par_ref.marked.load(Ordering::Acquire)
            || par_ref.children[d.pi].load(Ordering::Acquire) != d.curr
        {
            return Err(Restart);
        }
        self.smr
            .begin_write(tid, &[as_header(d.par), as_header(d.curr)])?;
        let pos = leaf_ref.keys[..n].partition_point(|&k| k < key);
        let mut keys = Vec::with_capacity(n + 1);
        keys.extend_from_slice(&leaf_ref.keys[..pos]);
        keys.push(key);
        keys.extend_from_slice(&leaf_ref.keys[pos..n]);
        let mut vals = Vec::with_capacity(n + 1);
        vals.extend_from_slice(&leaf_ref.vals[..pos]);
        vals.push(value);
        vals.extend_from_slice(&leaf_ref.vals[pos..n]);
        let new_leaf = AbNode::leaf(&*self.smr, tid, &keys, &vals);
        leaf_ref.marked.store(true, Ordering::Release);
        par_ref.children[d.pi].store(new_leaf, Ordering::Release);
        // SAFETY: COW-replaced under the parent lock — retired exactly once.
        unsafe { retire_node(&*self.smr, tid, d.curr) };
        self.smr.end_write(tid);
        Ok(true)
    }

    fn try_remove(&self, tid: usize, key: Key) -> Result<bool, Restart> {
        let d = match self.descend(tid, key, false)? {
            DescendOutcome::SplitDone => unreachable!("split disabled"),
            DescendOutcome::Leaf(d) => d,
        };
        // SAFETY: leaf protected by descend.
        let leaf_ref = unsafe { &*d.curr };
        let n = leaf_ref.len as usize;
        let Ok(pos) = leaf_ref.keys[..n].binary_search(&key) else {
            return Ok(false);
        };
        // SAFETY: par protected (or anchor).
        let par_ref = unsafe { &*d.par };

        if n > 1 || d.par == self.root_holder {
            // Shrink the leaf in place via COW (the root leaf may go empty).
            let _pl = par_ref.lock(&*self.smr, tid)?;
            if par_ref.marked.load(Ordering::Acquire)
                || par_ref.children[d.pi].load(Ordering::Acquire) != d.curr
            {
                return Err(Restart);
            }
            self.smr
                .begin_write(tid, &[as_header(d.par), as_header(d.curr)])?;
            let mut keys = Vec::with_capacity(n - 1);
            keys.extend_from_slice(&leaf_ref.keys[..pos]);
            keys.extend_from_slice(&leaf_ref.keys[pos + 1..n]);
            let mut vals = Vec::with_capacity(n - 1);
            vals.extend_from_slice(&leaf_ref.vals[..pos]);
            vals.extend_from_slice(&leaf_ref.vals[pos + 1..n]);
            let new_leaf = AbNode::leaf(&*self.smr, tid, &keys, &vals);
            leaf_ref.marked.store(true, Ordering::Release);
            par_ref.children[d.pi].store(new_leaf, Ordering::Release);
            // SAFETY: COW-replaced under the parent lock.
            unsafe { retire_node(&*self.smr, tid, d.curr) };
            self.smr.end_write(tid);
            return Ok(true);
        }

        // Last key of a non-root leaf: splice the leaf out of its parent.
        // SAFETY: gpar protected by descend (non-null below the anchor).
        let gpar_ref = unsafe { &*d.gpar };
        let _gl = gpar_ref.lock(&*self.smr, tid)?;
        let _pl = par_ref.lock(&*self.smr, tid)?;
        if gpar_ref.marked.load(Ordering::Acquire)
            || par_ref.marked.load(Ordering::Acquire)
            || par_ref.children[d.pi].load(Ordering::Acquire) != d.curr
        {
            return Err(Restart);
        }
        let Some(gi) = gpar_ref.route_to_child(d.par) else {
            return Err(Restart);
        };
        self.smr.begin_write(
            tid,
            &[as_header(d.gpar), as_header(d.par), as_header(d.curr)],
        )?;
        let plen = par_ref.len as usize;
        let replacement = if plen == 1 {
            // Parent would become childless: replace it with an empty leaf.
            AbNode::leaf(&*self.smr, tid, &[], &[])
        } else if plen == 2 {
            // Parent with one remaining child: splice the parent out too.
            par_ref.children[1 - d.pi].load(Ordering::Acquire)
        } else {
            let mut seps = Vec::with_capacity(plen - 2);
            let mut kids = Vec::with_capacity(plen - 1);
            for i in 0..plen {
                if i != d.pi {
                    kids.push(par_ref.children[i].load(Ordering::Acquire));
                }
            }
            // Removing child pi removes separator max(pi-1, 0)… precisely:
            // separators are between children; drop the one adjacent to pi.
            let drop_sep = if d.pi == 0 { 0 } else { d.pi - 1 };
            for (i, &s) in par_ref.seps().iter().enumerate() {
                if i != drop_sep {
                    seps.push(s);
                }
            }
            AbNode::internal(&*self.smr, tid, &seps, &kids)
        };
        par_ref.marked.store(true, Ordering::Release);
        leaf_ref.marked.store(true, Ordering::Release);
        gpar_ref.children[gi].store(replacement, Ordering::Release);
        // SAFETY: unlinked under locks — retired exactly once each.
        unsafe {
            retire_node(&*self.smr, tid, d.par);
            retire_node(&*self.smr, tid, d.curr);
        }
        self.smr.end_write(tid);
        Ok(true)
    }

    fn try_get(&self, tid: usize, key: Key) -> Result<Option<Value>, Restart> {
        let d = match self.descend(tid, key, false)? {
            DescendOutcome::SplitDone => unreachable!("split disabled"),
            DescendOutcome::Leaf(d) => d,
        };
        // SAFETY: leaf protected by descend.
        let leaf_ref = unsafe { &*d.curr };
        let n = leaf_ref.len as usize;
        match leaf_ref.keys[..n].binary_search(&key) {
            Ok(i) => Ok(Some(leaf_ref.vals[i])),
            Err(_) => Ok(None),
        }
    }

    /// Sorted key census for test validation (requires quiescence).
    pub fn keys_quiescent(&self) -> Vec<Key> {
        fn walk(p: *mut AbNode, out: &mut Vec<Key>) {
            if p.is_null() {
                return;
            }
            // SAFETY: caller guarantees quiescence.
            let n = unsafe { &*p };
            if n.is_leaf {
                out.extend_from_slice(&n.keys[..n.len as usize]);
            } else {
                for i in 0..n.len as usize {
                    walk(n.children[i].load(Ordering::Acquire), out);
                }
            }
        }
        let mut out = Vec::new();
        // SAFETY: quiescence contract.
        walk(
            unsafe { &*self.root_holder }.children[0].load(Ordering::Acquire),
            &mut out,
        );
        out
    }
}

impl AbNode {
    /// Index of `child` in this internal node's child array, if present.
    fn route_to_child(&self, child: *mut AbNode) -> Option<usize> {
        (0..self.len as usize).find(|&i| self.children[i].load(Ordering::Acquire) == child)
    }
}

impl<S: Smr> ConcurrentMap<S> for AbTree<S> {
    const DS_NAME: &'static str = "ABT";

    fn with_domain(smr: Arc<S>) -> Self {
        Self::new(smr)
    }

    fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn insert(&self, tid: usize, key: Key, value: Value) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_insert(tid, key, value);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn remove(&self, tid: usize, key: Key) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_remove(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn contains(&self, tid: usize, key: Key) -> bool {
        self.get(tid, key).is_some()
    }

    fn get(&self, tid: usize, key: Key) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_get(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for AbTree<S> {
    fn drop(&mut self) {
        fn free(p: *mut AbNode) {
            if p.is_null() {
                return;
            }
            // SAFETY: exclusive access in Drop. Children are read out
            // before the node is freed (the slot may be slab-backed).
            let mut kids: [*mut AbNode; B] = [core::ptr::null_mut(); B];
            let n = unsafe { &*p };
            let fanout = if n.is_leaf { 0 } else { n.len as usize };
            for (slot, child) in kids.iter_mut().zip(n.children.iter()).take(fanout) {
                *slot = child.load(Ordering::Relaxed);
            }
            unsafe { free_node_raw(p) };
            for &c in &kids[..fanout] {
                free(c);
            }
        }
        free(self.root_holder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{EpochPop, HazardPtrPop, SmrConfig};

    #[test]
    fn inserts_across_splits_stay_sorted() {
        let smr = EpochPop::new(SmrConfig::for_tests(2).with_reclaim_freq(32));
        let t = AbTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        // Enough keys to force several levels of splits.
        for k in 0..500u64 {
            assert!(t.insert(0, (k * 37) % 1000, k), "insert {k}");
        }
        let keys = t.keys_quiescent();
        assert_eq!(keys.len(), 500);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "tree walk must be sorted and duplicate-free");
        for k in 0..500u64 {
            assert_eq!(t.get(0, (k * 37) % 1000), Some(k));
        }
        drop(reg);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let smr = EpochPop::new(SmrConfig::for_tests(1));
        let t = AbTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        assert!(t.insert(0, 42, 1));
        assert!(!t.insert(0, 42, 2));
        assert_eq!(t.get(0, 42), Some(1));
        drop(reg);
    }

    #[test]
    fn removals_shrink_and_splice() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(2).with_reclaim_freq(16));
        let t = AbTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in 0..300u64 {
            assert!(t.insert(0, k, k));
        }
        for k in 0..300u64 {
            assert!(t.remove(0, k), "remove {k}");
            assert!(!t.contains(0, k));
        }
        assert!(t.keys_quiescent().is_empty());
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }

    #[test]
    fn every_update_retires_a_copy() {
        // The COW design's defining property: even pure leaf updates
        // produce garbage, exercising reclamation on every write.
        // retire_batch 1 gives per-retire stats visibility (the default
        // batching only accounts at seal points).
        let smr = EpochPop::new(
            SmrConfig::for_tests(1)
                .with_reclaim_freq(1024)
                .with_retire_batch(1),
        );
        let t = AbTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in 0..10u64 {
            t.insert(0, k, k);
        }
        let retired_before = smr.stats().snapshot().retired_nodes;
        t.insert(0, 100, 1);
        assert!(
            smr.stats().snapshot().retired_nodes > retired_before,
            "a leaf insert must retire the old leaf copy"
        );
        drop(reg);
    }

    #[test]
    fn root_split_grows_height_once() {
        let smr = EpochPop::new(SmrConfig::for_tests(1));
        let t = AbTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        // Exactly B keys fill the root leaf; one more forces a root split.
        for k in 0..B as u64 {
            assert!(t.insert(0, k, k));
        }
        assert!(t.insert(0, B as u64, 0));
        let keys = t.keys_quiescent();
        assert_eq!(keys.len(), B + 1);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        drop(reg);
    }

    #[test]
    fn ascending_and_descending_insertions() {
        // Sequential patterns hit the preemptive-split path repeatedly in
        // the same subtree — the relaxed-balance worst case.
        for descending in [false, true] {
            let smr = EpochPop::new(SmrConfig::for_tests(1).with_reclaim_freq(64));
            let t = AbTree::new(Arc::clone(&smr));
            let reg = smr.register(0);
            let n = 2_000u64;
            for i in 0..n {
                let k = if descending { n - 1 - i } else { i };
                assert!(t.insert(0, k, k));
            }
            let keys = t.keys_quiescent();
            assert_eq!(keys.len(), n as usize);
            assert!(keys.windows(2).all(|w| w[0] < w[1]));
            for k in (0..n).step_by(97) {
                assert_eq!(t.get(0, k), Some(k));
            }
            drop(reg);
        }
    }

    #[test]
    fn delete_to_empty_and_reuse() {
        let smr = EpochPop::new(SmrConfig::for_tests(1).with_reclaim_freq(32));
        let t = AbTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for round in 0..3 {
            for k in 0..100u64 {
                assert!(t.insert(0, k, k + round), "round {round} insert {k}");
            }
            for k in 0..100u64 {
                assert!(t.remove(0, k), "round {round} remove {k}");
            }
            assert!(t.keys_quiescent().is_empty(), "round {round} not empty");
        }
        drop(reg);
    }

    #[test]
    fn mixed_workload_consistency() {
        let smr = EpochPop::new(SmrConfig::for_tests(1).with_reclaim_freq(64));
        let t = AbTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        let mut model = std::collections::BTreeMap::new();
        let mut x = 88172645463325252u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 512;
            match x % 3 {
                0 => {
                    assert_eq!(t.insert(0, key, x), model.insert(key, x).is_none());
                }
                1 => {
                    assert_eq!(t.remove(0, key), model.remove(&key).is_some());
                }
                _ => {
                    assert_eq!(t.contains(0, key), model.contains_key(&key));
                }
            }
        }
        let keys = t.keys_quiescent();
        let expect: Vec<u64> = model.keys().copied().collect();
        assert_eq!(keys, expect);
        drop(reg);
    }
}
