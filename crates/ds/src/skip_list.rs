//! `SKL` — lock-free skip list (Fraser / Herlihy-Shavit style), the
//! long-traversal headliner of the smr-benchmark roster.
//!
//! Every node owns a tower of `next` pointers; the level-0 list is the
//! ground truth (a Harris-Michael list), upper levels are index shortcuts.
//! Deletion marks the tower's `next` pointers top-down (bit 0, as in
//! [`crate::hml`]); traversals help unlink marked nodes at every level and
//! the thread whose **level-0** unlink CAS succeeds retires the node —
//! exactly once, per the module discipline in [`crate`].
//!
//! ## Hazard-pointer discipline
//!
//! Traversals use the alternating two-slot scheme of [`crate::hml`], per
//! level: `protect(slot, &pred.next[lvl])` validates by re-read, a *marked*
//! value read out of the predecessor's link means the predecessor was
//! deleted and the descent restarts from the head. Insertion additionally
//! pins the new node in a third slot ([`SLOTS_REQUIRED`]) **before** the
//! level-0 publish CAS: upper-level linking dereferences the node after it
//! is public, and the pre-publication reservation guarantees no reclaimer
//! can have missed it even if a racing remover retires the node mid-build.
//!
//! The build/remove race that pin covers: a remover marks the tower
//! top-down and retires at the level-0 unlink, while the inserter may
//! still be linking an upper level. After every successful upper-level
//! link the inserter re-checks the mark *inside the same write bracket*;
//! if deletion began, it re-runs the helping descent to unlink its own
//! link before releasing the pin — so a retired node is never reachable
//! once the pin drops.

use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, dealloc_node_unpublished, free_node_raw, retire_node, HasHeader, Header,
    Restart, Smr,
};

use crate::marked::{is_marked, marked, unmarked};
use crate::{ConcurrentMap, Key, Value};

/// Tower height cap. Geometric heights (p = ½) make the expected number
/// of nodes at the top level `n / 2^15` — ample index for the benchmark
/// key ranges while keeping the per-node tower footprint fixed.
pub const MAX_HEIGHT: usize = 16;

/// Hazard slots the skip list uses: two alternating traversal slots plus
/// the insert-time pin (callers must configure at least this many).
pub const SLOTS_REQUIRED: usize = 3;

/// Slot pinning a freshly inserted node across upper-level linking.
const PIN_SLOT: usize = 2;

/// Skip-list node. `#[repr(C)]`, header first — see [`HasHeader`].
#[repr(C)]
pub struct SkipNode {
    hdr: Header,
    /// Immutable after insertion.
    pub key: Key,
    /// Element value; atomic for race-freedom with `get`.
    pub value: AtomicU64,
    /// Tower height in `1..=MAX_HEIGHT` (immutable).
    pub height: usize,
    /// Tower; `next[lvl]` bit 0 is the deletion mark for that level.
    pub next: [AtomicPtr<SkipNode>; MAX_HEIGHT],
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for SkipNode {}

impl SkipNode {
    fn new_raw(key: Key, value: Value, height: usize) -> SkipNode {
        SkipNode {
            hdr: Header::new(0, core::mem::size_of::<SkipNode>()),
            key,
            value: AtomicU64::new(value),
            height,
            next: core::array::from_fn(|_| AtomicPtr::new(core::ptr::null_mut())),
        }
    }

    fn alloc<S: Smr>(smr: &S, tid: usize, key: Key, value: Value, height: usize) -> *mut SkipNode {
        let mut n = Self::new_raw(key, value, height);
        n.hdr = Header::new(smr.current_era(), core::mem::size_of::<SkipNode>());
        alloc_node(smr, tid, n)
    }
}

/// Deterministic geometric tower height from the key (p = ½): reinsertion
/// of a key always rebuilds the same height, which keeps the index
/// balanced under churn and keeps benchmark runs reproducible.
pub fn height_for(key: Key) -> usize {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
}

/// Traversal position at one level (mirrors [`crate::hml`]'s `Position`).
struct Position {
    pred_link: *const AtomicPtr<SkipNode>,
    /// Node owning `pred_link`; null when it is a head link (immortal).
    pred_node: *mut SkipNode,
    curr: *mut SkipNode,
    found: bool,
}

/// The lock-free skip list set.
pub struct SkipList<S: Smr> {
    /// Immortal full-height head tower (never retired).
    head: *mut SkipNode,
    smr: Arc<S>,
}

// SAFETY: all shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for SkipList<S> {}
unsafe impl<S: Smr> Sync for SkipList<S> {}

impl<S: Smr> SkipList<S> {
    /// Creates an empty skip list.
    pub fn new(smr: Arc<S>) -> Self {
        let head = Box::into_raw(Box::new(SkipNode::new_raw(0, 0, MAX_HEIGHT)));
        SkipList { head, smr }
    }

    /// Descends from the top level down to `target_level`, helping unlink
    /// marked nodes at every visited level (retiring only on a level-0
    /// unlink). On success the returned `curr` is the first node at
    /// `target_level` with `key >= target`, protected in one traversal
    /// slot, with `pred_node` (if non-null) protected in the other.
    ///
    /// Postcondition used by the insert/remove cleanups: a node whose
    /// `next[target_level]` is marked cannot be returned *or remain
    /// linked* at `target_level` on the traversed path — the descent
    /// either unlinked it or restarted.
    fn find_level(&self, tid: usize, key: Key, target_level: usize) -> Result<Position, Restart> {
        let smr = &*self.smr;
        'retry: loop {
            // SAFETY: head is immortal.
            let head_ref = unsafe { &*self.head };
            let mut pred_node: *mut SkipNode = core::ptr::null_mut();
            let mut pred_tower: &[AtomicPtr<SkipNode>; MAX_HEIGHT] = &head_ref.next;
            let mut sp = 0usize;
            let mut sc = 1usize;
            let mut lvl = MAX_HEIGHT - 1;
            let mut curr_raw = smr.protect(tid, sc, &pred_tower[lvl])?;
            loop {
                if is_marked(curr_raw) {
                    // The predecessor was logically deleted under us; its
                    // links can no longer be trusted to reach live nodes.
                    continue 'retry;
                }
                let curr = curr_raw;
                if curr.is_null() {
                    // End of this level's list.
                    if lvl == target_level {
                        return Ok(Position {
                            pred_link: &pred_tower[lvl],
                            pred_node,
                            curr,
                            found: false,
                        });
                    }
                    lvl -= 1;
                    curr_raw = smr.protect(tid, sc, &pred_tower[lvl])?;
                    continue;
                }
                // Unmarked link from a live predecessor ⇒ curr was
                // reachable after the reservation — safe to dereference.
                smr.check_live(curr);
                // SAFETY: curr is protected in `sc` (validated reachable).
                let curr_ref = unsafe { &*curr };
                let next_raw = curr_ref.next[lvl].load(Ordering::Acquire);
                if is_marked(next_raw) {
                    // curr is logically deleted at this level: help unlink.
                    let succ = unmarked(next_raw);
                    let mut wset = [core::ptr::null_mut::<Header>(); 3];
                    let mut n = 0;
                    if !pred_node.is_null() {
                        wset[n] = as_header(pred_node);
                        n += 1;
                    }
                    wset[n] = as_header(curr);
                    n += 1;
                    if !succ.is_null() {
                        wset[n] = as_header(succ);
                        n += 1;
                    }
                    smr.begin_write(tid, &wset[..n])?;
                    let unlinked = pred_tower[lvl]
                        .compare_exchange(curr, succ, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                    if unlinked && lvl == 0 {
                        // The level-0 unlink is the single retire point.
                        // SAFETY: we won it — retire exactly once.
                        unsafe { retire_node(smr, tid, curr) };
                    }
                    smr.end_write(tid);
                    if !unlinked {
                        continue 'retry;
                    }
                    curr_raw = smr.protect(tid, sc, &pred_tower[lvl])?;
                    continue;
                }
                let ckey = curr_ref.key;
                if ckey < key {
                    // Advance within the level: curr becomes the
                    // predecessor (keeping its hazard slot).
                    pred_node = curr;
                    pred_tower = &curr_ref.next;
                    core::mem::swap(&mut sp, &mut sc);
                    curr_raw = smr.protect(tid, sc, &pred_tower[lvl])?;
                    continue;
                }
                if lvl == target_level {
                    return Ok(Position {
                        pred_link: &pred_tower[lvl],
                        pred_node,
                        curr,
                        found: ckey == key,
                    });
                }
                // Descend (pred unchanged, keeps its slot).
                lvl -= 1;
                curr_raw = smr.protect(tid, sc, &pred_tower[lvl])?;
            }
        }
    }

    fn try_insert(&self, tid: usize, key: Key, value: Value) -> Result<bool, Restart> {
        let smr = &*self.smr;
        let pos = self.find_level(tid, key, 0)?;
        if pos.found {
            return Ok(false);
        }
        let height = height_for(key);
        let node = SkipNode::alloc(smr, tid, key, value, height);
        // SAFETY: node is ours until published.
        unsafe { &*node }.next[0].store(pos.curr, Ordering::Relaxed);
        // Pin the node *before* it becomes reachable (see module docs).
        let pin = AtomicPtr::new(node);
        if smr.protect(tid, PIN_SLOT, &pin).is_err() {
            // SAFETY: never published.
            unsafe { dealloc_node_unpublished(smr, tid, node) };
            return Err(Restart);
        }
        let mut wset = [core::ptr::null_mut::<Header>(); 2];
        let mut n = 0;
        if !pos.pred_node.is_null() {
            wset[n] = as_header(pos.pred_node);
            n += 1;
        }
        if !pos.curr.is_null() {
            wset[n] = as_header(pos.curr);
            n += 1;
        }
        if let Err(r) = smr.begin_write(tid, &wset[..n]) {
            // SAFETY: never published.
            unsafe { dealloc_node_unpublished(smr, tid, node) };
            return Err(r);
        }
        // SAFETY: pred_link is the head tower or the protected pred's.
        let ok = unsafe { &*pos.pred_link }
            .compare_exchange(pos.curr, node, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        smr.end_write(tid);
        if !ok {
            // SAFETY: CAS failed; never published.
            unsafe { dealloc_node_unpublished(smr, tid, node) };
            return Err(Restart);
        }
        // The set insert linearized at the level-0 CAS; upper levels are
        // index-only and best-effort (an abandoned build just leaves a
        // shorter tower).
        self.build_tower(tid, node, height, key);
        Ok(true)
    }

    /// Links `node` into levels `1..height`. Runs under the insert pin;
    /// never restarts the caller (the insert already happened).
    fn build_tower(&self, tid: usize, node: *mut SkipNode, height: usize, key: Key) {
        let smr = &*self.smr;
        // SAFETY: node is pinned in PIN_SLOT for the whole build.
        let node_ref = unsafe { &*node };
        'build: for lvl in 1..height {
            loop {
                let pos = match self.find_level(tid, key, lvl) {
                    Ok(p) => p,
                    Err(Restart) => break 'build,
                };
                if pos.curr == node {
                    // Already linked here (a retried level).
                    continue 'build;
                }
                let succ = pos.curr;
                let mut wset = [core::ptr::null_mut::<Header>(); 3];
                let mut n = 0;
                if !pos.pred_node.is_null() {
                    wset[n] = as_header(pos.pred_node);
                    n += 1;
                }
                wset[n] = as_header(node);
                n += 1;
                if !succ.is_null() {
                    wset[n] = as_header(succ);
                    n += 1;
                }
                if smr.begin_write(tid, &wset[..n]).is_err() {
                    break 'build;
                }
                // Point the tower at the successor first; a mark observed
                // here means deletion began — stop (nothing linked at lvl).
                let cur_next = node_ref.next[lvl].load(Ordering::Acquire);
                if is_marked(cur_next)
                    || (cur_next != succ
                        && node_ref.next[lvl]
                            .compare_exchange(cur_next, succ, Ordering::AcqRel, Ordering::Acquire)
                            .is_err())
                {
                    smr.end_write(tid);
                    break 'build;
                }
                // SAFETY: pred_link is the head tower or the protected
                // pred's; both outlive the bracket.
                let linked = unsafe { &*pos.pred_link }
                    .compare_exchange(succ, node, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                // Re-check *inside the bracket*: if deletion began after
                // the validation above, our link may have resurrected a
                // node that was already unlinked at level 0 and retired.
                let resurrected = linked && is_marked(node_ref.next[lvl].load(Ordering::Acquire));
                smr.end_write(tid);
                if linked {
                    if resurrected {
                        // Undo before the pin drops: a completed helping
                        // descent at `lvl` guarantees the marked node is no
                        // longer linked there.
                        while self.find_level(tid, key, lvl).is_err() {}
                        break 'build;
                    }
                    continue 'build;
                }
                // Lost the link race: refresh the position and retry.
            }
        }
    }

    fn try_remove(&self, tid: usize, key: Key) -> Result<bool, Restart> {
        let smr = &*self.smr;
        let pos = self.find_level(tid, key, 0)?;
        if !pos.found {
            return Ok(false);
        }
        let node = pos.curr;
        // SAFETY: protected by find_level.
        let node_ref = unsafe { &*node };
        smr.begin_write(tid, &[as_header(node)])?;
        // Mark the tower top-down; upper-level marks also freeze a racing
        // inserter's build (its validation CAS expects an unmarked value).
        for lvl in (1..node_ref.height).rev() {
            loop {
                let nx = node_ref.next[lvl].load(Ordering::Acquire);
                if is_marked(nx) {
                    break;
                }
                if node_ref.next[lvl]
                    .compare_exchange(nx, marked(nx), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Level 0 decides the race: the thread whose mark CAS wins owns
        // the logical deletion.
        let won = loop {
            let nx = node_ref.next[0].load(Ordering::Acquire);
            if is_marked(nx) {
                break false; // another remover linearized first
            }
            if node_ref.next[0]
                .compare_exchange(nx, marked(nx), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break true;
            }
        };
        smr.end_write(tid);
        if !won {
            return Ok(false);
        }
        // Physical cleanup (helping descent unlinks every level and
        // retires at level 0). Best effort here: any traversal finishes
        // the job, and the bounded-garbage schemes only need the retire,
        // which the descent that wins the level-0 unlink performs.
        while self.find_level(tid, key, 0).is_err() {}
        Ok(true)
    }

    fn try_get(&self, tid: usize, key: Key) -> Result<Option<Value>, Restart> {
        let pos = self.find_level(tid, key, 0)?;
        if pos.found {
            // SAFETY: protected by find_level.
            Ok(Some(unsafe { &*pos.curr }.value.load(Ordering::Acquire)))
        } else {
            Ok(None)
        }
    }

    /// Sequential level-0 iteration for test validation (requires
    /// quiescence).
    pub fn iter_quiescent(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        // SAFETY: caller guarantees no concurrent mutation.
        let mut p = unmarked(unsafe { &*self.head }.next[0].load(Ordering::Acquire));
        while !p.is_null() {
            // SAFETY: quiescence contract.
            let n = unsafe { &*p };
            let next = n.next[0].load(Ordering::Acquire);
            if !is_marked(next) {
                out.push((n.key, n.value.load(Ordering::Acquire)));
            }
            p = unmarked(next);
        }
        out
    }
}

impl<S: Smr> ConcurrentMap<S> for SkipList<S> {
    const DS_NAME: &'static str = "SKL";

    fn with_domain(smr: Arc<S>) -> Self {
        Self::new(smr)
    }

    fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn insert(&self, tid: usize, key: Key, value: Value) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_insert(tid, key, value);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn remove(&self, tid: usize, key: Key) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_remove(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn contains(&self, tid: usize, key: Key) -> bool {
        self.get(tid, key).is_some()
    }

    fn get(&self, tid: usize, key: Key) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_get(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for SkipList<S> {
    fn drop(&mut self) {
        // Quiescent teardown: the level-0 list owns every node.
        let mut p = unmarked(unsafe { &*self.head }.next[0].load(Ordering::Relaxed));
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let next = unmarked(unsafe { &*p }.next[0].load(Ordering::Relaxed));
            // SAFETY: exclusive access; dispatches on the slab bit.
            unsafe { free_node_raw(p) };
            p = next;
        }
        // SAFETY: head was never shared beyond this struct.
        unsafe { free_node_raw(self.head) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{Ebr, HazardPtrPop, SmrConfig};

    fn skl() -> (Arc<HazardPtrPop>, SkipList<HazardPtrPop>) {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(4).with_reclaim_freq(8));
        let l = SkipList::new(Arc::clone(&smr));
        (smr, l)
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let (smr, l) = skl();
        let reg = smr.register(0);
        assert!(l.insert(0, 5, 50));
        assert!(l.insert(0, 3, 30));
        assert!(l.insert(0, 9, 90));
        assert!(!l.insert(0, 5, 55), "duplicate insert rejected");
        assert!(l.contains(0, 3));
        assert_eq!(l.get(0, 5), Some(50));
        assert!(!l.contains(0, 4));
        assert!(l.remove(0, 3));
        assert!(!l.remove(0, 3), "double remove rejected");
        assert!(!l.contains(0, 3));
        assert_eq!(l.iter_quiescent(), vec![(5, 50), (9, 90)]);
        drop(reg);
    }

    #[test]
    fn keeps_sorted_order_across_towers() {
        let (smr, l) = skl();
        let reg = smr.register(0);
        for k in [7u64, 1, 9, 3, 5, 8, 2, 6, 4, 0] {
            assert!(l.insert(0, k, k * 10));
        }
        let keys: Vec<u64> = l.iter_quiescent().iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        drop(reg);
    }

    #[test]
    fn removal_retires_into_domain() {
        let (smr, l) = skl();
        let reg = smr.register(0);
        for k in 0..200u64 {
            l.insert(0, k, k);
        }
        for k in 0..200u64 {
            assert!(l.remove(0, k), "remove {k}");
        }
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.retired_nodes, 200);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        assert!(l.iter_quiescent().is_empty());
        drop(reg);
    }

    #[test]
    fn heights_are_deterministic_and_bounded() {
        let mut tall = 0;
        for k in 0..10_000u64 {
            let h = height_for(k);
            assert!((1..=MAX_HEIGHT).contains(&h));
            assert_eq!(h, height_for(k), "height is a pure function of key");
            if h > 1 {
                tall += 1;
            }
        }
        // Geometric p=½: about half the towers exceed height 1.
        assert!((3_000..7_000).contains(&tall), "tall towers: {tall}");
    }

    #[test]
    fn churn_under_ebr() {
        let smr = Ebr::new(SmrConfig::for_tests(2).with_reclaim_freq(32));
        let l = SkipList::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for round in 0..20u64 {
            for k in 0..64u64 {
                l.insert(0, k, round);
            }
            for k in (0..64u64).step_by(2) {
                assert!(l.remove(0, k));
            }
            for k in (1..64u64).step_by(2) {
                assert!(l.contains(0, k));
            }
            for k in (1..64u64).step_by(2) {
                assert!(l.remove(0, k));
            }
        }
        assert!(l.iter_quiescent().is_empty());
        drop(reg);
    }

    #[test]
    fn empty_list_operations() {
        let (smr, l) = skl();
        let reg = smr.register(0);
        assert!(!l.contains(0, 1));
        assert!(!l.remove(0, 1));
        assert_eq!(l.get(0, 1), None);
        drop(reg);
    }
}
