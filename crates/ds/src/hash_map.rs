//! `HMHT` — hash table with Harris-Michael list buckets (the paper's hash
//! table benchmark: "a hashtable based on HML").
//!
//! Each bucket is an independent Harris-Michael list reusing
//! [`crate::hml`]'s bucket operations verbatim; the table size is fixed at
//! construction (the paper sizes it as `keyrange / load_factor`).

use core::sync::atomic::AtomicPtr;
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use pop_core::{free_node_raw, Restart, Smr};

use crate::hml::{self, Node};
use crate::marked::unmarked;
use crate::{ConcurrentMap, Key, Value};

/// Default bucket count for [`ConcurrentMap::with_domain`].
pub const DEFAULT_BUCKETS: usize = 1 << 16;

/// Fixed-size hash table of Harris-Michael buckets.
pub struct HashMapHm<S: Smr> {
    buckets: Box<[CachePadded<AtomicPtr<Node>>]>,
    mask: u64,
    smr: Arc<S>,
}

// SAFETY: shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for HashMapHm<S> {}
unsafe impl<S: Smr> Sync for HashMapHm<S> {}

impl<S: Smr> HashMapHm<S> {
    /// Creates a table with `buckets` rounded up to a power of two.
    pub fn with_buckets(smr: Arc<S>, buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(2);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || {
            CachePadded::new(AtomicPtr::new(core::ptr::null_mut()))
        });
        HashMapHm {
            buckets: v.into_boxed_slice(),
            mask: (n - 1) as u64,
            smr,
        }
    }

    /// Creates a table sized for `key_range` keys at the paper's load
    /// factor (6 keys per bucket).
    pub fn for_key_range(smr: Arc<S>, key_range: u64, load_factor: u64) -> Self {
        let buckets = (key_range / load_factor.max(1)).max(2) as usize;
        Self::with_buckets(smr, buckets)
    }

    #[inline(always)]
    fn bucket(&self, key: Key) -> &AtomicPtr<Node> {
        // Fibonacci multiplicative hash: uniform even for sequential keys.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.buckets[(h & self.mask) as usize]
    }

    /// Number of buckets (diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Sequential key census for test validation (requires quiescence).
    pub fn len_quiescent(&self) -> usize {
        let mut n = 0;
        for b in self.buckets.iter() {
            let mut p = unmarked(b.load(core::sync::atomic::Ordering::Acquire));
            while !p.is_null() {
                // SAFETY: caller guarantees no concurrent mutation.
                let node = unsafe { &*p };
                let next = node.next.load(core::sync::atomic::Ordering::Acquire);
                if !crate::marked::is_marked(next) {
                    n += 1;
                }
                p = unmarked(next);
            }
        }
        n
    }
}

impl<S: Smr> ConcurrentMap<S> for HashMapHm<S> {
    const DS_NAME: &'static str = "HMHT";

    fn with_domain(smr: Arc<S>) -> Self {
        Self::with_buckets(smr, DEFAULT_BUCKETS)
    }

    fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn insert(&self, tid: usize, key: Key, value: Value) -> bool {
        let head = self.bucket(key);
        loop {
            self.smr.begin_op(tid);
            let r = hml::insert_at(&*self.smr, tid, head, key, value);
            self.smr.end_op(tid);
            match r {
                Ok(p) => return !p.is_null(),
                Err(Restart) => continue,
            }
        }
    }

    fn remove(&self, tid: usize, key: Key) -> bool {
        let head = self.bucket(key);
        loop {
            self.smr.begin_op(tid);
            let r = hml::remove_at(&*self.smr, tid, head, key);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn contains(&self, tid: usize, key: Key) -> bool {
        self.get(tid, key).is_some()
    }

    fn get(&self, tid: usize, key: Key) -> Option<Value> {
        let head = self.bucket(key);
        loop {
            self.smr.begin_op(tid);
            let r = hml::get_at(&*self.smr, tid, head, key);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for HashMapHm<S> {
    fn drop(&mut self) {
        for b in self.buckets.iter() {
            let mut p = unmarked(b.load(core::sync::atomic::Ordering::Relaxed));
            while !p.is_null() {
                // SAFETY: exclusive access in Drop.
                let next = unmarked(
                    unsafe { &*p }
                        .next
                        .load(core::sync::atomic::Ordering::Relaxed),
                );
                // SAFETY: exclusive access; dispatches on the slab bit.
                unsafe { free_node_raw(p) };
                p = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{EpochPop, SmrConfig};

    #[test]
    fn basic_roundtrip() {
        let smr = EpochPop::new(SmrConfig::for_tests(2).with_reclaim_freq(16));
        let m = HashMapHm::with_buckets(Arc::clone(&smr), 8);
        let reg = smr.register(0);
        for k in 0..100u64 {
            assert!(m.insert(0, k, k * 2));
        }
        assert_eq!(m.len_quiescent(), 100);
        for k in 0..100u64 {
            assert_eq!(m.get(0, k), Some(k * 2));
        }
        for k in (0..100u64).step_by(2) {
            assert!(m.remove(0, k));
        }
        assert_eq!(m.len_quiescent(), 50);
        for k in 0..100u64 {
            assert_eq!(m.contains(0, k), k % 2 == 1);
        }
        drop(reg);
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let smr = EpochPop::new(SmrConfig::for_tests(1));
        let m = HashMapHm::with_buckets(Arc::clone(&smr), 100);
        assert_eq!(m.bucket_count(), 128);
        let m2 = HashMapHm::for_key_range(Arc::clone(&smr), 6_000_000, 6);
        assert_eq!(m2.bucket_count(), 1 << 20);
    }

    #[test]
    fn collisions_share_buckets_correctly() {
        let smr = EpochPop::new(SmrConfig::for_tests(1));
        let m = HashMapHm::with_buckets(Arc::clone(&smr), 2); // force collisions
        let reg = smr.register(0);
        for k in 0..64u64 {
            assert!(m.insert(0, k, k));
        }
        for k in 0..64u64 {
            assert_eq!(m.get(0, k), Some(k), "collision chain lookup");
        }
        drop(reg);
    }
}
