//! Michael-Scott lock-free FIFO queue under generic SMR.
//!
//! The second half of Michael's 2004 evaluation pair (hazard pointers were
//! introduced on exactly this structure). Dequeue reads the value out of
//! the *successor* node and retires the old dummy — the classic pattern
//! where a node is accessed after it has been unlinked, i.e. precisely the
//! access SMR must keep safe.

use core::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, free_node_raw, retire_node, HasHeader, Header, Restart, Smr,
};

use crate::Value;

/// Queue node. `#[repr(C)]`, header first.
#[repr(C)]
pub struct QueueNode {
    hdr: Header,
    value: Value,
    next: AtomicPtr<QueueNode>,
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for QueueNode {}

impl QueueNode {
    fn alloc<S: Smr>(smr: &S, tid: usize, value: Value) -> *mut QueueNode {
        alloc_node(
            smr,
            tid,
            QueueNode {
                hdr: Header::new(smr.current_era(), core::mem::size_of::<QueueNode>()),
                value,
                next: AtomicPtr::new(core::ptr::null_mut()),
            },
        )
    }
}

/// A lock-free FIFO queue.
pub struct MsQueue<S: Smr> {
    head: AtomicPtr<QueueNode>,
    tail: AtomicPtr<QueueNode>,
    smr: Arc<S>,
}

// SAFETY: shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for MsQueue<S> {}
unsafe impl<S: Smr> Sync for MsQueue<S> {}

impl<S: Smr> MsQueue<S> {
    /// Creates an empty queue (with its dummy node).
    pub fn new(smr: Arc<S>) -> Self {
        let dummy = QueueNode::alloc(&*smr, 0, 0);
        MsQueue {
            head: AtomicPtr::new(dummy),
            tail: AtomicPtr::new(dummy),
            smr,
        }
    }

    /// The reclamation domain.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn try_enqueue(&self, tid: usize, node: *mut QueueNode) -> Result<(), Restart> {
        let tail = self.smr.protect(tid, 0, &self.tail)?;
        // `self.tail` is a root: a validated read is always reachable.
        self.smr.check_live(tail);
        // SAFETY: tail is protected (validated against self.tail).
        let tail_ref = unsafe { &*tail };
        let next = tail_ref.next.load(Ordering::Acquire);
        if !next.is_null() {
            // Tail lags; help swing it and retry.
            let _ = self
                .tail
                .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
            return Err(Restart);
        }
        self.smr.begin_write(tid, &[as_header(tail)])?;
        let ok = tail_ref
            .next
            .compare_exchange(
                core::ptr::null_mut(),
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if ok {
            let _ = self
                .tail
                .compare_exchange(tail, node, Ordering::AcqRel, Ordering::Acquire);
        }
        self.smr.end_write(tid);
        if ok {
            Ok(())
        } else {
            Err(Restart)
        }
    }

    /// Appends a value at the tail.
    pub fn enqueue(&self, tid: usize, value: Value) {
        let node = QueueNode::alloc(&*self.smr, tid, value);
        loop {
            self.smr.begin_op(tid);
            let r = self.try_enqueue(tid, node);
            self.smr.end_op(tid);
            if r.is_ok() {
                return;
            }
        }
    }

    fn try_dequeue(&self, tid: usize) -> Result<Option<Value>, Restart> {
        let head = self.smr.protect(tid, 0, &self.head)?;
        // `self.head` is a root: a validated read is always reachable.
        self.smr.check_live(head);
        // SAFETY: head (the dummy) is protected.
        let next = self.smr.protect(tid, 1, unsafe { &(*head).next })?;
        if next.is_null() {
            return Ok(None);
        }
        // next is reachable through the still-protected dummy.
        self.smr.check_live(next);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            // Help swing the lagging tail.
            let _ = self
                .tail
                .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
        }
        self.smr
            .begin_write(tid, &[as_header(head), as_header(next)])?;
        let ok = self
            .head
            .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        let value = if ok {
            // The dequeued value lives in the *new* dummy; reading it after
            // the CAS is safe because `next` is protected in slot 1.
            // SAFETY: next protected above.
            let v = unsafe { &*next }.value;
            // SAFETY: the old dummy is unlinked; we won the CAS.
            unsafe { retire_node(&*self.smr, tid, head) };
            Some(v)
        } else {
            None
        };
        self.smr.end_write(tid);
        if ok {
            Ok(value)
        } else {
            Err(Restart)
        }
    }

    /// Removes the oldest value, or `None` when empty.
    pub fn dequeue(&self, tid: usize) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_dequeue(tid);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for MsQueue<S> {
    fn drop(&mut self) {
        let mut p = self.head.load(Ordering::Relaxed);
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let next = unsafe { &*p }.next.load(Ordering::Relaxed);
            // SAFETY: exclusive access; dispatches on the slab bit.
            unsafe { free_node_raw(p) };
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{EpochPop, HazardPtrPop, SmrConfig};

    #[test]
    fn fifo_order_single_thread() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(1).with_reclaim_freq(8));
        let q = MsQueue::new(Arc::clone(&smr));
        let reg = smr.register(0);
        assert_eq!(q.dequeue(0), None);
        for v in 0..20u64 {
            q.enqueue(0, v);
        }
        for v in 0..20u64 {
            assert_eq!(q.dequeue(0), Some(v));
        }
        assert_eq!(q.dequeue(0), None);
        smr.flush(0);
        // Dummy rotation retires one node per dequeue.
        assert_eq!(smr.stats().snapshot().retired_nodes, 20);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }

    #[test]
    fn spsc_preserves_order_under_reclaim() {
        let smr = EpochPop::new(SmrConfig::for_tests(2).with_reclaim_freq(16));
        let q = Arc::new(MsQueue::new(Arc::clone(&smr)));
        let producer = std::thread::spawn({
            let q = Arc::clone(&q);
            move || {
                let _reg = q.smr().register(0);
                for v in 0..20_000u64 {
                    q.enqueue(0, v);
                }
            }
        });
        let consumer = std::thread::spawn({
            let q = Arc::clone(&q);
            move || {
                let _reg = q.smr().register(1);
                let mut expect = 0u64;
                while expect < 20_000 {
                    if let Some(v) = q.dequeue(1) {
                        assert_eq!(v, expect, "FIFO order violated");
                        expect += 1;
                    }
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
        let s = smr.stats().snapshot();
        assert_eq!(s.retired_nodes, 20_000);
    }
}
