//! `NMT` — lock-free external binary search tree, after Natarajan &
//! Mittal ("Fast Concurrent Lock-free Binary Search Trees", PPoPP 2014).
//!
//! Like [`crate::ext_bst`] the tree is leaf-oriented — all elements live
//! in leaves, internal nodes are pure routing — but deletion is lock-free:
//! instead of locking the parent and grandparent, a deleter *flags* the
//! parent→leaf edge (bit 1, the logical delete), *tags* the sibling edge
//! (bit 0, freezing it in place) and swings the ancestor→successor edge to
//! the sibling with a single CAS. Edge bits are sticky: a flagged or
//! tagged edge can never be written again (every mutating CAS expects a
//! clean pointer), so the detached region is frozen the moment the swing
//! succeeds and the swing winner can walk it deterministically.
//!
//! ## Retire discipline
//!
//! The swing winner owns the detached region — the subtree under
//! `successor` minus the subtree under the spliced-in sibling; it is the
//! chain of frozen internal nodes plus their flagged leaves. The winner
//! makes **two passes** over it: pass 1 sets every node's `unlinked` flag,
//! pass 2 retires. Traversals re-check `parent.unlinked` *after*
//! protecting a child: seeing it clear proves pass 1 (and therefore every
//! retire of a region containing the parent) had not completed when the
//! child's reservation was already published, so no sweep can have missed
//! it — the same reachable-after-reservation argument as
//! [`crate::ext_bst`]'s `marked` re-check, generalized to multi-node
//! detaches.
//!
//! Because edges carry tag/flag bits that traversals must pass *through*
//! (frozen edges never change, so restarting on them would livelock),
//! hazards are published for the *clean* pointer via a local relay and
//! validated by re-reading the raw edge. Seek holds four roles
//! (ancestor, successor, parent, leaf) in fixed slots plus one in-flight
//! slot; remove pins its victim leaf in a sixth slot across the cleanup
//! loop so the pointer-equality "has someone finished my detach?" check
//! cannot be confused by address reuse — hence [`SLOTS_REQUIRED`] = 6.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, dealloc_node_unpublished, free_node_raw, retire_node, HasHeader, Header,
    Restart, Smr,
};

use crate::marked::unmarked;
use crate::{ConcurrentMap, Key, Value};

/// Hazard slots the tree uses (4 seek roles + in-flight + pinned victim).
pub const SLOTS_REQUIRED: usize = 6;

const SLOT_ANCESTOR: usize = 0;
const SLOT_SUCCESSOR: usize = 1;
const SLOT_PARENT: usize = 2;
const SLOT_LEAF: usize = 3;
const SLOT_INFLIGHT: usize = 4;
const SLOT_VICTIM: usize = 5;

/// Edge bit 0: the edge is frozen in place (sibling of a pending delete).
const TAG: usize = 1;
/// Edge bit 1: the pointed-to leaf is logically deleted.
const FLAG: usize = 2;

/// Smallest sentinel key; user keys must stay below it.
pub const INF0: Key = u64::MAX - 2;
const INF1: Key = u64::MAX - 1;
const INF2: Key = u64::MAX;

#[inline(always)]
fn is_tagged(p: *mut NmNode) -> bool {
    p as usize & TAG != 0
}

#[inline(always)]
fn is_flagged(p: *mut NmNode) -> bool {
    p as usize & FLAG != 0
}

#[inline(always)]
fn with_tag(p: *mut NmNode) -> *mut NmNode {
    (p as usize | TAG) as *mut NmNode
}

#[inline(always)]
fn with_flag(p: *mut NmNode) -> *mut NmNode {
    (p as usize | FLAG) as *mut NmNode
}

/// Tree node; a leaf iff `left` is null. `#[repr(C)]`, header first.
#[repr(C)]
pub struct NmNode {
    hdr: Header,
    /// Routing key (internal) or element key (leaf).
    pub key: Key,
    /// Element value (leaves only; immutable after publication).
    pub value: Value,
    /// Left child (`key < self.key`); low bits carry TAG/FLAG.
    pub left: AtomicPtr<NmNode>,
    /// Right child (`key >= self.key`); low bits carry TAG/FLAG.
    pub right: AtomicPtr<NmNode>,
    /// Set by the swing winner's pass 1, strictly before any retire of the
    /// detached region (see module docs).
    unlinked: AtomicBool,
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for NmNode {}

impl NmNode {
    fn new_raw(key: Key, value: Value, left: *mut NmNode, right: *mut NmNode) -> NmNode {
        NmNode {
            hdr: Header::new(0, core::mem::size_of::<NmNode>()),
            key,
            value,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
            unlinked: AtomicBool::new(false),
        }
    }

    fn alloc<S: Smr>(
        smr: &S,
        tid: usize,
        key: Key,
        value: Value,
        left: *mut NmNode,
        right: *mut NmNode,
    ) -> *mut NmNode {
        let mut n = Self::new_raw(key, value, left, right);
        n.hdr = Header::new(smr.current_era(), core::mem::size_of::<NmNode>());
        alloc_node(smr, tid, n)
    }

    #[inline(always)]
    fn is_leaf(&self) -> bool {
        unmarked(self.left.load(Ordering::Acquire)).is_null()
    }

    /// The child edge `key` routes through.
    #[inline(always)]
    fn child_for(&self, key: Key) -> &AtomicPtr<NmNode> {
        if key < self.key {
            &self.left
        } else {
            &self.right
        }
    }
}

/// Snapshot of a descent (all four nodes protected or immortal).
struct SeekRecord {
    /// Deepest node whose outgoing path edge was clean; owns the edge the
    /// swing CAS targets.
    ancestor: *mut NmNode,
    /// Child of `ancestor` on the path; root of the detachable region.
    successor: *mut NmNode,
    /// Parent of `leaf`.
    parent: *mut NmNode,
    /// The external node covering the sought key.
    leaf: *mut NmNode,
}

/// The lock-free external BST.
pub struct NmTree<S: Smr> {
    /// Immortal root: `r(INF2) → { s(INF1) → { leaf(INF0), leaf(INF1) },
    /// leaf(INF2) }`. The sentinel internals are never deletable (their
    /// leaves' keys can't match a user key), so every real node has a real
    /// ancestor chain.
    root: *mut NmNode,
    s_child: *mut NmNode,
    smr: Arc<S>,
}

// SAFETY: all shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for NmTree<S> {}
unsafe impl<S: Smr> Sync for NmTree<S> {}

impl<S: Smr> NmTree<S> {
    /// Creates an empty tree. Keys must be `< INF0`.
    pub fn new(smr: Arc<S>) -> Self {
        let nil = core::ptr::null_mut();
        let leaf0 = Box::into_raw(Box::new(NmNode::new_raw(INF0, 0, nil, nil)));
        let leaf1 = Box::into_raw(Box::new(NmNode::new_raw(INF1, 0, nil, nil)));
        let leaf2 = Box::into_raw(Box::new(NmNode::new_raw(INF2, 0, nil, nil)));
        let s_child = Box::into_raw(Box::new(NmNode::new_raw(INF1, 0, leaf0, leaf1)));
        let root = Box::into_raw(Box::new(NmNode::new_raw(INF2, 0, s_child, leaf2)));
        NmTree { root, s_child, smr }
    }

    /// Publishes a hazard for the *clean* pointer read out of `edge`,
    /// validating against the raw (possibly tagged/flagged) edge value.
    /// Returns `(raw, clean)`.
    fn protect_edge(
        &self,
        tid: usize,
        slot: usize,
        edge: &AtomicPtr<NmNode>,
    ) -> Result<(*mut NmNode, *mut NmNode), Restart> {
        loop {
            let raw = edge.load(Ordering::Acquire);
            let clean = unmarked(raw);
            let relay = AtomicPtr::new(clean);
            self.smr.protect(tid, slot, &relay)?;
            if edge.load(Ordering::Acquire) == raw {
                return Ok((raw, clean));
            }
        }
    }

    /// Re-publishes a hazard for `p` (already protected in another slot or
    /// immortal, so no validation is needed — there is no protection gap).
    fn protect_held(&self, tid: usize, slot: usize, p: *mut NmNode) -> Result<(), Restart> {
        let relay = AtomicPtr::new(p);
        self.smr.protect(tid, slot, &relay).map(|_| ())
    }

    /// Descends to the external node covering `key`. The ancestor /
    /// successor pair freezes at the first tagged edge on the path (tagged
    /// edges belong to pending deletes whose regions end below them).
    fn seek(&self, tid: usize, key: Key) -> Result<SeekRecord, Restart> {
        'retry: loop {
            let mut rec = SeekRecord {
                ancestor: self.root,
                successor: self.s_child,
                parent: self.s_child,
                leaf: core::ptr::null_mut(),
            };
            self.protect_held(tid, SLOT_ANCESTOR, rec.ancestor)?;
            self.protect_held(tid, SLOT_SUCCESSOR, rec.successor)?;
            self.protect_held(tid, SLOT_PARENT, rec.parent)?;
            // SAFETY: s_child is immortal.
            let (mut parent_field, leaf) =
                self.protect_edge(tid, SLOT_LEAF, unsafe { &(*self.s_child).left })?;
            rec.leaf = leaf;
            loop {
                // SAFETY: rec.leaf is protected in SLOT_LEAF (or in-flight
                // slot just re-published); reachable per the unlinked
                // re-check below on its parent at protection time.
                let leaf_ref = unsafe { &*rec.leaf };
                if leaf_ref.is_leaf() {
                    return Ok(rec);
                }
                let (current_raw, current) =
                    self.protect_edge(tid, SLOT_INFLIGHT, leaf_ref.child_for(key))?;
                // Reachability re-check (see module docs): pass 1 of a
                // detach flags the edge's owner before pass 2 retires the
                // child, so a clear flag here proves the child's hazard
                // (already published) precedes any retire.
                if leaf_ref.unlinked.load(Ordering::Acquire) {
                    continue 'retry;
                }
                if current.is_null() {
                    // leaf_ref was internal a moment ago; its children are
                    // immutable once set, so null means a torn read.
                    continue 'retry;
                }
                self.smr.check_live(current);
                // Shift roles: ancestor/successor advance only across
                // clean path edges.
                if !is_tagged(parent_field) {
                    rec.ancestor = rec.parent;
                    self.protect_held(tid, SLOT_ANCESTOR, rec.ancestor)?;
                    rec.successor = rec.leaf;
                    self.protect_held(tid, SLOT_SUCCESSOR, rec.successor)?;
                }
                rec.parent = rec.leaf;
                self.protect_held(tid, SLOT_PARENT, rec.parent)?;
                rec.leaf = current;
                self.protect_held(tid, SLOT_LEAF, rec.leaf)?;
                parent_field = current_raw;
            }
        }
    }

    /// Completes the physical detach of the delete whose flag sits on one
    /// of `rec.parent`'s edges. Returns whether *this* call won the swing
    /// (the winner retired the region).
    fn cleanup(&self, tid: usize, key: Key, rec: &SeekRecord) -> Result<bool, Restart> {
        let smr = &*self.smr;
        // SAFETY: all four record nodes are protected (or immortal).
        let ancestor_ref = unsafe { &*rec.ancestor };
        let parent_ref = unsafe { &*rec.parent };
        let (child_edge, sibling_edge) = if key < parent_ref.key {
            (&parent_ref.left, &parent_ref.right)
        } else {
            (&parent_ref.right, &parent_ref.left)
        };
        let (_, sibling_edge) = if is_flagged(child_edge.load(Ordering::Acquire)) {
            (child_edge, sibling_edge)
        } else {
            // The flag is on the other side: we are helping a delete whose
            // victim is the sibling of the leaf we sought.
            (sibling_edge, child_edge)
        };
        smr.begin_write(
            tid,
            &[
                as_header(rec.ancestor),
                as_header(rec.successor),
                as_header(rec.parent),
                as_header(rec.leaf),
            ],
        )?;
        // Freeze the sibling edge so the spliced-in subtree can't change
        // between here and the swing. Sticky: never cleared in place.
        let sib_raw = loop {
            let v = sibling_edge.load(Ordering::Acquire);
            if is_tagged(v) {
                break v;
            }
            if sibling_edge
                .compare_exchange(v, with_tag(v), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break with_tag(v);
            }
        };
        let sibling = unmarked(sib_raw);
        // Swing: ancestor's path edge goes from the (clean) successor to
        // the sibling, dropping TAG but preserving FLAG so a pending
        // delete of the sibling leaf can continue at its new address.
        let new_edge = if is_flagged(sib_raw) {
            with_flag(sibling)
        } else {
            sibling
        };
        let won = ancestor_ref
            .child_for(key)
            .compare_exchange(rec.successor, new_edge, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            // The region (subtree of successor minus subtree of sibling)
            // is now unreachable and every edge in it is frozen, so the
            // walk below sees a static graph. Pass 1: flag everything.
            // Pass 2: retire. Nodes beyond the write set can't be freed
            // under us — they are not yet retired and we are the sole
            // retirer.
            let mut region = Vec::new();
            let mut stack = vec![rec.successor];
            while let Some(n) = stack.pop() {
                if n == sibling {
                    continue;
                }
                // SAFETY: frozen, unreachable, not yet retired.
                let n_ref = unsafe { &*n };
                n_ref.unlinked.store(true, Ordering::Release);
                region.push(n);
                for e in [&n_ref.left, &n_ref.right] {
                    let c = unmarked(e.load(Ordering::Acquire));
                    if !c.is_null() {
                        stack.push(c);
                    }
                }
            }
            for n in region {
                // SAFETY: detached exactly once by the swing winner.
                unsafe { retire_node(smr, tid, n) };
            }
        }
        smr.end_write(tid);
        Ok(won)
    }

    fn try_insert(&self, tid: usize, key: Key, value: Value) -> Result<bool, Restart> {
        debug_assert!(key < INF0, "keys must stay below the sentinel range");
        let smr = &*self.smr;
        let rec = self.seek(tid, key)?;
        // SAFETY: leaf/parent protected by seek.
        let leaf_ref = unsafe { &*rec.leaf };
        if leaf_ref.key == key {
            return Ok(false);
        }
        let parent_ref = unsafe { &*rec.parent };
        let edge = parent_ref.child_for(key);
        let nil = core::ptr::null_mut();
        let new_leaf = NmNode::alloc(smr, tid, key, value, nil, nil);
        // Routing node: larger key routes right (external-tree shape).
        let internal = if key < leaf_ref.key {
            NmNode::alloc(smr, tid, leaf_ref.key, 0, new_leaf, rec.leaf)
        } else {
            NmNode::alloc(smr, tid, key, 0, rec.leaf, new_leaf)
        };
        let free_pair = |s: &S| {
            // SAFETY: never published.
            unsafe {
                dealloc_node_unpublished(s, tid, internal);
                dealloc_node_unpublished(s, tid, new_leaf);
            }
        };
        if let Err(r) = smr.begin_write(tid, &[as_header(rec.parent), as_header(rec.leaf)]) {
            free_pair(smr);
            return Err(r);
        }
        let ok = edge
            .compare_exchange(rec.leaf, internal, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        smr.end_write(tid);
        if ok {
            return Ok(true);
        }
        free_pair(smr);
        // If the CAS lost to a delete of this very leaf (edge now carries
        // bits on the same pointer), help detach before retrying.
        if unmarked(edge.load(Ordering::Acquire)) == rec.leaf {
            let _ = self.cleanup(tid, key, &rec);
        }
        Err(Restart)
    }

    fn try_remove(&self, tid: usize, key: Key) -> Result<bool, Restart> {
        let smr = &*self.smr;
        let rec = self.seek(tid, key)?;
        // SAFETY: leaf/parent protected by seek.
        if unsafe { &*rec.leaf }.key != key {
            return Ok(false);
        }
        let target = rec.leaf;
        // Pin the victim across the cleanup loop: later seeks reassign the
        // role slots, and the pointer-equality check below is only
        // meaningful while `target` cannot be freed and reallocated.
        self.protect_held(tid, SLOT_VICTIM, target)?;
        let edge = unsafe { &*rec.parent }.child_for(key);
        // Injection: flag the parent→leaf edge. This is the logical
        // delete (linearization point) — the flag is sticky, so the leaf
        // can never be revived.
        smr.begin_write(tid, &[as_header(rec.parent), as_header(rec.leaf)])?;
        let injected = edge
            .compare_exchange(
                target,
                with_flag(target),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        smr.end_write(tid);
        if !injected {
            // Lost to a concurrent delete or insert at this leaf; help if
            // it was a delete of the same leaf, then retry from scratch.
            if unmarked(edge.load(Ordering::Acquire)) == target {
                let _ = self.cleanup(tid, key, &rec);
            }
            return Err(Restart);
        }
        // Physical cleanup. Never propagate Restart past this point: the
        // delete already linearized, so the caller's retry would re-seek
        // and wrongly report the key absent.
        let mut rec = rec;
        loop {
            if let Ok(true) = self.cleanup(tid, key, &rec) {
                return Ok(true);
            }
            rec = match self.seek(tid, key) {
                Ok(r) => r,
                Err(Restart) => continue,
            };
            if rec.leaf != target {
                // A helper completed our detach (target is pinned, so
                // this cannot be address reuse).
                return Ok(true);
            }
        }
    }

    fn try_get(&self, tid: usize, key: Key) -> Result<Option<Value>, Restart> {
        let rec = self.seek(tid, key)?;
        // SAFETY: leaf protected by seek.
        let leaf_ref = unsafe { &*rec.leaf };
        if leaf_ref.key == key {
            Ok(Some(leaf_ref.value))
        } else {
            Ok(None)
        }
    }

    /// In-order key census for test validation (requires quiescence).
    pub fn keys_quiescent(&self) -> Vec<Key> {
        fn walk(p: *mut NmNode, out: &mut Vec<Key>) {
            let p = unmarked(p);
            if p.is_null() {
                return;
            }
            // SAFETY: caller guarantees no concurrent mutation.
            let n = unsafe { &*p };
            if n.is_leaf() {
                if n.key < INF0 {
                    out.push(n.key);
                }
                return;
            }
            walk(n.left.load(Ordering::Acquire), out);
            walk(n.right.load(Ordering::Acquire), out);
        }
        let mut out = Vec::new();
        // SAFETY: quiescence contract.
        walk(
            unsafe { &*self.root }.left.load(Ordering::Acquire),
            &mut out,
        );
        out
    }
}

impl<S: Smr> ConcurrentMap<S> for NmTree<S> {
    const DS_NAME: &'static str = "NMT";

    fn with_domain(smr: Arc<S>) -> Self {
        Self::new(smr)
    }

    fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn insert(&self, tid: usize, key: Key, value: Value) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_insert(tid, key, value);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn remove(&self, tid: usize, key: Key) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_remove(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn contains(&self, tid: usize, key: Key) -> bool {
        self.get(tid, key).is_some()
    }

    fn get(&self, tid: usize, key: Key) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_get(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for NmTree<S> {
    fn drop(&mut self) {
        fn free(p: *mut NmNode) {
            let p = unmarked(p);
            if p.is_null() {
                return;
            }
            // SAFETY: exclusive access in Drop. Children are read out
            // before the node is freed (the slot may be slab-backed).
            let (l, r) = unsafe {
                (
                    (*p).left.load(Ordering::Relaxed),
                    (*p).right.load(Ordering::Relaxed),
                )
            };
            unsafe { free_node_raw(p) };
            free(l);
            free(r);
        }
        free(self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{Ebr, HazardPtr, HazardPtrPop, SmrConfig};

    #[test]
    fn roundtrip_with_classic_hp() {
        let smr = HazardPtr::new(SmrConfig::for_tests(2).with_reclaim_freq(8));
        let t = NmTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.insert(0, k, k + 1));
        }
        assert!(!t.insert(0, 50, 0), "duplicate rejected");
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert_eq!(t.get(0, k), Some(k + 1));
        }
        assert!(!t.contains(0, 55));
        assert_eq!(t.keys_quiescent(), vec![10, 25, 30, 50, 60, 75, 90]);
        drop(reg);
    }

    #[test]
    fn delete_detaches_and_retires() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(2).with_reclaim_freq(4));
        let t = NmTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in 1..=20u64 {
            assert!(t.insert(0, k, k));
        }
        for k in 1..=20u64 {
            assert!(t.remove(0, k), "remove {k}");
            assert!(!t.remove(0, k), "double remove rejected");
            assert!(!t.contains(0, k));
        }
        assert!(t.keys_quiescent().is_empty());
        // Uncontended deletes detach one routing node + one leaf each.
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().retired_nodes, 40);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }

    #[test]
    fn empty_tree_queries() {
        let smr = HazardPtr::new(SmrConfig::for_tests(1));
        let t = NmTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        assert!(!t.contains(0, 5));
        assert!(!t.remove(0, 5));
        assert!(t.insert(0, 5, 50));
        assert!(t.remove(0, 5));
        assert!(!t.contains(0, 5));
        drop(reg);
    }

    #[test]
    fn keys_near_the_sentinel_boundary() {
        // The largest legal user key routes through every sentinel
        // comparison; regression for routing-key collisions at the top.
        let smr = HazardPtr::new(SmrConfig::for_tests(1));
        let t = NmTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        let big = INF0 - 1;
        assert!(t.insert(0, big, 1));
        assert!(t.insert(0, 0, 2));
        assert!(t.contains(0, big));
        assert!(t.remove(0, big));
        assert!(!t.contains(0, big));
        assert!(t.remove(0, 0));
        assert!(t.keys_quiescent().is_empty());
        drop(reg);
    }

    #[test]
    fn interleaved_insert_delete_keeps_order() {
        let smr = Ebr::new(SmrConfig::for_tests(1).with_reclaim_freq(16));
        let t = NmTree::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in 0..200u64 {
            t.insert(0, k * 7 % 199, k);
        }
        for k in 0..100u64 {
            t.remove(0, k);
        }
        let keys = t.keys_quiescent();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "in-order walk must be sorted + unique");
        assert!(keys.iter().all(|&k| k >= 100), "deleted range is gone");
        drop(reg);
    }
}
