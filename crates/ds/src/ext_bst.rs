//! `DGT` — external (leaf-oriented) binary search tree with per-node
//! locks, after David, Guerraoui & Trigonakis ("Asynchronized
//! Concurrency", 2015).
//!
//! All keys live in leaves; internal nodes are pure routing (`key < node.key`
//! goes left). Insert replaces a leaf with a routing node over two leaves
//! (reusing the old leaf — nothing retired). Delete splices out the leaf's
//! parent, retiring the parent and the leaf. Searches are optimistic:
//! protect each child edge, then re-check the parent's `marked` flag (set
//! under lock strictly before unlinking) — the same
//! reachable-after-reservation argument as the lazy list.
//!
//! Sentinels (`u64::MAX` keys, never retired) give every real leaf a real
//! parent and grandparent, removing all root special cases.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, free_node_raw, retire_node, HasHeader, Header, Restart, Smr,
};

use crate::{ConcurrentMap, Key, Value};

/// Tree node; a leaf iff `left` is null. `#[repr(C)]`, header first.
#[repr(C)]
pub struct BstNode {
    hdr: Header,
    /// Routing key (internal) or element key (leaf).
    pub key: Key,
    /// Element value (leaves only; immutable after publication).
    pub value: Value,
    /// Left child (`key < self.key`); null for leaves.
    pub left: AtomicPtr<BstNode>,
    /// Right child (`key >= self.key`); null for leaves.
    pub right: AtomicPtr<BstNode>,
    /// Set under `lock` before this node is unlinked.
    marked: AtomicBool,
    lock: AtomicBool,
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for BstNode {}

impl BstNode {
    fn new_raw(key: Key, value: Value, left: *mut BstNode, right: *mut BstNode) -> BstNode {
        BstNode {
            hdr: Header::new(0, core::mem::size_of::<BstNode>()),
            key,
            value,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
            marked: AtomicBool::new(false),
            lock: AtomicBool::new(false),
        }
    }

    fn alloc<S: Smr>(
        smr: &S,
        tid: usize,
        key: Key,
        value: Value,
        left: *mut BstNode,
        right: *mut BstNode,
    ) -> *mut BstNode {
        let mut n = Self::new_raw(key, value, left, right);
        n.hdr = Header::new(smr.current_era(), core::mem::size_of::<BstNode>());
        alloc_node(smr, tid, n)
    }

    #[inline(always)]
    fn is_leaf(&self) -> bool {
        self.left.load(Ordering::Acquire).is_null()
    }

    /// The child edge `key` routes through.
    #[inline(always)]
    fn child_for(&self, key: Key) -> &AtomicPtr<BstNode> {
        if key < self.key {
            &self.left
        } else {
            &self.right
        }
    }

    fn lock<'a, S: Smr>(&'a self, smr: &S, tid: usize) -> Result<BstLockGuard<'a>, Restart> {
        loop {
            if self
                .lock
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(BstLockGuard { lock: &self.lock });
            }
            smr.check_restart(tid)?;
            core::hint::spin_loop();
        }
    }
}

struct BstLockGuard<'a> {
    lock: &'a AtomicBool,
}

impl Drop for BstLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.store(false, Ordering::Release);
    }
}

/// Result of a descent: grandparent, parent and leaf, all protected (or
/// immortal sentinels).
struct SearchResult {
    gpar: *mut BstNode,
    par: *mut BstNode,
    leaf: *mut BstNode,
}

/// The external BST.
pub struct ExtBst<S: Smr> {
    /// Immortal sentinel above `root_holder` (grandparent for splices near
    /// the top).
    grand_root: *mut BstNode,
    /// Immortal sentinel whose `left` is the tree proper.
    root_holder: *mut BstNode,
    smr: Arc<S>,
}

// SAFETY: shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for ExtBst<S> {}
unsafe impl<S: Smr> Sync for ExtBst<S> {}

impl<S: Smr> ExtBst<S> {
    /// Creates an empty tree. Keys must be `< u64::MAX - 1`.
    pub fn new(smr: Arc<S>) -> Self {
        let sent_leaf_a = Box::into_raw(Box::new(BstNode::new_raw(
            u64::MAX,
            0,
            core::ptr::null_mut(),
            core::ptr::null_mut(),
        )));
        let sent_leaf_b = Box::into_raw(Box::new(BstNode::new_raw(
            u64::MAX,
            0,
            core::ptr::null_mut(),
            core::ptr::null_mut(),
        )));
        let sent_leaf_c = Box::into_raw(Box::new(BstNode::new_raw(
            u64::MAX,
            0,
            core::ptr::null_mut(),
            core::ptr::null_mut(),
        )));
        let root_holder = Box::into_raw(Box::new(BstNode::new_raw(
            u64::MAX,
            0,
            sent_leaf_a,
            sent_leaf_b,
        )));
        let grand_root = Box::into_raw(Box::new(BstNode::new_raw(
            u64::MAX,
            0,
            root_holder,
            sent_leaf_c,
        )));
        ExtBst {
            grand_root,
            root_holder,
            smr,
        }
    }

    /// Optimistic descent to the leaf covering `key`.
    ///
    /// Hazard slots rotate over {0,1,2}: at any time the grandparent,
    /// parent and current node hold three distinct slots; sentinels are
    /// immortal and need no protection.
    fn search(&self, tid: usize, key: Key) -> Result<SearchResult, Restart> {
        'retry: loop {
            let mut gpar = self.grand_root;
            let mut par = self.root_holder;
            let mut slot = 0usize;
            // SAFETY: root_holder is immortal.
            let mut curr = self
                .smr
                .protect(tid, slot, unsafe { (*par).child_for(key) })?;
            loop {
                // Reachability re-check (see module docs).
                // SAFETY: par is a sentinel or protected two slots ago.
                if unsafe { &*par }.marked.load(Ordering::Acquire) {
                    continue 'retry;
                }
                if curr.is_null() {
                    // Torn descent (child replaced under us): restart.
                    continue 'retry;
                }
                // Unmarked par ⇒ live edge ⇒ curr reachable after its
                // reservation — safe to dereference.
                self.smr.check_live(curr);
                // SAFETY: curr is protected in `slot`.
                let curr_ref = unsafe { &*curr };
                if curr_ref.is_leaf() {
                    return Ok(SearchResult {
                        gpar,
                        par,
                        leaf: curr,
                    });
                }
                gpar = par;
                par = curr;
                slot = (slot + 1) % 3;
                curr = self.smr.protect(tid, slot, curr_ref.child_for(key))?;
            }
        }
    }

    fn try_insert(&self, tid: usize, key: Key, value: Value) -> Result<bool, Restart> {
        let sr = self.search(tid, key)?;
        // SAFETY: leaf protected by search.
        let leaf_ref = unsafe { &*sr.leaf };
        if leaf_ref.key == key {
            return Ok(false);
        }
        // SAFETY: par protected by search (or immortal sentinel).
        let par_ref = unsafe { &*sr.par };
        let _pl = par_ref.lock(&*self.smr, tid)?;
        if par_ref.marked.load(Ordering::Acquire)
            || par_ref.child_for(key).load(Ordering::Acquire) != sr.leaf
        {
            return Err(Restart);
        }
        self.smr
            .begin_write(tid, &[as_header(sr.par), as_header(sr.leaf)])?;
        let new_leaf = BstNode::alloc(
            &*self.smr,
            tid,
            key,
            value,
            core::ptr::null_mut(),
            core::ptr::null_mut(),
        );
        // Routing node: larger key routes right.
        let internal = if key < leaf_ref.key {
            BstNode::alloc(&*self.smr, tid, leaf_ref.key, 0, new_leaf, sr.leaf)
        } else {
            BstNode::alloc(&*self.smr, tid, key, 0, sr.leaf, new_leaf)
        };
        par_ref.child_for(key).store(internal, Ordering::Release);
        self.smr.end_write(tid);
        Ok(true)
    }

    fn try_remove(&self, tid: usize, key: Key) -> Result<bool, Restart> {
        let sr = self.search(tid, key)?;
        // SAFETY: leaf protected by search.
        if unsafe { &*sr.leaf }.key != key {
            return Ok(false);
        }
        // SAFETY: gpar/par protected by search (or immortal sentinels).
        let gpar_ref = unsafe { &*sr.gpar };
        let par_ref = unsafe { &*sr.par };
        // Lock order: ancestor before descendant (uniform across ops).
        let _gl = gpar_ref.lock(&*self.smr, tid)?;
        let _pl = par_ref.lock(&*self.smr, tid)?;
        // The gpar→par edge is the one the descent routed `key` through —
        // NOT `child_for(par.key)`, which misroutes when routing keys
        // collide (e.g. the u64::MAX sentinels).
        let par_edge = gpar_ref.child_for(key);
        if gpar_ref.marked.load(Ordering::Acquire)
            || par_ref.marked.load(Ordering::Acquire)
            || par_edge.load(Ordering::Acquire) != sr.par
            || par_ref.child_for(key).load(Ordering::Acquire) != sr.leaf
        {
            return Err(Restart);
        }
        // Sibling is stable: changing it requires par's lock, which we hold.
        let sibling = if key < par_ref.key {
            par_ref.right.load(Ordering::Acquire)
        } else {
            par_ref.left.load(Ordering::Acquire)
        };
        self.smr.begin_write(
            tid,
            &[
                as_header(sr.gpar),
                as_header(sr.par),
                as_header(sr.leaf),
                as_header(sibling),
            ],
        )?;
        par_ref.marked.store(true, Ordering::Release);
        par_edge.store(sibling, Ordering::Release);
        // SAFETY: both nodes unlinked under locks — retired exactly once.
        unsafe {
            retire_node(&*self.smr, tid, sr.par);
            retire_node(&*self.smr, tid, sr.leaf);
        }
        self.smr.end_write(tid);
        Ok(true)
    }

    fn try_get(&self, tid: usize, key: Key) -> Result<Option<Value>, Restart> {
        let sr = self.search(tid, key)?;
        // SAFETY: leaf protected by search.
        let leaf_ref = unsafe { &*sr.leaf };
        if leaf_ref.key == key {
            Ok(Some(leaf_ref.value))
        } else {
            Ok(None)
        }
    }

    /// In-order key census for test validation (requires quiescence).
    pub fn keys_quiescent(&self) -> Vec<Key> {
        fn walk(p: *mut BstNode, out: &mut Vec<Key>) {
            if p.is_null() {
                return;
            }
            // SAFETY: caller guarantees no concurrent mutation.
            let n = unsafe { &*p };
            if n.is_leaf() {
                if n.key != u64::MAX {
                    out.push(n.key);
                }
                return;
            }
            walk(n.left.load(Ordering::Acquire), out);
            walk(n.right.load(Ordering::Acquire), out);
        }
        let mut out = Vec::new();
        // SAFETY: quiescence contract.
        walk(
            unsafe { &*self.root_holder }.left.load(Ordering::Acquire),
            &mut out,
        );
        out
    }
}

impl<S: Smr> ConcurrentMap<S> for ExtBst<S> {
    const DS_NAME: &'static str = "DGT";

    fn with_domain(smr: Arc<S>) -> Self {
        Self::new(smr)
    }

    fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn insert(&self, tid: usize, key: Key, value: Value) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_insert(tid, key, value);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn remove(&self, tid: usize, key: Key) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_remove(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn contains(&self, tid: usize, key: Key) -> bool {
        self.get(tid, key).is_some()
    }

    fn get(&self, tid: usize, key: Key) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_get(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for ExtBst<S> {
    fn drop(&mut self) {
        fn free(p: *mut BstNode) {
            if p.is_null() {
                return;
            }
            // SAFETY: exclusive access in Drop. Children are read out
            // before the node is freed (the slot may be slab-backed).
            let (l, r) = unsafe {
                (
                    (*p).left.load(Ordering::Relaxed),
                    (*p).right.load(Ordering::Relaxed),
                )
            };
            unsafe { free_node_raw(p) };
            free(l);
            free(r);
        }
        free(self.grand_root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{HazardPtr, HazardPtrPop, SmrConfig};

    #[test]
    fn roundtrip_with_classic_hp() {
        let smr = HazardPtr::new(SmrConfig::for_tests(2).with_reclaim_freq(8));
        let t = ExtBst::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.insert(0, k, k + 1));
        }
        assert!(!t.insert(0, 50, 0), "duplicate rejected");
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert_eq!(t.get(0, k), Some(k + 1));
        }
        assert!(!t.contains(0, 55));
        assert_eq!(t.keys_quiescent(), vec![10, 25, 30, 50, 60, 75, 90]);
        drop(reg);
    }

    #[test]
    fn delete_splices_and_retires() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(2).with_reclaim_freq(4));
        let t = ExtBst::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in 1..=20u64 {
            assert!(t.insert(0, k, k));
        }
        for k in 1..=20u64 {
            assert!(t.remove(0, k), "remove {k}");
            assert!(!t.contains(0, k));
        }
        assert!(t.keys_quiescent().is_empty());
        // Each delete retires a routing node + a leaf. Retires are
        // accounted at seal points, and binned fills keep several partial
        // blocks open — flush (which seals every bin) before the exact
        // count.
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().retired_nodes, 40);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }

    #[test]
    fn empty_tree_queries() {
        let smr = HazardPtr::new(SmrConfig::for_tests(1));
        let t = ExtBst::new(Arc::clone(&smr));
        let reg = smr.register(0);
        assert!(!t.contains(0, 5));
        assert!(!t.remove(0, 5));
        assert!(t.insert(0, 5, 50));
        assert!(t.remove(0, 5));
        assert!(!t.contains(0, 5));
        drop(reg);
    }

    #[test]
    fn sentinel_key_collision_regression() {
        // Regression: validating the gpar→par edge via child_for(par.key)
        // misroutes when par's routing key equals gpar's (u64::MAX
        // sentinels at the top of the tree) — remove(…) span forever.
        let smr = HazardPtr::new(SmrConfig::for_tests(1));
        let t = ExtBst::new(Arc::clone(&smr));
        let reg = smr.register(0);
        assert!(t.insert(0, 5, 50));
        assert!(t.remove(0, 5), "single-key removal under the sentinels");
        assert!(!t.contains(0, 5));
        // Again at depth 1 with the sentinel as grandparent.
        assert!(t.insert(0, 7, 70));
        assert!(t.insert(0, 3, 30));
        assert!(t.remove(0, 7));
        assert!(t.remove(0, 3));
        assert!(t.keys_quiescent().is_empty());
        drop(reg);
    }

    #[test]
    fn interleaved_insert_delete_keeps_order() {
        let smr = HazardPtr::new(SmrConfig::for_tests(1).with_reclaim_freq(16));
        let t = ExtBst::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for k in 0..200u64 {
            t.insert(0, k * 7 % 199, k);
        }
        for k in 0..100u64 {
            t.remove(0, k);
        }
        let keys = t.keys_quiescent();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "in-order walk must be sorted + unique");
        assert!(keys.iter().all(|&k| k >= 100), "deleted range is gone");
        drop(reg);
    }
}
