//! # `pop-ds` — concurrent set/map data structures over generic SMR
//!
//! The data structures the paper benchmarks (§5), each written once
//! against [`pop_core::Smr`] so every reclamation scheme plugs in
//! unchanged — the "drop-in replacement" property of publish-on-ping:
//!
//! * [`hml`] — Harris-Michael lock-free linked list (`HML`).
//! * [`lazy_list`] — lazy list with per-node locks (`LL`).
//! * [`hash_map`] — hash table of Harris-Michael buckets (`HMHT`).
//! * [`ext_bst`] — external (leaf-oriented) BST with per-node locks, after
//!   David, Guerraoui & Trigonakis (`DGT`).
//! * [`ab_tree`] — copy-on-write (a,b)-tree, after Brown (`ABT`).
//! * [`skip_list`] — lock-free skip list, Fraser / Herlihy-Shavit style
//!   (`SKL`).
//! * [`nm_tree`] — lock-free external BST, after Natarajan & Mittal
//!   (`NMT`).
//!
//! All structures store `u64` keys and values (as the paper's benchmark
//! does) and implement the common [`ConcurrentMap`] interface used by the
//! workload driver.
//!
//! ## SMR discipline (applies to every structure here)
//!
//! 1. Every shared-pointer chase goes through `Smr::protect`, whose
//!    validation re-read plus the mark-bit convention guarantees the
//!    returned node was reachable when reserved.
//! 2. Every structural CAS (and the `retire` after it) is bracketed by
//!    `begin_write`/`end_write`, passing the nodes the write dereferences.
//! 3. Spin loops that don't call `protect` poll `check_restart`.
//! 4. Nodes are retired exactly once, by the thread whose unlink CAS
//!    succeeded (or under the lock that excluded rivals).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ab_tree;
pub mod ext_bst;
pub mod hash_map;
pub mod hml;
pub mod lazy_list;
pub mod marked;
pub mod ms_queue;
pub mod nm_tree;
pub mod skip_list;
pub mod treiber_stack;

use pop_core::Smr;
use std::sync::Arc;

/// Key type used throughout (matches the paper's integer-key benchmark).
pub type Key = u64;
/// Value type used throughout.
pub type Value = u64;

/// The interface the benchmark driver uses for every structure.
pub trait ConcurrentMap<S: Smr>: Send + Sync + 'static {
    /// Structure name as used in the paper's plots (e.g. `"HML"`).
    const DS_NAME: &'static str;

    /// Creates an empty structure owning a reference to its SMR domain.
    fn with_domain(smr: Arc<S>) -> Self;

    /// The reclamation domain this structure retires into.
    fn smr(&self) -> &Arc<S>;

    /// Inserts `key → value`; returns `false` if the key already existed.
    fn insert(&self, tid: usize, key: Key, value: Value) -> bool;

    /// Removes `key`; returns `false` if absent.
    fn remove(&self, tid: usize, key: Key) -> bool;

    /// Whether `key` is present.
    fn contains(&self, tid: usize, key: Key) -> bool;

    /// Looks up the value stored under `key`.
    fn get(&self, tid: usize, key: Key) -> Option<Value>;
}
