//! `LL` — the lazy list (Heller, Herlihy, Luchangco, Moir, Scherer &
//! Shavit 2005): optimistic traversal, per-node locks for updates, logical
//! deletion via a `marked` flag followed by physical unlinking under locks.
//!
//! ## Hazard-pointer discipline
//!
//! Unlike Harris-Michael, an unlinked lazy-list node's `next` pointer keeps
//! its old value forever, so validating a link alone does not prove
//! reachability. Traversals therefore re-check `pred.marked` *after*
//! protecting the successor: marks are set (under lock) strictly before
//! unlinking, so an unmarked predecessor at that instant proves the edge
//! was live and the protected successor reachable — the reachable-after-
//! reservation condition hazard pointers require.

use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, free_node_raw, retire_node, HasHeader, Header, Restart, Smr,
};

use crate::{ConcurrentMap, Key, Value};

/// Lazy-list node. `#[repr(C)]`, header first.
#[repr(C)]
pub struct Node {
    hdr: Header,
    /// Immutable after insertion (sentinel: `u64::MAX`, never compared).
    pub key: Key,
    /// Value payload.
    pub value: AtomicU64,
    /// Successor (no mark bits — deletion uses the `marked` flag).
    pub next: AtomicPtr<Node>,
    /// Logical-deletion flag; set under `lock` before unlinking.
    pub marked: AtomicBool,
    /// Per-node spinlock for updates.
    lock: AtomicBool,
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for Node {}

impl Node {
    fn alloc<S: Smr>(smr: &S, tid: usize, key: Key, value: Value, next: *mut Node) -> *mut Node {
        alloc_node(
            smr,
            tid,
            Node {
                hdr: Header::new(smr.current_era(), core::mem::size_of::<Node>()),
                key,
                value: AtomicU64::new(value),
                next: AtomicPtr::new(next),
                marked: AtomicBool::new(false),
                lock: AtomicBool::new(false),
            },
        )
    }

    /// Spin-acquires the node lock, polling the scheme's restart flag so a
    /// neutralization-based reclaimer is never left waiting on this spin.
    fn lock<'a, S: Smr>(&'a self, smr: &S, tid: usize) -> Result<LockGuard<'a>, Restart> {
        loop {
            if self
                .lock
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(LockGuard { lock: &self.lock });
            }
            smr.check_restart(tid)?;
            core::hint::spin_loop();
        }
    }
}

/// RAII node-lock guard.
struct LockGuard<'a> {
    lock: &'a AtomicBool,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.lock.store(false, Ordering::Release);
    }
}

/// The lazy list set.
pub struct LazyList<S: Smr> {
    /// Head sentinel (key unused); never retired.
    head: *mut Node,
    smr: Arc<S>,
}

// SAFETY: shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for LazyList<S> {}
unsafe impl<S: Smr> Sync for LazyList<S> {}

struct Position {
    pred: *mut Node,
    curr: *mut Node,
}

impl<S: Smr> LazyList<S> {
    /// Creates an empty list.
    pub fn new(smr: Arc<S>) -> Self {
        // The sentinel is allocated outside the domain accounting (it lives
        // for the structure's lifetime and is never retired).
        let head = Box::into_raw(Box::new(Node {
            hdr: Header::new(0, core::mem::size_of::<Node>()),
            key: 0,
            value: AtomicU64::new(0),
            next: AtomicPtr::new(core::ptr::null_mut()),
            marked: AtomicBool::new(false),
            lock: AtomicBool::new(false),
        }));
        LazyList { head, smr }
    }

    /// Optimistic search: returns protected `pred` (slot `sp`) and `curr`
    /// (slot `sc`), where `curr` is the first node with `key >= target`
    /// (or null).
    fn search(&self, tid: usize, key: Key) -> Result<Position, Restart> {
        'retry: loop {
            let mut pred = self.head;
            let mut sp = 0usize;
            let mut sc = 1usize;
            // SAFETY: head sentinel is never freed; later preds are
            // protected in slot `sp`.
            let mut curr = self.smr.protect(tid, sc, unsafe { &(*pred).next })?;
            loop {
                // Reachability re-check (see module docs): pred must be
                // unmarked *after* curr's reservation was validated.
                // SAFETY: pred is the sentinel or protected in slot sp.
                if unsafe { &*pred }.marked.load(Ordering::Acquire) {
                    continue 'retry;
                }
                if curr.is_null() {
                    return Ok(Position { pred, curr });
                }
                // Unmarked pred at this point ⇒ the edge was live ⇒ curr
                // reachable after reservation — safe to dereference.
                self.smr.check_live(curr);
                // SAFETY: curr is protected in slot sc.
                let ckey = unsafe { &*curr }.key;
                if ckey >= key {
                    return Ok(Position { pred, curr });
                }
                pred = curr;
                core::mem::swap(&mut sp, &mut sc);
                // SAFETY: new pred (old curr) is protected in slot sp.
                curr = self.smr.protect(tid, sc, unsafe { &(*pred).next })?;
            }
        }
    }

    fn try_insert(&self, tid: usize, key: Key, value: Value) -> Result<bool, Restart> {
        let pos = self.search(tid, key)?;
        // SAFETY: curr protected (or null-checked) by search.
        if !pos.curr.is_null() && unsafe { &*pos.curr }.key == key {
            if unsafe { &*pos.curr }.marked.load(Ordering::Acquire) {
                return Err(Restart); // mid-removal: retry until unlinked
            }
            return Ok(false);
        }
        // SAFETY: pred is the sentinel or protected by search.
        let pred_ref = unsafe { &*pos.pred };
        let _pl = pred_ref.lock(&*self.smr, tid)?;
        // Validate under the lock.
        if pred_ref.marked.load(Ordering::Acquire)
            || pred_ref.next.load(Ordering::Acquire) != pos.curr
        {
            return Err(Restart);
        }
        let mut wset = [core::ptr::null_mut::<Header>(); 2];
        let mut n = 0;
        wset[n] = as_header(pos.pred);
        n += 1;
        if !pos.curr.is_null() {
            wset[n] = as_header(pos.curr);
            n += 1;
        }
        self.smr.begin_write(tid, &wset[..n])?;
        let node = Node::alloc(&*self.smr, tid, key, value, pos.curr);
        pred_ref.next.store(node, Ordering::Release);
        self.smr.end_write(tid);
        Ok(true)
    }

    fn try_remove(&self, tid: usize, key: Key) -> Result<bool, Restart> {
        let pos = self.search(tid, key)?;
        if pos.curr.is_null() {
            return Ok(false);
        }
        // SAFETY: curr protected by search.
        let curr_ref = unsafe { &*pos.curr };
        if curr_ref.key != key {
            return Ok(false);
        }
        if curr_ref.marked.load(Ordering::Acquire) {
            return Ok(false); // already logically removed
        }
        // SAFETY: pred is the sentinel or protected by search.
        let pred_ref = unsafe { &*pos.pred };
        // Lock order: list position (pred before curr) — no deadlocks.
        let _pl = pred_ref.lock(&*self.smr, tid)?;
        let _cl = curr_ref.lock(&*self.smr, tid)?;
        if pred_ref.marked.load(Ordering::Acquire)
            || curr_ref.marked.load(Ordering::Acquire)
            || pred_ref.next.load(Ordering::Acquire) != pos.curr
        {
            return Err(Restart);
        }
        let succ = curr_ref.next.load(Ordering::Acquire);
        let mut wset = [core::ptr::null_mut::<Header>(); 3];
        let mut n = 0;
        wset[n] = as_header(pos.pred);
        n += 1;
        wset[n] = as_header(pos.curr);
        n += 1;
        if !succ.is_null() {
            wset[n] = as_header(succ);
            n += 1;
        }
        self.smr.begin_write(tid, &wset[..n])?;
        // Logical deletion first (readers check this flag), then unlink.
        curr_ref.marked.store(true, Ordering::Release);
        pred_ref.next.store(succ, Ordering::Release);
        // SAFETY: unlinked under both locks — retired exactly once.
        unsafe { retire_node(&*self.smr, tid, pos.curr) };
        self.smr.end_write(tid);
        Ok(true)
    }

    fn try_get(&self, tid: usize, key: Key) -> Result<Option<Value>, Restart> {
        let pos = self.search(tid, key)?;
        if pos.curr.is_null() {
            return Ok(None);
        }
        // SAFETY: curr protected by search.
        let curr_ref = unsafe { &*pos.curr };
        if curr_ref.key == key && !curr_ref.marked.load(Ordering::Acquire) {
            Ok(Some(curr_ref.value.load(Ordering::Acquire)))
        } else {
            Ok(None)
        }
    }

    /// Sequential iteration for test validation (requires quiescence).
    pub fn iter_quiescent(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        // SAFETY: caller guarantees no concurrent mutation.
        let mut p = unsafe { &*self.head }.next.load(Ordering::Acquire);
        while !p.is_null() {
            let n = unsafe { &*p };
            if !n.marked.load(Ordering::Acquire) {
                out.push((n.key, n.value.load(Ordering::Acquire)));
            }
            p = n.next.load(Ordering::Acquire);
        }
        out
    }
}

impl<S: Smr> ConcurrentMap<S> for LazyList<S> {
    const DS_NAME: &'static str = "LL";

    fn with_domain(smr: Arc<S>) -> Self {
        Self::new(smr)
    }

    fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn insert(&self, tid: usize, key: Key, value: Value) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_insert(tid, key, value);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn remove(&self, tid: usize, key: Key) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_remove(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn contains(&self, tid: usize, key: Key) -> bool {
        self.get(tid, key).is_some()
    }

    fn get(&self, tid: usize, key: Key) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_get(tid, key);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for LazyList<S> {
    fn drop(&mut self) {
        // Quiescent teardown, sentinel included.
        let mut p = self.head;
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let next = unsafe { &*p }.next.load(Ordering::Relaxed);
            // SAFETY: exclusive access; dispatches on the slab bit.
            unsafe { free_node_raw(p) };
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{HazardEraPop, SmrConfig};

    fn list() -> (Arc<HazardEraPop>, LazyList<HazardEraPop>) {
        let smr = HazardEraPop::new(SmrConfig::for_tests(4).with_reclaim_freq(8));
        let l = LazyList::new(Arc::clone(&smr));
        (smr, l)
    }

    #[test]
    fn roundtrip() {
        let (smr, l) = list();
        let reg = smr.register(0);
        assert!(l.insert(0, 2, 20));
        assert!(l.insert(0, 1, 10));
        assert!(l.insert(0, 3, 30));
        assert!(!l.insert(0, 2, 21));
        assert_eq!(l.get(0, 2), Some(20));
        assert!(l.remove(0, 2));
        assert!(!l.remove(0, 2));
        assert_eq!(l.iter_quiescent(), vec![(1, 10), (3, 30)]);
        drop(reg);
    }

    #[test]
    fn sorted_after_random_inserts() {
        let (smr, l) = list();
        let reg = smr.register(0);
        for k in [9u64, 2, 7, 4, 1, 8, 3] {
            assert!(l.insert(0, k, 0));
        }
        let keys: Vec<u64> = l.iter_quiescent().iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 7, 8, 9]);
        drop(reg);
    }

    #[test]
    fn removed_nodes_reach_domain() {
        let (smr, l) = list();
        let reg = smr.register(0);
        for k in 1..=50u64 {
            l.insert(0, k, k);
        }
        for k in 1..=50u64 {
            assert!(l.remove(0, k));
        }
        // Retired totals are exact at seal points (flush seals the
        // partial batch).
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().retired_nodes, 50);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }
}
