//! Mark-bit tagging of node pointers.
//!
//! Lock-free lists flag logical deletion by setting bit 0 of a node's
//! `next` pointer (Harris 2001). The SMR layer strips these bits when
//! recording reservations ([`pop_core::unmark_word`]); these helpers give
//! the data structures a typed view.

/// Whether the deletion mark (bit 0) is set.
#[inline(always)]
pub fn is_marked<T>(p: *mut T) -> bool {
    (p as usize) & 1 == 1
}

/// The pointer with the deletion mark set.
#[inline(always)]
pub fn marked<T>(p: *mut T) -> *mut T {
    ((p as usize) | 1) as *mut T
}

/// The pointer with tag bits cleared.
#[inline(always)]
pub fn unmarked<T>(p: *mut T) -> *mut T {
    ((p as usize) & !0b11) as *mut T
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_roundtrip() {
        let p = 0x7f00_0000_1000usize as *mut u64;
        assert!(!is_marked(p));
        let m = marked(p);
        assert!(is_marked(m));
        assert_eq!(unmarked(m), p);
        assert_eq!(unmarked(p), p);
        assert!(is_marked(marked(m)));
    }

    #[test]
    fn null_handling() {
        let n: *mut u64 = core::ptr::null_mut();
        assert!(!is_marked(n));
        assert!(is_marked(marked(n)));
        assert!(unmarked(marked(n)).is_null());
    }
}
