//! Treiber stack under generic SMR — a non-set structure demonstrating the
//! paper's applicability claim (§4.2.4: POP schemes apply to every data
//! structure hazard pointers apply to).
//!
//! The classic ABA hazard of `pop` (head reused between read and CAS) is
//! exactly what safe memory reclamation eliminates: a protected node
//! cannot be freed, hence cannot be recycled at the same address while the
//! CAS is in flight.

use core::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, free_node_raw, retire_node, HasHeader, Header, Restart, Smr,
};

use crate::Value;

/// Stack node. `#[repr(C)]`, header first.
#[repr(C)]
pub struct StackNode {
    hdr: Header,
    value: Value,
    next: AtomicPtr<StackNode>,
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for StackNode {}

/// A lock-free LIFO stack.
pub struct TreiberStack<S: Smr> {
    head: AtomicPtr<StackNode>,
    smr: Arc<S>,
}

// SAFETY: shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for TreiberStack<S> {}
unsafe impl<S: Smr> Sync for TreiberStack<S> {}

impl<S: Smr> TreiberStack<S> {
    /// Creates an empty stack.
    pub fn new(smr: Arc<S>) -> Self {
        TreiberStack {
            head: AtomicPtr::new(core::ptr::null_mut()),
            smr,
        }
    }

    /// The reclamation domain.
    pub fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn try_push(&self, tid: usize, node: *mut StackNode) -> Result<(), Restart> {
        let head = self.smr.protect(tid, 0, &self.head)?;
        // SAFETY: node is private until the CAS publishes it.
        unsafe { (*node).next.store(head, Ordering::Relaxed) };
        let mut wset = [core::ptr::null_mut::<Header>(); 1];
        let mut n = 0;
        if !head.is_null() {
            wset[n] = as_header(head);
            n += 1;
        }
        self.smr.begin_write(tid, &wset[..n])?;
        let ok = self
            .head
            .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        self.smr.end_write(tid);
        if ok {
            Ok(())
        } else {
            Err(Restart)
        }
    }

    /// Pushes a value.
    pub fn push(&self, tid: usize, value: Value) {
        let node = alloc_node(
            &*self.smr,
            tid,
            StackNode {
                hdr: Header::new(self.smr.current_era(), core::mem::size_of::<StackNode>()),
                value,
                next: AtomicPtr::new(core::ptr::null_mut()),
            },
        );
        loop {
            self.smr.begin_op(tid);
            let r = self.try_push(tid, node);
            self.smr.end_op(tid);
            if r.is_ok() {
                return;
            }
        }
    }

    fn try_pop(&self, tid: usize) -> Result<Option<Value>, Restart> {
        let head = self.smr.protect(tid, 0, &self.head)?;
        if head.is_null() {
            return Ok(None);
        }
        // `self.head` is a root: a validated read is always reachable.
        self.smr.check_live(head);
        // SAFETY: head is protected (validated reachable).
        let next = unsafe { &*head }.next.load(Ordering::Acquire);
        let mut wset = [core::ptr::null_mut::<Header>(); 2];
        let mut n = 0;
        wset[n] = as_header(head);
        n += 1;
        if !next.is_null() {
            wset[n] = as_header(next);
            n += 1;
        }
        self.smr.begin_write(tid, &wset[..n])?;
        let ok = self
            .head
            .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        let value = if ok {
            // SAFETY: protected; read before retiring.
            let v = unsafe { &*head }.value;
            // SAFETY: we won the unlink CAS — retire exactly once.
            unsafe { retire_node(&*self.smr, tid, head) };
            Some(v)
        } else {
            None
        };
        self.smr.end_write(tid);
        if ok {
            Ok(value)
        } else {
            Err(Restart)
        }
    }

    /// Pops the top value, or `None` when empty.
    pub fn pop(&self, tid: usize) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = self.try_pop(tid);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }

    /// Whether the stack is empty at this instant.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<S: Smr> Drop for TreiberStack<S> {
    fn drop(&mut self) {
        let mut p = self.head.load(Ordering::Relaxed);
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let next = unsafe { &*p }.next.load(Ordering::Relaxed);
            // SAFETY: exclusive access; dispatches on the slab bit.
            unsafe { free_node_raw(p) };
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{HazardPtrPop, SmrConfig};
    use std::collections::HashSet;

    #[test]
    fn lifo_order_single_thread() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(1).with_reclaim_freq(8));
        let s = TreiberStack::new(Arc::clone(&smr));
        let reg = smr.register(0);
        for v in 0..10u64 {
            s.push(0, v);
        }
        for v in (0..10u64).rev() {
            assert_eq!(s.pop(0), Some(v));
        }
        assert_eq!(s.pop(0), None);
        assert!(s.is_empty());
        smr.flush(0);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        drop(reg);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(4).with_reclaim_freq(64));
        let s = Arc::new(TreiberStack::new(Arc::clone(&smr)));
        let mut handles = Vec::new();
        for tid in 0..2 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let _reg = s.smr().register(tid);
                for i in 0..5_000u64 {
                    s.push(tid, (tid as u64) << 32 | i);
                }
                Vec::new() // uniform JoinHandle type with the poppers
            }));
        }
        for tid in 2..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let _reg = s.smr().register(tid);
                let mut got = Vec::new();
                let mut misses = 0;
                while got.len() < 5_000 && misses < 50_000_000 {
                    match s.pop(tid) {
                        Some(v) => got.push(v),
                        None => misses += 1,
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let reg = smr.register(0);
        while let Some(v) = s.pop(0) {
            all.push(v);
        }
        drop(reg);
        assert_eq!(all.len(), 10_000, "no value lost or duplicated");
        let distinct: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(distinct.len(), 10_000);
    }
}
