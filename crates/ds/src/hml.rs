//! `HML` — the Harris-Michael lock-free linked-list set (Michael 2004),
//! the paper's primary list benchmark and the structure its hash table
//! builds on.
//!
//! Deletion is two-phase: (1) *logical* — CAS the victim's `next` pointer
//! to its marked form; (2) *physical* — CAS the predecessor's `next` from
//! the victim to its successor, after which the victim is retired.
//! Traversals help with phase 2.
//!
//! ## Hazard-pointer discipline
//!
//! A node is protected by `protect(slot, &pred_link)` whose validation
//! re-read guarantees: either the link still holds the same (unmarked)
//! value — in which case the target was reachable at reservation time — or
//! the traversal restarts. A *marked* value read from `pred_link` means the
//! predecessor itself was logically deleted; the traversal restarts from
//! the head rather than trusting the link (this is what makes
//! reserve-then-validate sound even for reservations made after a
//! publish-on-ping reclaimer collected reservations: unlinked nodes are
//! only reachable through marked links, which traversals refuse to cross).
//!
//! The core operations are free functions over a bucket head so
//! [`crate::hash_map`] reuses them verbatim.

use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use pop_core::{
    alloc_node, as_header, dealloc_node_unpublished, free_node_raw, retire_node, HasHeader, Header,
    ReadResult, Restart, Smr,
};

use crate::marked::{is_marked, unmarked};
use crate::{ConcurrentMap, Key, Value};

/// List node. `#[repr(C)]`, header first — see [`HasHeader`].
#[repr(C)]
pub struct Node {
    hdr: Header,
    /// Immutable after insertion.
    pub key: Key,
    /// Mutated only by `insert` of an existing key (not used by the set
    /// API, but `get` reads it); atomic for race-freedom.
    pub value: AtomicU64,
    /// Successor pointer; bit 0 is the deletion mark.
    pub next: AtomicPtr<Node>,
}

// SAFETY: repr(C) with Header as the first field.
unsafe impl HasHeader for Node {}

impl Node {
    fn alloc<S: Smr>(smr: &S, tid: usize, key: Key, value: Value, next: *mut Node) -> *mut Node {
        alloc_node(
            smr,
            tid,
            Node {
                hdr: Header::new(smr.current_era(), core::mem::size_of::<Node>()),
                key,
                value: AtomicU64::new(value),
                next: AtomicPtr::new(next),
            },
        )
    }
}

/// Successful traversal position: `curr` (possibly null) is the first node
/// with `key >= target`, reachable from `pred_link`.
struct Position {
    pred_link: *const AtomicPtr<Node>,
    /// Node owning `pred_link`, null when `pred_link` is the head.
    pred_node: *mut Node,
    curr: *mut Node,
    found: bool,
}

/// Hazard slots used by list traversals (callers of the bucket ops must
/// configure their domain with at least this many slots).
pub const SLOTS_REQUIRED: usize = 2;

/// Finds the position for `key`, helping to unlink marked nodes.
///
/// On success, `curr` is protected in one hazard slot and `pred_node` (if
/// non-null) in the other.
fn find<S: Smr>(
    smr: &S,
    tid: usize,
    head: &AtomicPtr<Node>,
    key: Key,
) -> Result<Position, Restart> {
    'retry: loop {
        let mut pred_link: *const AtomicPtr<Node> = head;
        let mut pred_node: *mut Node = core::ptr::null_mut();
        // Alternating hazard slots: `sc` protects curr, `sp` the pred node.
        let mut sp = 0usize;
        let mut sc = 1usize;
        // SAFETY: `pred_link` points to the head (owned by the list).
        let mut curr_raw = smr.protect(tid, sc, unsafe { &*pred_link })?;
        loop {
            if is_marked(curr_raw) {
                // The predecessor was logically deleted under us; its link
                // can no longer be trusted to reach live nodes.
                continue 'retry;
            }
            let curr = curr_raw;
            if curr.is_null() {
                return Ok(Position {
                    pred_link,
                    pred_node,
                    curr,
                    found: false,
                });
            }
            // Unmarked link from a live predecessor ⇒ curr was reachable
            // after the reservation — safe to dereference.
            smr.check_live(curr);
            // SAFETY: `curr` is protected (validated reachable) and unmarked.
            let curr_ref = unsafe { &*curr };
            let next_raw = curr_ref.next.load(Ordering::Acquire);
            if is_marked(next_raw) {
                // `curr` is logically deleted: help unlink it.
                let succ = unmarked(next_raw);
                let mut wset = [core::ptr::null_mut::<Header>(); 3];
                let mut n = 0;
                if !pred_node.is_null() {
                    wset[n] = as_header(pred_node);
                    n += 1;
                }
                wset[n] = as_header(curr);
                n += 1;
                if !succ.is_null() {
                    wset[n] = as_header(succ);
                    n += 1;
                }
                smr.begin_write(tid, &wset[..n])?;
                // SAFETY: pred_link is either the head or the protected
                // pred_node's next field.
                let unlinked = unsafe { &*pred_link }
                    .compare_exchange(curr, succ, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                if unlinked {
                    // SAFETY: we won the unlink CAS — retire exactly once.
                    unsafe { retire_node(smr, tid, curr) };
                }
                smr.end_write(tid);
                if !unlinked {
                    continue 'retry;
                }
                // Re-read the link; pred is unchanged.
                curr_raw = smr.protect(tid, sc, unsafe { &*pred_link })?;
                continue;
            }
            let ckey = curr_ref.key;
            if ckey >= key {
                return Ok(Position {
                    pred_link,
                    pred_node,
                    curr,
                    found: ckey == key,
                });
            }
            // Advance: curr becomes the predecessor (keeping its hazard
            // slot); the freed slot protects the new curr.
            pred_link = &curr_ref.next;
            pred_node = curr;
            core::mem::swap(&mut sp, &mut sc);
            // SAFETY: pred_link is the protected pred_node's next field.
            curr_raw = smr.protect(tid, sc, unsafe { &*pred_link })?;
        }
    }
}

/// Set-insert into the list at `head`. Free function for bucket reuse.
pub fn insert_at<S: Smr>(
    smr: &S,
    tid: usize,
    head: &AtomicPtr<Node>,
    key: Key,
    value: Value,
) -> ReadResult<Node> {
    let pos = find(smr, tid, head, key)?;
    if pos.found {
        return Ok(core::ptr::null_mut()); // present: no insert
    }
    let node = Node::alloc(smr, tid, key, value, pos.curr);
    let mut wset = [core::ptr::null_mut::<Header>(); 2];
    let mut n = 0;
    if !pos.pred_node.is_null() {
        wset[n] = as_header(pos.pred_node);
        n += 1;
    }
    if !pos.curr.is_null() {
        wset[n] = as_header(pos.curr);
        n += 1;
    }
    if let Err(r) = smr.begin_write(tid, &wset[..n]) {
        // SAFETY: `node` was never published.
        unsafe { dealloc_node_unpublished(smr, tid, node) };
        return Err(r);
    }
    // SAFETY: pred_link is the head or the protected pred node's next.
    let ok = unsafe { &*pos.pred_link }
        .compare_exchange(pos.curr, node, Ordering::AcqRel, Ordering::Acquire)
        .is_ok();
    smr.end_write(tid);
    if ok {
        Ok(node)
    } else {
        // SAFETY: CAS failed; `node` was never published.
        unsafe { dealloc_node_unpublished(smr, tid, node) };
        Err(Restart)
    }
}

/// Set-remove from the list at `head`. Free function for bucket reuse.
pub fn remove_at<S: Smr>(
    smr: &S,
    tid: usize,
    head: &AtomicPtr<Node>,
    key: Key,
) -> Result<bool, Restart> {
    let pos = find(smr, tid, head, key)?;
    if !pos.found {
        return Ok(false);
    }
    let curr = pos.curr;
    // SAFETY: protected by find.
    let curr_ref = unsafe { &*curr };
    let next_raw = curr_ref.next.load(Ordering::Acquire);
    if is_marked(next_raw) {
        return Err(Restart); // someone else is deleting it
    }
    let succ = unmarked(next_raw);
    let mut wset = [core::ptr::null_mut::<Header>(); 3];
    let mut n = 0;
    if !pos.pred_node.is_null() {
        wset[n] = as_header(pos.pred_node);
        n += 1;
    }
    wset[n] = as_header(curr);
    n += 1;
    if !succ.is_null() {
        wset[n] = as_header(succ);
        n += 1;
    }
    smr.begin_write(tid, &wset[..n])?;
    // Phase 1: logical deletion (mark curr.next).
    let marked_succ = crate::marked::marked(succ);
    if curr_ref
        .next
        .compare_exchange(next_raw, marked_succ, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        smr.end_write(tid);
        return Err(Restart);
    }
    // Phase 2: physical unlink; on failure a helper will finish and retire.
    // SAFETY: pred_link is the head or the protected pred node's next.
    let unlinked = unsafe { &*pos.pred_link }
        .compare_exchange(curr, succ, Ordering::AcqRel, Ordering::Acquire)
        .is_ok();
    if unlinked {
        // SAFETY: we won the unlink CAS — retire exactly once.
        unsafe { retire_node(smr, tid, curr) };
    }
    smr.end_write(tid);
    Ok(true)
}

/// Lookup in the list at `head`. Free function for bucket reuse.
pub fn get_at<S: Smr>(
    smr: &S,
    tid: usize,
    head: &AtomicPtr<Node>,
    key: Key,
) -> Result<Option<Value>, Restart> {
    let pos = find(smr, tid, head, key)?;
    if pos.found {
        // SAFETY: protected by find.
        Ok(Some(unsafe { &*pos.curr }.value.load(Ordering::Acquire)))
    } else {
        Ok(None)
    }
}

/// The Harris-Michael list set.
pub struct HmList<S: Smr> {
    head: AtomicPtr<Node>,
    smr: Arc<S>,
}

// SAFETY: all shared state is atomics; nodes are managed by the SMR domain.
unsafe impl<S: Smr> Send for HmList<S> {}
unsafe impl<S: Smr> Sync for HmList<S> {}

impl<S: Smr> HmList<S> {
    /// Creates an empty list.
    pub fn new(smr: Arc<S>) -> Self {
        HmList {
            head: AtomicPtr::new(core::ptr::null_mut()),
            smr,
        }
    }

    /// Sequential iteration for test validation (requires quiescence).
    pub fn iter_quiescent(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        let mut p = unmarked(self.head.load(Ordering::Acquire));
        while !p.is_null() {
            // SAFETY: caller guarantees no concurrent mutation.
            let n = unsafe { &*p };
            let next = n.next.load(Ordering::Acquire);
            if !is_marked(next) {
                out.push((n.key, n.value.load(Ordering::Acquire)));
            }
            p = unmarked(next);
        }
        out
    }
}

impl<S: Smr> ConcurrentMap<S> for HmList<S> {
    const DS_NAME: &'static str = "HML";

    fn with_domain(smr: Arc<S>) -> Self {
        Self::new(smr)
    }

    fn smr(&self) -> &Arc<S> {
        &self.smr
    }

    fn insert(&self, tid: usize, key: Key, value: Value) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = insert_at(&*self.smr, tid, &self.head, key, value);
            self.smr.end_op(tid);
            match r {
                Ok(p) => return !p.is_null(),
                Err(Restart) => continue,
            }
        }
    }

    fn remove(&self, tid: usize, key: Key) -> bool {
        loop {
            self.smr.begin_op(tid);
            let r = remove_at(&*self.smr, tid, &self.head, key);
            self.smr.end_op(tid);
            match r {
                Ok(b) => return b,
                Err(Restart) => continue,
            }
        }
    }

    fn contains(&self, tid: usize, key: Key) -> bool {
        self.get(tid, key).is_some()
    }

    fn get(&self, tid: usize, key: Key) -> Option<Value> {
        loop {
            self.smr.begin_op(tid);
            let r = get_at(&*self.smr, tid, &self.head, key);
            self.smr.end_op(tid);
            match r {
                Ok(v) => return v,
                Err(Restart) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for HmList<S> {
    fn drop(&mut self) {
        // Quiescent teardown: free remaining nodes directly.
        let mut p = unmarked(self.head.load(Ordering::Relaxed));
        while !p.is_null() {
            // SAFETY: exclusive access in Drop.
            let next = unmarked(unsafe { &*p }.next.load(Ordering::Relaxed));
            // SAFETY: exclusive access; dispatches on the slab bit.
            unsafe { free_node_raw(p) };
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{HazardPtrPop, SmrConfig};

    fn list() -> (Arc<HazardPtrPop>, HmList<HazardPtrPop>) {
        let smr = HazardPtrPop::new(SmrConfig::for_tests(4).with_reclaim_freq(8));
        let l = HmList::new(Arc::clone(&smr));
        (smr, l)
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let (smr, l) = list();
        let reg = smr.register(0);
        assert!(l.insert(0, 5, 50));
        assert!(l.insert(0, 3, 30));
        assert!(l.insert(0, 9, 90));
        assert!(!l.insert(0, 5, 55), "duplicate insert rejected");
        assert!(l.contains(0, 3));
        assert_eq!(l.get(0, 5), Some(50));
        assert!(!l.contains(0, 4));
        assert!(l.remove(0, 3));
        assert!(!l.remove(0, 3), "double remove rejected");
        assert!(!l.contains(0, 3));
        assert_eq!(l.iter_quiescent(), vec![(5, 50), (9, 90)]);
        drop(reg);
    }

    #[test]
    fn keeps_sorted_order() {
        let (smr, l) = list();
        let reg = smr.register(0);
        for k in [7u64, 1, 9, 3, 5, 8, 2, 6, 4, 0] {
            assert!(l.insert(0, k, k * 10));
        }
        let snapshot = l.iter_quiescent();
        let keys: Vec<u64> = snapshot.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        drop(reg);
    }

    #[test]
    fn removal_retires_into_domain() {
        let (smr, l) = list();
        let reg = smr.register(0);
        for k in 0..100u64 {
            l.insert(0, k, k);
        }
        for k in 0..100u64 {
            assert!(l.remove(0, k));
        }
        // Retired totals are exact at seal points (flush seals the
        // partial batch).
        smr.flush(0);
        let s = smr.stats().snapshot();
        assert_eq!(s.retired_nodes, 100);
        assert_eq!(smr.stats().snapshot().unreclaimed_nodes(), 0);
        assert!(l.iter_quiescent().is_empty());
        drop(reg);
    }

    #[test]
    fn empty_list_operations() {
        let (smr, l) = list();
        let reg = smr.register(0);
        assert!(!l.contains(0, 1));
        assert!(!l.remove(0, 1));
        assert_eq!(l.get(0, 1), None);
        drop(reg);
    }
}
