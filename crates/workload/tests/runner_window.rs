//! Regression tests for the benchmark runner's measurement window.
//!
//! The bugs these pin down (fixed in the same PR): `run_workload` used to
//! take `t0` *before* the measurement-start barrier and compute `elapsed`
//! *after joining all workers*, so the throughput denominator absorbed
//! stop-flag observation skew, `drop(reg)` orphan-sealing and reclamation
//! drain — error that grows with thread count and with how expensive a
//! scheme's teardown is. A scheme whose unregister stalls must therefore
//! NOT deflate measured throughput, and the reported `seconds` for a
//! 100 ms trial must bracket the configured duration tightly.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use pop_core::{DomainStats, Ebr, ReadResult, Restart, Retired, Smr, SmrConfig};
use pop_ds::hml::HmList;
use pop_workload::{run_workload, OpMix, RunConfig, WorkloadKind};

/// How long each worker's teardown (unregister) stalls, simulating an
/// expensive reclamation drain / orphan-sealing pass.
const STALL_MS: u64 = 250;

/// An EBR wrapper whose `unregister` stalls for [`STALL_MS`] — the
/// "stalled-teardown scheme stub". With the old post-join `elapsed`, every
/// worker's stall landed inside the throughput denominator.
struct StallingEbr {
    inner: Arc<Ebr>,
    stalls: AtomicU64,
}

impl Smr for StallingEbr {
    const NAME: &'static str = "StallingEBR";
    const ROBUST: bool = false;
    const NEEDS_SIGNALS: bool = false;

    fn new(cfg: SmrConfig) -> Arc<Self> {
        Arc::new(StallingEbr {
            inner: Ebr::new(cfg),
            stalls: AtomicU64::new(0),
        })
    }

    fn config(&self) -> &SmrConfig {
        self.inner.config()
    }

    fn stats(&self) -> &DomainStats {
        self.inner.stats()
    }

    fn register_raw(&self, tid: usize) {
        self.inner.register_raw(tid);
    }

    fn unregister(&self, tid: usize) {
        // The stub's whole point: teardown is slow, measurement must not be.
        std::thread::sleep(Duration::from_millis(STALL_MS));
        self.stalls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.unregister(tid);
    }

    fn begin_op(&self, tid: usize) {
        self.inner.begin_op(tid);
    }

    fn end_op(&self, tid: usize) {
        self.inner.end_op(tid);
    }

    fn protect<T>(
        &self,
        tid: usize,
        slot: usize,
        src: &core::sync::atomic::AtomicPtr<T>,
    ) -> ReadResult<T> {
        self.inner.protect(tid, slot, src)
    }

    fn check_restart(&self, tid: usize) -> Result<(), Restart> {
        self.inner.check_restart(tid)
    }

    unsafe fn retire(&self, tid: usize, retired: Retired) {
        // SAFETY: forwarded contract.
        unsafe { self.inner.retire(tid, retired) };
    }

    fn current_era(&self) -> u64 {
        self.inner.current_era()
    }

    fn flush(&self, tid: usize) {
        self.inner.flush(tid);
    }
}

fn window_cfg(threads: usize, millis: u64) -> RunConfig {
    RunConfig {
        threads,
        duration: Duration::from_millis(millis),
        key_range: 256,
        kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
        prefill: true,
        pin_threads: false,
        seed: 0xBEEF,
        skew: 0.0,
    }
}

/// Acceptance criterion: measured `seconds` for a 100 ms trial at 8
/// threads is within 5% of the configured duration. (Before the fix it
/// included barrier skew + join/teardown and ran long.)
#[test]
fn measured_window_within_five_percent_at_8_threads() {
    let cfg = window_cfg(8, 100);
    let rec = run_workload::<Ebr, HmList<Ebr>, _>(
        &cfg,
        SmrConfig::for_tests(8).with_reclaim_freq(256),
        HmList::new,
    );
    assert!(rec.ops > 0);
    // The window opens after the start barrier and closes at the stop
    // flag; only the sleep itself (plus scheduler noise) is inside it.
    assert!(
        rec.seconds >= 0.100 && rec.seconds <= 0.105,
        "seconds = {} must be within 5% above the configured 0.100",
        rec.seconds
    );
}

/// The stalled-teardown stub: 4 workers × 250 ms stalls used to add a
/// full second to a 100 ms denominator (>10× throughput deflation). With
/// the window closed at the stop flag, the stalls are invisible.
#[test]
fn stalled_teardown_does_not_deflate_throughput() {
    let cfg = window_cfg(4, 100);
    let rec = run_workload::<StallingEbr, HmList<StallingEbr>, _>(
        &cfg,
        SmrConfig::for_tests(4).with_reclaim_freq(256),
        HmList::new,
    );
    assert!(rec.ops > 0);
    assert!(
        rec.seconds < 0.150,
        "seconds = {} absorbed the {STALL_MS} ms teardown stalls \
         (old post-join elapsed bug)",
        rec.seconds
    );
    // Cross-check via the throughput field itself: ops/seconds must agree
    // with the recorded rate, and the rate must reflect the real window.
    let recomputed = rec.ops as f64 / rec.seconds / 1e6;
    assert!(
        (recomputed - rec.throughput_mops).abs() < 1e-9,
        "throughput must be ops / measured-window seconds"
    );
}
