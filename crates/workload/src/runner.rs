//! The timed multi-threaded benchmark driver.
//!
//! Mirrors the paper's methodology (§5.0.2): parallel prefill to half the
//! key range, a barrier, a fixed-duration measured phase of uniformly
//! random operations, and metric collection (throughput in Mops/s, max
//! retire-list length, live-bytes high-water, unreclaimed nodes at end).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pop_core::{Smr, SmrConfig};
use pop_ds::ConcurrentMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::mix::{OpKind, WorkloadKind};
use crate::report::RunRecord;

/// Benchmark run parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Measured-phase duration.
    pub duration: Duration,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Workload shape (uniform mix or long-running reads).
    pub kind: WorkloadKind,
    /// Prefill to `key_range / 2` before measuring (paper methodology).
    pub prefill: bool,
    /// Pin thread `t` to CPU `t % ncpus`.
    pub pin_threads: bool,
    /// RNG seed (each thread derives its own stream).
    pub seed: u64,
    /// Zipf skew exponent for key draws; `0.0` = uniform (the paper's
    /// distribution), `>0` enables the contention-skew ablation.
    pub skew: f64,
}

impl RunConfig {
    /// A config with the paper's defaults for the given thread count and
    /// key range, scaled to short trials.
    pub fn new(threads: usize, key_range: u64, kind: WorkloadKind) -> Self {
        RunConfig {
            threads,
            duration: Duration::from_millis(1000),
            key_range,
            kind,
            prefill: true,
            pin_threads: true,
            seed: 0x5EED_CAFE,
            skew: 0.0,
        }
    }
}

/// Memory-metrics sampler: polls the domain's live-byte count on a fixed
/// period and records the high-water mark, standing in for the paper's
/// max-resident-memory measurements (DESIGN.md substitution S6).
struct Sampler {
    stop: Arc<AtomicBool>,
    peak: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    fn start<S: Smr>(smr: &Arc<S>) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let peak = Arc::new(AtomicU64::new(0));
        let handle = {
            let smr = Arc::clone(smr);
            let stop = Arc::clone(&stop);
            let peak = Arc::clone(&peak);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    peak.fetch_max(smr.stats().live_bytes(), Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(10));
                }
                peak.fetch_max(smr.stats().live_bytes(), Ordering::Relaxed);
            })
        };
        Sampler {
            stop,
            peak,
            handle: Some(handle),
        }
    }

    fn finish(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.peak.load(Ordering::Relaxed)
    }
}

/// Runs one benchmark trial of structure `M` under scheme `S`.
///
/// `smr_cfg.max_threads` is raised to the worker count automatically.
pub fn run_workload<S, M, F>(cfg: &RunConfig, mut smr_cfg: SmrConfig, make: F) -> RunRecord
where
    S: Smr,
    M: ConcurrentMap<S>,
    F: FnOnce(Arc<S>) -> M,
{
    assert!(cfg.threads >= 1);
    smr_cfg.max_threads = smr_cfg.max_threads.max(cfg.threads);
    let smr = S::new(smr_cfg);
    let map = Arc::new(make(Arc::clone(&smr)));

    let stop = Arc::new(AtomicBool::new(false));
    // Two barrier crossings: prefill-done and measurement-start, so every
    // thread measures the same window.
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let sampler = Sampler::start(&smr);
    let zipf = match (cfg.kind, cfg.skew) {
        (_, s) if s <= 0.0 => None,
        (WorkloadKind::Uniform(_), s) => Some(crate::zipf::Zipf::new(cfg.key_range, s)),
        (WorkloadKind::LongRunningReads { .. }, s) => panic!(
            "skew = {s} is incompatible with WorkloadKind::LongRunningReads: \
             the long-running-reads shape draws reader keys uniformly and \
             confines updaters to update_range (skew would be silently \
             ignored); use WorkloadKind::Uniform for the skew ablation"
        ),
    };

    // Deadline enforcement: the main thread's `sleep` can wake late under
    // oversubscription (scheduler latency is unbounded), so the *workers*
    // — which are on-core by definition while the trial runs — also poll
    // the deadline and the first thread past it stamps the window end.
    // `deadline_ns`/`end_ns` are nanoseconds since `epoch`.
    let epoch = Instant::now();
    let deadline_ns = Arc::new(AtomicU64::new(0));
    let end_ns = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::with_capacity(cfg.threads);
    for tid in 0..cfg.threads {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let deadline_ns = Arc::clone(&deadline_ns);
        let end_ns = Arc::clone(&end_ns);
        let zipf = zipf.as_ref().map(|z| z.clone_handle());
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            if cfg.pin_threads {
                pop_runtime::affinity::pin_current_to(tid);
            }
            let reg = map.smr().register(tid);
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (tid as u64).wrapping_mul(0x9E37));

            // Parallel prefill: each thread inserts the even keys of its
            // partition in *shuffled* order (sequential insertion would
            // degenerate the unbalanced trees into spines — the paper's
            // setbench prefills with random inserts), filling the
            // structure to key_range / 2.
            if cfg.prefill {
                use rand::seq::SliceRandom;
                let half = cfg.key_range / 2;
                let chunk = half / cfg.threads as u64;
                let lo = tid as u64 * chunk;
                let hi = if tid == cfg.threads - 1 {
                    half
                } else {
                    lo + chunk
                };
                let mut keys: Vec<u64> = (lo..hi).map(|i| i * 2).collect();
                keys.shuffle(&mut rng);
                for k in keys {
                    map.insert(tid, k, k);
                }
            }
            barrier.wait(); // prefill complete
            barrier.wait(); // measurement starts

            let mut ops = 0u64;
            let mut reads = 0u64;
            let mut updates = 0u64;
            let reader_role = match cfg.kind {
                WorkloadKind::Uniform(_) => false,
                WorkloadKind::LongRunningReads { .. } => tid < cfg.threads / 2,
            };
            while !stop.load(Ordering::Relaxed) {
                let draw = rng.gen_range(0u32..100);
                let (op, key) = match cfg.kind {
                    WorkloadKind::Uniform(mix) => {
                        let key = match &zipf {
                            Some(z) => z.rank(rng.gen::<f64>()),
                            None => rng.gen_range(0..cfg.key_range),
                        };
                        (mix.pick(draw), key)
                    }
                    WorkloadKind::LongRunningReads { update_range } => {
                        if reader_role {
                            (OpKind::Contains, rng.gen_range(0..cfg.key_range))
                        } else {
                            let op = if draw < 50 {
                                OpKind::Insert
                            } else {
                                OpKind::Delete
                            };
                            (op, rng.gen_range(0..update_range.max(1)))
                        }
                    }
                };
                match op {
                    OpKind::Insert => {
                        map.insert(tid, key, key);
                        updates += 1;
                    }
                    OpKind::Delete => {
                        map.remove(tid, key);
                        updates += 1;
                    }
                    OpKind::Contains => {
                        map.contains(tid, key);
                        reads += 1;
                    }
                }
                ops += 1;
                // Deadline poll (cheap vdso clock read, amortized over 32
                // ops): whoever crosses first stamps the window end and
                // raises the stop flag, so the measured window closes at
                // the deadline even if the main thread oversleeps.
                if ops.is_multiple_of(32) {
                    let dl = deadline_ns.load(Ordering::Acquire);
                    if dl != 0 {
                        let now = epoch.elapsed().as_nanos() as u64;
                        if now >= dl {
                            let _ = end_ns.compare_exchange(
                                0,
                                now,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                            stop.store(true, Ordering::Release);
                        }
                    }
                }
            }
            drop(reg);
            (ops, reads, updates)
        }));
    }

    barrier.wait(); // all prefilled
    barrier.wait(); // start measuring
                    // The throughput denominator must bracket exactly the measured window:
                    // t0 *after* the start barrier releases (not before — barrier wake-up
                    // skew is not measured work) and elapsed immediately after the stop
                    // flag is raised (not after the joins — stop-flag observation skew,
                    // `drop(reg)` orphan-sealing and reclamation drain all happen *after*
                    // the window, and that teardown error grows with thread count).
    let t0_ns = epoch.elapsed().as_nanos() as u64;
    deadline_ns.store(t0_ns + cfg.duration.as_nanos() as u64, Ordering::Release);
    std::thread::sleep(cfg.duration);
    let now = epoch.elapsed().as_nanos() as u64;
    // A worker usually beat us to the deadline (its stamp wins); this CAS
    // only lands when every worker was off-core or idle at the deadline.
    let _ = end_ns.compare_exchange(0, now, Ordering::AcqRel, Ordering::Acquire);
    stop.store(true, Ordering::Release);
    let elapsed_ns = end_ns.load(Ordering::Acquire).saturating_sub(t0_ns).max(1);
    let elapsed = Duration::from_nanos(elapsed_ns);

    let mut ops = 0u64;
    let mut reads = 0u64;
    let mut updates = 0u64;
    for h in handles {
        let (o, r, u) = h.join().expect("worker panicked");
        ops += o;
        reads += r;
        updates += u;
    }
    let peak_bytes = sampler.finish();
    let stats = smr.stats().snapshot();

    RunRecord {
        scheme: S::NAME,
        ds: M::DS_NAME,
        threads: cfg.threads,
        key_range: cfg.key_range,
        ops,
        read_ops: reads,
        update_ops: updates,
        seconds: elapsed.as_secs_f64(),
        throughput_mops: ops as f64 / elapsed.as_secs_f64() / 1e6,
        read_mops: reads as f64 / elapsed.as_secs_f64() / 1e6,
        max_retire_len: stats.max_retire_len,
        peak_live_bytes: peak_bytes,
        unreclaimed_nodes: stats.unreclaimed_nodes(),
        pings_sent: stats.pings_sent,
        pings_skipped: stats.pings_skipped,
        pings_elided_adaptive: stats.pings_elided_adaptive,
        membarrier_passes: stats.membarrier_passes,
        signals_avoided: stats.signals_avoided,
        batches_sealed: stats.batches_sealed,
        blocks_sealed_monotone: stats.blocks_sealed_monotone,
        blocks_sealed_era_monotone: stats.blocks_sealed_era_monotone,
        epoch_decay_steps: stats.epoch_decay_steps,
        bin_resizes: stats.bin_resizes,
        orphans_stolen: stats.orphans_stolen,
        restarts: stats.restarts,
        publish_wait_timeouts: stats.publish_wait_timeouts,
        pings_failed: stats.pings_failed,
        participants_reaped: stats.participants_reaped,
        faults_injected: stats.faults_injected,
        pressure_soft_trips: stats.pressure_soft_trips,
        pressure_hard_trips: stats.pressure_hard_trips,
        pressure_emergency_trips: stats.pressure_emergency_trips,
        blocks_quarantined: stats.blocks_quarantined,
        blocks_unquarantined: stats.blocks_unquarantined,
        pool_blocks_trimmed: stats.pool_blocks_trimmed,
        slab_allocs: stats.slab_allocs,
        slab_frees_whole: stats.slab_frees_whole,
        version_aborts: stats.version_aborts,
        slab_released_bytes: stats.slab_released_bytes,
    }
}

/// Latency percentiles from [`run_latency_probe`].
#[derive(Clone, Debug)]
pub struct LatencyReport {
    /// Scheme label.
    pub scheme: &'static str,
    /// Structure label.
    pub ds: &'static str,
    /// Read-op latency (ns): p50, p99, p999, max.
    pub read_ns: (u64, u64, u64, u64),
    /// Update-op latency (ns): p50, p99, p999, max.
    pub update_ns: (u64, u64, u64, u64),
    /// Samples recorded.
    pub samples: u64,
    /// Measured-phase wall time — bracketed exactly like
    /// [`run_workload`]'s (start barrier → stop flag, never the joins).
    pub seconds: f64,
}

/// Tail-latency extension experiment: like [`run_workload`], but samples
/// per-operation latency (every 16th op, to keep `Instant::now` overhead
/// off the common path) into log-bucketed histograms.
///
/// The question this answers — implicit in the paper's signal-overhead
/// discussion — is whether reclamation pings (which interrupt readers via
/// the signal handler) are visible in reader tail latency.
pub fn run_latency_probe<S, M, F>(cfg: &RunConfig, mut smr_cfg: SmrConfig, make: F) -> LatencyReport
where
    S: Smr,
    M: ConcurrentMap<S>,
    F: FnOnce(Arc<S>) -> M,
{
    use crate::histogram::LatencyHistogram;

    smr_cfg.max_threads = smr_cfg.max_threads.max(cfg.threads);
    let smr = S::new(smr_cfg);
    let map = Arc::new(make(Arc::clone(&smr)));
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    // Worker-enforced deadline, as in `run_workload`.
    let epoch = Instant::now();
    let deadline_ns = Arc::new(AtomicU64::new(0));
    let end_ns = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::with_capacity(cfg.threads);
    for tid in 0..cfg.threads {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let deadline_ns = Arc::clone(&deadline_ns);
        let end_ns = Arc::clone(&end_ns);
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            if cfg.pin_threads {
                pop_runtime::affinity::pin_current_to(tid);
            }
            let reg = map.smr().register(tid);
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (tid as u64) << 7);
            if cfg.prefill {
                use rand::seq::SliceRandom;
                let half = cfg.key_range / 2;
                let chunk = half / cfg.threads as u64;
                let lo = tid as u64 * chunk;
                let hi = if tid == cfg.threads - 1 {
                    half
                } else {
                    lo + chunk
                };
                let mut keys: Vec<u64> = (lo..hi).map(|i| i * 2).collect();
                keys.shuffle(&mut rng);
                for k in keys {
                    map.insert(tid, k, k);
                }
            }
            barrier.wait();
            barrier.wait();
            let mix = match cfg.kind {
                WorkloadKind::Uniform(m) => m,
                WorkloadKind::LongRunningReads { .. } => crate::mix::OpMix::READ_HEAVY,
            };
            let mut reads = LatencyHistogram::new();
            let mut updates = LatencyHistogram::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let draw = rng.gen_range(0u32..100);
                let key = rng.gen_range(0..cfg.key_range);
                let op = mix.pick(draw);
                let sample = i.is_multiple_of(16);
                let t0 = if sample { Some(Instant::now()) } else { None };
                let is_read = match op {
                    OpKind::Insert => {
                        map.insert(tid, key, key);
                        false
                    }
                    OpKind::Delete => {
                        map.remove(tid, key);
                        false
                    }
                    OpKind::Contains => {
                        map.contains(tid, key);
                        true
                    }
                };
                if let Some(t0) = t0 {
                    let ns = t0.elapsed().as_nanos() as u64;
                    if is_read {
                        reads.record(ns);
                    } else {
                        updates.record(ns);
                    }
                }
                i += 1;
                // Same worker-side deadline poll as `run_workload`.
                if i.is_multiple_of(32) {
                    let dl = deadline_ns.load(Ordering::Acquire);
                    if dl != 0 {
                        let now = epoch.elapsed().as_nanos() as u64;
                        if now >= dl {
                            let _ = end_ns.compare_exchange(
                                0,
                                now,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                            stop.store(true, Ordering::Release);
                        }
                    }
                }
            }
            drop(reg);
            (reads, updates)
        }));
    }
    barrier.wait();
    barrier.wait();
    // Same timing audit as `run_workload`: the window opens after the
    // start barrier releases and closes at the deadline stamp (worker- or
    // main-thread side, whichever crosses first), before the joins.
    let t0_ns = epoch.elapsed().as_nanos() as u64;
    deadline_ns.store(t0_ns + cfg.duration.as_nanos() as u64, Ordering::Release);
    std::thread::sleep(cfg.duration);
    let now = epoch.elapsed().as_nanos() as u64;
    let _ = end_ns.compare_exchange(0, now, Ordering::AcqRel, Ordering::Acquire);
    stop.store(true, Ordering::Release);
    let elapsed_ns = end_ns.load(Ordering::Acquire).saturating_sub(t0_ns).max(1);
    let elapsed = Duration::from_nanos(elapsed_ns);

    let mut reads = crate::histogram::LatencyHistogram::new();
    let mut updates = crate::histogram::LatencyHistogram::new();
    for h in handles {
        let (r, u) = h.join().expect("latency worker panicked");
        reads.merge(&r);
        updates.merge(&u);
    }
    LatencyReport {
        scheme: S::NAME,
        ds: M::DS_NAME,
        read_ns: reads.summary(),
        update_ns: updates.summary(),
        samples: reads.len() + updates.len(),
        seconds: elapsed.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::OpMix;
    use pop_core::{Ebr, HazardPtrPop, SmrConfig};
    use pop_ds::hml::HmList;

    #[test]
    fn short_run_produces_sane_numbers() {
        let cfg = RunConfig {
            threads: 2,
            duration: Duration::from_millis(100),
            key_range: 128,
            kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
            prefill: true,
            pin_threads: false,
            seed: 7,
            skew: 0.0,
        };
        let rec = run_workload::<HazardPtrPop, HmList<HazardPtrPop>, _>(
            &cfg,
            SmrConfig::for_tests(2).with_reclaim_freq(64),
            HmList::new,
        );
        assert_eq!(rec.scheme, "HazardPtrPOP");
        assert_eq!(rec.ds, "HML");
        assert!(rec.ops > 0, "no operations executed");
        assert!(rec.throughput_mops > 0.0);
        assert_eq!(rec.read_ops, 0, "update-heavy mix has no contains");
    }

    #[test]
    fn latency_probe_produces_percentiles() {
        let cfg = RunConfig {
            threads: 2,
            duration: Duration::from_millis(120),
            key_range: 128,
            kind: WorkloadKind::Uniform(OpMix::READ_HEAVY),
            prefill: true,
            pin_threads: false,
            seed: 3,
            skew: 0.0,
        };
        let rep = run_latency_probe::<HazardPtrPop, HmList<HazardPtrPop>, _>(
            &cfg,
            SmrConfig::for_tests(2).with_reclaim_freq(128),
            HmList::new,
        );
        assert!(rep.samples > 0);
        let (p50, p99, p999, max) = rep.read_ns;
        assert!(p50 <= p99 && p99 <= p999 && p999 <= max);
        assert!(max > 0);
    }

    #[test]
    fn zipf_skew_runs_and_counts() {
        let cfg = RunConfig {
            threads: 2,
            duration: Duration::from_millis(100),
            key_range: 512,
            kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
            prefill: true,
            pin_threads: false,
            seed: 11,
            skew: 0.99,
        };
        let rec = run_workload::<Ebr, HmList<Ebr>, _>(
            &cfg,
            SmrConfig::for_tests(2).with_reclaim_freq(64),
            HmList::new,
        );
        assert!(rec.ops > 0, "skewed workload must execute");
    }

    #[test]
    fn oversubscribed_run_completes() {
        // More worker threads than this host has CPUs: the paper's §4.1.2
        // worst case for ping-based reclamation — must terminate and drain.
        let threads = pop_runtime::affinity::num_cpus() * 2 + 1;
        let cfg = RunConfig {
            threads,
            duration: Duration::from_millis(150),
            key_range: 256,
            kind: WorkloadKind::Uniform(OpMix::UPDATE_HEAVY),
            prefill: true,
            pin_threads: false,
            seed: 13,
            skew: 0.0,
        };
        let smr_cfg = SmrConfig::for_tests(threads).with_reclaim_freq(128);
        let membarrier =
            smr_cfg.resolved_publish_mode() == pop_core::config::PublishMode::Membarrier;
        let rec = run_workload::<HazardPtrPop, HmList<HazardPtrPop>, _>(&cfg, smr_cfg, HmList::new);
        assert!(rec.ops > 0);
        if membarrier {
            // POP_PUBLISH_MODE=membarrier leg: the same worst case must be
            // absorbed by heavy barriers instead of a signal storm.
            assert!(
                rec.membarrier_passes > 0,
                "oversubscribed churn must exercise the membarrier path"
            );
            assert_eq!(rec.pings_sent, 0, "no signals in membarrier mode");
        } else {
            assert!(
                rec.pings_sent > 0,
                "oversubscribed churn must exercise the signal path"
            );
        }
    }

    #[test]
    #[should_panic(expected = "incompatible with WorkloadKind::LongRunningReads")]
    fn skew_plus_long_running_reads_is_an_error() {
        // Regression: skew used to be *silently ignored* for the
        // long-running-reads shape (the Zipf table was even built).
        let cfg = RunConfig {
            threads: 1,
            duration: Duration::from_millis(10),
            key_range: 64,
            kind: WorkloadKind::LongRunningReads { update_range: 8 },
            prefill: false,
            pin_threads: false,
            seed: 1,
            skew: 0.99,
        };
        let _ = run_workload::<Ebr, HmList<Ebr>, _>(&cfg, SmrConfig::for_tests(1), HmList::new);
    }

    #[test]
    fn long_running_reads_split_roles() {
        let cfg = RunConfig {
            threads: 2,
            duration: Duration::from_millis(100),
            key_range: 256,
            kind: WorkloadKind::LongRunningReads { update_range: 16 },
            prefill: true,
            pin_threads: false,
            seed: 9,
            skew: 0.0,
        };
        let rec = run_workload::<Ebr, HmList<Ebr>, _>(
            &cfg,
            SmrConfig::for_tests(2).with_reclaim_freq(64),
            HmList::new,
        );
        assert!(rec.read_ops > 0, "reader role must run contains");
        assert!(rec.update_ops > 0, "updater role must run updates");
    }
}
