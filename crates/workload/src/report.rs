//! Benchmark result records, table rendering and CSV output.

use std::io::Write;
use std::path::Path;

/// One benchmark trial's results — the columns behind every figure.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Reclamation scheme (paper plot label).
    pub scheme: &'static str,
    /// Data structure (paper plot label).
    pub ds: &'static str,
    /// Worker thread count.
    pub threads: usize,
    /// Key range (structure size = range / 2 after prefill).
    pub key_range: u64,
    /// Total operations completed in the measured phase.
    pub ops: u64,
    /// Contains operations completed.
    pub read_ops: u64,
    /// Insert/delete operations completed.
    pub update_ops: u64,
    /// Measured-phase wall time.
    pub seconds: f64,
    /// Throughput in millions of operations per second.
    pub throughput_mops: f64,
    /// Read throughput in Mops/s (Figure 4's y-axis numerator).
    pub read_mops: f64,
    /// Max retire-list length observed (Figs 1–2 right panels).
    pub max_retire_len: u64,
    /// Live-bytes high-water (stands in for max resident memory).
    pub peak_live_bytes: u64,
    /// Nodes retired but never freed (appendix figures' right panels).
    pub unreclaimed_nodes: u64,
    /// Signals sent by reclaimers.
    pub pings_sent: u64,
    /// Signals elided by the quiescent-thread filter.
    pub pings_skipped: u64,
    /// Signals elided by the adaptive streak filter (no slot scan at all).
    pub pings_elided_adaptive: u64,
    /// Reclamation passes that replaced the whole signal fan-out with one
    /// `membarrier(2)` heavy barrier (`PublishMode::Membarrier`).
    pub membarrier_passes: u64,
    /// Signals a membarrier pass would otherwise have sent (one per
    /// registered peer per pass) — the fan-out elided *wholesale*, distinct
    /// from the per-peer `pings_skipped`/`pings_elided_adaptive` filters.
    pub signals_avoided: u64,
    /// Retirement batches sealed (retires per stats RMW = ops / batches).
    pub batches_sealed: u64,
    /// Of those, blocks that were address-monotone at seal time (the
    /// arena-binned fill path's figure of merit: monotone share =
    /// `blocks_sealed_monotone / batches_sealed`).
    pub blocks_sealed_monotone: u64,
    /// Blocks that were *birth-era*-monotone at seal time (the era
    /// sweeps' first-sweep merge-join share).
    pub blocks_sealed_era_monotone: u64,
    /// Adaptive controller: epoch-cadence decay deepenings observed.
    pub epoch_decay_steps: u64,
    /// Adaptive controller: per-thread fill-bin resizes observed.
    pub bin_resizes: u64,
    /// Orphans stolen by reclaimer passes (sweep-time adoption).
    pub orphans_stolen: u64,
    /// NBR restarts observed.
    pub restarts: u64,
    /// Publish-wait watchdog expiries (passes that gave up waiting on a
    /// laggard and completed conservatively).
    pub publish_wait_timeouts: u64,
    /// Pings whose delivery failed (dead or errored targets).
    pub pings_failed: u64,
    /// Dead participants reaped by reclaimer passes.
    pub participants_reaped: u64,
    /// Faults fired by the injection layer (0 unless compiled in and armed).
    pub faults_injected: u64,
    /// Pressure-gauge soft-watermark trips (escalation ladder rung 1).
    pub pressure_soft_trips: u64,
    /// Pressure-gauge hard-watermark trips (rung 2: inline reclamation).
    pub pressure_hard_trips: u64,
    /// Pressure-gauge emergency-watermark trips (rung 3: quarantine).
    pub pressure_emergency_trips: u64,
    /// Retire blocks parked in the stalled-reader quarantine.
    pub blocks_quarantined: u64,
    /// Quarantined blocks released back for re-filtering.
    pub blocks_unquarantined: u64,
    /// Recycled fill blocks dropped by the free-pool trim.
    pub pool_blocks_trimmed: u64,
    /// Nodes handed out by the owned slab arenas (vs the `Box` fallback).
    pub slab_allocs: u64,
    /// Wholly-freed retire blocks that settled against a single slab with
    /// one range test (the owned-arena fast path).
    pub slab_frees_whole: u64,
    /// VBR version aborts (reads restarted because the announcement went
    /// stale); 0 for every other scheme.
    pub version_aborts: u64,
    /// Slab payload bytes handed back to the OS (`madvise(MADV_DONTNEED)`)
    /// — a process-wide gauge sampled at snapshot time.
    pub slab_released_bytes: u64,
}

impl RunRecord {
    /// CSV header matching [`RunRecord::csv_row`].
    pub const CSV_HEADER: &'static str = "figure,ds,scheme,threads,key_range,ops,read_ops,update_ops,seconds,throughput_mops,read_mops,max_retire_len,peak_live_bytes,unreclaimed_nodes,pings_sent,pings_skipped,pings_elided_adaptive,membarrier_passes,signals_avoided,batches_sealed,blocks_sealed_monotone,blocks_sealed_era_monotone,epoch_decay_steps,bin_resizes,orphans_stolen,restarts,publish_wait_timeouts,pings_failed,participants_reaped,faults_injected,pressure_soft_trips,pressure_hard_trips,pressure_emergency_trips,blocks_quarantined,blocks_unquarantined,pool_blocks_trimmed,slab_allocs,slab_frees_whole,version_aborts,slab_released_bytes";

    /// Serializes this record as a CSV row tagged with `figure`.
    pub fn csv_row(&self, figure: &str) -> String {
        format!(
            "{figure},{},{},{},{},{},{},{},{:.3},{:.4},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.ds,
            self.scheme,
            self.threads,
            self.key_range,
            self.ops,
            self.read_ops,
            self.update_ops,
            self.seconds,
            self.throughput_mops,
            self.read_mops,
            self.max_retire_len,
            self.peak_live_bytes,
            self.unreclaimed_nodes,
            self.pings_sent,
            self.pings_skipped,
            self.pings_elided_adaptive,
            self.membarrier_passes,
            self.signals_avoided,
            self.batches_sealed,
            self.blocks_sealed_monotone,
            self.blocks_sealed_era_monotone,
            self.epoch_decay_steps,
            self.bin_resizes,
            self.orphans_stolen,
            self.restarts,
            self.publish_wait_timeouts,
            self.pings_failed,
            self.participants_reaped,
            self.faults_injected,
            self.pressure_soft_trips,
            self.pressure_hard_trips,
            self.pressure_emergency_trips,
            self.blocks_quarantined,
            self.blocks_unquarantined,
            self.pool_blocks_trimmed,
            self.slab_allocs,
            self.slab_frees_whole,
            self.version_aborts,
            self.slab_released_bytes,
        )
    }
}

/// Renders records as an aligned table (one row per record).
pub fn render_table(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<6} {:>7} {:>12} {:>10} {:>12} {:>14} {:>12} {:>8}\n",
        "scheme",
        "ds",
        "threads",
        "Mops/s",
        "readMops",
        "maxRetire",
        "peakLiveBytes",
        "unreclaimed",
        "pings"
    ));
    for r in records {
        out.push_str(&format!(
            "{:<14} {:<6} {:>7} {:>12.3} {:>10.3} {:>12} {:>14} {:>12} {:>8}\n",
            r.scheme,
            r.ds,
            r.threads,
            r.throughput_mops,
            r.read_mops,
            r.max_retire_len,
            r.peak_live_bytes,
            r.unreclaimed_nodes,
            r.pings_sent,
        ));
    }
    out
}

/// Appends records to a CSV file (creating it with a header if missing).
pub fn write_csv(path: &Path, figure: &str, records: &[RunRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let exists = path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if !exists {
        writeln!(f, "{}", RunRecord::CSV_HEADER)?;
    }
    for r in records {
        writeln!(f, "{}", r.csv_row(figure))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> RunRecord {
        RunRecord {
            scheme: "HazardPtrPOP",
            ds: "HML",
            threads: 4,
            key_range: 2048,
            ops: 1_000_000,
            read_ops: 900_000,
            update_ops: 100_000,
            seconds: 1.0,
            throughput_mops: 1.0,
            read_mops: 0.9,
            max_retire_len: 64,
            peak_live_bytes: 123_456,
            unreclaimed_nodes: 12,
            pings_sent: 3,
            pings_skipped: 1,
            pings_elided_adaptive: 2,
            membarrier_passes: 7,
            signals_avoided: 21,
            batches_sealed: 4,
            blocks_sealed_monotone: 3,
            blocks_sealed_era_monotone: 2,
            epoch_decay_steps: 1,
            bin_resizes: 1,
            orphans_stolen: 0,
            restarts: 0,
            publish_wait_timeouts: 1,
            pings_failed: 1,
            participants_reaped: 1,
            faults_injected: 0,
            pressure_soft_trips: 3,
            pressure_hard_trips: 2,
            pressure_emergency_trips: 1,
            blocks_quarantined: 5,
            blocks_unquarantined: 5,
            pool_blocks_trimmed: 2,
            slab_allocs: 99,
            slab_frees_whole: 8,
            version_aborts: 4,
            slab_released_bytes: 61_440,
        }
    }

    #[test]
    fn csv_roundtrip_field_count() {
        let row = rec().csv_row("fig2a");
        assert_eq!(
            row.split(',').count(),
            RunRecord::CSV_HEADER.split(',').count()
        );
        assert!(row.starts_with("fig2a,HML,HazardPtrPOP,4,"));
    }

    #[test]
    fn pressure_columns_land_under_their_headers() {
        let row = rec().csv_row("fig2a");
        let headers: Vec<&str> = RunRecord::CSV_HEADER.split(',').collect();
        let values: Vec<&str> = row.split(',').collect();
        let col = |name: &str| {
            let i = headers
                .iter()
                .position(|h| *h == name)
                .unwrap_or_else(|| panic!("missing column {name}"));
            values[i]
        };
        assert_eq!(col("membarrier_passes"), "7");
        assert_eq!(col("signals_avoided"), "21");
        assert_eq!(col("pressure_soft_trips"), "3");
        assert_eq!(col("pressure_hard_trips"), "2");
        assert_eq!(col("pressure_emergency_trips"), "1");
        assert_eq!(col("blocks_quarantined"), "5");
        assert_eq!(col("blocks_unquarantined"), "5");
        assert_eq!(col("pool_blocks_trimmed"), "2");
        assert_eq!(col("slab_allocs"), "99");
        assert_eq!(col("slab_frees_whole"), "8");
        assert_eq!(col("version_aborts"), "4");
        assert_eq!(col("slab_released_bytes"), "61440");
    }

    #[test]
    fn table_contains_all_records() {
        let t = render_table(&[rec(), rec()]);
        assert_eq!(t.matches("HazardPtrPOP").count(), 2);
        assert!(t.contains("Mops/s"));
    }

    #[test]
    fn csv_file_written_with_header_once() {
        let dir = std::env::temp_dir().join("pop_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("out.csv");
        write_csv(&path, "fig1a", &[rec()]).unwrap();
        write_csv(&path, "fig1a", &[rec()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.matches("figure,ds").count(), 1, "single header");
        assert_eq!(content.lines().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
