//! Operation mixes and workload shapes from the paper's evaluation.

/// One benchmark operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `insert(key, value)`.
    Insert,
    /// `remove(key)`.
    Delete,
    /// `contains(key)`.
    Contains,
}

/// An insert/delete/contains percentage mix (the remainder is contains).
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Percent of operations that insert.
    pub insert_pct: u32,
    /// Percent of operations that delete.
    pub delete_pct: u32,
}

impl OpMix {
    /// The paper's update-heavy mix: 50% inserts, 50% deletes.
    pub const UPDATE_HEAVY: OpMix = OpMix {
        insert_pct: 50,
        delete_pct: 50,
    };

    /// The paper's read-heavy mix: 5% inserts, 5% deletes, 90% contains.
    pub const READ_HEAVY: OpMix = OpMix {
        insert_pct: 5,
        delete_pct: 5,
    };

    /// Picks an operation from a uniform draw in `0..100`.
    #[inline]
    pub fn pick(&self, draw: u32) -> OpKind {
        debug_assert!(self.insert_pct + self.delete_pct <= 100);
        if draw < self.insert_pct {
            OpKind::Insert
        } else if draw < self.insert_pct + self.delete_pct {
            OpKind::Delete
        } else {
            OpKind::Contains
        }
    }
}

/// The two workload shapes in the paper's evaluation.
#[derive(Clone, Copy, Debug)]
pub enum WorkloadKind {
    /// Every thread runs the same mix over the full key range (§5.0.2).
    Uniform(OpMix),
    /// Figure 4: the first half of the threads run 100% contains over the
    /// full range (long traversals), the second half run 50i/50d confined
    /// to `update_range` keys near the head.
    LongRunningReads {
        /// Width of the updaters' key range at the head of the structure.
        update_range: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_heavy_has_no_contains() {
        let m = OpMix::UPDATE_HEAVY;
        for d in 0..100 {
            assert_ne!(m.pick(d), OpKind::Contains);
        }
        assert_eq!(m.pick(0), OpKind::Insert);
        assert_eq!(m.pick(49), OpKind::Insert);
        assert_eq!(m.pick(50), OpKind::Delete);
        assert_eq!(m.pick(99), OpKind::Delete);
    }

    #[test]
    fn read_heavy_is_ninety_percent_contains() {
        let m = OpMix::READ_HEAVY;
        let contains = (0..100).filter(|&d| m.pick(d) == OpKind::Contains).count();
        assert_eq!(contains, 90);
        assert_eq!(m.pick(0), OpKind::Insert);
        assert_eq!(m.pick(5), OpKind::Delete);
        assert_eq!(m.pick(10), OpKind::Contains);
    }
}
