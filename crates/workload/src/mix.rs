//! Operation mixes and workload shapes from the paper's evaluation.

/// One benchmark operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `insert(key, value)`.
    Insert,
    /// `remove(key)`.
    Delete,
    /// `contains(key)`.
    Contains,
}

/// An insert/delete/contains percentage mix (the remainder is contains).
///
/// Validated at construction: `insert_pct + delete_pct <= 100`. The fields
/// are private so a release-build matrix cell can never carry a mix that
/// silently skews toward inserts (the old `debug_assert!`-in-`pick` bug).
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    insert_pct: u32,
    delete_pct: u32,
}

impl OpMix {
    /// The paper's update-heavy mix: 50% inserts, 50% deletes.
    pub const UPDATE_HEAVY: OpMix = OpMix::new(50, 50);

    /// The paper's read-heavy mix: 5% inserts, 5% deletes, 90% contains.
    pub const READ_HEAVY: OpMix = OpMix::new(5, 5);

    /// Builds a validated mix; the remainder up to 100% is contains.
    ///
    /// # Panics
    ///
    /// If `insert_pct + delete_pct > 100` — in **all** build profiles, at
    /// construction time, so a bad matrix cell fails loudly up front
    /// instead of silently rebalancing in `pick`.
    pub const fn new(insert_pct: u32, delete_pct: u32) -> OpMix {
        assert!(
            insert_pct + delete_pct <= 100,
            "OpMix: insert_pct + delete_pct must be <= 100"
        );
        OpMix {
            insert_pct,
            delete_pct,
        }
    }

    /// Percent of operations that insert.
    #[inline]
    pub const fn insert_pct(&self) -> u32 {
        self.insert_pct
    }

    /// Percent of operations that delete.
    #[inline]
    pub const fn delete_pct(&self) -> u32 {
        self.delete_pct
    }

    /// Percent of operations that are contains (the remainder).
    #[inline]
    pub const fn contains_pct(&self) -> u32 {
        100 - self.insert_pct - self.delete_pct
    }

    /// Picks an operation from a uniform draw in `0..100`.
    #[inline]
    pub fn pick(&self, draw: u32) -> OpKind {
        if draw < self.insert_pct {
            OpKind::Insert
        } else if draw < self.insert_pct + self.delete_pct {
            OpKind::Delete
        } else {
            OpKind::Contains
        }
    }
}

/// The two workload shapes in the paper's evaluation.
#[derive(Clone, Copy, Debug)]
pub enum WorkloadKind {
    /// Every thread runs the same mix over the full key range (§5.0.2).
    Uniform(OpMix),
    /// Figure 4: the first half of the threads run 100% contains over the
    /// full range (long traversals), the second half run 50i/50d confined
    /// to `update_range` keys near the head.
    LongRunningReads {
        /// Width of the updaters' key range at the head of the structure.
        update_range: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_heavy_has_no_contains() {
        let m = OpMix::UPDATE_HEAVY;
        for d in 0..100 {
            assert_ne!(m.pick(d), OpKind::Contains);
        }
        assert_eq!(m.pick(0), OpKind::Insert);
        assert_eq!(m.pick(49), OpKind::Insert);
        assert_eq!(m.pick(50), OpKind::Delete);
        assert_eq!(m.pick(99), OpKind::Delete);
    }

    #[test]
    fn read_heavy_is_ninety_percent_contains() {
        let m = OpMix::READ_HEAVY;
        let contains = (0..100).filter(|&d| m.pick(d) == OpKind::Contains).count();
        assert_eq!(contains, 90);
        assert_eq!(m.pick(0), OpKind::Insert);
        assert_eq!(m.pick(5), OpKind::Delete);
        assert_eq!(m.pick(10), OpKind::Contains);
        assert_eq!(m.contains_pct(), 90);
    }

    #[test]
    fn valid_mix_constructs() {
        let m = OpMix::new(30, 70);
        assert_eq!(m.insert_pct(), 30);
        assert_eq!(m.delete_pct(), 70);
        assert_eq!(m.contains_pct(), 0);
    }

    #[test]
    #[should_panic(expected = "must be <= 100")]
    fn oversubscribed_mix_panics_at_construction() {
        // The regression this guards: a release-build matrix cell with a
        // bad mix used to sail through `pick`'s debug_assert! and skew
        // toward inserts. Construction must reject it in every profile.
        let _ = OpMix::new(60, 60);
    }
}
