//! Zipf-distributed key sampling via a precomputed inverse-CDF table.
//!
//! The paper's evaluation draws keys uniformly; real caches and indexes
//! are skewed. The `ablation-skew` experiment uses this sampler to check
//! that publish-on-ping's advantage survives contention (hot keys
//! concentrate CAS failures and retirements on a few nodes).
//!
//! Sampling is O(log n) binary search over a cumulative table built once
//! per (n, s); the table is shared read-only across threads.

use std::sync::Arc;

/// Zipf(`n`, `s`) distribution over ranks `0..n` (rank 0 most popular).
pub struct Zipf {
    cdf: Arc<Vec<f64>>,
}

impl Zipf {
    /// Builds the sampler. `s` is the skew exponent (`0` = uniform,
    /// `~0.99` = web-like skew). `n` must be ≥ 1.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs a non-empty support");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf: Arc::new(cdf) }
    }

    /// Maps a uniform draw in `[0, 1)` to a rank in `0..n`.
    #[inline]
    pub fn rank(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Support size.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Cheap handle for another thread (shares the table).
    pub fn clone_handle(&self) -> Zipf {
        Zipf {
            cdf: Arc::clone(&self.cdf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(x: &mut u64) -> f64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        (*x >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(1000, 0.0);
        let mut x = 42u64;
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            let r = z.rank(xorshift(&mut x));
            counts[(r / 100) as usize] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            *hi < lo * 2,
            "s=0 must be near-uniform across deciles: {counts:?}"
        );
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(10_000, 0.99);
        let mut x = 7u64;
        let mut head = 0u64;
        const SAMPLES: u64 = 100_000;
        for _ in 0..SAMPLES {
            if z.rank(xorshift(&mut x)) < 100 {
                head += 1;
            }
        }
        // With s≈1, the top 1% of ranks draw roughly half the mass.
        assert!(
            head > SAMPLES / 3,
            "top-100 ranks got only {head}/{SAMPLES}"
        );
    }

    #[test]
    fn ranks_in_bounds_at_extremes() {
        let z = Zipf::new(5, 1.2);
        assert_eq!(z.rank(0.0), 0);
        assert!(z.rank(0.999_999) < 5);
        assert_eq!(z.n(), 5);
    }

    #[test]
    fn rank_zero_is_most_probable() {
        let z = Zipf::new(100, 0.8);
        let mut x = 3u64;
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[z.rank(xorshift(&mut x)) as usize] += 1;
        }
        let max_idx = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .unwrap()
            .0;
        assert_eq!(max_idx, 0, "rank 0 must dominate: {:?}", &counts[..5]);
    }

    #[test]
    fn shared_handle_samples_identically() {
        let z = Zipf::new(64, 0.5);
        let h = z.clone_handle();
        for u in [0.1, 0.37, 0.8, 0.99] {
            assert_eq!(z.rank(u), h.rank(u));
        }
    }
}
