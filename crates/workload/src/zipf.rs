//! Zipf-distributed key sampling via rejection-inversion (Hörmann).
//!
//! The paper's evaluation draws keys uniformly; real caches and indexes
//! are skewed. The `ablation-skew` experiment uses this sampler to check
//! that publish-on-ping's advantage survives contention (hot keys
//! concentrate CAS failures and retirements on a few nodes).
//!
//! Sampling uses Hörmann & Derflinger's rejection-inversion method
//! ("Rejection-inversion to generate variates from monotone discrete
//! distributions", ACM TOMACS 1996): invert the integral of the continuous
//! density `x^-s` and accept/reject against the discrete pmf. Memory is
//! **O(1)** and setup is a handful of `powf` calls, so the paper's 10⁸ key
//! range costs nothing — the previous inverse-CDF table materialized an
//! O(n) `Vec<f64>` (800 MB at that range) per `(n, s)` pair.

/// Zipf(`n`, `s`) distribution over ranks `0..n` (rank 0 most popular).
///
/// The struct is a few floats; [`Zipf::clone_handle`] is a copy.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(1.5) - h(1)` — lower endpoint of the inversion domain, extended
    /// by `h(1)` so rank 1's full mass is covered without rejection.
    h_x1: f64,
    /// `H(n + 0.5)` — upper endpoint of the inversion domain.
    h_n: f64,
    /// Hörmann's `s` shortcut constant: accept immediately when
    /// `k - x <= threshold`.
    threshold: f64,
}

impl Zipf {
    /// Builds the sampler. `s` is the skew exponent (`0` = uniform,
    /// `~0.99` = web-like skew). `n` must be ≥ 1.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs a non-empty support");
        assert!(s >= 0.0 && s.is_finite(), "skew must be finite and >= 0");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        }
    }

    /// Maps a uniform draw in `[0, 1)` to a rank in `0..n`.
    ///
    /// Deterministic per `u`: rejection retries draw follow-up uniforms
    /// from a splitmix64 stream seeded by `u`'s bit pattern, so two handles
    /// given the same `u` return the same rank (and the expected number of
    /// iterations is < 2 for every `(n, s)`).
    #[inline]
    pub fn rank(&self, u: f64) -> u64 {
        let mut seed = u.to_bits() ^ 0x9E37_79B9_7F4A_7C15;
        let mut draw = u.clamp(0.0, 1.0 - f64::EPSILON);
        loop {
            // Map into the inversion domain [h_x1, h_n); low values of the
            // domain correspond to rank 1 (most probable), so draw = 0
            // lands on rank 0 of the 0-based API.
            let v = self.h_x1 + draw * (self.h_n - self.h_x1);
            let x = h_integral_inverse(v, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.threshold || v >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64 - 1;
            }
            draw = next_f64(&mut seed);
        }
    }

    /// Support size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Probability of `rank` (0-based) under the exact discrete pmf,
    /// `rank^-s / H_n` — used by the frequency-vs-pmf tests and figure
    /// annotations; O(n) only when called.
    pub fn pmf(&self, rank: u64) -> f64 {
        assert!(rank < self.n);
        let norm: f64 = (1..=self.n).map(|k| (k as f64).powf(-self.s)).sum();
        ((rank + 1) as f64).powf(-self.s) / norm
    }

    /// Cheap handle for another thread (the sampler is a few floats).
    pub fn clone_handle(&self) -> Zipf {
        *self
    }
}

/// `H(x) = ∫ t^-s dt` from 1 to `x` (the logarithm at `s = 1`).
#[inline]
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^-s`, the continuous density majorizing the pmf.
#[inline]
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
#[inline]
fn h_integral_inverse(v: f64, s: f64) -> f64 {
    let mut t = v * (1.0 - s);
    // Numerical guard: t must stay above -1 for the series below.
    if t < -1.0 {
        t = -1.0;
    }
    (helper1(t) * v).exp()
}

/// `log1p(x) / x`, stable near 0.
#[inline]
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x) / x`, stable near 0.
#[inline]
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

/// splitmix64 step → uniform f64 in [0, 1).
#[inline]
fn next_f64(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(x: &mut u64) -> f64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        (*x >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(1000, 0.0);
        let mut x = 42u64;
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            let r = z.rank(xorshift(&mut x));
            counts[(r / 100) as usize] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            *hi < lo * 2,
            "s=0 must be near-uniform across deciles: {counts:?}"
        );
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(10_000, 0.99);
        let mut x = 7u64;
        let mut head = 0u64;
        const SAMPLES: u64 = 100_000;
        for _ in 0..SAMPLES {
            if z.rank(xorshift(&mut x)) < 100 {
                head += 1;
            }
        }
        // With s≈1, the top 1% of ranks draw roughly half the mass.
        assert!(
            head > SAMPLES / 3,
            "top-100 ranks got only {head}/{SAMPLES}"
        );
    }

    #[test]
    fn ranks_in_bounds_at_extremes() {
        let z = Zipf::new(5, 1.2);
        assert_eq!(z.rank(0.0), 0);
        assert!(z.rank(0.999_999) < 5);
        assert_eq!(z.n(), 5);
    }

    #[test]
    fn rank_zero_is_most_probable() {
        let z = Zipf::new(100, 0.8);
        let mut x = 3u64;
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[z.rank(xorshift(&mut x)) as usize] += 1;
        }
        let max_idx = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .unwrap()
            .0;
        assert_eq!(max_idx, 0, "rank 0 must dominate: {:?}", &counts[..5]);
    }

    #[test]
    fn shared_handle_samples_identically() {
        let z = Zipf::new(64, 0.5);
        let h = z.clone_handle();
        for u in [0.1, 0.37, 0.8, 0.99] {
            assert_eq!(z.rank(u), h.rank(u));
        }
    }

    #[test]
    fn constant_memory_at_paper_scale() {
        // The bug this replaces: a 10⁸-key sampler used to allocate an
        // 800 MB CDF table. Construction must now be instant and tiny.
        let z = Zipf::new(100_000_000, 0.99);
        assert!(core::mem::size_of::<Zipf>() <= 64);
        let mut x = 99u64;
        for _ in 0..1000 {
            assert!(z.rank(xorshift(&mut x)) < 100_000_000);
        }
    }

    /// Empirical frequency vs the exact pmf at s ∈ {0, 0.99} (the satellite
    /// test): 200k draws over n=50; every rank with non-trivial expected
    /// mass must land within 15% relative error.
    #[test]
    fn frequency_matches_pmf_at_skew_extremes() {
        const SAMPLES: u64 = 200_000;
        const N: u64 = 50;
        for s in [0.0, 0.99] {
            let z = Zipf::new(N, s);
            let mut x = 0xDEADBEEFu64;
            let mut counts = vec![0u64; N as usize];
            for _ in 0..SAMPLES {
                counts[z.rank(xorshift(&mut x)) as usize] += 1;
            }
            for rank in 0..N {
                let expect = z.pmf(rank) * SAMPLES as f64;
                if expect < 500.0 {
                    continue; // too little mass for a tight bound
                }
                let got = counts[rank as usize] as f64;
                let rel = (got - expect).abs() / expect;
                assert!(
                    rel < 0.15,
                    "s={s} rank={rank}: got {got}, expected {expect:.0} (rel {rel:.3})"
                );
            }
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(200, 0.7);
        let total: f64 = (0..200).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }
}
