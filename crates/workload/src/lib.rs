//! # `pop-workload` — the benchmark engine
//!
//! Reimplements the setbench-style microbenchmark the paper evaluates with
//! (§5.0.2): threads prefill a structure to half its key range, then run a
//! timed phase of randomly chosen insert/delete/contains operations over
//! uniformly random keys, while a sampler tracks the memory metrics the
//! paper plots (max retire-list length, live-bytes high-water, unreclaimed
//! nodes).
//!
//! * [`mix`] — operation mixes (update-heavy 50i/50d, read-heavy
//!   90c/5i/5d) and the long-running-reads role split of Figure 4.
//! * [`runner`] — the timed multi-threaded driver, generic over
//!   `(scheme, structure)` pairs.
//! * [`report`] — result records, aligned tables and CSV output.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod histogram;
pub mod mix;
pub mod report;
pub mod runner;
pub mod zipf;

pub use histogram::LatencyHistogram;
pub use mix::{OpKind, OpMix, WorkloadKind};
pub use report::{write_csv, RunRecord};
pub use runner::{run_latency_probe, run_workload, LatencyReport, RunConfig};
