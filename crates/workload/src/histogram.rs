//! Log-bucketed latency histogram (HdrHistogram-style, fixed footprint).
//!
//! Used by the latency extension experiment: publish-on-ping interrupts
//! running readers with signals, so the interesting question — one the
//! paper leaves implicit — is whether reclamation pings show up in reader
//! *tail* latency. The histogram is allocation-free on the record path and
//! mergeable across threads.
//!
//! Buckets: 64 powers of two of nanoseconds, each split into 16 linear
//! sub-buckets (≈6% relative error), 1024 counters total.

/// Number of power-of-two magnitude groups.
const GROUPS: usize = 64;
/// Linear sub-buckets per group.
const SUBS: usize = 16;

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; GROUPS * SUBS],
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    #[inline]
    fn index(value: u64) -> usize {
        let v = value.max(1);
        let group = 63 - v.leading_zeros() as usize; // floor(log2 v)
        let sub = if group >= 4 {
            // Top 4 bits below the leading bit select the linear sub-bucket.
            ((v >> (group - 4)) & (SUBS as u64 - 1)) as usize
        } else {
            (v & (SUBS as u64 - 1)) as usize
        };
        (group * SUBS + sub).min(GROUPS * SUBS - 1)
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Lower bound of a bucket's value range (inverse of `index`).
    fn bucket_floor(idx: usize) -> u64 {
        let group = idx / SUBS;
        let sub = (idx % SUBS) as u64;
        if group >= 4 {
            (1u64 << group) | (sub << (group - 4))
        } else {
            sub.max(1)
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (exact), 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in `[0, 1]` (bucket lower bound; ≈6% error).
    ///
    /// The endpoints are exact: `q = 0` returns [`LatencyHistogram::min`]
    /// and `q = 1` returns [`LatencyHistogram::max`] (both tracked outside
    /// the buckets), rather than a bucket floor that could under-report.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                // Clamp into the observed [min, max] so interior quantiles
                // stay monotone with the exact endpoints.
                return Self::bucket_floor(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// `(p50, p99, p999, max)` summary in the sample unit.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        assert_eq!(h.len(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1000);
        let p50 = h.quantile(0.5);
        assert!((937..=1000).contains(&p50), "p50 {p50} within 6% below");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 0x853C49E6748FEA9Bu64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        let mut prev = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
            h.record(v);
        }
        // Every recorded value's bucket floor is within 1/16 below it.
        for v in [100u64, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
            let floor = LatencyHistogram::bucket_floor(LatencyHistogram::index(v));
            assert!(floor <= v, "floor {floor} above sample {v}");
            assert!(
                (v - floor) as f64 / v as f64 <= 1.0 / 16.0 + 1e-9,
                "bucket error too large for {v}: floor {floor}"
            );
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 1..=100u64 {
            a.record(i * 10);
            b.record(i * 1000);
        }
        let amax = a.max();
        a.merge(&b);
        assert_eq!(a.len(), 200);
        assert_eq!(a.max(), 100_000);
        assert!(a.max() >= amax);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn quantile_endpoints_are_exact() {
        // Satellite regression: q=0 and q=1 must return the *exact*
        // tracked min/max, not a log-bucket floor (which under-reports by
        // up to 6%) — and stay monotone against interior quantiles.
        let mut h = LatencyHistogram::new();
        for v in [1_023u64, 4_097, 65_537, 999_999] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1_023, "q=0 is the exact min");
        assert_eq!(h.quantile(1.0), 999_999, "q=1 is the exact max");
        let mut prev = h.quantile(0.0);
        for q in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        // Out-of-range q clamps to the endpoints.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        // Single-sample histogram: every quantile is that sample.
        let mut one = LatencyHistogram::new();
        one.record(1000);
        assert_eq!(one.quantile(0.0), 1000);
        assert_eq!(one.quantile(1.0), 1000);
    }

    #[test]
    fn uniform_distribution_median() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!(
            (46_000..=50_000).contains(&p50),
            "median of uniform 1..=100k was {p50}"
        );
    }
}
