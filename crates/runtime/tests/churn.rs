//! Registry churn under fire: threads continuously register/deregister
//! while a pinger sprays signals at every slot. Exercises the per-slot
//! kill-lock that closes the `pthread_kill`-after-exit race and the
//! publisher dispatch path on threads that are mid-(de)registration.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pop_runtime::signal::{ping_gtid, register_publisher, Publisher};
use pop_runtime::{register_current_shared, PingOutcome, Registry, MAX_THREADS};

struct CountingPublisher {
    hits: AtomicU64,
}

impl Publisher for CountingPublisher {
    fn publish(&self, _gtid: usize) {
        core::sync::atomic::fence(Ordering::SeqCst);
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn churn_registrations_under_constant_pings() {
    let publisher: &'static CountingPublisher = Box::leak(Box::new(CountingPublisher {
        hits: AtomicU64::new(0),
    }));
    let handle = register_publisher(publisher);
    let stop = Arc::new(AtomicBool::new(false));

    // Churners: register, spin briefly, deregister, repeat.
    let mut churners = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        churners.push(std::thread::spawn(move || {
            let mut cycles = 0u64;
            while !stop.load(Ordering::Acquire) {
                let reg = register_current_shared();
                // Stay registered long enough to be a plausible ping target.
                for _ in 0..500 {
                    std::hint::spin_loop();
                }
                let _ = reg.gtid();
                drop(reg);
                cycles += 1;
            }
            cycles
        }));
    }

    // Pinger: spray signals across the whole table, live or not.
    let pinger = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sent = 0u64;
            while !stop.load(Ordering::Acquire) {
                for gtid in 0..Registry::global().scan_bound().min(MAX_THREADS) {
                    if ping_gtid(gtid) == PingOutcome::Sent {
                        sent += 1;
                    }
                }
                std::thread::yield_now();
            }
            sent
        })
    };

    let deadline = Instant::now() + Duration::from_millis(800);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Release);
    let cycles: u64 = churners.into_iter().map(|c| c.join().unwrap()).sum();
    let sent = pinger.join().unwrap();
    handle.deactivate();

    assert!(cycles > 0, "churners made progress");
    // With 800ms of churn and spraying, some pings must have landed and
    // been serviced; the real assertion is that nothing crashed or hung.
    assert!(sent > 0, "pinger delivered no signals");
    assert!(
        publisher.hits.load(Ordering::Relaxed) > 0,
        "handlers never ran despite {sent} delivered pings"
    );
}

#[test]
fn deregistered_threads_are_skipped_not_killed() {
    // A gtid observed while active may be deregistered before the ping;
    // ping_gtid must report it inactive rather than signal a dead thread.
    let (tx, rx) = std::sync::mpsc::channel();
    let t = std::thread::spawn(move || {
        let reg = register_current_shared();
        tx.send(reg.gtid()).unwrap();
        // Deregister quickly.
        drop(reg);
        std::thread::sleep(Duration::from_millis(50));
    });
    let gtid = rx.recv().unwrap();
    t.join().unwrap();
    // Thread gone: the slot is inactive (or reclaimed by someone else —
    // then the ping targets a live registrant, which is also fine).
    let _ = ping_gtid(gtid);
}
