//! # `pop-runtime` — signal machinery for publish-on-ping reclamation
//!
//! This crate is the operating-system substrate beneath the publish-on-ping
//! (POP) reclamation schemes of Singh & Brown (PPoPP 2025):
//!
//! * [`registry`] — a process-global table mapping small integer *global
//!   thread ids* to live `pthread_t` handles, so that a reclaimer can
//!   `pthread_kill` ("ping") every participating thread.
//! * [`signal`] — the process-global `SIGUSR1` handler and the *publisher*
//!   registry. Each POP reclamation domain registers an async-signal-safe
//!   publish callback; when a ping arrives, the handler locates the current
//!   thread's global id and invokes every active publisher for it.
//! * [`membarrier`] — the Linux `membarrier(2)` asymmetric process-wide
//!   memory barrier used by the Folly-style `HPAsym` baseline, with runtime
//!   feature detection (sandboxed kernels often lack the syscall; callers
//!   fall back to the signal path).
//! * [`futex`] — `FUTEX_WAIT`/`FUTEX_WAKE` wrappers keyed on per-thread
//!   publish words, so reclaimers waiting for a pinged peer's handler park
//!   in the kernel instead of burning scheduler quanta (`yield_now`
//!   fallback off Linux).
//! * [`affinity`] — best-effort CPU pinning for benchmark threads.
//! * [`vm`] — slab-aligned anonymous mappings and page release
//!   (`madvise(MADV_DONTNEED)`) for the owned slab arenas in `pop-core`.
//!
//! ## Async-signal-safety contract
//!
//! Everything reachable from the signal handler obeys POSIX
//! async-signal-safety: no allocation, no locks, no TLS access, no panics —
//! only loads/stores of plain atomics, `core::sync::atomic::fence`, and
//! `pthread_self`. The handler saves and restores `errno`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod faults;
pub mod futex;
pub mod membarrier;
pub mod registry;
pub mod signal;
pub mod vm;

pub use registry::{
    register_current_shared, Liveness, PingOutcome, Registry, SharedRegistration,
    ThreadRegistration, MAX_THREADS,
};
pub use signal::{ping_gtid, publisher_count, register_publisher, Publisher, PublisherHandle};

/// Spin-wait hint re-exported for schemes implementing bounded wait loops.
#[inline]
pub fn spin_hint() {
    core::hint::spin_loop();
}
